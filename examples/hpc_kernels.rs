//! Inspect the generation side of LLM4FP: build the three prompt families,
//! ask the simulated LLM for HPC-style floating-point kernels, and show how
//! feedback-based mutation rewrites a successful program.
//!
//! Run with: `cargo run --example hpc_kernels`

use llm4fp_suite::fpir::{parse_compute, to_c_source, to_cuda_source};
use llm4fp_suite::generator::{InputGenerator, LlmClient, PromptBuilder, SimulatedLlm};

fn main() {
    let prompts = PromptBuilder::new(Default::default());
    let mut llm = SimulatedLlm::new(7);
    let mut inputs = InputGenerator::new(8);

    // 1. Grammar-based generation from scratch (Section 2.3.1).
    let grammar_prompt = prompts.grammar_based();
    println!(
        "=== grammar-based prompt (excerpt) ===\n{}\n",
        grammar_prompt.text.lines().take(4).collect::<Vec<_>>().join("\n")
    );
    let response = llm.generate(&grammar_prompt);
    println!(
        "=== generated compute() [simulated API latency {:.1}s] ===\n{}",
        response.simulated_latency.as_secs_f64(),
        response.source
    );

    // 2. The same program as the self-contained C and CUDA files the
    //    compilation driver would emit.
    let program = parse_compute(&response.source).expect("grammar output is valid");
    let input_set = inputs.generate(&program);
    println!("=== host C translation unit ===\n{}", to_c_source(&program, &input_set));
    println!("=== device CUDA translation unit ===\n{}", to_cuda_source(&program, &input_set));

    // 3. Feedback-based mutation of that program (Section 2.3.2).
    let feedback_prompt = prompts.feedback_mutation(&response.source);
    let mutated = llm.generate(&feedback_prompt);
    println!("=== feedback-mutated variant ===\n{}", mutated.source);
}
