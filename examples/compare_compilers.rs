//! Compare compilers the way a numerical-software team would: generate a
//! batch of LLM4FP programs, run the full differential matrix, and summarize
//! which compiler pairs and optimization levels disagree most — the
//! practical use case the paper's introduction motivates (selecting
//! compilers/flags that give consistent floating-point behaviour).
//!
//! Campaigns run through the orchestrator (sharded, cached). When this
//! machine has at least two real host compilers (gcc, clang), a second
//! campaign drives them for real through the `extcc` backend — same
//! comparison code, actual `std::process` compiles — including the
//! result cache's headline win: duplicate programs skip every process
//! spawn of their matrix. Without a toolchain the external section skips
//! with a message (CI's default jobs cover that path hermetically via
//! `fakecc`).
//!
//! Run with: `cargo run --release --example compare_compilers`

use llm4fp_suite::core::report::{table4, table5};
use llm4fp_suite::core::{ApproachKind, BackendSpec, CampaignConfig, ExternalBackendSpec};
use llm4fp_suite::orchestrator::Orchestrator;

fn main() {
    let budget = 60;
    let shards = 4;
    println!(
        "generating and testing {budget} programs per approach \
         (Varity and LLM4FP, {shards} shards)...\n"
    );
    let run = |approach| {
        Orchestrator::new(
            CampaignConfig::new(approach).with_budget(budget).with_seed(2024).with_threads(4),
        )
        .shards(shards)
        .run()
        .expect("in-memory run")
        .result
    };
    let varity = run(ApproachKind::Varity);
    let llm4fp = run(ApproachKind::Llm4Fp);

    println!(
        "Varity : {:5.2}% inconsistency rate ({} inconsistencies)",
        100.0 * varity.inconsistency_rate(),
        varity.inconsistencies()
    );
    println!(
        "LLM4FP : {:5.2}% inconsistency rate ({} inconsistencies)\n",
        100.0 * llm4fp.inconsistency_rate(),
        llm4fp.inconsistencies()
    );

    println!("Per compiler pair and optimization level (Table 4 layout):\n");
    print!("{}", table4(&varity, &llm4fp));
    println!("\nEach level against O0_nofma within one compiler (Table 5 layout):\n");
    print!("{}", table5(&varity, &llm4fp));

    // A concrete recommendation, as the paper suggests practitioners derive.
    let gcc_nvcc =
        (llm4fp_suite::compiler::CompilerId::Gcc, llm4fp_suite::compiler::CompilerId::Nvcc);
    let strict = llm4fp.aggregates.pair_level.rate(
        gcc_nvcc,
        llm4fp_suite::compiler::OptLevel::O0Nofma,
        llm4fp.aggregates.programs,
    );
    let fast = llm4fp.aggregates.pair_level.rate(
        gcc_nvcc,
        llm4fp_suite::compiler::OptLevel::O3Fastmath,
        llm4fp.aggregates.programs,
    );
    println!(
        "\ngcc vs nvcc: {:.1}% of programs disagree at O0_nofma, {:.1}% at O3_fastmath — \
         porting CPU code to the GPU with fast math enabled needs numerical review.",
        100.0 * strict,
        100.0 * fast
    );

    external_section();
}

/// Re-run a (smaller) campaign against the real toolchains on this
/// machine, if it has at least two of them.
fn external_section() {
    println!("\n== External compiler backend ==\n");
    let spec = match ExternalBackendSpec::detect() {
        Some(spec) if spec.has_differential_pair() => spec,
        Some(spec) => {
            println!(
                "only {} host compiler(s) detected ({}); differential testing needs two — \
                 skipping the real-toolchain campaign.",
                spec.compilers.len(),
                spec.describe()
            );
            return;
        }
        None => {
            println!("no host compilers (gcc/clang) detected; skipping the real-toolchain run.");
            return;
        }
    };
    for c in &spec.compilers {
        println!("detected {}: {} ({})", c.id.name(), c.binary, c.version);
    }

    // Direct-Prompt is the duplicate-heavy regime, so the backend-aware
    // result cache visibly skips process spawns.
    let config = CampaignConfig::new(ApproachKind::DirectPrompt)
        .with_budget(24)
        .with_seed(2024)
        .with_threads(1)
        .with_backend(BackendSpec::External(spec));
    let configs_per_program = config.compilers.len() * config.levels.len();
    println!(
        "\nrunning {} programs x {} real configurations through the orchestrator \
         (4 shards, 2 process slots)...",
        config.programs, configs_per_program
    );
    let orchestrated = Orchestrator::new(config.clone())
        .shards(4)
        .workers(4)
        .process_slots(2)
        .run()
        .expect("in-memory orchestrated run cannot fail");
    let result = &orchestrated.result;
    println!("real-toolchain campaign: {}", orchestrated.stats.summary_line());
    println!(
        "inconsistency rate {:.2}% ({} inconsistencies over {} comparisons)",
        100.0 * result.inconsistency_rate(),
        result.inconsistencies(),
        result.aggregates.total_comparisons,
    );
    if let Some(cache) = &orchestrated.stats.cache {
        println!(
            "result cache: {} duplicate program(s) skipped all {} process spawns of their \
             matrix ({} compiles + {} runs each).",
            cache.hits,
            2 * configs_per_program,
            configs_per_program,
            configs_per_program,
        );
    }
}
