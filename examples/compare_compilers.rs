//! Compare compilers the way a numerical-software team would: generate a
//! batch of LLM4FP programs, run the full differential matrix, and summarize
//! which compiler pairs and optimization levels disagree most — the
//! practical use case the paper's introduction motivates (selecting
//! compilers/flags that give consistent floating-point behaviour).
//!
//! Run with: `cargo run --release --example compare_compilers`

use llm4fp_suite::core::report::{table4, table5};
use llm4fp_suite::core::{ApproachKind, Campaign, CampaignConfig};

fn main() {
    let budget = 60;
    println!("generating and testing {budget} programs per approach (Varity and LLM4FP)...\n");
    let varity = Campaign::new(
        CampaignConfig::new(ApproachKind::Varity)
            .with_budget(budget)
            .with_seed(2024)
            .with_threads(4),
    )
    .run();
    let llm4fp = Campaign::new(
        CampaignConfig::new(ApproachKind::Llm4Fp)
            .with_budget(budget)
            .with_seed(2024)
            .with_threads(4),
    )
    .run();

    println!(
        "Varity : {:5.2}% inconsistency rate ({} inconsistencies)",
        100.0 * varity.inconsistency_rate(),
        varity.inconsistencies()
    );
    println!(
        "LLM4FP : {:5.2}% inconsistency rate ({} inconsistencies)\n",
        100.0 * llm4fp.inconsistency_rate(),
        llm4fp.inconsistencies()
    );

    println!("Per compiler pair and optimization level (Table 4 layout):\n");
    print!("{}", table4(&varity, &llm4fp));
    println!("\nEach level against O0_nofma within one compiler (Table 5 layout):\n");
    print!("{}", table5(&varity, &llm4fp));

    // A concrete recommendation, as the paper suggests practitioners derive.
    let gcc_nvcc =
        (llm4fp_suite::compiler::CompilerId::Gcc, llm4fp_suite::compiler::CompilerId::Nvcc);
    let strict = llm4fp.aggregates.pair_level.rate(
        gcc_nvcc,
        llm4fp_suite::compiler::OptLevel::O0Nofma,
        llm4fp.aggregates.programs,
    );
    let fast = llm4fp.aggregates.pair_level.rate(
        gcc_nvcc,
        llm4fp_suite::compiler::OptLevel::O3Fastmath,
        llm4fp.aggregates.programs,
    );
    println!(
        "\ngcc vs nvcc: {:.1}% of programs disagree at O0_nofma, {:.1}% at O3_fastmath — \
         porting CPU code to the GPU with fast math enabled needs numerical review.",
        100.0 * strict,
        100.0 * fast
    );
}
