//! Run a small end-to-end LLM4FP campaign through the orchestrator and
//! watch the feedback loop work: how quickly the successful-program set
//! grows, which strategies were used, what the result cache saved, and
//! what the corpus diversity looks like. The run is persisted to a run
//! directory and resumed to demonstrate that interrupted campaigns pick
//! up where they left off.
//!
//! Run with: `cargo run --release --example feedback_loop`

use llm4fp_suite::core::{ApproachKind, CampaignConfig};
use llm4fp_suite::metrics::CloneType;
use llm4fp_suite::orchestrator::{Orchestrator, OrchestratorOptions};

fn main() {
    let config =
        CampaignConfig::new(ApproachKind::Llm4Fp).with_budget(80).with_seed(1234).with_threads(2);
    let shards = 4;
    let run_dir = std::env::temp_dir().join("llm4fp-feedback-loop-run");
    let _ = std::fs::remove_dir_all(&run_dir);

    println!(
        "running an LLM4FP campaign of {} programs in {} shards (run dir: {})...\n",
        config.programs,
        shards,
        run_dir.display()
    );
    let orchestrated = Orchestrator::new(OrchestratorOptions {
        run_dir: Some(run_dir.clone()),
        ..OrchestratorOptions::default()
    })
    .run(&config, shards)
    .expect("orchestrated run");
    let result = &orchestrated.result;
    let stats = &orchestrated.stats;

    println!(
        "inconsistency rate: {:.2}% ({} inconsistencies over {} comparisons)",
        100.0 * result.inconsistency_rate(),
        result.inconsistencies(),
        result.aggregates.total_comparisons
    );
    println!(
        "programs that triggered inconsistencies (successful set): {}",
        result.successful_sources.len()
    );
    println!(
        "LLM calls: {}, simulated API latency: {:.1} min, wall time: {:.2} s \
         ({:.2} s of shard work on {} workers)",
        result.llm_calls,
        result.simulated_llm_time.as_secs_f64() / 60.0,
        stats.wall_time.as_secs_f64(),
        stats.shard_pipeline_time.as_secs_f64(),
        stats.workers
    );
    if let Some(cache) = stats.cache {
        println!(
            "result cache: {} hits / {} lookups ({:.1}% — duplicate programs skipped the matrix)",
            cache.hits,
            cache.hits + cache.misses,
            100.0 * cache.hit_rate()
        );
    }

    // Strategy mix over the campaign (0.3 grammar / 0.7 feedback once the
    // successful set is non-empty).
    let grammar = result.records.iter().filter(|r| r.strategy == "grammar-based").count();
    let feedback = result.records.iter().filter(|r| r.strategy == "feedback-mutation").count();
    println!("strategy mix: {grammar} grammar-based, {feedback} feedback-mutation");

    // When did the feedback loop switch on?
    if let Some(first) = result.records.iter().find(|r| r.strategy == "feedback-mutation") {
        println!("first feedback-mutated program was #{}", first.index);
    }

    // Corpus diversity (Table 2's last column).
    let diversity = result.measure_diversity();
    println!(
        "\ndiversity: average pairwise CodeBLEU = {:.4} over {} pairs; clones T1/T2/T2c = {}/{}/{}",
        diversity.avg_codebleu,
        diversity.pairs_scored,
        diversity.clone_pairs(CloneType::Type1),
        diversity.clone_pairs(CloneType::Type2),
        diversity.clone_pairs(CloneType::Type2c),
    );

    // Show one program that triggered an inconsistency.
    if let Some(example) = result.successful_sources.first() {
        println!("\none inconsistency-triggering program:\n{example}");
    }

    // The run directory makes campaigns survive interruption: drop one
    // shard's output and resume — only that shard recomputes, and the
    // merged result is bit-identical.
    std::fs::remove_file(run_dir.join("shards").join("shard-0001.jsonl"))
        .expect("shard file exists");
    let resumed = Orchestrator::resume(&run_dir).expect("resume");
    println!(
        "\nresume demo: {} shards reused from disk, {} recomputed; results identical: {}",
        resumed.stats.shards_reused,
        resumed.stats.shards_computed,
        resumed.result.records == result.records && resumed.result.aggregates == result.aggregates
    );
    let _ = std::fs::remove_dir_all(&run_dir);
}
