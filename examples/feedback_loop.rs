//! Run a small end-to-end LLM4FP campaign through the orchestrator and
//! watch the feedback loop work: how quickly the successful-program set
//! grows, which strategies were used, what the result cache saved, and
//! what the corpus diversity looks like. The run is persisted to a run
//! directory and resumed to demonstrate that interrupted campaigns pick
//! up where they left off, and the same campaign is re-run with
//! cross-shard feedback exchange on and off to show what the exchanged
//! global pool buys at K > 1.
//!
//! Run with: `cargo run --release --example feedback_loop`

use llm4fp_suite::compiler::{CompilerId, OptLevel};
use llm4fp_suite::core::{ApproachKind, CampaignConfig};
use llm4fp_suite::metrics::CloneType;
use llm4fp_suite::orchestrator::{plan_shards, Orchestrator};

fn main() {
    let config =
        CampaignConfig::new(ApproachKind::Llm4Fp).with_budget(80).with_seed(1234).with_threads(2);
    let shards = 4;
    let epochs = 4;
    let run_dir = std::env::temp_dir().join("llm4fp-feedback-loop-run");
    let _ = std::fs::remove_dir_all(&run_dir);

    println!(
        "running an LLM4FP campaign of {} programs in {} shards x {} exchange epochs \
         (run dir: {})...\n",
        config.programs,
        shards,
        epochs,
        run_dir.display()
    );
    let orchestrated = Orchestrator::new(config.clone())
        .shards(shards)
        .epochs(epochs)
        .run_dir(run_dir.clone())
        .run()
        .expect("orchestrated run");
    let result = &orchestrated.result;
    let stats = &orchestrated.stats;

    println!(
        "inconsistency rate: {:.2}% ({} inconsistencies over {} comparisons)",
        100.0 * result.inconsistency_rate(),
        result.inconsistencies(),
        result.aggregates.total_comparisons
    );
    println!(
        "programs that triggered inconsistencies (successful set): {}",
        result.successful_sources.len()
    );
    println!(
        "LLM calls: {}, simulated API latency: {:.1} min",
        result.llm_calls,
        result.simulated_llm_time.as_secs_f64() / 60.0,
    );
    println!("run stats: {}", stats.summary_line());

    // Strategy mix over the campaign (0.3 grammar / 0.7 feedback once the
    // successful set is non-empty).
    let grammar = result.records.iter().filter(|r| r.strategy == "grammar-based").count();
    let feedback = result.records.iter().filter(|r| r.strategy == "feedback-mutation").count();
    println!("strategy mix: {grammar} grammar-based, {feedback} feedback-mutation");

    // When did the feedback loop switch on?
    if let Some(first) = result.records.iter().find(|r| r.strategy == "feedback-mutation") {
        println!("first feedback-mutated program was #{}", first.index);
    }

    // Corpus diversity (Table 2's last column).
    let diversity = result.measure_diversity();
    println!(
        "\ndiversity: average pairwise CodeBLEU = {:.4} over {} pairs; clones T1/T2/T2c = {}/{}/{}",
        diversity.avg_codebleu,
        diversity.pairs_scored,
        diversity.clone_pairs(CloneType::Type1),
        diversity.clone_pairs(CloneType::Type2),
        diversity.clone_pairs(CloneType::Type2c),
    );

    // Show one program that triggered an inconsistency.
    if let Some(example) = result.successful_sources.first() {
        println!("\none inconsistency-triggering program:\n{example}");
    }

    // Exchange on vs off. With isolated shards each worker's feedback
    // mutation sees only ~1/K of the findings; the epoch barriers hand
    // every shard the global pool instead. The effect is largest when
    // finds are rare — on the full 18-configuration matrix most programs
    // trigger something, so every shard bootstraps its own pool within a
    // program or two. A sparse 2x2 matrix models the rare-trigger regime
    // (a real-compiler backend hunting one specific miscompile): shards
    // routinely finish whole segments without a find of their own, and
    // the exchanged pool is what keeps their feedback loop fed.
    let mut sparse = config.clone().with_budget(160);
    sparse.compilers = vec![CompilerId::Gcc, CompilerId::Clang];
    sparse.levels = vec![OptLevel::O0, OptLevel::O1];
    let sparse_shards = 8;
    println!(
        "\nexchange on/off at K = {sparse_shards} on a sparse 2x2 matrix \
         ({} programs, same seed):",
        sparse.programs
    );
    for (label, epochs) in [("isolated shards (E=1)", 1usize), ("exchange (E=4)", 4)] {
        let run = Orchestrator::new(sparse.clone())
            .shards(sparse_shards)
            .epochs(epochs)
            .run()
            .expect("in-memory run")
            .result;
        // Feedback activation per shard: how many programs into its slice
        // the shard first drew a mutation seed. Isolated shards must each
        // bootstrap their own pool; exchanged shards get the global pool
        // at the first barrier.
        let activation: Vec<String> = plan_shards(&sparse, sparse_shards)
            .iter()
            .map(|spec| {
                run.records[spec.offset..spec.offset + spec.budget]
                    .iter()
                    .position(|r| r.strategy == "feedback-mutation")
                    .map_or_else(|| "never".to_string(), |i| format!("#{i}"))
            })
            .collect();
        println!(
            "  {label:>22}: {} inconsistencies, {:.2}% rate, {} successful programs, \
             {} feedback-mutated\n{:26}first feedback seed per shard: [{}]",
            run.inconsistencies(),
            100.0 * run.inconsistency_rate(),
            run.successful_sources.len(),
            run.records.iter().filter(|r| r.strategy == "feedback-mutation").count(),
            "",
            activation.join(", "),
        );
    }

    // The run directory makes campaigns survive interruption: drop the
    // merged result and the shard outputs past the second exchange
    // barrier and resume — epochs 0..2 restore from their checkpoints,
    // only the rest recompute, and the merged result is bit-identical.
    std::fs::remove_file(run_dir.join("result.json")).expect("result exists");
    for shard in 0..shards {
        let _ =
            std::fs::remove_file(run_dir.join("shards").join(format!("shard-{shard:04}.jsonl")));
        let _ = std::fs::remove_file(
            run_dir.join("checkpoints").join(format!("shard-{shard:04}-epoch-0002.json")),
        );
    }
    let _ = std::fs::remove_file(run_dir.join("epochs").join("epoch-0002.json"));
    let resumed = Orchestrator::resume(&run_dir).expect("resume");
    println!(
        "\nresume demo: restored {} of {} epochs from barrier checkpoints; results identical: {}",
        resumed.stats.epochs_restored,
        resumed.stats.epochs,
        resumed.result.records == result.records && resumed.result.aggregates == result.aggregates
    );
    let _ = std::fs::remove_dir_all(&run_dir);
}
