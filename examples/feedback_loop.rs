//! Run a small end-to-end LLM4FP campaign and watch the feedback loop work:
//! how quickly the successful-program set grows, which strategies were used,
//! and what the corpus diversity looks like.
//!
//! Run with: `cargo run --release --example feedback_loop`

use llm4fp_suite::core::{ApproachKind, Campaign, CampaignConfig};
use llm4fp_suite::metrics::CloneType;

fn main() {
    let config = CampaignConfig::new(ApproachKind::Llm4Fp)
        .with_budget(80)
        .with_seed(1234)
        .with_threads(4);
    println!("running an LLM4FP campaign of {} programs...\n", config.programs);
    let result = Campaign::new(config).run();

    println!(
        "inconsistency rate: {:.2}% ({} inconsistencies over {} comparisons)",
        100.0 * result.inconsistency_rate(),
        result.inconsistencies(),
        result.aggregates.total_comparisons
    );
    println!(
        "programs that triggered inconsistencies (successful set): {}",
        result.successful_sources.len()
    );
    println!(
        "LLM calls: {}, simulated API latency: {:.1} min, pipeline time: {:.1} s",
        result.llm_calls,
        result.simulated_llm_time.as_secs_f64() / 60.0,
        result.pipeline_time.as_secs_f64()
    );

    // Strategy mix over the campaign (0.3 grammar / 0.7 feedback once the
    // successful set is non-empty).
    let grammar = result.records.iter().filter(|r| r.strategy == "grammar-based").count();
    let feedback = result.records.iter().filter(|r| r.strategy == "feedback-mutation").count();
    println!("strategy mix: {grammar} grammar-based, {feedback} feedback-mutation");

    // When did the feedback loop switch on?
    if let Some(first) = result.records.iter().find(|r| r.strategy == "feedback-mutation") {
        println!("first feedback-mutated program was #{}", first.index);
    }

    // Corpus diversity (Table 2's last column).
    let diversity = result.measure_diversity();
    println!(
        "\ndiversity: average pairwise CodeBLEU = {:.4} over {} pairs; clones T1/T2/T2c = {}/{}/{}",
        diversity.avg_codebleu,
        diversity.pairs_scored,
        diversity.clone_pairs(CloneType::Type1),
        diversity.clone_pairs(CloneType::Type2),
        diversity.clone_pairs(CloneType::Type2c),
    );

    // Show one program that triggered an inconsistency.
    if let Some(example) = result.successful_sources.first() {
        println!("\none inconsistency-triggering program:\n{example}");
    }
}
