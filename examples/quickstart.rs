//! Quickstart: write a small floating-point program, compile it under two
//! compiler configurations of the virtual matrix, and see whether their
//! results differ bit for bit.
//!
//! Run with: `cargo run --example quickstart`

use llm4fp_suite::compiler::{compile, CompilerConfig, CompilerId, OptLevel};
use llm4fp_suite::difftest::DiffTester;
use llm4fp_suite::fpir::{parse_compute, InputSet, InputValue};

fn main() {
    // A tiny HPC-flavoured kernel in the Varity/LLM4FP grammar.
    let source = "void compute(double x, double y, double *a) {\n\
                  double comp = 0.0;\n\
                  double scale = sin(x) * 0.5 + 1.0;\n\
                  for (int i = 0; i < 8; ++i) {\n\
                      comp += a[i] * scale + exp(y / 16.0);\n\
                  }\n\
                  comp /= hypot(x, y) + 1.0;\n\
                  }";
    let program = parse_compute(source).expect("the program fits the grammar");
    let inputs = InputSet::new()
        .with("x", InputValue::Fp(1.25))
        .with("y", InputValue::Fp(-2.5))
        .with("a", InputValue::FpArray(vec![0.5, 1.5, -2.25, 3.0, 0.125, -0.75, 2.0, 1.0]));

    // Compile the same program as gcc -O0 (strict) and nvcc -O3 (device).
    let host = compile(&program, CompilerConfig::new(CompilerId::Gcc, OptLevel::O0Nofma)).unwrap();
    let device = compile(&program, CompilerConfig::new(CompilerId::Nvcc, OptLevel::O3)).unwrap();
    let host_result = host.execute(&inputs).unwrap();
    let device_result = device.execute(&inputs).unwrap();

    println!("host   (gcc @ O0_nofma): {}  ({:+.17e})", host_result.hex(), host_result.value);
    println!("device (nvcc @ O3)     : {}  ({:+.17e})", device_result.hex(), device_result.value);
    if host_result.bits() != device_result.bits() {
        println!("=> the two configurations disagree in their bit patterns\n");
    } else {
        println!("=> the two configurations agree exactly\n");
    }

    // Or simply run the whole 3-compiler x 6-level matrix at once.
    let report = DiffTester::new().run(&program, &inputs);
    println!(
        "full matrix: {} configurations ran, {} pairwise inconsistencies found",
        report.ok_count(),
        report.records.len()
    );
    for rec in report.records.iter().take(5) {
        println!(
            "  {:>12}  {} vs {}: {} hex digits differ ({:016x} vs {:016x})",
            rec.level.name(),
            rec.pair.0.name(),
            rec.pair.1.name(),
            rec.digit_diff,
            rec.bits_a,
            rec.bits_b,
        );
    }
}
