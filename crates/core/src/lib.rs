//! # llm4fp
//!
//! The LLM4FP framework (Figure 1 of the paper): strategy selection, program
//! generation, compilation driver, differential testing and the feedback
//! loop of successful programs — plus the three baselines the paper
//! evaluates against (Varity, Direct-Prompt, Grammar-Guided).
//!
//! The central type is [`Campaign`]: configured by a [`CampaignConfig`]
//! (approach, program budget, strategy probabilities, compiler matrix,
//! precision, seeds), it generates programs, feeds each one through the
//! differential-testing matrix, maintains the successful-program set used by
//! Feedback-Based Mutation, and accumulates all the statistics needed to
//! regenerate the paper's tables and figures. [`report`] renders those
//! statistics in the layout of Tables 2–5 and Figure 3.
//!
//! ```no_run
//! use llm4fp::{ApproachKind, Campaign, CampaignConfig};
//!
//! let config = CampaignConfig::new(ApproachKind::Llm4Fp).with_budget(50).with_seed(7);
//! let result = Campaign::new(config).run();
//! println!("inconsistency rate: {:.2}%", 100.0 * result.aggregates.inconsistency_rate());
//! ```

#![deny(unsafe_code)]

pub mod campaign;
pub mod config;
pub mod report;

pub use campaign::{
    Campaign, CampaignResult, CampaignRunner, ProgramRecord, RunnerCheckpoint, SuccessfulSet,
    SuccessfulSetSnapshot,
};
pub use config::{
    ApproachKind, BackendSpec, CampaignConfig, ExternalBackendSpec, ExternalCompilerSpec,
};
pub use llm4fp_compiler::SealMode;
pub use llm4fp_difftest::Aggregates;
