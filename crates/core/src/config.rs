//! Campaign configuration: the evaluated approaches and their parameters.

use serde::{Deserialize, Serialize};

use llm4fp_compiler::{CompilerId, OptLevel};
use llm4fp_fpir::Precision;
use llm4fp_generator::SamplingParams;

/// The four approaches compared in RQ1 (Section 3.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ApproachKind {
    /// Varity: unguided random grammar-based generation.
    Varity,
    /// Direct-Prompt: LLM generation without grammar or examples.
    DirectPrompt,
    /// Grammar-Guided: LLM generation with the Figure 2 grammar.
    GrammarGuided,
    /// LLM4FP: Grammar-Guided plus the Feedback-Based Mutation loop.
    Llm4Fp,
}

impl ApproachKind {
    /// All approaches in the order Table 2 lists them.
    pub const ALL: [ApproachKind; 4] = [
        ApproachKind::Varity,
        ApproachKind::DirectPrompt,
        ApproachKind::GrammarGuided,
        ApproachKind::Llm4Fp,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            ApproachKind::Varity => "Varity",
            ApproachKind::DirectPrompt => "Direct-Prompt",
            ApproachKind::GrammarGuided => "Grammar-Guided",
            ApproachKind::Llm4Fp => "LLM4FP",
        }
    }

    /// True for the approaches that call the (simulated) LLM.
    pub fn uses_llm(self) -> bool {
        !matches!(self, ApproachKind::Varity)
    }

    /// True for the approach that uses the feedback loop.
    pub fn uses_feedback(self) -> bool {
        matches!(self, ApproachKind::Llm4Fp)
    }
}

impl std::fmt::Display for ApproachKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full configuration of one campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Which approach generates the programs.
    pub approach: ApproachKind,
    /// Program budget N (the paper uses 1,000 per approach).
    pub programs: usize,
    /// Base RNG seed (generation, inputs and the simulated LLM derive their
    /// seeds from it, so a campaign is fully reproducible).
    pub seed: u64,
    /// Floating-point precision of generated programs (FP64 by default).
    pub precision: Precision,
    /// Probability of choosing Grammar-Based Generation once the successful
    /// set is non-empty (the paper uses 0.3; feedback mutation gets 0.7).
    pub grammar_probability: f64,
    /// Compilers under test.
    pub compilers: Vec<CompilerId>,
    /// Optimization levels under test.
    pub levels: Vec<OptLevel>,
    /// Worker threads for the differential-testing matrix.
    pub threads: usize,
    /// LLM sampling parameters.
    pub sampling: SamplingParams,
    /// Probability that a Direct-Prompt generation is invalid (models the
    /// lack of grammar guidance).
    pub direct_prompt_invalid_rate: f64,
    /// Upper bound on the number of program pairs scored for the CodeBLEU
    /// diversity report (the full quadratic pairing is used when it fits).
    pub max_codebleu_pairs: usize,
}

impl CampaignConfig {
    /// Default configuration for an approach: paper-faithful parameters with
    /// a reduced default budget (use [`Self::paper_scale`] or
    /// [`Self::with_budget`] to change it).
    pub fn new(approach: ApproachKind) -> Self {
        CampaignConfig {
            approach,
            programs: 100,
            seed: 0xfeed_f00d,
            precision: Precision::F64,
            grammar_probability: 0.3,
            compilers: CompilerId::ALL.to_vec(),
            levels: OptLevel::ALL.to_vec(),
            threads: 4,
            sampling: SamplingParams::paper_defaults(),
            direct_prompt_invalid_rate: 0.08,
            max_codebleu_pairs: 20_000,
        }
    }

    /// The paper's full budget of 1,000 programs per approach.
    pub fn paper_scale(approach: ApproachKind) -> Self {
        Self::new(approach).with_budget(1_000)
    }

    /// Set the program budget.
    pub fn with_budget(mut self, programs: usize) -> Self {
        self.programs = programs;
        self
    }

    /// Set the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the precision.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Set the number of matrix worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Total number of pairwise comparisons this campaign contributes to the
    /// denominator of the inconsistency rate.
    pub fn total_comparisons(&self) -> usize {
        let c = self.compilers.len();
        c * (c - 1) / 2 * self.levels.len() * self.programs
    }

    /// Basic sanity checks (probabilities in range, non-empty matrix).
    pub fn validate(&self) -> Result<(), String> {
        if self.programs == 0 {
            return Err("program budget must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.grammar_probability) {
            return Err("grammar_probability must be within [0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.direct_prompt_invalid_rate) {
            return Err("direct_prompt_invalid_rate must be within [0, 1]".into());
        }
        if self.compilers.len() < 2 {
            return Err("at least two compilers are required for differential testing".into());
        }
        if self.levels.is_empty() {
            return Err("at least one optimization level is required".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approach_properties_match_the_paper() {
        assert_eq!(ApproachKind::ALL.len(), 4);
        assert_eq!(ApproachKind::Varity.name(), "Varity");
        assert_eq!(ApproachKind::Llm4Fp.to_string(), "LLM4FP");
        assert!(!ApproachKind::Varity.uses_llm());
        assert!(ApproachKind::DirectPrompt.uses_llm());
        assert!(ApproachKind::Llm4Fp.uses_feedback());
        assert!(!ApproachKind::GrammarGuided.uses_feedback());
    }

    #[test]
    fn paper_scale_matches_section_3_1_3() {
        let cfg = CampaignConfig::paper_scale(ApproachKind::Llm4Fp);
        assert_eq!(cfg.programs, 1_000);
        assert_eq!(cfg.compilers.len(), 3);
        assert_eq!(cfg.levels.len(), 6);
        assert_eq!(cfg.total_comparisons(), 18_000);
        assert_eq!(cfg.grammar_probability, 0.3);
        assert_eq!(cfg.precision, Precision::F64);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn builders_and_validation() {
        let cfg = CampaignConfig::new(ApproachKind::Varity)
            .with_budget(10)
            .with_seed(3)
            .with_threads(0)
            .with_precision(Precision::F32);
        assert_eq!(cfg.programs, 10);
        assert_eq!(cfg.seed, 3);
        assert_eq!(cfg.threads, 1);
        assert_eq!(cfg.precision, Precision::F32);

        let mut bad = CampaignConfig::new(ApproachKind::Varity);
        bad.programs = 0;
        assert!(bad.validate().is_err());
        let mut bad = CampaignConfig::new(ApproachKind::Varity);
        bad.grammar_probability = 1.5;
        assert!(bad.validate().is_err());
        let mut bad = CampaignConfig::new(ApproachKind::Varity);
        bad.compilers.truncate(1);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn configs_serialize_round_trip() {
        let cfg = CampaignConfig::paper_scale(ApproachKind::GrammarGuided);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: CampaignConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
