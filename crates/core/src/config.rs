//! Campaign configuration: the evaluated approaches and their parameters.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use llm4fp_compiler::{CompilerId, OptLevel, SealMode};
use llm4fp_extcc::{probe_compiler, HostCompiler, HostToolchain};
use llm4fp_fpir::Precision;
use llm4fp_generator::SamplingParams;

/// The four approaches compared in RQ1 (Section 3.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ApproachKind {
    /// Varity: unguided random grammar-based generation.
    Varity,
    /// Direct-Prompt: LLM generation without grammar or examples.
    DirectPrompt,
    /// Grammar-Guided: LLM generation with the Figure 2 grammar.
    GrammarGuided,
    /// LLM4FP: Grammar-Guided plus the Feedback-Based Mutation loop.
    Llm4Fp,
}

impl ApproachKind {
    /// All approaches in the order Table 2 lists them.
    pub const ALL: [ApproachKind; 4] = [
        ApproachKind::Varity,
        ApproachKind::DirectPrompt,
        ApproachKind::GrammarGuided,
        ApproachKind::Llm4Fp,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            ApproachKind::Varity => "Varity",
            ApproachKind::DirectPrompt => "Direct-Prompt",
            ApproachKind::GrammarGuided => "Grammar-Guided",
            ApproachKind::Llm4Fp => "LLM4FP",
        }
    }

    /// True for the approaches that call the (simulated) LLM.
    pub fn uses_llm(self) -> bool {
        !matches!(self, ApproachKind::Varity)
    }

    /// True for the approach that uses the feedback loop.
    pub fn uses_feedback(self) -> bool {
        matches!(self, ApproachKind::Llm4Fp)
    }
}

impl std::fmt::Display for ApproachKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which execution backend a campaign drives its differential tests
/// through. Part of [`CampaignConfig`] — and therefore of the persisted
/// run manifest — because backend identity determines result bits: a
/// campaign is a pure function of its configuration only together with
/// the toolchain the spec pins.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum BackendSpec {
    /// The virtual compiler (sealed bytecode VM) — machine-independent,
    /// the evaluation default.
    #[default]
    Virtual,
    /// Real host compilers driven through `llm4fp-extcc`.
    External(ExternalBackendSpec),
}

impl BackendSpec {
    /// True when the campaign spawns real compiler processes.
    pub fn is_external(&self) -> bool {
        matches!(self, BackendSpec::External(_))
    }
}

// Hand-written (de)serialization mirroring the derive's wire format
// (`"Virtual"` / `{"External": {...}}`) with one extension: a missing or
// null field decodes as `Virtual`, so run manifests persisted before the
// backend field existed keep loading — and resuming — unchanged.
impl serde::Serialize for BackendSpec {
    fn to_value(&self) -> serde::Value {
        match self {
            BackendSpec::Virtual => serde::Value::Str("Virtual".to_string()),
            BackendSpec::External(spec) => {
                let mut m = serde::Map::new();
                m.insert("External".to_string(), serde::Serialize::to_value(spec));
                serde::Value::Obj(m)
            }
        }
    }
}

impl serde::Deserialize for BackendSpec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Null => Ok(BackendSpec::Virtual),
            serde::Value::Str(s) if s == "Virtual" => Ok(BackendSpec::Virtual),
            serde::Value::Obj(m) => match m.get("External") {
                Some(inner) => Ok(BackendSpec::External(serde::Deserialize::from_value(inner)?)),
                None => Err(serde::Error::msg("unknown variant of BackendSpec")),
            },
            _ => Err(serde::Error::msg("unexpected value for BackendSpec")),
        }
    }
}

/// One pinned external compiler: personality, binary path, and the
/// version line the binary reported when the spec was built.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExternalCompilerSpec {
    /// Which personality this binary implements.
    pub id: CompilerId,
    /// The executable name/path.
    pub binary: String,
    /// Version line probed at spec-construction time (`"unprobed"` when
    /// the binary did not respond). Pinned here — not re-probed per
    /// runner — so the cache-scoping fingerprint is stable across shards,
    /// and a persisted run manifest records exactly which toolchain
    /// produced it: resuming after a compiler upgrade fails the manifest
    /// equality check instead of silently mixing toolchains.
    pub version: String,
}

/// Serializable description of an external toolchain: which binary
/// implements each compiler personality (with its pinned version line),
/// and the per-process wall-clock timeout. The description is
/// deliberately explicit (paths + versions, not "use whatever is
/// installed") so persisted manifests pin the toolchain a run was
/// recorded against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExternalBackendSpec {
    /// The pinned compiler entries.
    pub compilers: Vec<ExternalCompilerSpec>,
    /// Wall-clock timeout per external process (compile or run), in
    /// milliseconds. Timeouts are recorded as findings, not errors.
    pub timeout_ms: u64,
}

impl ExternalBackendSpec {
    /// Default per-process timeout (mirrors
    /// `HostToolchain::DEFAULT_TIMEOUT`).
    pub const DEFAULT_TIMEOUT_MS: u64 = 10_000;

    /// Build a spec from explicit `(personality, binary)` pairs, probing
    /// each binary **once** for its version line (pinned into the spec;
    /// `"unprobed"` for binaries that do not respond — they stay in the
    /// spec and surface as recorded I/O findings at compile time).
    pub fn new(compilers: Vec<(CompilerId, String)>) -> Self {
        let compilers = compilers
            .into_iter()
            .map(|(id, binary)| {
                let version = probe_compiler(id, &binary)
                    .map_or_else(|| "unprobed".to_string(), |c| c.version);
                ExternalCompilerSpec { id, binary, version }
            })
            .collect();
        Self::from_specs(compilers)
    }

    /// Build a spec from already-probed compiler entries (no extra
    /// process spawns).
    pub fn from_host_compilers(compilers: Vec<HostCompiler>) -> Self {
        Self::from_specs(
            compilers
                .into_iter()
                .map(|c| ExternalCompilerSpec { id: c.id, binary: c.binary, version: c.version })
                .collect(),
        )
    }

    fn from_specs(compilers: Vec<ExternalCompilerSpec>) -> Self {
        ExternalBackendSpec { compilers, timeout_ms: Self::DEFAULT_TIMEOUT_MS }
    }

    /// Probe this machine for host compilers (gcc, clang) and pin
    /// whatever responds. `None` when no compiler is installed.
    pub fn detect() -> Option<Self> {
        let found = llm4fp_extcc::detect_host_compilers();
        if found.is_empty() {
            return None;
        }
        Some(Self::from_host_compilers(found))
    }

    /// The compiler personalities this spec provides binaries for —
    /// external campaigns restrict their matrix to these.
    pub fn compiler_ids(&self) -> Vec<CompilerId> {
        self.compilers.iter().map(|c| c.id).collect()
    }

    /// True when the spec pins at least the two compilers differential
    /// testing needs.
    pub fn has_differential_pair(&self) -> bool {
        self.compilers.len() >= 2
    }

    /// Human-readable `gcc=/usr/bin/gcc, clang=...` listing of the
    /// pinned binaries (for CLI messages).
    pub fn describe(&self) -> String {
        self.compilers
            .iter()
            .map(|c| format!("{}={}", c.id.name(), c.binary))
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Instantiate the toolchain this spec describes, verbatim — no
    /// re-probing, so every runner built from one spec shares one
    /// fingerprint.
    pub fn toolchain(&self) -> HostToolchain {
        let entries = self
            .compilers
            .iter()
            .map(|c| HostCompiler {
                id: c.id,
                binary: c.binary.clone(),
                version: c.version.clone(),
            })
            .collect();
        HostToolchain::new(entries).with_timeout(Duration::from_millis(self.timeout_ms))
    }
}

/// Full configuration of one campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Which approach generates the programs.
    pub approach: ApproachKind,
    /// Program budget N (the paper uses 1,000 per approach).
    pub programs: usize,
    /// Base RNG seed (generation, inputs and the simulated LLM derive their
    /// seeds from it, so a campaign is fully reproducible).
    pub seed: u64,
    /// Floating-point precision of generated programs (FP64 by default).
    pub precision: Precision,
    /// Probability of choosing Grammar-Based Generation once the successful
    /// set is non-empty (the paper uses 0.3; feedback mutation gets 0.7).
    pub grammar_probability: f64,
    /// Compilers under test.
    pub compilers: Vec<CompilerId>,
    /// Optimization levels under test.
    pub levels: Vec<OptLevel>,
    /// Worker threads for the differential-testing matrix.
    pub threads: usize,
    /// LLM sampling parameters.
    pub sampling: SamplingParams,
    /// Probability that a Direct-Prompt generation is invalid (models the
    /// lack of grammar guidance).
    pub direct_prompt_invalid_rate: f64,
    /// Upper bound on the number of program pairs scored for the CodeBLEU
    /// diversity report (the full quadratic pairing is used when it fits).
    pub max_codebleu_pairs: usize,
    /// Execution backend (virtual compiler by default; an external spec
    /// drives real host toolchains through `llm4fp-extcc`).
    pub backend: BackendSpec,
    /// Whether virtual sealing runs the seal-time peephole optimizer.
    /// Pure performance knob — the modes are pinned bit-identical, so
    /// results never depend on it ( `--no-seal-opt` sets `Raw` for A/B
    /// benchmarking). Missing/null in persisted configs decodes as
    /// `Optimized`, so pre-optimizer run manifests keep resuming.
    pub seal_mode: SealMode,
}

impl CampaignConfig {
    /// Default configuration for an approach: paper-faithful parameters with
    /// a reduced default budget (use [`Self::paper_scale`] or
    /// [`Self::with_budget`] to change it).
    pub fn new(approach: ApproachKind) -> Self {
        CampaignConfig {
            approach,
            programs: 100,
            seed: 0xfeed_f00d,
            precision: Precision::F64,
            grammar_probability: 0.3,
            compilers: CompilerId::ALL.to_vec(),
            levels: OptLevel::ALL.to_vec(),
            threads: 4,
            sampling: SamplingParams::paper_defaults(),
            direct_prompt_invalid_rate: 0.08,
            max_codebleu_pairs: 20_000,
            backend: BackendSpec::Virtual,
            seal_mode: SealMode::Optimized,
        }
    }

    /// The paper's full budget of 1,000 programs per approach.
    pub fn paper_scale(approach: ApproachKind) -> Self {
        Self::new(approach).with_budget(1_000)
    }

    /// Set the program budget.
    pub fn with_budget(mut self, programs: usize) -> Self {
        self.programs = programs;
        self
    }

    /// Set the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the precision.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Set the number of matrix worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Select the execution backend. For an external spec the compiler
    /// matrix is restricted to the personalities the spec provides
    /// binaries for (a matrix column without a binary would only record
    /// `MissingCompiler` findings).
    pub fn with_backend(mut self, backend: BackendSpec) -> Self {
        if let BackendSpec::External(spec) = &backend {
            let available = spec.compiler_ids();
            self.compilers.retain(|c| available.contains(c));
        }
        self.backend = backend;
        self
    }

    /// Select the seal mode (peephole optimizer on/off; bit-identical
    /// either way — an A/B performance knob).
    pub fn with_seal_mode(mut self, mode: SealMode) -> Self {
        self.seal_mode = mode;
        self
    }

    /// Total number of pairwise comparisons this campaign contributes to the
    /// denominator of the inconsistency rate.
    pub fn total_comparisons(&self) -> usize {
        let c = self.compilers.len();
        c * (c - 1) / 2 * self.levels.len() * self.programs
    }

    /// Basic sanity checks (probabilities in range, non-empty matrix).
    pub fn validate(&self) -> Result<(), String> {
        if self.programs == 0 {
            return Err("program budget must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.grammar_probability) {
            return Err("grammar_probability must be within [0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.direct_prompt_invalid_rate) {
            return Err("direct_prompt_invalid_rate must be within [0, 1]".into());
        }
        if self.compilers.len() < 2 {
            return Err("at least two compilers are required for differential testing".into());
        }
        if self.levels.is_empty() {
            return Err("at least one optimization level is required".into());
        }
        if let BackendSpec::External(spec) = &self.backend {
            if spec.compilers.is_empty() {
                return Err("external backend spec names no compiler binaries".into());
            }
            if spec.timeout_ms == 0 {
                return Err("external backend timeout must be positive".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approach_properties_match_the_paper() {
        assert_eq!(ApproachKind::ALL.len(), 4);
        assert_eq!(ApproachKind::Varity.name(), "Varity");
        assert_eq!(ApproachKind::Llm4Fp.to_string(), "LLM4FP");
        assert!(!ApproachKind::Varity.uses_llm());
        assert!(ApproachKind::DirectPrompt.uses_llm());
        assert!(ApproachKind::Llm4Fp.uses_feedback());
        assert!(!ApproachKind::GrammarGuided.uses_feedback());
    }

    #[test]
    fn paper_scale_matches_section_3_1_3() {
        let cfg = CampaignConfig::paper_scale(ApproachKind::Llm4Fp);
        assert_eq!(cfg.programs, 1_000);
        assert_eq!(cfg.compilers.len(), 3);
        assert_eq!(cfg.levels.len(), 6);
        assert_eq!(cfg.total_comparisons(), 18_000);
        assert_eq!(cfg.grammar_probability, 0.3);
        assert_eq!(cfg.precision, Precision::F64);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn builders_and_validation() {
        let cfg = CampaignConfig::new(ApproachKind::Varity)
            .with_budget(10)
            .with_seed(3)
            .with_threads(0)
            .with_precision(Precision::F32);
        assert_eq!(cfg.programs, 10);
        assert_eq!(cfg.seed, 3);
        assert_eq!(cfg.threads, 1);
        assert_eq!(cfg.precision, Precision::F32);

        let mut bad = CampaignConfig::new(ApproachKind::Varity);
        bad.programs = 0;
        assert!(bad.validate().is_err());
        let mut bad = CampaignConfig::new(ApproachKind::Varity);
        bad.grammar_probability = 1.5;
        assert!(bad.validate().is_err());
        let mut bad = CampaignConfig::new(ApproachKind::Varity);
        bad.compilers.truncate(1);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn configs_serialize_round_trip() {
        let cfg = CampaignConfig::paper_scale(ApproachKind::GrammarGuided);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: CampaignConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn external_backend_specs_round_trip_and_restrict_the_matrix() {
        let spec = ExternalBackendSpec::new(vec![
            (CompilerId::Gcc, "/usr/bin/gcc".to_string()),
            (CompilerId::Clang, "/usr/bin/clang".to_string()),
        ]);
        assert_eq!(spec.timeout_ms, ExternalBackendSpec::DEFAULT_TIMEOUT_MS);
        assert_eq!(spec.compiler_ids(), vec![CompilerId::Gcc, CompilerId::Clang]);

        let cfg = CampaignConfig::new(ApproachKind::Varity)
            .with_backend(BackendSpec::External(spec.clone()));
        // nvcc has no host binary: the matrix drops to the spec's set.
        assert_eq!(cfg.compilers, vec![CompilerId::Gcc, CompilerId::Clang]);
        assert!(cfg.backend.is_external());
        assert!(cfg.validate().is_ok());

        let json = serde_json::to_string(&cfg).unwrap();
        let back: CampaignConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);

        // Virtual configs stay untouched and non-external.
        let virt = CampaignConfig::new(ApproachKind::Varity);
        assert_eq!(virt.backend, BackendSpec::Virtual);
        assert!(!virt.backend.is_external());
        assert_eq!(virt.compilers.len(), 3);
    }

    #[test]
    fn manifests_without_a_seal_mode_field_decode_as_optimized() {
        // Run dirs persisted before the seal-time optimizer existed must
        // keep loading (and resuming) with the current default mode.
        let cfg = CampaignConfig::new(ApproachKind::Varity);
        let json = serde_json::to_string(&cfg).unwrap();
        let mut value = serde_json::parse(&json).unwrap();
        if let serde::Value::Obj(m) = &mut value {
            assert!(m.remove("seal_mode").is_some(), "seal_mode field serialized");
        } else {
            panic!("config serializes as an object");
        }
        let back: CampaignConfig = serde_json::from_value(&value).unwrap();
        assert_eq!(back.seal_mode, SealMode::Optimized);
        assert_eq!(back, cfg);

        let raw = CampaignConfig::new(ApproachKind::Varity).with_seal_mode(SealMode::Raw);
        let json = serde_json::to_string(&raw).unwrap();
        let back: CampaignConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.seal_mode, SealMode::Raw);
    }

    #[test]
    fn manifests_without_a_backend_field_decode_as_virtual() {
        // Run dirs persisted before the backend field existed must keep
        // loading (and therefore resuming) as virtual-backend campaigns.
        let cfg = CampaignConfig::new(ApproachKind::Varity);
        let json = serde_json::to_string(&cfg).unwrap();
        let mut value = serde_json::parse(&json).unwrap();
        if let serde::Value::Obj(m) = &mut value {
            assert!(m.remove("backend").is_some(), "backend field serialized");
        } else {
            panic!("config serializes as an object");
        }
        let back: CampaignConfig = serde_json::from_value(&value).unwrap();
        assert_eq!(back.backend, BackendSpec::Virtual);
        assert_eq!(back, cfg);
    }

    #[test]
    fn degenerate_external_specs_fail_validation() {
        let mut cfg = CampaignConfig::new(ApproachKind::Varity);
        cfg.backend = BackendSpec::External(ExternalBackendSpec::new(vec![]));
        assert!(cfg.validate().unwrap_err().contains("no compiler binaries"));
        let mut spec = ExternalBackendSpec::new(vec![(CompilerId::Gcc, "gcc".to_string())]);
        spec.timeout_ms = 0;
        // Keep >= 2 matrix compilers so the backend check is what fires.
        let mut cfg = CampaignConfig::new(ApproachKind::Varity);
        cfg.backend = BackendSpec::External(spec);
        assert!(cfg.validate().unwrap_err().contains("timeout"));
    }

    #[test]
    fn unprobed_binaries_still_build_a_toolchain() {
        let spec = ExternalBackendSpec::new(vec![(
            CompilerId::Gcc,
            "/nonexistent/llm4fp-no-such-compiler".to_string(),
        )]);
        let toolchain = spec.toolchain();
        let entry = toolchain.compiler_for(CompilerId::Gcc).expect("entry kept");
        assert_eq!(entry.version, "unprobed");
    }
}
