//! The campaign loop: Figure 1 of the paper, end to end.
//!
//! Each iteration selects a generation strategy, obtains a candidate program
//! (from the Varity generator or from the LLM client), pairs it with a fresh
//! input set, pushes it through the compilation driver and differential
//! tester, folds the outcome into the aggregates, and — when the program
//! triggered at least one inconsistency — adds it to the successful set that
//! Feedback-Based Mutation draws from.
//!
//! The loop is factored into a reusable [`CampaignRunner`] exposing a
//! per-program [`CampaignRunner::run_one`] stage. [`Campaign::run`] drives
//! it sequentially; `llm4fp-orchestrator` drives many runners concurrently
//! (one per shard) and merges their results. Two further capabilities make
//! the runner a *segmented* engine: [`CampaignRunner::checkpoint`] /
//! [`CampaignRunner::restore`] pause and resume a runner between programs
//! with bit-identical continuation (all RNG streams are snapshotted), and
//! [`CampaignRunner::inject_successful`] merges another shard's finds into
//! this runner's feedback pool — the two primitives the orchestrator's
//! epoch-based cross-shard feedback exchange is built from.
//!
//! ## RNG-stream contracts
//!
//! Determinism rests on two derivation rules:
//!
//! * every stateful component derives its stream from the campaign seed
//!   (`seed ^ 0x5eed_000N`), so a campaign is a pure function of its
//!   configuration;
//! * each program's *input set* is derived from the campaign seed XOR the
//!   program's structural hash — not from a shared sequential stream — so
//!   structurally identical programs always receive identical inputs. This
//!   is what makes the orchestrator's result cache semantically
//!   transparent: re-testing a duplicate program is guaranteed to
//!   reproduce the cached bits.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::prelude::*;
use serde::{Deserialize, Serialize};

use llm4fp_difftest::{
    record_outcome_metrics, Aggregates, CachedDiff, DiffTester, ExecBackend, ExecEngine,
    MatrixScratch, ProcessBudget, ResultCache,
};
use llm4fp_fpir::{program_hash, program_id, source_hash, to_compute_source, validate, Program};
use llm4fp_generator::{
    llm::SimulatedLlmConfig, InputGenerator, LlmClient, PromptBuilder, SimulatedLlm, Strategy,
    VarityGenerator,
};
use llm4fp_metrics::DiversityReport;
use llm4fp_telemetry::{keys, Telemetry};

use crate::config::{ApproachKind, BackendSpec, CampaignConfig};

/// How one program of the campaign was produced and what it did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramRecord {
    /// Sequence number within the campaign (0-based).
    pub index: usize,
    /// Structural program id (empty for generation failures).
    pub program_id: String,
    /// Strategy that produced the program.
    pub strategy: String,
    /// Whether generation produced a valid program at all.
    pub valid: bool,
    /// Number of inconsistencies this program triggered.
    pub inconsistencies: usize,
    /// Whether the program entered the successful set.
    pub successful: bool,
}

/// Everything a finished campaign reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// The configuration that produced this result.
    pub config: CampaignConfig,
    /// Aggregated differential-testing statistics (Tables 2–5, Figure 3).
    pub aggregates: Aggregates,
    /// Per-program records, in generation order.
    pub records: Vec<ProgramRecord>,
    /// Sources of all valid generated programs (used for diversity metrics
    /// and for EXPERIMENTS.md artifacts).
    pub sources: Vec<String>,
    /// Sources of the programs that triggered inconsistencies
    /// (structurally deduplicated).
    pub successful_sources: Vec<String>,
    /// Number of generation attempts that produced invalid programs.
    pub generation_failures: usize,
    /// Number of LLM calls made (0 for Varity).
    pub llm_calls: u64,
    /// Total simulated LLM API latency (what the wall clock would have spent
    /// waiting on the API; reported, not slept).
    pub simulated_llm_time: Duration,
    /// Wall-clock time actually spent generating, compiling and executing.
    pub pipeline_time: Duration,
}

impl CampaignResult {
    /// The headline inconsistency rate (Table 2).
    pub fn inconsistency_rate(&self) -> f64 {
        self.aggregates.inconsistency_rate()
    }

    /// Total number of inconsistencies (Table 2).
    pub fn inconsistencies(&self) -> u64 {
        self.aggregates.inconsistencies
    }

    /// Total reported time cost: pipeline time plus the latency the LLM API
    /// calls would have added (Table 2's time-cost column).
    pub fn total_time_cost(&self) -> Duration {
        self.pipeline_time + self.simulated_llm_time
    }

    /// Measure corpus diversity (average pairwise CodeBLEU + clone report).
    pub fn measure_diversity(&self) -> DiversityReport {
        DiversityReport::measure(
            &self.sources,
            self.config.threads.max(1),
            self.config.max_codebleu_pairs,
        )
    }
}

/// The successful-program set of the feedback loop. Insertion
/// deduplicates on the source text's structural hash: Feedback-Based
/// Mutation repeatedly re-triggers inconsistencies with the same program,
/// and without deduplication those copies pile up and bias subsequent
/// seed selection toward already-exploited programs.
///
/// The set distinguishes *own* finds (programs this campaign observed
/// triggering an inconsistency, added by [`SuccessfulSet::insert`]) from
/// *injected* entries (programs another shard found, merged in by
/// [`SuccessfulSet::merge`] at a cross-shard exchange barrier). Both feed
/// seed selection, but only own finds are reported in
/// [`CampaignResult::successful_sources`] — injected entries are reported
/// by the shard that found them, which keeps the merged campaign result
/// identical whether or not exchange ran.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct SuccessfulSet {
    sources: Vec<String>,
    seen: HashSet<u64>,
    own: Vec<bool>,
}

/// Serializable image of a [`SuccessfulSet`] (the `seen` index is
/// reconstructed on restore).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuccessfulSetSnapshot {
    pub sources: Vec<String>,
    pub own: Vec<bool>,
}

impl SuccessfulSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert an own find, returning `true` when it was structurally new.
    pub fn insert(&mut self, source: &str) -> bool {
        if self.seen.insert(source_hash(source)) {
            self.sources.push(source.to_string());
            self.own.push(true);
            true
        } else {
            false
        }
    }

    /// Merge externally found sources (in their given order), returning
    /// the number that were structurally new. Merging is associative,
    /// commutative up to ordering, and idempotent — the properties the
    /// exchange barrier's shard-order merge relies on.
    pub fn merge_sources(&mut self, sources: &[String]) -> usize {
        let mut added = 0;
        for source in sources {
            if self.seen.insert(source_hash(source)) {
                self.sources.push(source.clone());
                self.own.push(false);
                added += 1;
            }
        }
        added
    }

    /// Merge another set's entries (own and injected alike) as injected
    /// entries of this set.
    pub fn merge(&mut self, other: &SuccessfulSet) -> usize {
        self.merge_sources(&other.sources)
    }

    /// All sources (own + injected) in insertion order — the pool seed
    /// selection draws from.
    pub fn sources(&self) -> &[String] {
        &self.sources
    }

    /// The sources this set inserted itself, in insertion order.
    pub fn own_sources(&self) -> Vec<String> {
        self.sources
            .iter()
            .zip(&self.own)
            .filter(|(_, own)| **own)
            .map(|(s, _)| s.clone())
            .collect()
    }

    pub fn len(&self) -> usize {
        self.sources.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Structural membership test.
    pub fn contains(&self, source: &str) -> bool {
        self.seen.contains(&source_hash(source))
    }

    /// Serializable image of the set; [`SuccessfulSet::restore`] inverts.
    pub fn snapshot(&self) -> SuccessfulSetSnapshot {
        SuccessfulSetSnapshot { sources: self.sources.clone(), own: self.own.clone() }
    }

    /// Rebuild a set from a snapshot (restores insertion order, own flags
    /// and the structural-hash index).
    pub fn restore(snapshot: SuccessfulSetSnapshot) -> Self {
        let seen = snapshot.sources.iter().map(|s| source_hash(s)).collect();
        let mut own = snapshot.own;
        own.resize(snapshot.sources.len(), true);
        SuccessfulSet { sources: snapshot.sources, seen, own }
    }
}

/// The reusable per-program campaign engine. Create one with
/// [`CampaignRunner::new`], call [`CampaignRunner::run_one`] once per
/// program of the budget (in order), then [`CampaignRunner::finish`].
pub struct CampaignRunner {
    config: CampaignConfig,
    rng: StdRng,
    varity: VarityGenerator,
    llm: SimulatedLlm,
    prompt_builder: PromptBuilder,
    tester: DiffTester,
    comparisons_per_program: usize,
    input_seed: u64,
    cache: Option<Arc<ResultCache>>,
    /// Backend fingerprint scoping this runner's cache keys: entries from
    /// different backends (or different external toolchains) never mix.
    cache_scope: String,
    // The successful set is shared state of the feedback loop. A mutex
    // keeps the container ready for future parallel generation without
    // changing behaviour for the per-shard sequential loop used here.
    successful: Mutex<SuccessfulSet>,
    /// Seal + execution scratch reused across every program this runner
    /// tests (per-matrix construction was the last allocation hot spot of
    /// the shard worker loop). Not part of checkpoints — pure perf state.
    scratch: Mutex<MatrixScratch>,
    aggregates: Aggregates,
    records: Vec<ProgramRecord>,
    sources: Vec<String>,
    generation_failures: usize,
    simulated_llm_time: Duration,
    /// Wall-clock time spent inside [`CampaignRunner::run_one`] so far.
    /// Accumulated per program — not runner lifetime — so a runner paused
    /// at an exchange barrier (or idle while the pool serves other
    /// shards) doesn't book waiting time as pipeline cost, and a restored
    /// runner continues the count where the checkpoint left it.
    pipeline_time: Duration,
    /// Telemetry handle (disabled by default). Pure observation — never
    /// part of checkpoints, never consulted by the campaign logic — so
    /// results and resume streams are bit-identical with it on or off.
    telemetry: Telemetry,
}

/// Serializable image of a [`CampaignRunner`] paused between programs.
///
/// A checkpoint captures everything that is not a pure function of the
/// [`CampaignConfig`]: the three RNG streams (campaign, Varity, LLM), the
/// LLM call counter, the derived input seed, the successful set, and the
/// accumulated outputs. [`CampaignRunner::restore`] rebuilds a runner that
/// continues the exact program stream the checkpointed one would have run
/// — the primitive behind epoch-boundary pause/resume in the orchestrator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunnerCheckpoint {
    pub rng: Vec<u64>,
    pub varity_rng: Vec<u64>,
    pub llm_rng: Vec<u64>,
    pub llm_calls: u64,
    pub input_seed: u64,
    pub successful: SuccessfulSetSnapshot,
    pub aggregates: Aggregates,
    pub records: Vec<ProgramRecord>,
    pub sources: Vec<String>,
    pub generation_failures: usize,
    pub simulated_llm_time: Duration,
    pub pipeline_time: Duration,
}

impl RunnerCheckpoint {
    /// Merge externally found successful sources into the checkpointed
    /// feedback pool, exactly as [`CampaignRunner::inject_successful`]
    /// would on a live runner: structurally deduplicated, order
    /// preserved, injected entries flagged as not-own. Returns how many
    /// were new.
    ///
    /// Injection and checkpointing commute — the pool merge touches no
    /// RNG stream and no accumulated output — so a coordinator holding a
    /// checkpoint can perform the exchange-barrier injection itself and
    /// dispatch the updated checkpoint to whichever worker process (or
    /// machine) runs the next epoch segment. A runner restored from the
    /// result is bit-identical to one that ran [`Self`]-side injection
    /// before being checkpointed.
    pub fn inject_successful(&mut self, sources: &[String]) -> usize {
        let mut set = SuccessfulSet::restore(self.successful.clone());
        let added = set.merge_sources(sources);
        self.successful = set.snapshot();
        added
    }
}

impl CampaignRunner {
    /// Build a runner for one campaign configuration. Panics on an invalid
    /// configuration (mirroring [`Campaign::run`]).
    pub fn new(config: CampaignConfig) -> Self {
        config.validate().expect("invalid campaign configuration");
        let seed = config.seed;
        let mut tester = DiffTester::with_matrix(config.compilers.clone(), config.levels.clone())
            .with_threads(config.threads)
            .with_seal_mode(config.seal_mode);
        if let BackendSpec::External(spec) = &config.backend {
            tester = tester.with_backend(ExecBackend::External(Arc::new(spec.toolchain())));
        }
        let cache_scope = tester.backend_fingerprint();
        let comparisons_per_program = tester.comparisons_per_program();
        CampaignRunner {
            rng: StdRng::seed_from_u64(seed),
            varity: VarityGenerator::new(seed ^ 0x5eed_0001),
            llm: SimulatedLlm::with_config(
                seed ^ 0x5eed_0002,
                SimulatedLlmConfig {
                    sampling: config.sampling,
                    direct_prompt_invalid_rate: config.direct_prompt_invalid_rate,
                    ..SimulatedLlmConfig::default()
                },
            ),
            prompt_builder: PromptBuilder::new(config.precision),
            tester,
            comparisons_per_program,
            input_seed: seed ^ 0x5eed_0003,
            cache: None,
            cache_scope,
            successful: Mutex::new(SuccessfulSet::default()),
            scratch: Mutex::new(MatrixScratch::new()),
            aggregates: Aggregates::new(),
            records: Vec::with_capacity(config.programs),
            sources: Vec::new(),
            generation_failures: 0,
            simulated_llm_time: Duration::ZERO,
            pipeline_time: Duration::ZERO,
            telemetry: Telemetry::disabled(),
            config,
        }
    }

    /// Snapshot this runner between programs. Restoring the checkpoint
    /// (with the same configuration) continues the exact same stream; see
    /// [`RunnerCheckpoint`].
    pub fn checkpoint(&self) -> RunnerCheckpoint {
        let (llm_rng, llm_calls) = self.llm.state();
        RunnerCheckpoint {
            rng: self.rng.state().to_vec(),
            varity_rng: self.varity.rng_state().to_vec(),
            llm_rng: llm_rng.to_vec(),
            llm_calls,
            input_seed: self.input_seed,
            successful: self.successful.lock().snapshot(),
            aggregates: self.aggregates.clone(),
            records: self.records.clone(),
            sources: self.sources.clone(),
            generation_failures: self.generation_failures,
            simulated_llm_time: self.simulated_llm_time,
            pipeline_time: self.pipeline_time,
        }
    }

    /// Rebuild a runner from a checkpoint taken with the same
    /// configuration. The restored runner's subsequent [`Self::run_one`]
    /// calls, final [`Self::finish`] result, and further checkpoints are
    /// bit-identical to the uninterrupted runner's (pipeline time excepted
    /// — wall clocks are not replayable).
    pub fn restore(config: CampaignConfig, checkpoint: RunnerCheckpoint) -> Self {
        let mut runner = CampaignRunner::new(config);
        runner.rng = StdRng::from_state(rng_words(&checkpoint.rng));
        runner.varity.restore_rng_state(rng_words(&checkpoint.varity_rng));
        runner.llm.restore_state(rng_words(&checkpoint.llm_rng), checkpoint.llm_calls);
        runner.input_seed = checkpoint.input_seed;
        runner.successful = Mutex::new(SuccessfulSet::restore(checkpoint.successful));
        runner.aggregates = checkpoint.aggregates;
        runner.records = checkpoint.records;
        runner.sources = checkpoint.sources;
        runner.generation_failures = checkpoint.generation_failures;
        runner.simulated_llm_time = checkpoint.simulated_llm_time;
        runner.pipeline_time = checkpoint.pipeline_time;
        runner
    }

    /// Number of entries (own + injected) in the successful set.
    pub fn successful_len(&self) -> usize {
        self.successful.lock().len()
    }

    /// Clone the successful set's sources from position `start` on — the
    /// exchange barrier reads each epoch's newly found sources this way
    /// (injected entries sit below the caller's watermark by construction).
    pub fn successful_sources_from(&self, start: usize) -> Vec<String> {
        let set = self.successful.lock();
        set.sources()[start.min(set.len())..].to_vec()
    }

    /// Merge externally found successful sources into this runner's
    /// feedback pool (structurally deduplicated, order preserved).
    /// Returns how many were new. Subsequent feedback mutation draws from
    /// the union.
    pub fn inject_successful(&mut self, sources: &[String]) -> usize {
        self.successful.lock().merge_sources(sources)
    }

    /// Share a differential-testing result cache with this runner.
    /// Caching is semantically transparent (see the module docs on input
    /// derivation), so results are bit-identical with or without it.
    pub fn with_cache(mut self, cache: Arc<ResultCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Run differential tests on the reference tree-walking interpreter
    /// instead of the sealed bytecode VM. The two engines are pinned
    /// bit-identical, so campaign results do not change — this knob exists
    /// for A/B benchmarking and for re-verifying the pin at campaign scale.
    /// (A virtual-backend knob: it overrides any external backend.)
    pub fn with_reference_execution(mut self) -> Self {
        self.tester = self.tester.clone().with_engine(ExecEngine::Reference);
        self.cache_scope = self.tester.backend_fingerprint();
        self
    }

    /// Bound this runner's concurrent external process activity with a
    /// budget shared across shards (the orchestrator's process-pool
    /// knob). No effect on virtual campaigns.
    pub fn with_process_budget(mut self, budget: Arc<ProcessBudget>) -> Self {
        self.set_process_budget(budget);
        self
    }

    /// In-place form of [`CampaignRunner::with_process_budget`].
    pub fn set_process_budget(&mut self, budget: Arc<ProcessBudget>) {
        self.tester.process_budget = Some(budget);
    }

    /// Attach a telemetry handle (the orchestrator passes this runner's
    /// shard-lane handle). The handle reaches the differential tester
    /// too, so seal/execute spans and compute-level counters flow into
    /// the same lane. Telemetry is pure observation: it is absent from
    /// checkpoints and never alters RNG draws or results.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.set_telemetry(telemetry);
        self
    }

    /// In-place form of [`CampaignRunner::with_telemetry`].
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.tester.telemetry = telemetry.clone();
        self.telemetry = telemetry;
    }

    /// Override the seed that program input sets are derived from.
    ///
    /// The orchestrator runs each shard with a derived campaign seed
    /// (`parent_seed ^ shard_index`) but passes the *parent* seed here for
    /// every shard, so a program duplicated across shards receives
    /// identical inputs — the property that keeps a cross-shard result
    /// cache semantically transparent. (For shard 0 the derived and parent
    /// seeds coincide, preserving exact equality with the sequential
    /// driver.)
    pub fn with_input_seed(mut self, seed: u64) -> Self {
        self.input_seed = seed ^ 0x5eed_0003;
        self
    }

    /// The number of pairwise comparisons each program contributes to the
    /// inconsistency-rate denominator.
    pub fn comparisons_per_program(&self) -> usize {
        self.comparisons_per_program
    }

    /// Number of programs processed so far.
    pub fn programs_run(&self) -> usize {
        self.records.len()
    }

    /// Largest VM register file any sealed program prepared against this
    /// runner's reused execution scratch (0 until a virtual matrix ran —
    /// e.g. on the external backend). The orchestrator reports the
    /// per-run peak in `summary.json`.
    pub fn peak_register_file(&self) -> usize {
        self.scratch.lock().peak_regs()
    }

    /// Run one iteration of the campaign loop: generate a candidate,
    /// differential-test it, fold the outcome into the aggregates and the
    /// feedback set. Returns the record of the processed program.
    pub fn run_one(&mut self, index: usize) -> &ProgramRecord {
        let started = Instant::now();
        let _span = self.telemetry.span(keys::SPAN_PROGRAM);
        let (strategy_label, program) = self.generate_one();

        let Some(program) = program else {
            self.generation_failures += 1;
            self.telemetry.add(keys::GENERATION_FAILURES, 1);
            self.aggregates.add_result(
                &llm4fp_difftest::ProgramDiffResult {
                    program_id: String::new(),
                    outcomes: Vec::new(),
                    records: Vec::new(),
                    comparisons_performed: 0,
                },
                self.comparisons_per_program,
            );
            self.records.push(ProgramRecord {
                index,
                program_id: String::new(),
                strategy: strategy_label,
                valid: false,
                inconsistencies: 0,
                successful: false,
            });
            self.pipeline_time += started.elapsed();
            return self.records.last().expect("just pushed");
        };

        let id = program_id(&program);
        let CachedDiff { result, baseline } = self.test_program(&id, &program);
        // Campaign-level counters record what the program *contributes*
        // (cached or computed alike), which keeps them deterministic even
        // though cache hit/miss attribution is racy across workers.
        record_outcome_metrics(&self.telemetry, &result);
        self.aggregates.add_result(&result, self.comparisons_per_program);
        self.aggregates.add_baseline_comparisons(&baseline);

        let source = to_compute_source(&program);
        let triggered = result.triggered_inconsistency();
        if triggered {
            self.successful.lock().insert(&source);
        }
        self.records.push(ProgramRecord {
            index,
            program_id: id,
            strategy: strategy_label,
            valid: true,
            inconsistencies: result.records.len(),
            successful: triggered,
        });
        self.sources.push(source);
        self.pipeline_time += started.elapsed();
        self.records.last().expect("just pushed")
    }

    /// Differential-test one program, consulting the shared cache when one
    /// is attached. Inputs are a pure function of (campaign seed, program
    /// structure), so cached results are bit-identical to recomputation.
    /// Keys are scoped by the backend fingerprint: a hit on the external
    /// backend skips every process spawn of the duplicate's matrix; a
    /// virtual entry can never satisfy an external lookup or vice versa.
    fn test_program(&self, id: &str, program: &Program) -> CachedDiff {
        let key = self.cache.as_ref().map(|_| ResultCache::scoped_key(&self.cache_scope, id));
        if let (Some(cache), Some(key)) = (&self.cache, &key) {
            if let Some(cached) = cache.get(key) {
                return cached;
            }
        }
        let inputs = InputGenerator::new(self.input_seed ^ program_hash(program))
            .generate(program)
            .truncated(self.config.precision);
        let result = self.tester.run_with(program, &inputs, &mut self.scratch.lock());
        let baseline = self.tester.compare_vs_baseline(&result.outcomes);
        let computed = CachedDiff { result, baseline };
        if let (Some(cache), Some(key)) = (&self.cache, key) {
            cache.insert(key, computed.clone());
        }
        computed
    }

    /// Consume the runner and assemble the campaign result. Only the
    /// runner's *own* successful finds are reported — sources injected
    /// from other shards at exchange barriers are reported by the shard
    /// that found them.
    pub fn finish(self) -> CampaignResult {
        CampaignResult {
            config: self.config,
            aggregates: self.aggregates,
            records: self.records,
            sources: self.sources,
            successful_sources: self.successful.into_inner().own_sources(),
            generation_failures: self.generation_failures,
            llm_calls: self.llm.calls(),
            simulated_llm_time: self.simulated_llm_time,
            pipeline_time: self.pipeline_time,
        }
    }

    /// Produce one candidate program according to the configured approach.
    /// Returns the strategy label and `None` when generation failed
    /// (unparseable or invalid LLM output).
    fn generate_one(&mut self) -> (String, Option<Program>) {
        match self.config.approach {
            ApproachKind::Varity => ("varity".to_string(), Some(self.varity.generate())),
            ApproachKind::DirectPrompt => {
                let prompt = self.prompt_builder.direct_prompt();
                let response = self.llm.generate(&prompt);
                self.simulated_llm_time += response.simulated_latency;
                (Strategy::DirectPrompt.name().to_string(), parse_valid(&response.source))
            }
            ApproachKind::GrammarGuided => {
                let prompt = self.prompt_builder.grammar_based();
                let response = self.llm.generate(&prompt);
                self.simulated_llm_time += response.simulated_latency;
                (Strategy::GrammarBased.name().to_string(), parse_valid(&response.source))
            }
            ApproachKind::Llm4Fp => {
                // The first program always comes from Grammar-Based
                // Generation; afterwards the strategy is drawn with the
                // configured probability (0.3 grammar / 0.7 feedback).
                let seed_source = {
                    let set = self.successful.lock();
                    if set.sources.is_empty() || self.rng.gen_bool(self.config.grammar_probability)
                    {
                        None
                    } else {
                        set.sources.choose(&mut self.rng).cloned()
                    }
                };
                match seed_source {
                    None => {
                        let prompt = self.prompt_builder.grammar_based();
                        let response = self.llm.generate(&prompt);
                        self.simulated_llm_time += response.simulated_latency;
                        (Strategy::GrammarBased.name().to_string(), parse_valid(&response.source))
                    }
                    Some(seed) => {
                        let prompt = self.prompt_builder.feedback_mutation(&seed);
                        let response = self.llm.generate(&prompt);
                        self.simulated_llm_time += response.simulated_latency;
                        (
                            Strategy::FeedbackMutation.name().to_string(),
                            parse_valid(&response.source),
                        )
                    }
                }
            }
        }
    }
}

/// The campaign driver.
pub struct Campaign {
    config: CampaignConfig,
}

impl Campaign {
    pub fn new(config: CampaignConfig) -> Self {
        Campaign { config }
    }

    /// Run the whole campaign sequentially. Deterministic for a given
    /// configuration.
    pub fn run(&self) -> CampaignResult {
        let mut runner = CampaignRunner::new(self.config.clone());
        for index in 0..self.config.programs {
            runner.run_one(index);
        }
        runner.finish()
    }
}

/// Widen a checkpointed RNG state (serialized as a `Vec` because the
/// vendored serde shim has no fixed-size-array support) back to the four
/// xoshiro words, zero-padding defensively on corrupt input.
fn rng_words(words: &[u64]) -> [u64; 4] {
    let mut out = [0u64; 4];
    for (slot, word) in out.iter_mut().zip(words) {
        *slot = *word;
    }
    out
}

fn parse_valid(source: &str) -> Option<Program> {
    let program = llm4fp_fpir::parse_compute(source).ok()?;
    if validate(&program).is_empty() {
        Some(program)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(approach: ApproachKind, budget: usize) -> CampaignResult {
        Campaign::new(
            CampaignConfig::new(approach).with_budget(budget).with_seed(11).with_threads(2),
        )
        .run()
    }

    #[test]
    fn varity_campaign_runs_and_accounts_every_program() {
        let result = small(ApproachKind::Varity, 30);
        assert_eq!(result.aggregates.programs, 30);
        assert_eq!(result.aggregates.total_comparisons, 30 * 18);
        assert_eq!(result.records.len(), 30);
        assert_eq!(result.llm_calls, 0);
        assert_eq!(result.simulated_llm_time, Duration::ZERO);
        assert_eq!(result.sources.len() + result.generation_failures, 30);
        assert!(result.inconsistency_rate() <= 1.0);
    }

    #[test]
    fn llm4fp_campaign_builds_a_successful_set_and_uses_feedback() {
        let result = small(ApproachKind::Llm4Fp, 40);
        assert_eq!(result.aggregates.programs, 40);
        assert!(result.llm_calls >= 40);
        assert!(result.simulated_llm_time > Duration::ZERO);
        assert!(!result.successful_sources.is_empty(), "no program triggered inconsistencies");
        // Once the successful set is non-empty, feedback mutation is used.
        assert!(
            result.records.iter().any(|r| r.strategy == "feedback-mutation"),
            "feedback strategy never selected"
        );
        // Successful records are exactly those with inconsistencies.
        for r in &result.records {
            assert_eq!(r.successful, r.inconsistencies > 0);
        }
    }

    #[test]
    fn campaigns_are_deterministic_for_a_seed() {
        let a = small(ApproachKind::GrammarGuided, 12);
        let b = small(ApproachKind::GrammarGuided, 12);
        assert_eq!(a.aggregates.inconsistencies, b.aggregates.inconsistencies);
        assert_eq!(a.sources, b.sources);
        assert_eq!(a.generation_failures, b.generation_failures);
    }

    #[test]
    fn llm_approaches_detect_more_than_varity_on_equal_budgets() {
        // The central RQ1 ordering on a small budget: LLM4FP >= Grammar-Guided
        // and both above Varity. (Small budgets keep this test fast; the
        // bench binaries reproduce the full-scale numbers.)
        let varity = small(ApproachKind::Varity, 40);
        let grammar = small(ApproachKind::GrammarGuided, 40);
        let llm4fp = small(ApproachKind::Llm4Fp, 40);
        assert!(
            grammar.inconsistency_rate() > varity.inconsistency_rate(),
            "grammar {} vs varity {}",
            grammar.inconsistency_rate(),
            varity.inconsistency_rate()
        );
        assert!(
            llm4fp.inconsistency_rate() >= grammar.inconsistency_rate() * 0.8,
            "llm4fp {} vs grammar {}",
            llm4fp.inconsistency_rate(),
            grammar.inconsistency_rate()
        );
        assert!(llm4fp.inconsistency_rate() > varity.inconsistency_rate());
    }

    #[test]
    fn direct_prompt_counts_generation_failures_in_the_denominator() {
        let mut config = CampaignConfig::new(ApproachKind::DirectPrompt)
            .with_budget(30)
            .with_seed(5)
            .with_threads(2);
        config.direct_prompt_invalid_rate = 0.5;
        let result = Campaign::new(config).run();
        assert!(result.generation_failures > 0);
        assert_eq!(result.aggregates.programs, 30);
        assert_eq!(result.aggregates.total_comparisons, 30 * 18);
        assert_eq!(result.sources.len(), 30 - result.generation_failures);
    }

    #[test]
    fn diversity_report_is_computable_from_a_campaign() {
        let result = small(ApproachKind::Llm4Fp, 12);
        let report = result.measure_diversity();
        assert_eq!(report.programs, result.sources.len());
        assert!(report.avg_codebleu > 0.0 && report.avg_codebleu < 1.0);
    }

    #[test]
    fn total_time_cost_includes_simulated_latency() {
        let result = small(ApproachKind::GrammarGuided, 5);
        assert!(result.total_time_cost() >= result.simulated_llm_time);
        assert!(result.simulated_llm_time >= Duration::from_secs(5 * 9));
    }

    #[test]
    fn successful_set_deduplicates_structural_copies() {
        let mut set = SuccessfulSet::default();
        assert!(set.insert("void compute(double x) { comp = x; }"));
        assert!(!set.insert("void compute(double x) { comp = x; }"));
        assert!(set.insert("void compute(double y) { comp = y + 1.0; }"));
        assert_eq!(set.len(), 2);
        // A campaign's successful set never contains duplicates.
        let result = small(ApproachKind::Llm4Fp, 60);
        let mut unique: Vec<u64> =
            result.successful_sources.iter().map(|s| source_hash(s)).collect();
        let before = unique.len();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), before, "successful set contains duplicates");
    }

    #[test]
    fn runner_stages_match_the_one_shot_driver() {
        let config =
            CampaignConfig::new(ApproachKind::Llm4Fp).with_budget(25).with_seed(7).with_threads(2);
        let mut runner = CampaignRunner::new(config.clone());
        for index in 0..config.programs {
            let record = runner.run_one(index);
            assert_eq!(record.index, index);
        }
        assert_eq!(runner.programs_run(), config.programs);
        let staged = runner.finish();
        let oneshot = Campaign::new(config).run();
        assert_eq!(staged.records, oneshot.records);
        assert_eq!(staged.sources, oneshot.sources);
        assert_eq!(staged.aggregates, oneshot.aggregates);
        assert_eq!(staged.successful_sources, oneshot.successful_sources);
        assert_eq!(staged.llm_calls, oneshot.llm_calls);
    }

    #[test]
    fn successful_set_tracks_own_vs_injected_and_round_trips_snapshots() {
        let mut set = SuccessfulSet::new();
        set.insert("void compute(double x) { comp = x; }");
        let injected = vec![
            "void compute(double y) { comp = y * 2.0; }".to_string(),
            "void compute(double x) { comp = x; }".to_string(), // structural dup of own find
        ];
        assert_eq!(set.merge_sources(&injected), 1);
        assert_eq!(set.len(), 2);
        assert_eq!(set.own_sources(), vec!["void compute(double x) { comp = x; }".to_string()]);
        assert!(set.contains("void compute(double y) { comp = y * 2.0; }"));
        let restored = SuccessfulSet::restore(set.snapshot());
        assert_eq!(restored, set);
        // The restored hash index still deduplicates.
        let mut restored = restored;
        assert!(!restored.insert("void compute(double y) { comp = y * 2.0; }"));
    }

    #[test]
    fn checkpointed_runners_continue_the_exact_stream() {
        let config =
            CampaignConfig::new(ApproachKind::Llm4Fp).with_budget(30).with_seed(19).with_threads(2);
        // Uninterrupted reference.
        let mut reference = CampaignRunner::new(config.clone());
        for index in 0..config.programs {
            reference.run_one(index);
        }
        let reference = reference.finish();
        // Checkpoint mid-run (twice, to cover chained checkpoints), then
        // restore and continue.
        let mut runner = CampaignRunner::new(config.clone());
        for index in 0..10 {
            runner.run_one(index);
        }
        let mut runner = CampaignRunner::restore(config.clone(), runner.checkpoint());
        for index in 10..20 {
            runner.run_one(index);
        }
        let checkpoint = runner.checkpoint();
        assert_eq!(checkpoint.records.len(), 20);
        let mut runner = CampaignRunner::restore(config.clone(), checkpoint);
        for index in 20..config.programs {
            runner.run_one(index);
        }
        let resumed = runner.finish();
        assert_eq!(resumed.records, reference.records);
        assert_eq!(resumed.sources, reference.sources);
        assert_eq!(resumed.successful_sources, reference.successful_sources);
        assert_eq!(resumed.aggregates, reference.aggregates);
        assert_eq!(resumed.llm_calls, reference.llm_calls);
        assert_eq!(resumed.simulated_llm_time, reference.simulated_llm_time);
    }

    #[test]
    fn checkpoint_side_injection_commutes_with_runner_side_injection() {
        // The out-of-process exchange barrier: the coordinator injects
        // the global pool into a stored checkpoint instead of a live
        // runner. Both orders must produce bit-identical continuations.
        let config =
            CampaignConfig::new(ApproachKind::Llm4Fp).with_budget(24).with_seed(31).with_threads(2);
        let pool = vec![
            "void compute(double q) { comp = q / 3.0; }".to_string(),
            "void compute(double z) { comp = z - 0.5; }".to_string(),
        ];
        let drive = |mut runner: CampaignRunner, from: usize| {
            for index in from..config.programs {
                runner.run_one(index);
            }
            runner.finish()
        };
        // Runner-side: run half, inject live, checkpoint, continue.
        let mut live = CampaignRunner::new(config.clone());
        for index in 0..12 {
            live.run_one(index);
        }
        assert_eq!(live.inject_successful(&pool), 2);
        let live_checkpoint = live.checkpoint();
        // Coordinator-side: checkpoint first, inject into the snapshot.
        let mut coordinator = CampaignRunner::new(config.clone());
        for index in 0..12 {
            coordinator.run_one(index);
        }
        let mut stored = coordinator.checkpoint();
        assert_eq!(stored.inject_successful(&pool), 2);
        // Wall clocks are not replayable; everything else must commute.
        let mut live_checkpoint = live_checkpoint;
        live_checkpoint.pipeline_time = Duration::ZERO;
        stored.pipeline_time = Duration::ZERO;
        assert_eq!(stored, live_checkpoint, "injection must commute with checkpointing");
        // Injection is idempotent on the snapshot, like on the live set.
        assert_eq!(stored.inject_successful(&pool), 0);
        let a = drive(CampaignRunner::restore(config.clone(), live_checkpoint), 12);
        let b = drive(CampaignRunner::restore(config.clone(), stored), 12);
        assert_eq!(a.records, b.records);
        assert_eq!(a.successful_sources, b.successful_sources);
        assert_eq!(a.aggregates, b.aggregates);
    }

    #[test]
    fn injected_sources_feed_selection_but_not_reported_finds() {
        let config =
            CampaignConfig::new(ApproachKind::Llm4Fp).with_budget(12).with_seed(23).with_threads(2);
        let mut runner = CampaignRunner::new(config.clone());
        let foreign = "void compute(double q) { comp = q / 3.0; }".to_string();
        assert_eq!(runner.inject_successful(std::slice::from_ref(&foreign)), 1);
        assert_eq!(runner.successful_len(), 1);
        // The injected source is visible to seed selection...
        assert_eq!(runner.successful_sources_from(0), vec![foreign.clone()]);
        for index in 0..config.programs {
            runner.run_one(index);
        }
        let result = runner.finish();
        // ...but never reported as this campaign's own find.
        assert!(!result.successful_sources.contains(&foreign));
    }

    #[test]
    fn sealed_and_reference_campaigns_agree_bit_for_bit() {
        // Campaign-scale check of the VM ≡ interpreter pin: the whole
        // result (records, aggregates, successful sets) is identical
        // whichever execution back end runs the matrix.
        let config =
            CampaignConfig::new(ApproachKind::Llm4Fp).with_budget(40).with_seed(13).with_threads(1);
        let mut reference_runner = CampaignRunner::new(config.clone()).with_reference_execution();
        for index in 0..config.programs {
            reference_runner.run_one(index);
        }
        let reference = reference_runner.finish();
        let sealed = Campaign::new(config).run();
        assert_eq!(sealed.records, reference.records);
        assert_eq!(sealed.aggregates, reference.aggregates);
        assert_eq!(sealed.sources, reference.sources);
        assert_eq!(sealed.successful_sources, reference.successful_sources);
    }

    #[test]
    fn seal_optimizer_on_and_off_campaigns_agree_bit_for_bit() {
        // The seal-time peephole optimizer is a pure performance knob:
        // whole campaign results are identical with `SealMode::Raw`.
        use llm4fp_compiler::SealMode;
        let config =
            CampaignConfig::new(ApproachKind::Llm4Fp).with_budget(30).with_seed(17).with_threads(2);
        let optimized = Campaign::new(config.clone()).run();
        let raw = Campaign::new(config.with_seal_mode(SealMode::Raw)).run();
        assert_eq!(optimized.records, raw.records);
        assert_eq!(optimized.aggregates, raw.aggregates);
        assert_eq!(optimized.sources, raw.sources);
        assert_eq!(optimized.successful_sources, raw.successful_sources);
    }

    #[test]
    fn runners_report_the_peak_register_file() {
        let config =
            CampaignConfig::new(ApproachKind::Varity).with_budget(10).with_seed(3).with_threads(2);
        let mut runner = CampaignRunner::new(config.clone());
        assert_eq!(runner.peak_register_file(), 0, "no matrix has run yet");
        for index in 0..config.programs {
            runner.run_one(index);
        }
        let peak = runner.peak_register_file();
        assert!(peak > 0, "virtual campaigns must track the register file");
        // The reference engine never touches the VM scratch.
        let mut reference = CampaignRunner::new(config).with_reference_execution();
        reference.run_one(0);
        assert_eq!(reference.peak_register_file(), 0);
    }

    #[test]
    #[cfg(unix)]
    fn external_campaigns_are_deterministic_and_cache_hits_skip_process_spawns() {
        use crate::config::ExternalBackendSpec;

        let dir = std::env::temp_dir()
            .join("llm4fp-campaign-tests")
            .join(format!("extcc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let pair = llm4fp_extcc::fakecc::install_pair(&dir).expect("install fakecc");
        let spec = ExternalBackendSpec::new(pair);
        // Direct-Prompt is the duplicate-heavy regime: unguided sampling
        // repeats knowledge-base programs outright.
        let config = CampaignConfig::new(ApproachKind::DirectPrompt)
            .with_budget(12)
            .with_seed(9)
            .with_threads(1)
            .with_backend(BackendSpec::External(spec));
        assert_eq!(config.compilers.len(), 2, "matrix restricted to the fake toolchain");
        let configs_per_program = config.compilers.len() * config.levels.len();

        // External campaigns are a pure function of (config, toolchain).
        let reference = Campaign::new(config.clone()).run();
        let again = Campaign::new(config.clone()).run();
        assert_eq!(reference.records, again.records);
        assert_eq!(reference.aggregates, again.aggregates);
        assert!(
            reference.aggregates.inconsistencies > 0,
            "fake personalities must disagree at non-strict levels"
        );

        // A cached run is bit-identical, and every miss costs exactly one
        // compiler spawn per configuration while every hit costs none.
        let cache = Arc::new(ResultCache::new());
        let compiles_before = llm4fp_extcc::fakecc::compile_count(&dir);
        let mut cached_runner = CampaignRunner::new(config.clone()).with_cache(Arc::clone(&cache));
        for index in 0..config.programs {
            cached_runner.run_one(index);
        }
        let cached = cached_runner.finish();
        assert_eq!(cached.records, reference.records);
        assert_eq!(cached.aggregates, reference.aggregates);
        let stats = cache.stats();
        let compiles_first = llm4fp_extcc::fakecc::compile_count(&dir) - compiles_before;
        assert_eq!(
            compiles_first,
            stats.misses * configs_per_program as u64,
            "every cache miss compiles the full matrix once"
        );

        // Re-running the identical campaign against the shared cache hits
        // on every valid program: zero further process spawns.
        let compiles_before_second = llm4fp_extcc::fakecc::compile_count(&dir);
        let runs_before_second = llm4fp_extcc::fakecc::run_count(&dir);
        let mut second_runner = CampaignRunner::new(config.clone()).with_cache(Arc::clone(&cache));
        for index in 0..config.programs {
            second_runner.run_one(index);
        }
        let second = second_runner.finish();
        assert_eq!(second.records, reference.records);
        assert_eq!(llm4fp_extcc::fakecc::compile_count(&dir), compiles_before_second);
        assert_eq!(llm4fp_extcc::fakecc::run_count(&dir), runs_before_second);
        assert_eq!(cache.stats().hits, stats.hits + (stats.hits + stats.misses));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cached_and_uncached_campaigns_agree_bit_for_bit() {
        let config =
            CampaignConfig::new(ApproachKind::Llm4Fp).with_budget(30).with_seed(3).with_threads(2);
        let cache = Arc::new(ResultCache::new());
        let mut cached_runner = CampaignRunner::new(config.clone()).with_cache(Arc::clone(&cache));
        for index in 0..config.programs {
            cached_runner.run_one(index);
        }
        let cached = cached_runner.finish();
        let plain = Campaign::new(config).run();
        assert_eq!(cached.records, plain.records);
        assert_eq!(cached.aggregates, plain.aggregates);
        assert_eq!(cached.sources, plain.sources);
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, cached.sources.len() as u64);
    }
}
