//! The campaign loop: Figure 1 of the paper, end to end.
//!
//! Each iteration selects a generation strategy, obtains a candidate program
//! (from the Varity generator or from the LLM client), pairs it with a fresh
//! input set, pushes it through the compilation driver and differential
//! tester, folds the outcome into the aggregates, and — when the program
//! triggered at least one inconsistency — adds it to the successful set that
//! Feedback-Based Mutation draws from.

use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::prelude::*;
use serde::{Deserialize, Serialize};

use llm4fp_difftest::{Aggregates, DiffTester};
use llm4fp_fpir::{program_id, to_compute_source, validate, Program};
use llm4fp_generator::{
    llm::SimulatedLlmConfig, InputGenerator, LlmClient, PromptBuilder, SimulatedLlm, Strategy,
    VarityGenerator,
};
use llm4fp_metrics::DiversityReport;

use crate::config::{ApproachKind, CampaignConfig};

/// How one program of the campaign was produced and what it did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramRecord {
    /// Sequence number within the campaign (0-based).
    pub index: usize,
    /// Structural program id (empty for generation failures).
    pub program_id: String,
    /// Strategy that produced the program.
    pub strategy: String,
    /// Whether generation produced a valid program at all.
    pub valid: bool,
    /// Number of inconsistencies this program triggered.
    pub inconsistencies: usize,
    /// Whether the program entered the successful set.
    pub successful: bool,
}

/// Everything a finished campaign reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// The configuration that produced this result.
    pub config: CampaignConfig,
    /// Aggregated differential-testing statistics (Tables 2–5, Figure 3).
    pub aggregates: Aggregates,
    /// Per-program records, in generation order.
    pub records: Vec<ProgramRecord>,
    /// Sources of all valid generated programs (used for diversity metrics
    /// and for EXPERIMENTS.md artifacts).
    pub sources: Vec<String>,
    /// Sources of the programs that triggered inconsistencies.
    pub successful_sources: Vec<String>,
    /// Number of generation attempts that produced invalid programs.
    pub generation_failures: usize,
    /// Number of LLM calls made (0 for Varity).
    pub llm_calls: u64,
    /// Total simulated LLM API latency (what the wall clock would have spent
    /// waiting on the API; reported, not slept).
    pub simulated_llm_time: Duration,
    /// Wall-clock time actually spent generating, compiling and executing.
    pub pipeline_time: Duration,
}

impl CampaignResult {
    /// The headline inconsistency rate (Table 2).
    pub fn inconsistency_rate(&self) -> f64 {
        self.aggregates.inconsistency_rate()
    }

    /// Total number of inconsistencies (Table 2).
    pub fn inconsistencies(&self) -> u64 {
        self.aggregates.inconsistencies
    }

    /// Total reported time cost: pipeline time plus the latency the LLM API
    /// calls would have added (Table 2's time-cost column).
    pub fn total_time_cost(&self) -> Duration {
        self.pipeline_time + self.simulated_llm_time
    }

    /// Measure corpus diversity (average pairwise CodeBLEU + clone report).
    pub fn measure_diversity(&self) -> DiversityReport {
        DiversityReport::measure(
            &self.sources,
            self.config.threads.max(1),
            self.config.max_codebleu_pairs,
        )
    }
}

/// The campaign driver.
pub struct Campaign {
    config: CampaignConfig,
}

impl Campaign {
    pub fn new(config: CampaignConfig) -> Self {
        Campaign { config }
    }

    /// Run the whole campaign. Deterministic for a given configuration.
    pub fn run(&self) -> CampaignResult {
        self.config.validate().expect("invalid campaign configuration");
        let cfg = &self.config;
        let start = Instant::now();

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut varity = VarityGenerator::new(cfg.seed ^ 0x5eed_0001);
        let mut llm = SimulatedLlm::with_config(
            cfg.seed ^ 0x5eed_0002,
            SimulatedLlmConfig {
                sampling: cfg.sampling,
                direct_prompt_invalid_rate: cfg.direct_prompt_invalid_rate,
                ..SimulatedLlmConfig::default()
            },
        );
        let mut input_gen = InputGenerator::new(cfg.seed ^ 0x5eed_0003);
        let prompt_builder = PromptBuilder::new(cfg.precision);
        let tester = DiffTester::with_matrix(cfg.compilers.clone(), cfg.levels.clone())
            .with_threads(cfg.threads);
        let comparisons_per_program = tester.comparisons_per_program();

        // The successful set is shared state of the feedback loop. A mutex
        // keeps the container ready for future parallel generation without
        // changing behaviour for the sequential loop used here.
        let successful: Mutex<Vec<String>> = Mutex::new(Vec::new());

        let mut aggregates = Aggregates::new();
        let mut records = Vec::with_capacity(cfg.programs);
        let mut sources = Vec::new();
        let mut generation_failures = 0usize;
        let mut simulated_llm_time = Duration::ZERO;

        for index in 0..cfg.programs {
            let (strategy_label, program) = self.generate_one(
                &mut rng,
                &mut varity,
                &mut llm,
                &prompt_builder,
                &successful,
                &mut simulated_llm_time,
            );

            let Some(program) = program else {
                generation_failures += 1;
                aggregates.add_result(
                    &llm4fp_difftest::ProgramDiffResult {
                        program_id: String::new(),
                        outcomes: Vec::new(),
                        records: Vec::new(),
                        comparisons_performed: 0,
                    },
                    comparisons_per_program,
                );
                records.push(ProgramRecord {
                    index,
                    program_id: String::new(),
                    strategy: strategy_label,
                    valid: false,
                    inconsistencies: 0,
                    successful: false,
                });
                continue;
            };

            let inputs = input_gen.generate(&program).truncated(cfg.precision);
            let result = tester.run(&program, &inputs);
            let baseline = tester.compare_vs_baseline(&result.outcomes);
            aggregates.add_result(&result, comparisons_per_program);
            aggregates.add_baseline_comparisons(&baseline);

            let source = to_compute_source(&program);
            let triggered = result.triggered_inconsistency();
            if triggered {
                successful.lock().push(source.clone());
            }
            records.push(ProgramRecord {
                index,
                program_id: program_id(&program),
                strategy: strategy_label,
                valid: true,
                inconsistencies: result.records.len(),
                successful: triggered,
            });
            sources.push(source);
        }

        let successful_sources = successful.into_inner();
        CampaignResult {
            config: cfg.clone(),
            aggregates,
            records,
            sources,
            successful_sources,
            generation_failures,
            llm_calls: llm.calls(),
            simulated_llm_time,
            pipeline_time: start.elapsed(),
        }
    }

    /// Produce one candidate program according to the configured approach.
    /// Returns the strategy label and `None` when generation failed
    /// (unparseable or invalid LLM output).
    fn generate_one(
        &self,
        rng: &mut StdRng,
        varity: &mut VarityGenerator,
        llm: &mut SimulatedLlm,
        prompts: &PromptBuilder,
        successful: &Mutex<Vec<String>>,
        simulated_llm_time: &mut Duration,
    ) -> (String, Option<Program>) {
        let cfg = &self.config;
        match cfg.approach {
            ApproachKind::Varity => ("varity".to_string(), Some(varity.generate())),
            ApproachKind::DirectPrompt => {
                let prompt = prompts.direct_prompt();
                let response = llm.generate(&prompt);
                *simulated_llm_time += response.simulated_latency;
                (Strategy::DirectPrompt.name().to_string(), parse_valid(&response.source))
            }
            ApproachKind::GrammarGuided => {
                let prompt = prompts.grammar_based();
                let response = llm.generate(&prompt);
                *simulated_llm_time += response.simulated_latency;
                (Strategy::GrammarBased.name().to_string(), parse_valid(&response.source))
            }
            ApproachKind::Llm4Fp => {
                // The first program always comes from Grammar-Based
                // Generation; afterwards the strategy is drawn with the
                // configured probability (0.3 grammar / 0.7 feedback).
                let seed_source = {
                    let set = successful.lock();
                    if set.is_empty() || rng.gen_bool(cfg.grammar_probability) {
                        None
                    } else {
                        set.choose(rng).cloned()
                    }
                };
                match seed_source {
                    None => {
                        let prompt = prompts.grammar_based();
                        let response = llm.generate(&prompt);
                        *simulated_llm_time += response.simulated_latency;
                        (Strategy::GrammarBased.name().to_string(), parse_valid(&response.source))
                    }
                    Some(seed) => {
                        let prompt = prompts.feedback_mutation(&seed);
                        let response = llm.generate(&prompt);
                        *simulated_llm_time += response.simulated_latency;
                        (
                            Strategy::FeedbackMutation.name().to_string(),
                            parse_valid(&response.source),
                        )
                    }
                }
            }
        }
    }
}

fn parse_valid(source: &str) -> Option<Program> {
    let program = llm4fp_fpir::parse_compute(source).ok()?;
    if validate(&program).is_empty() {
        Some(program)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(approach: ApproachKind, budget: usize) -> CampaignResult {
        Campaign::new(CampaignConfig::new(approach).with_budget(budget).with_seed(11).with_threads(2))
            .run()
    }

    #[test]
    fn varity_campaign_runs_and_accounts_every_program() {
        let result = small(ApproachKind::Varity, 30);
        assert_eq!(result.aggregates.programs, 30);
        assert_eq!(result.aggregates.total_comparisons, 30 * 18);
        assert_eq!(result.records.len(), 30);
        assert_eq!(result.llm_calls, 0);
        assert_eq!(result.simulated_llm_time, Duration::ZERO);
        assert_eq!(result.sources.len() + result.generation_failures, 30);
        assert!(result.inconsistency_rate() <= 1.0);
    }

    #[test]
    fn llm4fp_campaign_builds_a_successful_set_and_uses_feedback() {
        let result = small(ApproachKind::Llm4Fp, 40);
        assert_eq!(result.aggregates.programs, 40);
        assert!(result.llm_calls >= 40);
        assert!(result.simulated_llm_time > Duration::ZERO);
        assert!(!result.successful_sources.is_empty(), "no program triggered inconsistencies");
        // Once the successful set is non-empty, feedback mutation is used.
        assert!(
            result.records.iter().any(|r| r.strategy == "feedback-mutation"),
            "feedback strategy never selected"
        );
        // Successful records are exactly those with inconsistencies.
        for r in &result.records {
            assert_eq!(r.successful, r.inconsistencies > 0);
        }
    }

    #[test]
    fn campaigns_are_deterministic_for_a_seed() {
        let a = small(ApproachKind::GrammarGuided, 12);
        let b = small(ApproachKind::GrammarGuided, 12);
        assert_eq!(a.aggregates.inconsistencies, b.aggregates.inconsistencies);
        assert_eq!(a.sources, b.sources);
        assert_eq!(a.generation_failures, b.generation_failures);
    }

    #[test]
    fn llm_approaches_detect_more_than_varity_on_equal_budgets() {
        // The central RQ1 ordering on a small budget: LLM4FP >= Grammar-Guided
        // and both above Varity. (Small budgets keep this test fast; the
        // bench binaries reproduce the full-scale numbers.)
        let varity = small(ApproachKind::Varity, 40);
        let grammar = small(ApproachKind::GrammarGuided, 40);
        let llm4fp = small(ApproachKind::Llm4Fp, 40);
        assert!(
            grammar.inconsistency_rate() > varity.inconsistency_rate(),
            "grammar {} vs varity {}",
            grammar.inconsistency_rate(),
            varity.inconsistency_rate()
        );
        assert!(
            llm4fp.inconsistency_rate() >= grammar.inconsistency_rate() * 0.8,
            "llm4fp {} vs grammar {}",
            llm4fp.inconsistency_rate(),
            grammar.inconsistency_rate()
        );
        assert!(llm4fp.inconsistency_rate() > varity.inconsistency_rate());
    }

    #[test]
    fn direct_prompt_counts_generation_failures_in_the_denominator() {
        let mut config = CampaignConfig::new(ApproachKind::DirectPrompt)
            .with_budget(30)
            .with_seed(5)
            .with_threads(2);
        config.direct_prompt_invalid_rate = 0.5;
        let result = Campaign::new(config).run();
        assert!(result.generation_failures > 0);
        assert_eq!(result.aggregates.programs, 30);
        assert_eq!(result.aggregates.total_comparisons, 30 * 18);
        assert_eq!(result.sources.len(), 30 - result.generation_failures);
    }

    #[test]
    fn diversity_report_is_computable_from_a_campaign() {
        let result = small(ApproachKind::Llm4Fp, 12);
        let report = result.measure_diversity();
        assert_eq!(report.programs, result.sources.len());
        assert!(report.avg_codebleu > 0.0 && report.avg_codebleu < 1.0);
    }

    #[test]
    fn total_time_cost_includes_simulated_latency() {
        let result = small(ApproachKind::GrammarGuided, 5);
        assert!(result.total_time_cost() >= result.simulated_llm_time);
        assert!(result.simulated_llm_time >= Duration::from_secs(5 * 9));
    }
}
