//! Rendering campaign results in the layout of the paper's tables and
//! figures.
//!
//! Each function takes finished [`CampaignResult`]s and returns the table as
//! plain text (fixed-width columns); the experiment binaries in
//! `llm4fp-bench` print these and also persist the underlying numbers as
//! JSON for EXPERIMENTS.md.

use std::fmt::Write as _;
use std::time::Duration;

use llm4fp_compiler::{CompilerId, OptLevel};
use llm4fp_difftest::{InconsistencyKind, ValueClass};
use llm4fp_metrics::DiversityReport;

use crate::campaign::CampaignResult;

/// Format a duration as `hh:mm:ss` (the unit Table 2 uses).
pub fn format_hms(d: Duration) -> String {
    let secs = d.as_secs();
    format!("{:02}:{:02}:{:02}", secs / 3600, (secs % 3600) / 60, secs % 60)
}

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    pub approach: String,
    pub inconsistency_rate: f64,
    pub inconsistencies: u64,
    pub time_cost: Duration,
    pub codebleu: f64,
}

impl Table2Row {
    /// Build the row for one campaign (computes the diversity report, which
    /// is the expensive part).
    pub fn from_campaign(result: &CampaignResult) -> Table2Row {
        let diversity = result.measure_diversity();
        Self::from_parts(result, &diversity)
    }

    /// Build the row when the diversity report is already available.
    pub fn from_parts(result: &CampaignResult, diversity: &DiversityReport) -> Table2Row {
        Table2Row {
            approach: result.config.approach.name().to_string(),
            inconsistency_rate: result.inconsistency_rate(),
            inconsistencies: result.inconsistencies(),
            time_cost: result.total_time_cost(),
            codebleu: diversity.avg_codebleu,
        }
    }
}

/// Render Table 2: approach comparison (inconsistency rate, count, time
/// cost, CodeBLEU).
pub fn table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>12} {:>10} {:>12} {:>10}",
        "Approach", "Incons. Rate", "# Incons.", "Time Cost", "CodeBLEU"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:<16} {:>11.2}% {:>10} {:>12} {:>10.4}",
            row.approach,
            100.0 * row.inconsistency_rate,
            row.inconsistencies,
            format_hms(row.time_cost),
            row.codebleu
        );
    }
    out
}

/// Render Figure 3: inconsistency counts per kind for two approaches
/// (Varity vs LLM4FP in the paper).
pub fn figure3(varity: &CampaignResult, llm4fp: &CampaignResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>10} {:>10}",
        "Kind",
        varity.config.approach.name(),
        llm4fp.config.approach.name()
    );
    for kind in InconsistencyKind::figure3_order() {
        let _ = writeln!(
            out,
            "{:<16} {:>10} {:>10}",
            kind.label(),
            varity.aggregates.kinds.count(kind),
            llm4fp.aggregates.kinds.count(kind)
        );
    }
    let _ = writeln!(
        out,
        "{:<16} {:>10} {:>10}",
        "Total", varity.aggregates.inconsistencies, llm4fp.aggregates.inconsistencies
    );
    out
}

/// The five kind columns of Table 3.
fn table3_kinds() -> Vec<InconsistencyKind> {
    use ValueClass::*;
    vec![
        InconsistencyKind::new(Real, Real),
        InconsistencyKind::new(Real, Zero),
        InconsistencyKind::new(Real, PosInf),
        InconsistencyKind::new(Real, NegInf),
        InconsistencyKind::new(PosInf, NegInf),
    ]
}

/// Render Table 3: inconsistency counts per kind across optimization levels
/// for one approach (LLM4FP in the paper).
pub fn table3(result: &CampaignResult) -> String {
    let mut out = String::new();
    let kinds = table3_kinds();
    let header: Vec<String> = kinds.iter().map(|k| k.label()).collect();
    let _ = writeln!(out, "{:<14} {}", "Level", header.join("  "));
    for level in &result.config.levels {
        let cells: Vec<String> = kinds
            .iter()
            .map(|k| {
                let count = result.aggregates.kinds.count_at(*level, *k);
                if count == 0 {
                    format!("{:>12}", "-")
                } else {
                    format!("{count:>12}")
                }
            })
            .collect();
        let _ = writeln!(out, "{:<14} {}", level.name(), cells.join("  "));
    }
    let _ = writeln!(out, "Total {:>8}", result.aggregates.inconsistencies);
    out
}

/// Render Table 4: inconsistency rates and digit differences (min/max/avg)
/// per compiler pair and level, for two approaches side by side.
pub fn table4(varity: &CampaignResult, llm4fp: &CampaignResult) -> String {
    let mut out = String::new();
    let pairs = CompilerId::pairs();
    let pair_name = |p: (CompilerId, CompilerId)| format!("{},{}", p.0.name(), p.1.name());
    let _ = writeln!(
        out,
        "{:<14} {:<38} | {:<38}",
        "",
        varity.config.approach.name(),
        llm4fp.config.approach.name()
    );
    let header: Vec<String> = pairs.iter().map(|&p| format!("{:>12}", pair_name(p))).collect();
    let _ = writeln!(out, "{:<14} {} | {}", "Level", header.join(" "), header.join(" "));
    for level in &varity.config.levels {
        let mut cells = Vec::new();
        for result in [varity, llm4fp] {
            for &pair in &pairs {
                let programs = result.aggregates.programs;
                let rate = result.aggregates.pair_level.rate(pair, *level, programs);
                let stats = result.aggregates.pair_level.digit_stats(pair, *level);
                cells.push(format!(
                    "{:>6.2}% ({}/{}/{:.2})",
                    100.0 * rate,
                    stats.min,
                    stats.max,
                    stats.mean()
                ));
            }
        }
        let (left, right) = cells.split_at(pairs.len());
        let _ = writeln!(out, "{:<14} {} | {}", level.name(), left.join(" "), right.join(" "));
    }
    // Total row.
    let mut totals = Vec::new();
    for result in [varity, llm4fp] {
        for &pair in &pairs {
            let rate = result.aggregates.pair_level.pair_rate(
                pair,
                result.aggregates.programs,
                result.config.levels.len(),
            );
            totals.push(format!("{:>11.2}%", 100.0 * rate));
        }
    }
    let (left, right) = totals.split_at(pairs.len());
    let _ = writeln!(out, "{:<14} {} | {}", "Total", left.join(" "), right.join(" "));
    out
}

/// Render Table 5: inconsistency rate of each level vs `O0_nofma` within
/// each compiler, for two approaches side by side.
pub fn table5(varity: &CampaignResult, llm4fp: &CampaignResult) -> String {
    let mut out = String::new();
    let compilers = [CompilerId::Gcc, CompilerId::Clang, CompilerId::Nvcc];
    let _ = writeln!(
        out,
        "{:<14} {:<26} | {:<26}",
        "",
        varity.config.approach.name(),
        llm4fp.config.approach.name()
    );
    let header: Vec<String> = compilers.iter().map(|c| format!("{:>8}", c.name())).collect();
    let _ = writeln!(out, "{:<14} {} | {}", "Level", header.join(" "), header.join(" "));
    for level in OptLevel::ALL.iter().filter(|&&l| l != OptLevel::O0Nofma) {
        let mut cells = Vec::new();
        for result in [varity, llm4fp] {
            for &c in &compilers {
                let rate =
                    result.aggregates.vs_baseline.rate(c, *level, result.aggregates.programs);
                if result.aggregates.vs_baseline.differing(c, *level) == 0 {
                    cells.push(format!("{:>8}", "-"));
                } else {
                    cells.push(format!("{:>7.2}%", 100.0 * rate));
                }
            }
        }
        let (left, right) = cells.split_at(compilers.len());
        let _ = writeln!(out, "{:<14} {} | {}", level.name(), left.join(" "), right.join(" "));
    }
    let mut totals = Vec::new();
    for result in [varity, llm4fp] {
        for &c in &compilers {
            let rate = result.aggregates.vs_baseline.compiler_rate(
                c,
                result.aggregates.programs,
                result.config.levels.len(),
            );
            totals.push(format!("{:>7.2}%", 100.0 * rate));
        }
    }
    let (left, right) = totals.split_at(compilers.len());
    let _ = writeln!(out, "{:<14} {} | {}", "Total", left.join(" "), right.join(" "));
    out
}

/// Render Table 1 (the optimization levels and flags) — a static sanity
/// check that the virtual matrix matches the paper's configuration.
pub fn table1() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:<14} {:<28} {:<24}", "Level", "gcc/clang", "nvcc");
    for level in OptLevel::ALL {
        let _ = writeln!(
            out,
            "{:<14} {:<28} {:<24}",
            level.name(),
            level.flags(CompilerId::Gcc).join(" "),
            level.flags(CompilerId::Nvcc).join(" ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ApproachKind, Campaign, CampaignConfig};

    fn tiny(approach: ApproachKind) -> CampaignResult {
        Campaign::new(CampaignConfig::new(approach).with_budget(15).with_seed(3).with_threads(2))
            .run()
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_hms(Duration::from_secs(0)), "00:00:00");
        assert_eq!(format_hms(Duration::from_secs(30 * 60 + 42)), "00:30:42");
        assert_eq!(format_hms(Duration::from_secs(5 * 3600 + 37 * 60 + 42)), "05:37:42");
    }

    #[test]
    fn table1_lists_all_six_levels_with_paper_flags() {
        let t = table1();
        assert!(t.contains("O0_nofma"));
        assert!(t.contains("-ffp-contract=off"));
        assert!(t.contains("--fmad=false"));
        assert!(t.contains("-ffast-math"));
        assert!(t.contains("--use_fast_math"));
        assert_eq!(t.lines().count(), 7);
    }

    #[test]
    fn tables_render_for_real_campaigns() {
        let varity = tiny(ApproachKind::Varity);
        let llm4fp = tiny(ApproachKind::Llm4Fp);
        let rows = vec![Table2Row::from_campaign(&varity), Table2Row::from_campaign(&llm4fp)];
        let t2 = table2(&rows);
        assert!(t2.contains("Varity"));
        assert!(t2.contains("LLM4FP"));
        assert!(t2.contains('%'));

        let f3 = figure3(&varity, &llm4fp);
        assert!(f3.contains("{Real, Real}"));
        assert!(f3.contains("Total"));
        assert_eq!(f3.lines().count(), 13); // header + 11 kinds + total

        let t3 = table3(&llm4fp);
        assert!(t3.contains("O3_fastmath"));
        assert!(t3.contains("Total"));

        let t4 = table4(&varity, &llm4fp);
        assert!(t4.contains("gcc,nvcc"));
        assert!(t4.contains("O0_nofma"));
        assert!(t4.lines().count() >= 9);

        let t5 = table5(&varity, &llm4fp);
        assert!(t5.contains("gcc"));
        assert!(t5.contains("O3_fastmath"));
        assert!(!t5.contains("O0_nofma "), "Table 5 compares against O0_nofma, not with it");
    }

    #[test]
    fn table2_rows_reflect_campaign_metrics() {
        let varity = tiny(ApproachKind::Varity);
        let row = Table2Row::from_campaign(&varity);
        assert_eq!(row.approach, "Varity");
        assert!((row.inconsistency_rate - varity.inconsistency_rate()).abs() < 1e-12);
        assert_eq!(row.inconsistencies, varity.inconsistencies());
        assert!(row.codebleu > 0.0 && row.codebleu < 1.0);
    }
}
