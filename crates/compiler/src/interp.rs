//! The execution back end: a bit-exact IEEE-754 interpreter for optimized
//! programs.
//!
//! The interpreter evaluates the optimized IR under the floating-point
//! semantics selected at compile time: every arithmetic operation is rounded
//! to the program's precision, FMA nodes are evaluated with a single
//! rounding, math calls dispatch into the configured math library, and
//! (under fast-math) subnormal results are flushed to zero. The final value
//! of `comp` — the value the generated C program would print — is returned
//! with its exact bit pattern.

use std::collections::HashMap;
use std::sync::Arc;

use llm4fp_fpir::{BinOp, IndexExpr, InputSet, InputValue, MathFunc, Param, ParamType, Precision};
use llm4fp_mathlib::{flush_to_zero, MathLib};

use crate::config::Semantics;
use crate::ir::{OExpr, OStmt};

/// Default execution fuel: an upper bound on executed statements plus loop
/// iterations, protecting the harness from pathological programs.
pub const DEFAULT_FUEL: u64 = 4_000_000;

/// Runtime failure of a virtual execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The fuel budget was exhausted (runaway loops).
    FuelExhausted,
    /// A scalar variable was read before any assignment.
    UnknownVariable(String),
    /// An array was accessed that is neither a parameter nor declared.
    UnknownArray(String),
    /// An array access fell outside the array bounds.
    IndexOutOfBounds { array: String, index: i64, len: usize },
    /// The input set does not provide a value for a parameter.
    MissingInput(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::FuelExhausted => write!(f, "execution fuel exhausted"),
            ExecError::UnknownVariable(v) => write!(f, "read of unassigned variable `{v}`"),
            ExecError::UnknownArray(a) => write!(f, "access to unknown array `{a}`"),
            ExecError::IndexOutOfBounds { array, index, len } => {
                write!(f, "index {index} out of bounds for `{array}` (length {len})")
            }
            ExecError::MissingInput(p) => write!(f, "missing input for parameter `{p}`"),
        }
    }
}

impl std::error::Error for ExecError {}

/// The result of executing a compiled program on one input set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecResult {
    /// Final value of `comp` (already rounded to the program precision).
    pub value: f64,
    /// Precision the program was compiled for.
    pub precision: Precision,
    /// Number of IR statements / loop iterations executed.
    pub steps: u64,
}

impl ExecResult {
    /// Bit pattern of the printed result (32-bit patterns are zero-extended).
    pub fn bits(&self) -> u64 {
        match self.precision {
            Precision::F64 => self.value.to_bits(),
            Precision::F32 => (self.value as f32).to_bits() as u64,
        }
    }

    /// The hexadecimal encoding the generated program would print — the
    /// string the differential tester compares (16 characters for FP64,
    /// 8 for FP32).
    pub fn hex(&self) -> String {
        self.precision.hex_of_bits(self.bits())
    }
}

/// Interpreter for one (program, semantics) pair.
///
/// Environments are keyed by string slices borrowed from the compiled
/// artifact (parameter list and optimized body), so creating and running
/// an interpreter never clones a variable name — the avoidable per-run
/// allocations are gone on the reference path too, which keeps A/B
/// benchmarks against the sealed VM honest.
pub struct Interpreter<'a> {
    precision: Precision,
    semantics: &'a Semantics,
    math: Arc<dyn MathLib>,
    scalars: HashMap<&'a str, f64>,
    ints: HashMap<&'a str, i64>,
    arrays: HashMap<&'a str, Vec<f64>>,
    fuel: u64,
    steps: u64,
}

impl<'a> Interpreter<'a> {
    /// Create an interpreter and bind the `compute` parameters from `inputs`.
    pub fn new(
        precision: Precision,
        params: &'a [Param],
        inputs: &InputSet,
        semantics: &'a Semantics,
        fuel: u64,
    ) -> Result<Self, ExecError> {
        let mut interp = Interpreter {
            precision,
            semantics,
            math: semantics.math_lib.instantiate(),
            scalars: HashMap::new(),
            ints: HashMap::new(),
            arrays: HashMap::new(),
            fuel,
            steps: 0,
        };
        for p in params {
            match (p.ty, inputs.get(&p.name)) {
                (ParamType::Int, Some(InputValue::Int(v))) => {
                    interp.ints.insert(p.name.as_str(), *v);
                }
                (ParamType::Fp, Some(InputValue::Fp(v))) => {
                    interp.scalars.insert(p.name.as_str(), interp.round(*v));
                }
                (ParamType::FpArray(len), Some(InputValue::FpArray(vals))) => {
                    let mut buf: Vec<f64> =
                        vals.iter().take(len).map(|&v| interp.round(v)).collect();
                    buf.resize(len, 0.0);
                    interp.arrays.insert(p.name.as_str(), buf);
                }
                _ => return Err(ExecError::MissingInput(p.name.clone())),
            }
        }
        // The accumulator is implicitly declared and zero-initialized.
        interp.scalars.insert(llm4fp_fpir::COMP, 0.0);
        Ok(interp)
    }

    /// Execute a body and return the final value of `comp`.
    pub fn run(mut self, body: &'a [OStmt]) -> Result<ExecResult, ExecError> {
        self.exec_block(body)?;
        let value = *self.scalars.get(llm4fp_fpir::COMP).expect("comp is always initialized");
        Ok(ExecResult { value, precision: self.precision, steps: self.steps })
    }

    fn burn(&mut self) -> Result<(), ExecError> {
        if self.fuel == 0 {
            return Err(ExecError::FuelExhausted);
        }
        self.fuel -= 1;
        self.steps += 1;
        Ok(())
    }

    fn exec_block(&mut self, body: &'a [OStmt]) -> Result<(), ExecError> {
        for stmt in body {
            self.exec_stmt(stmt)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, stmt: &'a OStmt) -> Result<(), ExecError> {
        self.burn()?;
        match stmt {
            OStmt::Assign { target, expr } => {
                let v = self.eval(expr)?;
                self.scalars.insert(target.as_str(), v);
            }
            OStmt::Store { array, index, expr } => {
                let v = self.eval(expr)?;
                let idx = self.resolve_index(array, index)?;
                let buf = self
                    .arrays
                    .get_mut(array.as_str())
                    .ok_or_else(|| ExecError::UnknownArray(array.clone()))?;
                buf[idx] = v;
            }
            OStmt::DeclArray { name, size, init } => {
                let mut buf: Vec<f64> = init.iter().take(*size).map(|&v| self.round(v)).collect();
                buf.resize(*size, 0.0);
                self.arrays.insert(name.as_str(), buf);
            }
            OStmt::If { cond, then_block } => {
                let lhs = self.eval(&cond.lhs)?;
                let rhs = self.eval(&cond.rhs)?;
                if cond.op.eval(lhs, rhs) {
                    self.exec_block(then_block)?;
                }
            }
            OStmt::For { var, bound, body } => {
                let shadowed = self.ints.get(var.as_str()).copied();
                for i in 0..*bound {
                    self.burn()?;
                    self.ints.insert(var.as_str(), i);
                    self.exec_block(body)?;
                }
                match shadowed {
                    Some(old) => {
                        self.ints.insert(var.as_str(), old);
                    }
                    None => {
                        self.ints.remove(var.as_str());
                    }
                }
            }
        }
        Ok(())
    }

    /// Round an exact `f64` to the program precision.
    fn round(&self, v: f64) -> f64 {
        match self.precision {
            Precision::F64 => v,
            Precision::F32 => v as f32 as f64,
        }
    }

    /// Round an arithmetic result, applying flush-to-zero when the semantics
    /// require it.
    fn finish(&self, v: f64) -> f64 {
        let v = self.round(v);
        if self.semantics.flush_to_zero {
            flush_to_zero(v)
        } else {
            v
        }
    }

    fn eval(&mut self, expr: &OExpr) -> Result<f64, ExecError> {
        Ok(match expr {
            OExpr::Const(v) => self.round(*v),
            OExpr::Var(name) => {
                if let Some(v) = self.scalars.get(name.as_str()) {
                    *v
                } else if let Some(i) = self.ints.get(name.as_str()) {
                    self.round(*i as f64)
                } else {
                    return Err(ExecError::UnknownVariable(name.clone()));
                }
            }
            OExpr::Index { array, index } => {
                let idx = self.resolve_index(array, index)?;
                let buf = self
                    .arrays
                    .get(array.as_str())
                    .ok_or_else(|| ExecError::UnknownArray(array.clone()))?;
                buf[idx]
            }
            OExpr::Neg(inner) => -self.eval(inner)?,
            OExpr::Bin { op, lhs, rhs } => {
                let a = self.eval(lhs)?;
                let b = self.eval(rhs)?;
                let raw = match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                };
                self.finish(raw)
            }
            OExpr::Fma { a, b, c } => {
                let a = self.eval(a)?;
                let b = self.eval(b)?;
                let c = self.eval(c)?;
                let raw = match self.precision {
                    Precision::F64 => a.mul_add(b, c),
                    Precision::F32 => ((a as f32).mul_add(b as f32, c as f32)) as f64,
                };
                self.finish(raw)
            }
            OExpr::Recip { value, approx } => {
                let v = self.eval(value)?;
                let raw = if *approx {
                    llm4fp_mathlib::FastMathLib::new().approx_recip(v)
                } else {
                    1.0 / v
                };
                self.finish(raw)
            }
            OExpr::Call { func, args } => {
                let mut vals = [0.0f64; 3];
                for (slot, arg) in vals.iter_mut().zip(args.iter()) {
                    *slot = self.eval(arg)?;
                }
                let raw = dispatch_math(self.math.as_ref(), *func, vals[0], vals[1], vals[2]);
                // Math results are rounded to precision but never flushed:
                // FTZ applies to arithmetic, library calls return normals.
                self.round(raw)
            }
        })
    }

    fn resolve_index(&mut self, array: &str, index: &IndexExpr) -> Result<usize, ExecError> {
        let var_value = match index.var() {
            None => 0,
            Some(v) => self.ints.get(v).copied().unwrap_or(0),
        };
        let idx = index.eval(var_value);
        let Some(len) = self.arrays.get(array).map(|b| b.len()) else {
            return Err(ExecError::UnknownArray(array.to_string()));
        };
        if idx < 0 || idx as usize >= len {
            return Err(ExecError::IndexOutOfBounds { array: array.to_string(), index: idx, len });
        }
        Ok(idx as usize)
    }
}

/// Dispatch one math call into a library. Shared by the reference
/// interpreter and the register VM ([`crate::vm`]) so both back ends call
/// the exact same entry points with the exact same argument defaults.
pub(crate) fn dispatch_math(m: &dyn MathLib, func: MathFunc, a: f64, b: f64, c: f64) -> f64 {
    match func {
        MathFunc::Sin => m.sin(a),
        MathFunc::Cos => m.cos(a),
        MathFunc::Tan => m.tan(a),
        MathFunc::Asin => m.asin(a),
        MathFunc::Acos => m.acos(a),
        MathFunc::Atan => m.atan(a),
        MathFunc::Atan2 => m.atan2(a, b),
        MathFunc::Sinh => m.sinh(a),
        MathFunc::Cosh => m.cosh(a),
        MathFunc::Tanh => m.tanh(a),
        MathFunc::Exp => m.exp(a),
        MathFunc::Exp2 => m.exp2(a),
        MathFunc::Expm1 => m.expm1(a),
        MathFunc::Log => m.log(a),
        MathFunc::Log2 => m.log2(a),
        MathFunc::Log10 => m.log10(a),
        MathFunc::Log1p => m.log1p(a),
        MathFunc::Sqrt => m.sqrt(a),
        MathFunc::Cbrt => m.cbrt(a),
        MathFunc::Pow => m.pow(a, b),
        MathFunc::Hypot => m.hypot(a, b),
        MathFunc::Fabs => m.fabs(a),
        MathFunc::Floor => m.floor(a),
        MathFunc::Ceil => m.ceil(a),
        MathFunc::Trunc => m.trunc(a),
        MathFunc::Round => m.round(a),
        MathFunc::Fmin => m.fmin(a, b),
        MathFunc::Fmax => m.fmax(a, b),
        MathFunc::Fmod => m.fmod(a, b),
        MathFunc::Fma => m.fma(a, b, c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::config::{CompilerConfig, CompilerId, OptLevel};
    use llm4fp_fpir::parse_compute;

    fn run(src: &str, inputs: &InputSet, cfg: CompilerConfig) -> ExecResult {
        let program = parse_compute(src).unwrap();
        compile(&program, cfg).unwrap().execute(inputs).unwrap()
    }

    fn strict() -> CompilerConfig {
        CompilerConfig::new(CompilerId::Gcc, OptLevel::O0Nofma)
    }

    #[test]
    fn straight_line_arithmetic_matches_direct_evaluation() {
        let src = "void compute(double x, double y) { comp = x * y + 2.5; comp /= y - 0.5; }";
        let inputs = InputSet::new().with("x", InputValue::Fp(3.0)).with("y", InputValue::Fp(2.0));
        let r = run(src, &inputs, strict());
        let expected = (3.0f64 * 2.0 + 2.5) / (2.0 - 0.5);
        assert_eq!(r.value.to_bits(), expected.to_bits());
        assert_eq!(r.hex(), format!("{:016x}", expected.to_bits()));
    }

    #[test]
    fn loops_conditionals_and_arrays_execute_correctly() {
        let src = "void compute(double *a, double s) {\n\
                   double acc = 0.0;\n\
                   for (int i = 0; i < 4; ++i) {\n\
                     acc += a[i] * s;\n\
                   }\n\
                   if (acc > 5.0) { comp = acc - 5.0; }\n\
                   if (acc <= 5.0) { comp = acc; }\n\
                   }";
        let inputs = InputSet::new()
            .with("a", InputValue::FpArray(vec![1.0, 2.0, 3.0, 4.0]))
            .with("s", InputValue::Fp(1.0));
        let r = run(src, &inputs, strict());
        assert_eq!(r.value, 5.0); // 10 > 5 -> 10 - 5
        let inputs2 = InputSet::new()
            .with("a", InputValue::FpArray(vec![1.0, 1.0, 1.0, 1.0]))
            .with("s", InputValue::Fp(0.5));
        assert_eq!(run(src, &inputs2, strict()).value, 2.0);
    }

    #[test]
    fn f32_programs_round_every_operation() {
        let src = "void compute(float x) { comp = x / 3.0; comp *= 3.0; }";
        let inputs = InputSet::new().with("x", InputValue::Fp(1.0));
        let program = parse_compute(src).unwrap();
        let r = compile(&program, strict()).unwrap().execute(&inputs).unwrap();
        let expected = ((1.0f32 / 3.0f32) * 3.0f32) as f64;
        assert_eq!(r.value.to_bits(), expected.to_bits());
        assert_eq!(r.hex().len(), 8);
    }

    #[test]
    fn fma_contraction_changes_bits_for_sensitive_inputs() {
        // x*y + z where x*y needs more than 53 bits: contraction keeps them.
        let src = "void compute(double x, double y, double z) { comp = x * y + z; }";
        let x = 1.0 + 2f64.powi(-30);
        let inputs = InputSet::new()
            .with("x", InputValue::Fp(x))
            .with("y", InputValue::Fp(x))
            .with("z", InputValue::Fp(-1.0));
        let strict_r = run(src, &inputs, strict());
        let contracted = run(src, &inputs, CompilerConfig::new(CompilerId::Nvcc, OptLevel::O0));
        assert_ne!(strict_r.bits(), contracted.bits());
        assert_eq!(strict_r.bits(), ((x * x) - 1.0).to_bits());
        assert_eq!(contracted.bits(), x.mul_add(x, -1.0).to_bits());
    }

    #[test]
    fn division_by_zero_and_domain_errors_follow_ieee() {
        let src = "void compute(double x) { comp = x / (x - x); }";
        let inputs = InputSet::new().with("x", InputValue::Fp(2.0));
        let r = run(src, &inputs, strict());
        assert!(r.value.is_infinite());
        let src2 = "void compute(double x) { comp = sqrt(x); }";
        let neg = InputSet::new().with("x", InputValue::Fp(-4.0));
        assert!(run(src2, &neg, strict()).value.is_nan());
    }

    #[test]
    fn fuel_exhaustion_is_reported() {
        let src = "void compute(double x) {\n\
                   for (int i = 0; i < 200; ++i) {\n\
                     for (int j = 0; j < 200; ++j) {\n\
                       for (int k = 0; k < 200; ++k) { comp += x; }\n\
                     }\n\
                   }\n\
                   }";
        let program = parse_compute(src).unwrap();
        let compiled = compile(&program, strict()).unwrap();
        let inputs = InputSet::new().with("x", InputValue::Fp(1.0));
        let err = compiled.execute_with_fuel(&inputs, 10_000).unwrap_err();
        assert_eq!(err, ExecError::FuelExhausted);
    }

    #[test]
    fn missing_inputs_and_unknown_arrays_error_out() {
        let src = "void compute(double x) { comp = x; }";
        let program = parse_compute(src).unwrap();
        let compiled = compile(&program, strict()).unwrap();
        assert_eq!(
            compiled.execute(&InputSet::new()).unwrap_err(),
            ExecError::MissingInput("x".into())
        );
    }

    #[test]
    fn loop_variable_scoping_restores_outer_bindings() {
        // The loop variable of the inner loop shadows an int parameter of the
        // same name; afterwards the parameter value must be visible again.
        let src = "void compute(int i, double x) {\n\
                   comp = 0.0;\n\
                   for (int i = 0; i < 3; ++i) { comp += x; }\n\
                   comp += i;\n\
                   }";
        let inputs = InputSet::new().with("i", InputValue::Int(10)).with("x", InputValue::Fp(1.0));
        let r = run(src, &inputs, strict());
        assert_eq!(r.value, 13.0);
    }

    #[test]
    fn math_calls_use_the_configured_library() {
        let src = "void compute(double x) { comp = sin(x) + exp(x); }";
        let probe = InputSet::new().with("x", InputValue::Fp(0.7));
        let host = run(src, &probe, CompilerConfig::new(CompilerId::Gcc, OptLevel::O0Nofma));
        assert_eq!(host.bits(), (0.7f64.sin() + 0.7f64.exp()).to_bits());
        // Across a set of inputs the device library must disagree with the
        // host in the last bits at least sometimes, and the fast-math library
        // must be visibly less accurate while staying numerically close.
        let mut device_differs = 0;
        let mut fast_differs = 0;
        for i in 1..40 {
            let x = (i as f64) * 0.17;
            let inputs = InputSet::new().with("x", InputValue::Fp(x));
            let host = run(src, &inputs, CompilerConfig::new(CompilerId::Gcc, OptLevel::O0Nofma));
            let device =
                run(src, &inputs, CompilerConfig::new(CompilerId::Nvcc, OptLevel::O0Nofma));
            let fast =
                run(src, &inputs, CompilerConfig::new(CompilerId::Nvcc, OptLevel::O3Fastmath));
            assert!((device.value - host.value).abs() <= 1e-9 * host.value.abs().max(1.0));
            assert!((fast.value - host.value).abs() <= 1e-3 * host.value.abs().max(1.0));
            if device.bits() != host.bits() {
                device_differs += 1;
            }
            if fast.bits() != device.bits() {
                fast_differs += 1;
            }
        }
        assert!(device_differs > 0, "device library never disagreed with the host");
        assert!(fast_differs > 10, "fast-math library should disagree almost always");
    }

    #[test]
    fn flush_to_zero_only_under_fastmath() {
        let src = "void compute(double x) { comp = x * 0.5; }";
        let tiny = f64::MIN_POSITIVE; // x * 0.5 is subnormal
        let inputs = InputSet::new().with("x", InputValue::Fp(tiny));
        let normal = run(src, &inputs, CompilerConfig::new(CompilerId::Gcc, OptLevel::O3));
        let fast = run(src, &inputs, CompilerConfig::new(CompilerId::Gcc, OptLevel::O3Fastmath));
        assert!(normal.value > 0.0);
        assert_eq!(fast.value, 0.0);
    }
}
