//! The register VM: executes a [`SealedProgram`] against input sets.
//!
//! Execution state lives in an [`ExecScratch`] — flat `Vec<f64>` /
//! `Vec<i64>` register and slot files plus one buffer per array slot —
//! that is reused across runs, so executing a sealed artifact on a whole
//! batch of input sets performs no allocation after the first run. The
//! dispatch loop reproduces the reference interpreter's semantics bit for
//! bit (see the contract in [`crate::bytecode`]): every arithmetic result
//! goes through the same round/flush sequence, math calls dispatch into
//! the same library instance kind, and fuel is consumed at the same
//! points.

use llm4fp_fpir::{BinOp, InputSet, InputValue, Precision};
use llm4fp_mathlib::flush_to_zero;

use crate::bytecode::{Instr, ParamBind, SealedProgram, SlotIndex};
use crate::interp::{dispatch_math, ExecError, ExecResult, DEFAULT_FUEL};

/// Reusable execution state for the register VM. One scratch serves any
/// number of sealed programs (it is resized on demand); reusing it across
/// runs is what makes the hot path allocation-free.
#[derive(Debug, Default)]
pub struct ExecScratch {
    regs: Vec<f64>,
    scalars: Vec<f64>,
    ints: Vec<i64>,
    arrays: Vec<Vec<f64>>,
    /// Largest register file any program prepared against this scratch
    /// (reported up to `summary.json` by the orchestrator).
    peak_regs: usize,
}

impl ExecScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// The largest floating-point register file prepared so far — a
    /// direct readout of how far the seal-time register coalescing keeps
    /// execution state.
    pub fn peak_regs(&self) -> usize {
        self.peak_regs
    }

    /// Size every file for `program` and zero-fill it. Zeroing matches the
    /// defined portion of the interpreter's state; validated programs
    /// never read a scalar before writing it, so stale values from a
    /// previous run are unreachable either way.
    fn prepare(&mut self, program: &SealedProgram) {
        self.peak_regs = self.peak_regs.max(program.n_regs);
        self.regs.clear();
        self.regs.resize(program.n_regs, 0.0);
        self.scalars.clear();
        self.scalars.resize(program.n_scalars, 0.0);
        self.ints.clear();
        self.ints.resize(program.n_ints, 0);
        let arrays = &program.layout.arrays;
        self.arrays.resize_with(arrays.len().max(self.arrays.len()), Vec::new);
        for (buf, slot) in self.arrays.iter_mut().zip(arrays) {
            buf.clear();
            buf.resize(slot.len, 0.0);
        }
    }
}

impl SealedProgram {
    /// Execute on one input set with the default fuel budget, using a
    /// fresh scratch. Prefer [`SealedProgram::execute_into`] on hot paths.
    pub fn execute(&self, inputs: &InputSet) -> Result<ExecResult, ExecError> {
        self.execute_into(inputs, DEFAULT_FUEL, &mut ExecScratch::new())
    }

    /// Execute with an explicit fuel budget and a fresh scratch.
    pub fn execute_with_fuel(&self, inputs: &InputSet, fuel: u64) -> Result<ExecResult, ExecError> {
        self.execute_into(inputs, fuel, &mut ExecScratch::new())
    }

    /// Execute reusing `scratch` (allocation-free after its first use).
    pub fn execute_into(
        &self,
        inputs: &InputSet,
        fuel: u64,
        scratch: &mut ExecScratch,
    ) -> Result<ExecResult, ExecError> {
        scratch.prepare(self);
        self.bind(inputs, scratch)?;
        self.run(fuel, scratch)
    }

    /// Bind the `compute` parameters, in declaration order, with the
    /// interpreter's exact rounding and error behaviour.
    fn bind(&self, inputs: &InputSet, scratch: &mut ExecScratch) -> Result<(), ExecError> {
        for p in &self.layout.params {
            match (&p.bind, inputs.get(&p.name)) {
                (ParamBind::Int { slot }, Some(InputValue::Int(v))) => {
                    scratch.ints[*slot as usize] = *v;
                }
                (ParamBind::Fp { slot }, Some(InputValue::Fp(v))) => {
                    scratch.scalars[*slot as usize] = self.round(*v);
                }
                (ParamBind::Array { slot }, Some(InputValue::FpArray(vals))) => {
                    let buf = &mut scratch.arrays[*slot as usize];
                    for (dst, &v) in buf.iter_mut().zip(vals.iter()) {
                        *dst = self.round(v);
                    }
                }
                _ => return Err(ExecError::MissingInput(p.name.clone())),
            }
        }
        // The accumulator is implicitly declared and zero-initialized
        // (already true after `prepare`, restated for clarity).
        scratch.scalars[self.comp_slot as usize] = 0.0;
        Ok(())
    }

    /// Round an exact `f64` to the program precision.
    #[inline(always)]
    pub(crate) fn round(&self, v: f64) -> f64 {
        crate::bytecode::round_to(self.precision, v)
    }

    /// Round an arithmetic result, applying flush-to-zero when the
    /// semantics require it.
    #[inline(always)]
    pub(crate) fn finish(&self, v: f64) -> f64 {
        let v = self.round(v);
        if self.flush_to_zero {
            flush_to_zero(v)
        } else {
            v
        }
    }

    // The evaluation helpers below are the *single* implementation of the
    // register machine's arithmetic: the dispatch loop calls them at run
    // time and the seal-time constant folder ([`crate::peephole`]) calls
    // the identical functions on known operands, so a fold can never
    // drift from what execution would have computed.

    /// Evaluate a `Bin` instruction's result from its operand values.
    #[inline(always)]
    pub(crate) fn eval_bin(&self, op: BinOp, a: f64, b: f64) -> f64 {
        let raw = match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
        };
        self.finish(raw)
    }

    /// Evaluate an `Fma` instruction's result from its operand values.
    #[inline(always)]
    pub(crate) fn eval_fma(&self, a: f64, b: f64, c: f64) -> f64 {
        let raw = match self.precision {
            Precision::F64 => a.mul_add(b, c),
            Precision::F32 => ((a as f32).mul_add(b as f32, c as f32)) as f64,
        };
        self.finish(raw)
    }

    /// Evaluate a `Recip` instruction's result from its operand value.
    #[inline(always)]
    pub(crate) fn eval_recip(&self, approx: bool, v: f64) -> f64 {
        let raw = if approx { self.fast.approx_recip(v) } else { 1.0 / v };
        self.finish(raw)
    }

    /// Evaluate a `Call` instruction's result from its (zero-padded)
    /// argument values. Math results are rounded to precision but never
    /// flushed, matching the interpreter.
    #[inline(always)]
    pub(crate) fn eval_call(&self, func: llm4fp_fpir::MathFunc, a: f64, b: f64, c: f64) -> f64 {
        self.round(dispatch_math(self.math.as_ref(), func, a, b, c))
    }

    /// Resolve an element index against the current int file, with the
    /// interpreter's bounds check (the error is cold: validated programs
    /// are statically bounds-safe).
    #[inline(always)]
    fn element(
        &self,
        array: u16,
        index: SlotIndex,
        scratch: &ExecScratch,
    ) -> Result<(usize, usize), ExecError> {
        let idx = index.eval(&scratch.ints);
        let len = self.layout.arrays[array as usize].len;
        if idx < 0 || idx as usize >= len {
            let name = self.layout.names[self.layout.arrays[array as usize].name as usize].clone();
            return Err(ExecError::IndexOutOfBounds { array: name, index: idx, len });
        }
        Ok((array as usize, idx as usize))
    }

    fn run(&self, fuel: u64, scratch: &mut ExecScratch) -> Result<ExecResult, ExecError> {
        let mut fuel = fuel;
        let mut steps: u64 = 0;
        let mut pc: usize = 0;
        loop {
            match self.instrs[pc] {
                Instr::Burn => {
                    if fuel == 0 {
                        return Err(ExecError::FuelExhausted);
                    }
                    fuel -= 1;
                    steps += 1;
                }
                Instr::Const { dst, value } => scratch.regs[dst as usize] = value,
                Instr::LoadScalar { dst, slot } => {
                    scratch.regs[dst as usize] = scratch.scalars[slot as usize];
                }
                Instr::LoadInt { dst, slot } => {
                    scratch.regs[dst as usize] = self.round(scratch.ints[slot as usize] as f64);
                }
                Instr::LoadElem { dst, array, index } => {
                    let (a, i) = self.element(array, index, scratch)?;
                    scratch.regs[dst as usize] = scratch.arrays[a][i];
                }
                Instr::Neg { dst, src } => {
                    scratch.regs[dst as usize] = -scratch.regs[src as usize];
                }
                Instr::Bin { op, dst, lhs, rhs } => {
                    let a = scratch.regs[lhs as usize];
                    let b = scratch.regs[rhs as usize];
                    scratch.regs[dst as usize] = self.eval_bin(op, a, b);
                }
                Instr::Fma { dst, a, b, c } => {
                    let (a, b, c) = (
                        scratch.regs[a as usize],
                        scratch.regs[b as usize],
                        scratch.regs[c as usize],
                    );
                    scratch.regs[dst as usize] = self.eval_fma(a, b, c);
                }
                Instr::Recip { dst, src, approx } => {
                    let v = scratch.regs[src as usize];
                    scratch.regs[dst as usize] = self.eval_recip(approx, v);
                }
                Instr::Call { func, dst, base, arity } => {
                    let a = scratch.regs[base as usize];
                    let b = if arity > 1 { scratch.regs[base as usize + 1] } else { 0.0 };
                    let c = if arity > 2 { scratch.regs[base as usize + 2] } else { 0.0 };
                    scratch.regs[dst as usize] = self.eval_call(func, a, b, c);
                }
                Instr::StoreScalar { slot, src } => {
                    scratch.scalars[slot as usize] = scratch.regs[src as usize];
                }
                Instr::StoreElem { array, index, src } => {
                    let value = scratch.regs[src as usize];
                    let (a, i) = self.element(array, index, scratch)?;
                    scratch.arrays[a][i] = value;
                }
                Instr::DeclArray { array, init } => {
                    let len = self.layout.arrays[array as usize].len;
                    let start = init as usize;
                    scratch.arrays[array as usize]
                        .copy_from_slice(&self.layout.init_pool[start..start + len]);
                }
                Instr::SetInt { slot, value } => scratch.ints[slot as usize] = value,
                Instr::IncInt { slot } => scratch.ints[slot as usize] += 1,
                Instr::JumpIfIntGe { slot, bound, target } => {
                    if scratch.ints[slot as usize] >= bound {
                        pc = target as usize;
                        continue;
                    }
                }
                Instr::JumpCmpFalse { op, lhs, rhs, target } => {
                    if !op.eval(scratch.regs[lhs as usize], scratch.regs[rhs as usize]) {
                        pc = target as usize;
                        continue;
                    }
                }
                Instr::Jump { target } => {
                    pc = target as usize;
                    continue;
                }
                Instr::Halt => {
                    return Ok(ExecResult {
                        value: scratch.scalars[self.comp_slot as usize],
                        precision: self.precision,
                        steps,
                    });
                }
            }
            pc += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::SealError;
    use crate::compile::compile;
    use crate::config::{CompilerConfig, CompilerId, OptLevel};
    use llm4fp_fpir::{parse_compute, InputValue};

    /// Compile under every configuration, seal, and assert the VM matches
    /// the reference interpreter exactly: same value bits, same step
    /// count, and the same error at every fuel budget up to completion.
    fn assert_vm_matches_interp(src: &str, inputs: &InputSet) {
        let program = parse_compute(src).unwrap();
        let mut scratch = ExecScratch::new();
        for config in CompilerConfig::full_matrix() {
            let artifact = compile(&program, config).unwrap();
            let sealed =
                artifact.seal().unwrap_or_else(|e| panic!("seal failed under {config}: {e}"));
            let reference = artifact.execute(inputs);
            let vm = sealed.execute_into(inputs, DEFAULT_FUEL, &mut scratch);
            match (&reference, &vm) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.bits(), b.bits(), "{config}");
                    assert_eq!(a.steps, b.steps, "{config}");
                    assert_eq!(a.precision, b.precision, "{config}");
                }
                other => panic!("outcome mismatch under {config}: {other:?}"),
            }
            // Exact fuel-exhaustion parity: starve both engines at every
            // budget below the step count.
            let steps = reference.unwrap().steps;
            for fuel in 0..steps.min(64) {
                let a = artifact.execute_with_fuel(inputs, fuel);
                let b = sealed.execute_into(inputs, fuel, &mut scratch);
                assert_eq!(a, b, "fuel {fuel} under {config}");
                assert_eq!(a.unwrap_err(), ExecError::FuelExhausted);
            }
            if steps > 64 {
                let a = artifact.execute_with_fuel(inputs, steps - 1);
                let b = sealed.execute_into(inputs, steps - 1, &mut scratch);
                assert_eq!(a, b, "fuel {} under {config}", steps - 1);
            }
        }
    }

    #[test]
    fn straight_line_arithmetic_matches() {
        let src = "void compute(double x, double y) { comp = x * y + 2.5; comp /= y - 0.5; }";
        let inputs = InputSet::new().with("x", InputValue::Fp(3.0)).with("y", InputValue::Fp(2.0));
        assert_vm_matches_interp(src, &inputs);
    }

    #[test]
    fn loops_conditionals_arrays_and_math_match() {
        let src = "void compute(double *a, double s, int n) {\n\
                   double acc = 0.0;\n\
                   double buf[3] = {1.5, -2.25};\n\
                   for (int i = 0; i < 4; ++i) {\n\
                     acc += a[i] * s + sin(a[i]);\n\
                     buf[i % 3] = acc / (s + 2.0);\n\
                   }\n\
                   if (acc > 1.0) { comp = acc - buf[0]; }\n\
                   if (acc <= 1.0) { comp = acc + buf[n % 3] * exp(s); }\n\
                   }";
        let inputs = InputSet::new()
            .with("a", InputValue::FpArray(vec![0.5, -1.25, 2.0, 0.75]))
            .with("s", InputValue::Fp(0.375))
            .with("n", InputValue::Int(7));
        assert_vm_matches_interp(src, &inputs);
    }

    #[test]
    fn nested_loops_with_shadowed_variables_match() {
        let src = "void compute(int i, double x) {\n\
                   comp = 0.0;\n\
                   for (int i = 0; i < 3; ++i) {\n\
                     for (int j = 0; j < 2; ++j) { comp += x * i - j; }\n\
                   }\n\
                   comp += i;\n\
                   }";
        let inputs = InputSet::new().with("i", InputValue::Int(10)).with("x", InputValue::Fp(1.5));
        assert_vm_matches_interp(src, &inputs);
    }

    #[test]
    fn f32_programs_round_identically() {
        let src = "void compute(float x, float *a) {\n\
                   for (int i = 0; i < 3; ++i) { comp += a[i] / x; }\n\
                   comp *= 3.0;\n\
                   }";
        let inputs = InputSet::new()
            .with("x", InputValue::Fp(3.0))
            .with("a", InputValue::FpArray(vec![1.0, 0.1, 7.25]));
        assert_vm_matches_interp(src, &inputs);
    }

    #[test]
    fn subnormal_flushing_and_fastmath_match() {
        let src = "void compute(double x, double y) { comp = x * 0.5; comp += x / y; }";
        let inputs = InputSet::new()
            .with("x", InputValue::Fp(f64::MIN_POSITIVE))
            .with("y", InputValue::Fp(3.0));
        assert_vm_matches_interp(src, &inputs);
    }

    #[test]
    fn special_values_propagate_identically() {
        let src = "void compute(double x) { comp = x / (x - x); comp += sqrt(0.0 - x); }";
        let inputs = InputSet::new().with("x", InputValue::Fp(2.0));
        assert_vm_matches_interp(src, &inputs);
    }

    #[test]
    fn missing_inputs_error_in_parameter_order() {
        let src = "void compute(double x, double y) { comp = x + y; }";
        let program = parse_compute(src).unwrap();
        let artifact =
            compile(&program, CompilerConfig::new(CompilerId::Gcc, OptLevel::O0Nofma)).unwrap();
        let sealed = artifact.seal().unwrap();
        let only_y = InputSet::new().with("y", InputValue::Fp(1.0));
        assert_eq!(sealed.execute(&only_y).unwrap_err(), ExecError::MissingInput("x".into()));
        assert_eq!(sealed.execute(&only_y), artifact.execute(&only_y));
    }

    #[test]
    fn scratch_reuse_is_bit_stable_across_runs() {
        let src = "void compute(double x, double *a) {\n\
                   for (int i = 0; i < 8; ++i) { comp += a[i % 4] * cos(x + i); }\n\
                   }";
        let program = parse_compute(src).unwrap();
        let artifact =
            compile(&program, CompilerConfig::new(CompilerId::Nvcc, OptLevel::O3Fastmath)).unwrap();
        let sealed = artifact.seal().unwrap();
        let mut scratch = ExecScratch::new();
        for k in 0..10 {
            let inputs = InputSet::new()
                .with("x", InputValue::Fp(0.1 * k as f64))
                .with("a", InputValue::FpArray(vec![1.0, -2.0, 3.0, -4.0]));
            let fresh = sealed.execute(&inputs).unwrap();
            let reused = sealed.execute_into(&inputs, DEFAULT_FUEL, &mut scratch).unwrap();
            assert_eq!(fresh.bits(), reused.bits());
            assert_eq!(fresh.steps, reused.steps);
            assert_eq!(artifact.execute(&inputs).unwrap().bits(), reused.bits());
        }
    }

    #[test]
    fn dynamically_ambiguous_names_refuse_to_seal() {
        // `t` is a loop variable in one scope and a scalar assignment
        // target in another; the interpreter resolves reads of `t`
        // dynamically, so sealing must refuse and let callers fall back.
        let src = "void compute(double x) {\n\
                   for (int t = 0; t < 3; ++t) { comp += x * t; }\n\
                   double t = 2.0;\n\
                   comp += t;\n\
                   }";
        let program = parse_compute(src).unwrap();
        let artifact =
            compile(&program, CompilerConfig::new(CompilerId::Gcc, OptLevel::O0)).unwrap();
        match artifact.seal() {
            Err(SealError::AmbiguousName(name)) => assert_eq!(name, "t"),
            other => panic!("expected ambiguity refusal, got {other:?}"),
        }
    }

    #[test]
    fn fuel_exhaustion_points_match_in_deep_loops() {
        let src = "void compute(double x) {\n\
                   for (int i = 0; i < 20; ++i) {\n\
                     for (int j = 0; j < 20; ++j) { comp += x; }\n\
                   }\n\
                   }";
        let program = parse_compute(src).unwrap();
        let artifact =
            compile(&program, CompilerConfig::new(CompilerId::Clang, OptLevel::O2)).unwrap();
        let sealed = artifact.seal().unwrap();
        let inputs = InputSet::new().with("x", InputValue::Fp(1.0));
        let total = sealed.execute(&inputs).unwrap().steps;
        let mut scratch = ExecScratch::new();
        for fuel in [0, 1, 2, 20, 21, 22, 41, total - 1, total, total + 1] {
            let a = artifact.execute_with_fuel(&inputs, fuel);
            let b = sealed.execute_into(&inputs, fuel, &mut scratch);
            match (&a, &b) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.bits(), y.bits());
                    assert_eq!(x.steps, y.steps);
                }
                (Err(x), Err(y)) => assert_eq!(x, y),
                other => panic!("fuel {fuel}: {other:?}"),
            }
        }
    }
}
