//! The seal-time bytecode optimizer: peephole passes over a flattened
//! [`SealedProgram`] that shrink the executed instruction stream without
//! moving a single observable bit.
//!
//! ## Why this is safe
//!
//! The VM ≡ interpreter pin (see [`crate::bytecode`]) constrains three
//! observables: result value bits, step counts, and `ExecError` variants
//! including the exact fuel-exhaustion point. Fuel and steps are consumed
//! **only** by `Burn` instructions, and runtime errors can arise **only**
//! from `LoadElem` / `StoreElem` (bounds checks) and parameter binding.
//! Every pass below therefore obeys two structural rules:
//!
//! 1. `Burn` instructions are never inserted, deleted, or reordered
//!    relative to the error-capable instructions (the compaction helper
//!    refuses to delete anything but pure register-writing instructions);
//! 2. any rewrite of a pure instruction reproduces the VM's arithmetic
//!    *exactly* — constant folding calls the same `round`/`finish`
//!    helpers and the same math-library instance the VM would dispatch
//!    into at run time, so a folded `Const` carries the bit pattern the
//!    original sequence would have computed.
//!
//! A pass that cannot prove those properties for a particular program
//! refuses **per pass** (returning the stream unchanged) rather than
//! bending semantics — e.g. dead-register elimination sits out programs
//! whose register file exceeds its 128-bit liveness sets. The driver
//! additionally asserts fuel-neutrality (burn count invariance) after the
//! pipeline as a hard backstop.
//!
//! ## The passes
//!
//! * **Constant-index folding** — normalizes `SlotIndex` forms whose
//!   runtime evaluation is independent of the int slot (`i % m` with
//!   `m <= 1` is always 0; `i + 0` is just `i`).
//! * **Constant propagation** — tracks registers holding known constants
//!   through straight-line regions (invalidated at every jump target) and
//!   folds `Neg`/`Bin`/`Fma`/`Recip`/`Call` instructions whose operands
//!   are all known into pre-computed `Const`s. This reaches what the
//!   tree-level `const_fold` pass cannot: `O0`/`O0_nofma` configurations
//!   (which disable tree folding to model real `-O0`) and post-lowering
//!   shapes like compound-assignment chains. Identical bits by
//!   construction — the fold *is* the VM's evaluation, run at seal time.
//! * **Jump threading** — retargets jumps whose destination is another
//!   unconditional jump, and deletes jumps to the next instruction.
//! * **Dead-register elimination** — backward liveness over the bytecode
//!   CFG; pure register writes whose destination is never read are
//!   deleted (array accesses are *not* pure — their bounds checks are
//!   observable — and are never touched).
//! * **Register coalescing** — renumbers the surviving registers densely,
//!   shrinking the `ExecScratch` register file the VM zero-fills per run.
//!   (Monotone renumbering keeps `Call` argument blocks contiguous.)

use llm4fp_telemetry::{keys, Telemetry};

use crate::bytecode::{Instr, SealedProgram, SlotIndex};

/// Whether sealing runs the post-flatten peephole optimizer. The two
/// modes are pinned bit-identical (the optimizer preserves the VM ≡
/// interpreter contract), so this is a performance knob, not a semantic
/// one — `Raw` exists for A/B benchmarking (`--no-seal-opt`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SealMode {
    /// Flatten, then run the peephole pipeline (the default).
    #[default]
    Optimized,
    /// Flatten only, as PR 3 sealed.
    Raw,
}

// Hand-written (de)serialization: a missing/null field decodes as
// `Optimized`, so campaign configs persisted before the optimizer existed
// keep loading (and resuming) with today's default behaviour.
impl serde::Serialize for SealMode {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(
            match self {
                SealMode::Optimized => "Optimized",
                SealMode::Raw => "Raw",
            }
            .to_string(),
        )
    }
}

impl serde::Deserialize for SealMode {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Null => Ok(SealMode::Optimized),
            serde::Value::Str(s) if s == "Optimized" => Ok(SealMode::Optimized),
            serde::Value::Str(s) if s == "Raw" => Ok(SealMode::Raw),
            _ => Err(serde::Error::msg("unexpected value for SealMode")),
        }
    }
}

/// Reusable work buffers for the optimizer. Sealing sits on the campaign
/// hot path (once per program × pipeline class); threading one scratch
/// through a worker loop makes repeated optimization allocation-free.
#[derive(Debug, Default)]
pub struct SealScratch {
    /// Known constant per register during propagation.
    consts: Vec<Option<f64>>,
    /// Jump-target marks per instruction.
    label: Vec<bool>,
    /// Survival marks for the compaction helper.
    keep: Vec<bool>,
    /// Old-index → new-index prefix counts for target remapping.
    remap: Vec<u32>,
    /// Per-instruction live-in register sets (bit per register).
    live_in: Vec<u128>,
    /// Old-register → new-register map for coalescing.
    reg_map: Vec<u16>,
}

impl SealScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

/// What one optimization run did (reported by benches and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeepholeStats {
    pub instrs_before: usize,
    pub instrs_after: usize,
    pub regs_before: usize,
    pub regs_after: usize,
}

/// Run the full peephole pipeline over a freshly flattened program.
///
/// One forward pass folds everything foldable (the constants map updates
/// as the fold proceeds, so chains collapse in a single sweep); one
/// backward strong-liveness sweep then removes the folds' entire dead
/// feeder chains. Sealing is itself a hot path (once per program ×
/// pipeline class in a campaign), so each pass is skipped outright when
/// its precondition is absent: a stream with no `Const` cannot fold, a
/// stream where nothing folded has no dead code (the flattener never
/// emits any), and registers only come free when instructions were
/// removed.
pub fn optimize(program: &mut SealedProgram, scratch: &mut SealScratch) -> PeepholeStats {
    optimize_with(program, scratch, &Telemetry::disabled())
}

/// [`optimize`] with per-pass telemetry spans (timings land under the
/// `peephole.*` keys). The disabled handle reduces each span to a single
/// branch, so [`optimize`] delegates here at zero cost.
pub fn optimize_with(
    program: &mut SealedProgram,
    scratch: &mut SealScratch,
    telemetry: &Telemetry,
) -> PeepholeStats {
    let instrs_before = program.instrs.len();
    let regs_before = program.n_regs;
    let burns_before = count_burns(&program.instrs);

    let has_consts = {
        let _span = telemetry.span(keys::SPAN_PEEPHOLE_CENSUS);
        census(program, scratch)
    };
    let folded = has_consts && {
        let _span = telemetry.span(keys::SPAN_PEEPHOLE_PROPAGATE);
        propagate_constants(program, scratch)
    };
    if folded {
        {
            let _span = telemetry.span(keys::SPAN_PEEPHOLE_DCE);
            eliminate_dead(program, scratch);
        }
        let _span = telemetry.span(keys::SPAN_PEEPHOLE_COALESCE);
        coalesce_registers(program, scratch);
    }
    // Last: threading only ever removes unconditional jumps to the next
    // instruction (structured flattening emits no jump chains, but DCE
    // can empty the region an `if` jumps over), which cannot expose new
    // folds or dead registers.
    {
        let _span = telemetry.span(keys::SPAN_PEEPHOLE_THREAD_JUMPS);
        thread_jumps(program, scratch);
    }

    // Hard backstop for the bit-exactness pin: fuel burns are sacrosanct.
    assert_eq!(count_burns(&program.instrs), burns_before, "peephole pipeline altered fuel burns");
    PeepholeStats {
        instrs_before,
        instrs_after: program.instrs.len(),
        regs_before,
        regs_after: program.n_regs,
    }
}

fn count_burns(instrs: &[Instr]) -> usize {
    instrs.iter().filter(|i| matches!(i, Instr::Burn)).count()
}

// ---------------------------------------------------------------------------
// constant-index folding
// ---------------------------------------------------------------------------

/// Normalize index forms whose evaluation cannot depend on the int slot.
/// Mirrors [`SlotIndex::eval`]: `rem_euclid(m)` is identically 0 for
/// `m <= 1` (the VM special-cases `m <= 0` to 0), and a zero offset reads
/// the slot directly.
fn fold_index(index: SlotIndex) -> Option<SlotIndex> {
    match index {
        SlotIndex::Mod { modulus, .. } if modulus <= 1 => Some(SlotIndex::Const(0)),
        SlotIndex::Offset { slot, offset: 0 } => Some(SlotIndex::Var(slot)),
        _ => None,
    }
}

/// The shared first sweep: folds constant-evaluable indexes, marks jump
/// targets into `scratch.label` (consumed by constant propagation), and
/// reports whether the stream contains any `Const` instruction at all
/// (without one, constant propagation has nothing to seed from and is
/// skipped entirely).
fn census(program: &mut SealedProgram, scratch: &mut SealScratch) -> bool {
    let label = &mut scratch.label;
    label.clear();
    label.resize(program.instrs.len(), false);
    let mut has_consts = false;
    for instr in &mut program.instrs {
        match instr {
            Instr::LoadElem { index, .. } | Instr::StoreElem { index, .. } => {
                if let Some(folded) = fold_index(*index) {
                    *index = folded;
                }
            }
            Instr::Const { .. } => has_consts = true,
            Instr::Jump { target }
            | Instr::JumpIfIntGe { target, .. }
            | Instr::JumpCmpFalse { target, .. } => label[*target as usize] = true,
            _ => {}
        }
    }
    has_consts
}

// ---------------------------------------------------------------------------
// constant propagation
// ---------------------------------------------------------------------------

/// Forward propagation of known register constants through straight-line
/// regions. Every fold replays the VM's own arithmetic (same `finish`
/// rounding/flushing, same math-library instance), so replacing the
/// sequence with a `Const` is bit-invisible. State resets at every jump
/// target ([`census`] marked them) — the conservative join for merge
/// points and loop heads.
fn propagate_constants(program: &mut SealedProgram, scratch: &mut SealScratch) -> bool {
    scratch.consts.clear();
    scratch.consts.resize(program.n_regs, None);
    let consts = &mut scratch.consts;
    let mut changed = false;

    for i in 0..program.instrs.len() {
        if scratch.label[i] {
            consts.iter_mut().for_each(|c| *c = None);
        }
        match program.instrs[i] {
            Instr::Const { dst, value } => consts[dst as usize] = Some(value),
            Instr::Neg { dst, src } => {
                let folded = consts[src as usize].map(|v| -v);
                if let Some(value) = folded {
                    program.instrs[i] = Instr::Const { dst, value };
                    changed = true;
                }
                consts[dst as usize] = folded;
            }
            Instr::Bin { op, dst, lhs, rhs } => {
                let folded = match (consts[lhs as usize], consts[rhs as usize]) {
                    (Some(a), Some(b)) => Some(program.eval_bin(op, a, b)),
                    _ => None,
                };
                if let Some(value) = folded {
                    program.instrs[i] = Instr::Const { dst, value };
                    changed = true;
                }
                consts[dst as usize] = folded;
            }
            Instr::Fma { dst, a, b, c } => {
                let folded = match (consts[a as usize], consts[b as usize], consts[c as usize]) {
                    (Some(a), Some(b), Some(c)) => Some(program.eval_fma(a, b, c)),
                    _ => None,
                };
                if let Some(value) = folded {
                    program.instrs[i] = Instr::Const { dst, value };
                    changed = true;
                }
                consts[dst as usize] = folded;
            }
            Instr::Recip { dst, src, approx } => {
                let folded = consts[src as usize].map(|v| program.eval_recip(approx, v));
                if let Some(value) = folded {
                    program.instrs[i] = Instr::Const { dst, value };
                    changed = true;
                }
                consts[dst as usize] = folded;
            }
            Instr::Call { func, dst, base, arity } => {
                // The VM reads exactly `arity` argument registers and
                // substitutes 0.0 for the rest — replicated here.
                let a = consts[base as usize];
                let b = if arity > 1 { consts[base as usize + 1] } else { Some(0.0) };
                let c = if arity > 2 { consts[base as usize + 2] } else { Some(0.0) };
                let folded = match (a, b, c) {
                    (Some(a), Some(b), Some(c)) => Some(program.eval_call(func, a, b, c)),
                    _ => None,
                };
                if let Some(value) = folded {
                    program.instrs[i] = Instr::Const { dst, value };
                    changed = true;
                }
                consts[dst as usize] = folded;
            }
            Instr::LoadScalar { dst, .. }
            | Instr::LoadInt { dst, .. }
            | Instr::LoadElem { dst, .. } => consts[dst as usize] = None,
            Instr::Burn
            | Instr::StoreScalar { .. }
            | Instr::StoreElem { .. }
            | Instr::DeclArray { .. }
            | Instr::SetInt { .. }
            | Instr::IncInt { .. }
            | Instr::JumpIfIntGe { .. }
            | Instr::JumpCmpFalse { .. }
            | Instr::Jump { .. }
            | Instr::Halt => {}
        }
    }
    changed
}

// ---------------------------------------------------------------------------
// jump threading
// ---------------------------------------------------------------------------

/// Follow a chain of unconditional jumps to its final destination (with a
/// hop bound in case of degenerate cycles, which structured flattening
/// never emits).
fn final_target(instrs: &[Instr], mut target: u32) -> u32 {
    let mut hops = 0;
    while let Instr::Jump { target: next } = instrs[target as usize] {
        if next == target || hops > instrs.len() {
            break;
        }
        target = next;
        hops += 1;
    }
    target
}

fn thread_jumps(program: &mut SealedProgram, scratch: &mut SealScratch) -> bool {
    let mut changed = false;
    let mut jump_to_next = false;
    for i in 0..program.instrs.len() {
        let current = match program.instrs[i] {
            Instr::Jump { target }
            | Instr::JumpIfIntGe { target, .. }
            | Instr::JumpCmpFalse { target, .. } => target,
            _ => continue,
        };
        let resolved = final_target(&program.instrs, current);
        if resolved != current {
            match &mut program.instrs[i] {
                Instr::Jump { target }
                | Instr::JumpIfIntGe { target, .. }
                | Instr::JumpCmpFalse { target, .. } => *target = resolved,
                _ => unreachable!("matched a jump above"),
            }
            changed = true;
        }
        jump_to_next |=
            matches!(program.instrs[i], Instr::Jump { target } if target as usize == i + 1);
    }
    // Unconditional jumps to the next instruction are no-ops (no fuel is
    // burnt by control flow); delete them. Structured flattening emits
    // none, so the compaction vector is only built when one exists.
    if jump_to_next {
        let keep = &mut scratch.keep;
        keep.clear();
        keep.extend(program.instrs.iter().enumerate().map(
            |(i, instr)| !matches!(instr, Instr::Jump { target } if *target as usize == i + 1),
        ));
        remove_marked(program, scratch);
        changed = true;
    }
    changed
}

// ---------------------------------------------------------------------------
// dead-register elimination
// ---------------------------------------------------------------------------

/// The register an instruction writes, if any.
fn def_reg(instr: Instr) -> Option<u16> {
    match instr {
        Instr::Const { dst, .. }
        | Instr::LoadScalar { dst, .. }
        | Instr::LoadInt { dst, .. }
        | Instr::LoadElem { dst, .. }
        | Instr::Neg { dst, .. }
        | Instr::Bin { dst, .. }
        | Instr::Fma { dst, .. }
        | Instr::Recip { dst, .. }
        | Instr::Call { dst, .. } => Some(dst),
        _ => None,
    }
}

/// The registers an instruction reads, as a 128-bit set (callers refuse
/// wider register files before using this).
fn use_set(instr: Instr) -> u128 {
    let bit = |r: u16| 1u128 << r;
    match instr {
        Instr::Neg { src, .. } | Instr::Recip { src, .. } => bit(src),
        Instr::Bin { lhs, rhs, .. } => bit(lhs) | bit(rhs),
        Instr::Fma { a, b, c, .. } => bit(a) | bit(b) | bit(c),
        Instr::Call { base, arity, .. } => {
            let mut set = bit(base);
            if arity > 1 {
                set |= bit(base + 1);
            }
            if arity > 2 {
                set |= bit(base + 2);
            }
            set
        }
        Instr::StoreScalar { src, .. } | Instr::StoreElem { src, .. } => bit(src),
        Instr::JumpCmpFalse { lhs, rhs, .. } => bit(lhs) | bit(rhs),
        _ => 0,
    }
}

/// True for instructions whose only effect is writing their destination
/// register: deleting one (when the destination is dead) is invisible to
/// the pin. `LoadElem` is deliberately excluded — its bounds check is an
/// observable error source.
fn removable(instr: Instr) -> bool {
    matches!(
        instr,
        Instr::Const { .. }
            | Instr::LoadScalar { .. }
            | Instr::LoadInt { .. }
            | Instr::Neg { .. }
            | Instr::Bin { .. }
            | Instr::Fma { .. }
            | Instr::Recip { .. }
            | Instr::Call { .. }
    )
}

/// Delete pure register writes whose destination is dead. Refuses (pass
/// skipped, not program) when the register file exceeds the 128-bit
/// liveness sets.
///
/// The dataflow is *strong* liveness: an instruction that is dead and
/// removable contributes no uses, so a fold's entire feeder chain dies in
/// one converged fixpoint -- no outer pipeline re-iteration. Backward
/// sweeps converge in one pass for straight-line code plus one per
/// loop-carried level (sets grow monotonically, so convergence is
/// guaranteed).
fn eliminate_dead(program: &mut SealedProgram, scratch: &mut SealScratch) -> bool {
    if program.n_regs > 128 {
        return false;
    }
    let n = program.instrs.len();
    scratch.live_in.clear();
    scratch.live_in.resize(n, 0);
    loop {
        let mut updated = false;
        for i in (0..n).rev() {
            let instr = program.instrs[i];
            let out = live_out(&program.instrs, &scratch.live_in, i);
            let live = match def_reg(instr) {
                Some(d) if removable(instr) && out & (1u128 << d) == 0 => {
                    // Dead on every path: it will be deleted, so its own
                    // reads keep nothing alive.
                    out
                }
                Some(d) => (out & !(1u128 << d)) | use_set(instr),
                None => out | use_set(instr),
            };
            if live != scratch.live_in[i] {
                scratch.live_in[i] = live;
                updated = true;
            }
        }
        if !updated {
            break;
        }
    }
    let keep = &mut scratch.keep;
    keep.clear();
    keep.reserve(n);
    let mut removed = false;
    for i in 0..n {
        let instr = program.instrs[i];
        let dead = removable(instr)
            && def_reg(instr).is_some_and(|d| {
                live_out(&program.instrs, &scratch.live_in, i) & (1u128 << d) == 0
            });
        keep.push(!dead);
        removed |= dead;
    }
    if !removed {
        return false;
    }
    remove_marked(program, scratch);
    true
}

/// Live-out of instruction `i` given the current live-in sets.
fn live_out(instrs: &[Instr], live_in: &[u128], i: usize) -> u128 {
    match instrs[i] {
        Instr::Halt => 0,
        Instr::Jump { target } => live_in[target as usize],
        Instr::JumpIfIntGe { target, .. } | Instr::JumpCmpFalse { target, .. } => {
            live_in[i + 1] | live_in[target as usize]
        }
        _ => live_in[i + 1],
    }
}

/// Compact the instruction stream to the `scratch.keep` marks, remapping
/// every jump target. A deleted instruction that is itself a jump target
/// remaps to the next surviving instruction — sound because only dead
/// pure register writes are ever deleted (dead along *every* path, the
/// jump edge included). Burns are structurally undeletable.
fn remove_marked(program: &mut SealedProgram, scratch: &mut SealScratch) {
    let keep = &scratch.keep;
    debug_assert_eq!(keep.len(), program.instrs.len());
    debug_assert!(
        keep.iter()
            .zip(&program.instrs)
            .all(|(&k, &i)| k || removable(i) || matches!(i, Instr::Jump { .. })),
        "attempted to delete an effectful instruction"
    );
    let remap = &mut scratch.remap;
    remap.clear();
    remap.reserve(keep.len() + 1);
    let mut new_index = 0u32;
    for &k in keep {
        remap.push(new_index);
        new_index += u32::from(k);
    }
    remap.push(new_index);
    for instr in &mut program.instrs {
        if let Instr::Jump { target }
        | Instr::JumpIfIntGe { target, .. }
        | Instr::JumpCmpFalse { target, .. } = instr
        {
            *target = remap[*target as usize];
        }
    }
    let mut index = 0;
    program.instrs.retain(|_| {
        let kept = keep[index];
        index += 1;
        kept
    });
}

// ---------------------------------------------------------------------------
// register coalescing
// ---------------------------------------------------------------------------

/// Renumber the registers that survive into a dense range, shrinking the
/// register file the VM allocates (and zero-fills) per run. The map is
/// monotone, so `Call` argument blocks — consecutive register indices,
/// all read by the call — stay consecutive after renumbering.
fn coalesce_registers(program: &mut SealedProgram, scratch: &mut SealScratch) -> bool {
    let reg_map = &mut scratch.reg_map;
    reg_map.clear();
    reg_map.resize(program.n_regs, u16::MAX);
    let mut mark = |r: u16| reg_map[r as usize] = 0;
    for &instr in &program.instrs {
        if let Some(d) = def_reg(instr) {
            mark(d);
        }
        match instr {
            Instr::Neg { src, .. } | Instr::Recip { src, .. } => mark(src),
            Instr::Bin { lhs, rhs, .. } => {
                mark(lhs);
                mark(rhs);
            }
            Instr::Fma { a, b, c, .. } => {
                mark(a);
                mark(b);
                mark(c);
            }
            Instr::Call { base, arity, .. } => {
                for offset in 0..arity.max(1) as u16 {
                    mark(base + offset);
                }
            }
            Instr::StoreScalar { src, .. } | Instr::StoreElem { src, .. } => mark(src),
            Instr::JumpCmpFalse { lhs, rhs, .. } => {
                mark(lhs);
                mark(rhs);
            }
            _ => {}
        }
    }
    let mut next = 0u16;
    for slot in reg_map.iter_mut() {
        if *slot != u16::MAX {
            *slot = next;
            next += 1;
        }
    }
    if next as usize == program.n_regs {
        return false;
    }
    let map = |r: &mut u16| *r = reg_map[*r as usize];
    for instr in &mut program.instrs {
        match instr {
            Instr::Const { dst, .. }
            | Instr::LoadScalar { dst, .. }
            | Instr::LoadInt { dst, .. }
            | Instr::LoadElem { dst, .. } => map(dst),
            Instr::Neg { dst, src } | Instr::Recip { dst, src, .. } => {
                map(dst);
                map(src);
            }
            Instr::Bin { dst, lhs, rhs, .. } => {
                map(dst);
                map(lhs);
                map(rhs);
            }
            Instr::Fma { dst, a, b, c } => {
                map(dst);
                map(a);
                map(b);
                map(c);
            }
            Instr::Call { dst, base, .. } => {
                map(dst);
                map(base);
            }
            Instr::StoreScalar { src, .. } | Instr::StoreElem { src, .. } => map(src),
            Instr::JumpCmpFalse { lhs, rhs, .. } => {
                map(lhs);
                map(rhs);
            }
            Instr::Burn
            | Instr::DeclArray { .. }
            | Instr::SetInt { .. }
            | Instr::IncInt { .. }
            | Instr::JumpIfIntGe { .. }
            | Instr::Jump { .. }
            | Instr::Halt => {}
        }
    }
    program.n_regs = next as usize;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::config::{CompilerConfig, CompilerId, OptLevel};
    use crate::interp::DEFAULT_FUEL;
    use crate::vm::ExecScratch;
    use llm4fp_fpir::{parse_compute, InputSet, InputValue};

    fn seal_pair(src: &str, config: CompilerConfig) -> (SealedProgram, SealedProgram) {
        let program = parse_compute(src).unwrap();
        let artifact = compile(&program, config).unwrap();
        let raw = artifact.seal_with(SealMode::Raw).unwrap();
        let optimized = artifact.seal_with(SealMode::Optimized).unwrap();
        (raw, optimized)
    }

    fn assert_equivalent(raw: &SealedProgram, optimized: &SealedProgram, inputs: &InputSet) {
        let mut scratch = ExecScratch::new();
        let a = raw.execute_into(inputs, DEFAULT_FUEL, &mut scratch);
        let b = optimized.execute_into(inputs, DEFAULT_FUEL, &mut scratch);
        match (&a, &b) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.bits(), y.bits());
                assert_eq!(x.steps, y.steps);
            }
            other => panic!("raw and optimized disagree: {other:?}"),
        }
        // Starved-fuel parity at every budget below completion.
        let steps = a.unwrap().steps;
        for fuel in 0..steps.min(48) {
            assert_eq!(
                raw.execute_into(inputs, fuel, &mut scratch),
                optimized.execute_into(inputs, fuel, &mut scratch),
                "fuel {fuel}"
            );
        }
    }

    #[test]
    fn constant_chains_fold_to_single_consts_at_o0() {
        // O0_nofma disables the tree-level const_fold pass, so the raw
        // stream computes 1.5 + 2.5 + 0.25 at run time — the bytecode
        // folder collapses it regardless of optimization level.
        let src = "void compute(double x) { comp = 1.5 + 2.5 + 0.25; comp += x; }";
        let strict = CompilerConfig::new(CompilerId::Gcc, OptLevel::O0Nofma);
        let (raw, optimized) = seal_pair(src, strict);
        assert!(
            optimized.instruction_count() < raw.instruction_count(),
            "{} !< {}",
            optimized.instruction_count(),
            raw.instruction_count()
        );
        // The folded chain needs exactly: Burn, Const, StoreScalar,
        // Burn, Load, Load, Bin, Store, Halt = 9 instructions.
        assert_eq!(optimized.instruction_count(), 9);
        assert!(optimized.register_count() <= raw.register_count());
        let inputs = InputSet::new().with("x", InputValue::Fp(0.375));
        assert_equivalent(&raw, &optimized, &inputs);
    }

    #[test]
    fn math_calls_on_constants_fold_through_the_sealed_library() {
        let src = "void compute(double x) { comp = sin(0.5) * x + exp(2.0); }";
        for config in CompilerConfig::full_matrix() {
            let (raw, optimized) = seal_pair(src, config);
            assert!(
                optimized.instruction_count() <= raw.instruction_count(),
                "{config}: optimizer grew the stream"
            );
            let inputs = InputSet::new().with("x", InputValue::Fp(1.25));
            assert_equivalent(&raw, &optimized, &inputs);
        }
    }

    #[test]
    fn loops_arrays_and_branches_survive_optimization_bit_for_bit() {
        let src = "void compute(double *a, double s, int n) {\n\
                   double acc = 2.0 * 3.0;\n\
                   double buf[3] = {1.5, -2.25};\n\
                   for (int i = 0; i < 4; ++i) {\n\
                     acc += a[i] * s + sin(a[i]);\n\
                     buf[i % 1] = acc / (s + 2.0);\n\
                   }\n\
                   if (acc > 1.0) { comp = acc - buf[0]; }\n\
                   if (acc <= 1.0) { comp = acc + buf[n % 3] * exp(s); }\n\
                   }";
        let inputs = InputSet::new()
            .with("a", InputValue::FpArray(vec![0.5, -1.25, 2.0, 0.75]))
            .with("s", InputValue::Fp(0.375))
            .with("n", InputValue::Int(7));
        for config in CompilerConfig::full_matrix() {
            let (raw, optimized) = seal_pair(src, config);
            assert!(optimized.instruction_count() <= raw.instruction_count(), "{config}");
            assert_equivalent(&raw, &optimized, &inputs);
        }
    }

    #[test]
    fn out_of_bounds_accesses_fail_identically_after_optimization() {
        // The failing store's expression is constant-foldable; the access
        // itself must survive and fail at the same executed step.
        let src = "void compute(double x) {\n\
                   double buf[2] = {1.0};\n\
                   buf[1] = 2.0 + 3.0;\n\
                   comp = x;\n\
                   }";
        let program = parse_compute(src).unwrap();
        let artifact =
            compile(&program, CompilerConfig::new(CompilerId::Clang, OptLevel::O0)).unwrap();
        let raw = artifact.seal_with(SealMode::Raw).unwrap();
        let optimized = artifact.seal_with(SealMode::Optimized).unwrap();
        let inputs = InputSet::new().with("x", InputValue::Fp(1.0));
        assert_eq!(raw.execute(&inputs), optimized.execute(&inputs));
    }

    #[test]
    fn register_files_shrink_on_deep_constant_expressions() {
        // A deep right-leaning constant tree forces the raw stream to a
        // tall register stack; folding collapses it to one register-file
        // slot beyond what the variable terms need.
        let src = "void compute(double x) {\n\
                   comp = x + (1.0 + (2.0 + (3.0 + (4.0 + 5.0))));\n\
                   }";
        let strict = CompilerConfig::new(CompilerId::Gcc, OptLevel::O0Nofma);
        let (raw, optimized) = seal_pair(src, strict);
        assert!(raw.register_count() >= 5, "raw file unexpectedly small");
        assert_eq!(optimized.register_count(), 2);
        let inputs = InputSet::new().with("x", InputValue::Fp(0.5));
        assert_equivalent(&raw, &optimized, &inputs);
    }

    #[test]
    fn index_normalization_rewrites_mod_one_and_offset_zero() {
        assert_eq!(fold_index(SlotIndex::Mod { slot: 3, modulus: 1 }), Some(SlotIndex::Const(0)));
        assert_eq!(fold_index(SlotIndex::Mod { slot: 3, modulus: 0 }), Some(SlotIndex::Const(0)));
        assert_eq!(fold_index(SlotIndex::Offset { slot: 2, offset: 0 }), Some(SlotIndex::Var(2)));
        assert_eq!(fold_index(SlotIndex::Mod { slot: 3, modulus: 4 }), None);
        assert_eq!(fold_index(SlotIndex::Var(1)), None);
    }

    #[test]
    fn stats_report_the_shrinkage() {
        let src = "void compute(double x) { comp = 1.0 + 2.0 + x; }";
        let program = parse_compute(src).unwrap();
        let artifact =
            compile(&program, CompilerConfig::new(CompilerId::Gcc, OptLevel::O0Nofma)).unwrap();
        let mut sealed = artifact.seal_with(SealMode::Raw).unwrap();
        let stats = optimize(&mut sealed, &mut SealScratch::new());
        // Raw: Burn, Const 1.0, Const 2.0, Add, Load x, Add, Store, Halt.
        // Folded: the constant pair collapses into one preloaded Const.
        assert_eq!(stats.instrs_before, 8);
        assert_eq!(stats.instrs_after, 6);
        assert!(stats.regs_after <= stats.regs_before);
        assert_eq!(sealed.instruction_count(), stats.instrs_after);
    }

    #[test]
    fn seal_modes_round_trip_through_serde_and_null_defaults_to_optimized() {
        use serde::{Deserialize, Serialize};
        for mode in [SealMode::Raw, SealMode::Optimized] {
            assert_eq!(SealMode::from_value(&mode.to_value()).unwrap(), mode);
        }
        // Pre-optimizer campaign configs have no seal-mode field; they
        // must decode to today's default.
        assert_eq!(SealMode::from_value(&serde::Value::Null).unwrap(), SealMode::Optimized);
        assert!(SealMode::from_value(&serde::Value::Str("bogus".into())).is_err());
    }
}
