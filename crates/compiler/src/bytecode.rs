//! The sealing pass: one-time compilation of an optimized body into a
//! register-machine bytecode program.
//!
//! Sealing resolves every scalar, integer and array name to a dense slot
//! index via a compile-time symbol table (scoped exactly like the static
//! validator scopes names), flattens the statement tree into a linear
//! `Instr` sequence with structured jumps for conditionals and loops, and
//! pre-rounds every constant (and array initializer) to the program
//! precision. The result — a [`SealedProgram`] — is executed by the
//! register VM in [`crate::vm`] with reusable scratch buffers: no hash
//! maps, no string comparisons, no per-run allocation.
//!
//! ## Matrix-shared layout
//!
//! The work splits into two phases. A `SealPlan` performs everything
//! that is *configuration-independent* — the assigned-name census, the
//! scalar/int/array slot layout, the parameter binding plan, the name
//! pool and the pre-rounded initializer pool — once per program. (The
//! optimization pass pipeline rewrites expressions only; statement
//! structure, assignment targets, loop variables and array declarations
//! are identical under every configuration, so one layout serves the
//! whole 18-configuration matrix.) A `Flattener` then emits the `Instr`
//! stream for one optimized body, which *is* configuration-dependent.
//! The layout lands in an [`Arc<SealLayout>`] shared by every
//! [`SealedProgram`] of the matrix, so sealing a full matrix allocates
//! the string tables and initializer pools once instead of once per
//! configuration — see [`crate::Frontend::seal_matrix`].
//!
//! ## Bit-exactness contract
//!
//! The sealed program is pinned to the reference interpreter
//! ([`crate::interp::Interpreter`]): for every program that passed
//! validation (the only programs [`crate::compile()`] produces), execution
//! yields the same [`crate::interp::ExecResult`] value bits, the same step
//! count, and the same [`crate::interp::ExecError`] variants — including
//! the exact statement/iteration at which fuel runs out, because `Burn`
//! instructions are emitted at precisely the interpreter's burn points
//! (once per statement, once per loop iteration, in the same order). The
//! seal-time optimizer ([`crate::peephole`]) preserves the same contract
//! instruction stream by instruction stream.
//!
//! Name resolution is static while the interpreter's is dynamic; the two
//! agree for every validated program except one pathological corner: a
//! name that is *both* a loop variable in scope and a scalar assignment
//! target elsewhere in the program (the interpreter then picks dynamically
//! based on which assignments have executed). Sealing refuses such
//! programs with [`SealError::AmbiguousName`] and callers fall back to the
//! reference interpreter, so bit-identity holds universally rather than
//! merely almost always.

use std::sync::Arc;

use llm4fp_fpir::{BinOp, CmpOp, IndexExpr, MathFunc, Param, ParamType, Precision};
use llm4fp_mathlib::{FastMathLib, MathLib};

use crate::config::Semantics;
use crate::ir::{OExpr, OStmt};

/// Round an exact `f64` to a program precision — the single
/// implementation of the rounding convention, shared by the seal-time
/// constant pre-rounding (plan init pools, `Const` operands) and the
/// VM's run-time `round` (see `SealedProgram::round` in [`crate::vm`]).
#[inline(always)]
pub(crate) fn round_to(precision: Precision, v: f64) -> f64 {
    match precision {
        Precision::F64 => v,
        Precision::F32 => v as f32 as f64,
    }
}

/// Why a program could not be sealed. Sealing failures are not errors of
/// the pipeline: callers fall back to the reference interpreter, which
/// reproduces whatever runtime behaviour the program actually has.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SealError {
    /// A name is visible both as an in-scope integer (loop variable or int
    /// parameter) and as a scalar assignment target somewhere in the
    /// program; the interpreter resolves such reads dynamically.
    AmbiguousName(String),
    /// A scalar variable is read without any reaching definition (the
    /// validator rejects such programs; they never reach sealing through
    /// [`crate::compile()`]).
    UnresolvedVariable(String),
    /// An array is accessed outside the scope of any declaration.
    UnresolvedArray(String),
    /// The program exceeds a bytecode encoding limit (slot or register
    /// indices beyond `u16`, more than `u32::MAX` instructions).
    TooComplex(&'static str),
}

impl std::fmt::Display for SealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SealError::AmbiguousName(n) => {
                write!(f, "name `{n}` is dynamically ambiguous between int and scalar")
            }
            SealError::UnresolvedVariable(n) => write!(f, "no reaching definition for `{n}`"),
            SealError::UnresolvedArray(n) => write!(f, "array `{n}` is not in scope"),
            SealError::TooComplex(what) => write!(f, "program exceeds bytecode limits: {what}"),
        }
    }
}

impl std::error::Error for SealError {}

/// A floating-point register index.
pub(crate) type Reg = u16;

/// An array index expression with its variable resolved to an int slot (or
/// folded to a constant when no variable is referenced / in scope, exactly
/// mirroring the interpreter's `ints.get(v).unwrap_or(&0)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum SlotIndex {
    Const(i64),
    Var(u16),
    Offset { slot: u16, offset: i64 },
    Mod { slot: u16, modulus: i64 },
}

impl SlotIndex {
    /// Evaluate against the integer slot file. Mirrors [`IndexExpr::eval`].
    #[inline]
    pub(crate) fn eval(self, ints: &[i64]) -> i64 {
        match self {
            SlotIndex::Const(k) => k,
            SlotIndex::Var(slot) => ints[slot as usize],
            SlotIndex::Offset { slot, offset } => ints[slot as usize] + offset,
            SlotIndex::Mod { slot, modulus } => {
                if modulus <= 0 {
                    0
                } else {
                    ints[slot as usize].rem_euclid(modulus)
                }
            }
        }
    }
}

/// One bytecode instruction of the register machine.
///
/// Expression instructions write a floating-point register; statement
/// instructions move values between registers and the scalar / integer /
/// array slot files. `Burn` consumes one unit of fuel (and counts one
/// step), placed exactly where the reference interpreter burns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Instr {
    Burn,
    Const {
        dst: Reg,
        value: f64,
    },
    LoadScalar {
        dst: Reg,
        slot: u16,
    },
    LoadInt {
        dst: Reg,
        slot: u16,
    },
    LoadElem {
        dst: Reg,
        array: u16,
        index: SlotIndex,
    },
    Neg {
        dst: Reg,
        src: Reg,
    },
    Bin {
        op: BinOp,
        dst: Reg,
        lhs: Reg,
        rhs: Reg,
    },
    Fma {
        dst: Reg,
        a: Reg,
        b: Reg,
        c: Reg,
    },
    Recip {
        dst: Reg,
        src: Reg,
        approx: bool,
    },
    Call {
        func: MathFunc,
        dst: Reg,
        base: Reg,
        arity: u8,
    },
    StoreScalar {
        slot: u16,
        src: Reg,
    },
    StoreElem {
        array: u16,
        index: SlotIndex,
        src: Reg,
    },
    /// Reset a local array from the pre-rounded initializer pool
    /// (`init .. init + len(array)`).
    DeclArray {
        array: u16,
        init: u32,
    },
    SetInt {
        slot: u16,
        value: i64,
    },
    IncInt {
        slot: u16,
    },
    JumpIfIntGe {
        slot: u16,
        bound: i64,
        target: u32,
    },
    JumpCmpFalse {
        op: CmpOp,
        lhs: Reg,
        rhs: Reg,
        target: u32,
    },
    Jump {
        target: u32,
    },
    Halt,
}

/// How one `compute` parameter binds into the slot files.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ParamBind {
    Int { slot: u16 },
    Fp { slot: u16 },
    Array { slot: u16 },
}

/// A parameter's binding plan (name kept for `InputSet` lookup and
/// `MissingInput` reporting).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SealedParam {
    pub name: String,
    pub bind: ParamBind,
}

/// Static metadata of one array slot.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ArraySlot {
    /// Fixed element count (parameter length or declaration size).
    pub len: usize,
    /// Index into the name pool, for error reporting.
    pub name: u32,
}

/// The configuration-independent layout of a sealed program: parameter
/// binding plans, array metadata, the error-reporting name pool and the
/// pre-rounded initializer pool. Computed once per program by
/// [`SealPlan`] and shared (via `Arc`) by every [`SealedProgram`] the
/// matrix produces for that program.
#[derive(Debug)]
pub(crate) struct SealLayout {
    pub(crate) params: Vec<SealedParam>,
    pub(crate) arrays: Vec<ArraySlot>,
    /// Name pool for cold-path error construction.
    pub(crate) names: Vec<String>,
    /// Pre-rounded, pre-sized array initializers.
    pub(crate) init_pool: Vec<f64>,
}

/// An optimized program sealed into register-machine bytecode, ready for
/// repeated execution against many input sets (see [`crate::vm`]).
pub struct SealedProgram {
    pub(crate) precision: Precision,
    pub(crate) flush_to_zero: bool,
    /// Math library instantiated once at seal time (the libraries are
    /// stateless, so sharing one instance across runs is observationally
    /// identical to the interpreter's per-run instantiation).
    pub(crate) math: Arc<dyn MathLib>,
    pub(crate) fast: FastMathLib,
    pub(crate) instrs: Vec<Instr>,
    /// Configuration-independent layout, shared across a matrix.
    pub(crate) layout: Arc<SealLayout>,
    pub(crate) n_regs: usize,
    pub(crate) n_scalars: usize,
    pub(crate) n_ints: usize,
    pub(crate) comp_slot: u16,
}

impl std::fmt::Debug for SealedProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SealedProgram")
            .field("precision", &self.precision)
            .field("instrs", &self.instrs.len())
            .field("regs", &self.n_regs)
            .field("scalars", &self.n_scalars)
            .field("ints", &self.n_ints)
            .field("arrays", &self.layout.arrays.len())
            .finish()
    }
}

impl SealedProgram {
    /// Number of bytecode instructions (used by tests and diagnostics).
    pub fn instruction_count(&self) -> usize {
        self.instrs.len()
    }

    /// Size of the floating-point register file the VM allocates for this
    /// program (shrunk by the peephole optimizer's register coalescing).
    pub fn register_count(&self) -> usize {
        self.n_regs
    }
}

/// Seal an optimized body under one configuration's semantics. Called
/// through [`crate::compile::CompiledProgram::seal`]; matrix callers build
/// one [`SealPlan`] and flatten per configuration instead.
pub(crate) fn seal(
    precision: Precision,
    params: &[Param],
    body: &[OStmt],
    semantics: &Semantics,
) -> Result<SealedProgram, SealError> {
    SealPlan::new(precision, params, body)?.flatten(body, semantics)
}

/// A scalar slot plus the point in the statement walk at which its
/// defining assignment interned it. Reads resolve against the table *as
/// it stood* at the reading statement (replicating the interpreter's
/// dynamic map, which only contains already-executed assignments — for
/// validated programs every read lexically follows its definition, so the
/// distinction is invisible, but the flattener keeps the exact refusal
/// behaviour for anything else).
#[derive(Debug, Clone, Copy)]
struct ScalarSlot<'p> {
    name: &'p str,
    slot: u16,
    /// Visible to reads once this many `Assign` statements have been
    /// flattened (0 = parameters and `comp`, visible from the start).
    visible_from: u32,
}

/// The per-program half of sealing: everything the optimization pipeline
/// cannot change. Built once, then flattened against each configuration's
/// optimized body.
pub(crate) struct SealPlan<'p> {
    precision: Precision,
    layout: Arc<SealLayout>,
    /// Every scalar assignment target anywhere in the program (used to
    /// detect dynamically ambiguous int/scalar names). Linear tables
    /// throughout: generated programs bind a handful of names, so vector
    /// scans beat hashing and keep sealing allocation-light — sealing sits
    /// on the campaign hot path (once per program × configuration).
    assigned_anywhere: Vec<&'p str>,
    scalar_slots: Vec<ScalarSlot<'p>>,
    int_params: Vec<(&'p str, u16)>,
    /// Array parameters, in declaration order (the base of the flattener's
    /// array scope).
    param_arrays: Vec<(&'p str, u16)>,
    /// `(array slot, init-pool offset)` of the k-th `DeclArray` statement
    /// in walk order.
    decl_arrays: Vec<(u16, u32)>,
    n_int_params: u16,
    /// Total int slots: parameters plus one per `for` statement.
    n_ints: usize,
    comp_slot: u16,
}

impl<'p> SealPlan<'p> {
    /// Compute the configuration-independent layout of one program.
    pub(crate) fn new(
        precision: Precision,
        params: &'p [Param],
        body: &'p [OStmt],
    ) -> Result<Self, SealError> {
        let mut assigned_anywhere = Vec::new();
        collect_assigned(body, &mut assigned_anywhere);

        let mut builder = PlanBuilder {
            precision,
            layout: SealLayout {
                params: Vec::with_capacity(params.len()),
                arrays: Vec::new(),
                names: Vec::new(),
                init_pool: Vec::new(),
            },
            scalar_slots: Vec::with_capacity(8),
            int_params: Vec::new(),
            param_arrays: Vec::new(),
            decl_arrays: Vec::new(),
            n_int_params: 0,
            n_ints: 0,
        };

        // The accumulator owns scalar slot 0, mirroring its implicit
        // declaration in the interpreter.
        let comp_slot = builder.intern_scalar(llm4fp_fpir::COMP, 0)?;

        for p in params {
            let bind = match p.ty {
                ParamType::Int => {
                    let slot = checked_u16(builder.n_int_params as usize, "int slots")?;
                    builder.n_int_params += 1;
                    builder.int_params.push((p.name.as_str(), slot));
                    ParamBind::Int { slot }
                }
                ParamType::Fp => ParamBind::Fp { slot: builder.intern_scalar(&p.name, 0)? },
                ParamType::FpArray(len) => {
                    let slot = builder.new_array(&p.name, len)?;
                    builder.param_arrays.push((p.name.as_str(), slot));
                    ParamBind::Array { slot }
                }
            };
            builder.layout.params.push(SealedParam { name: p.name.clone(), bind });
        }

        builder.n_ints = builder.n_int_params as usize;
        let mut assign_seq = 0u32;
        builder.walk(body, &mut assign_seq)?;
        Ok(SealPlan {
            precision,
            layout: Arc::new(builder.layout),
            assigned_anywhere,
            scalar_slots: builder.scalar_slots,
            int_params: builder.int_params,
            param_arrays: builder.param_arrays,
            decl_arrays: builder.decl_arrays,
            n_int_params: builder.n_int_params,
            n_ints: builder.n_ints,
            comp_slot,
        })
    }

    /// Flatten one optimized body against this plan. The body must be a
    /// pass-pipeline rewrite of the body the plan was built from
    /// (statement structure identical; expressions free to differ).
    pub(crate) fn flatten(
        &self,
        body: &[OStmt],
        semantics: &Semantics,
    ) -> Result<SealedProgram, SealError> {
        let (instrs, n_regs) = self.flatten_instrs(body)?;
        Ok(self.assemble(instrs, n_regs, semantics))
    }

    /// The configuration-dependent half of [`SealPlan::flatten`]: emit the
    /// instruction stream. Split out so matrix sealing can memoize it per
    /// distinct pass pipeline (configurations sharing a pipeline share the
    /// identical body, hence the identical raw stream).
    pub(crate) fn flatten_instrs(&self, body: &[OStmt]) -> Result<(Vec<Instr>, usize), SealError> {
        let mut flattener = Flattener {
            plan: self,
            int_scope: Vec::new(),
            array_scope: self.param_arrays.clone(),
            next_int: self.n_int_params as usize,
            next_decl: 0,
            assigns_done: 0,
            instrs: Vec::with_capacity(64),
            n_regs: 0,
        };
        flattener.seal_block(body)?;
        flattener.instrs.push(Instr::Halt);
        if flattener.instrs.len() > u32::MAX as usize {
            return Err(SealError::TooComplex("instruction count"));
        }
        Ok((flattener.instrs, flattener.n_regs))
    }

    /// Pair a flattened instruction stream with one configuration's
    /// execution semantics.
    pub(crate) fn assemble(
        &self,
        instrs: Vec<Instr>,
        n_regs: usize,
        semantics: &Semantics,
    ) -> SealedProgram {
        SealedProgram {
            precision: self.precision,
            flush_to_zero: semantics.flush_to_zero,
            math: semantics.math_lib.shared(),
            fast: FastMathLib::new(),
            instrs,
            layout: Arc::clone(&self.layout),
            n_regs,
            n_scalars: self.scalar_slots.len(),
            n_ints: self.n_ints,
            comp_slot: self.comp_slot,
        }
    }
}

/// Mutable state of [`SealPlan::new`]'s single statement walk (the plan
/// itself is immutable once built, with its layout behind an `Arc`).
struct PlanBuilder<'p> {
    precision: Precision,
    layout: SealLayout,
    scalar_slots: Vec<ScalarSlot<'p>>,
    int_params: Vec<(&'p str, u16)>,
    param_arrays: Vec<(&'p str, u16)>,
    decl_arrays: Vec<(u16, u32)>,
    n_int_params: u16,
    n_ints: usize,
}

impl<'p> PlanBuilder<'p> {
    /// Walk the statement tree once, interning assignment targets, loop
    /// int slots and array declarations in the exact order the flattener
    /// will encounter them under every configuration (the pass pipeline
    /// rewrites expressions only — statement structure is invariant).
    fn walk(&mut self, body: &'p [OStmt], assign_seq: &mut u32) -> Result<(), SealError> {
        for stmt in body {
            match stmt {
                OStmt::Assign { target, .. } => {
                    // The target becomes visible to reads only *after*
                    // this assignment (the expression is compiled first).
                    *assign_seq += 1;
                    self.intern_scalar(target, *assign_seq)?;
                }
                OStmt::Store { .. } => {}
                OStmt::DeclArray { name, size, init } => {
                    let slot = self.new_array(name, *size)?;
                    let offset = self.layout.init_pool.len();
                    if offset + *size > u32::MAX as usize {
                        return Err(SealError::TooComplex("initializer pool"));
                    }
                    let precision = self.precision;
                    self.layout
                        .init_pool
                        .extend(init.iter().take(*size).map(|&v| round_to(precision, v)));
                    self.layout.init_pool.resize(offset + *size, 0.0);
                    self.decl_arrays.push((slot, offset as u32));
                }
                OStmt::If { then_block, .. } => self.walk(then_block, assign_seq)?,
                OStmt::For { body, .. } => {
                    checked_u16(self.n_ints, "int slots")?;
                    self.n_ints += 1;
                    self.walk(body, assign_seq)?;
                }
            }
        }
        Ok(())
    }

    fn intern_scalar(&mut self, name: &'p str, visible_from: u32) -> Result<u16, SealError> {
        if let Some(s) = self.scalar_slots.iter().find(|s| s.name == name) {
            return Ok(s.slot);
        }
        let slot = checked_u16(self.scalar_slots.len(), "scalar slots")?;
        self.scalar_slots.push(ScalarSlot { name, slot, visible_from });
        Ok(slot)
    }

    fn new_array(&mut self, name: &str, len: usize) -> Result<u16, SealError> {
        let slot = checked_u16(self.layout.arrays.len(), "array slots")?;
        let name_idx = match self.layout.names.iter().position(|n| n == name) {
            Some(i) => i as u32,
            None => {
                self.layout.names.push(name.to_string());
                (self.layout.names.len() - 1) as u32
            }
        };
        self.layout.arrays.push(ArraySlot { len, name: name_idx });
        Ok(slot)
    }
}

/// Per-configuration instruction emission over a shared [`SealPlan`].
///
/// `'a` is the borrow of the plan (scope entries for declared arrays
/// borrow their names from the plan's layout pool), `'b` the borrow of
/// the optimized body being flattened.
struct Flattener<'a, 'b> {
    plan: &'a SealPlan<'a>,
    /// Loop variables currently in scope, innermost last.
    int_scope: Vec<(&'b str, u16)>,
    /// Arrays in scope, innermost last; parameters at the bottom. Slot
    /// numbers come from the plan (declarations are numbered in walk
    /// order, which the flattener replays).
    array_scope: Vec<(&'a str, u16)>,
    /// Next loop int slot in walk order (usize so a program with exactly
    /// `u16::MAX + 1` slots — which the plan's per-slot `checked_u16`
    /// accepts — doesn't overflow on the final increment; each assigned
    /// slot itself is plan-validated to fit `u16`).
    next_int: usize,
    next_decl: usize,
    /// Number of `Assign` statements flattened so far — the clock scalar
    /// visibility is measured against.
    assigns_done: u32,
    instrs: Vec<Instr>,
    n_regs: usize,
}

impl<'a, 'b> Flattener<'a, 'b> {
    fn scalar_binding(&self, name: &str) -> Option<u16> {
        self.plan
            .scalar_slots
            .iter()
            .find(|s| s.name == name && s.visible_from <= self.assigns_done)
            .map(|s| s.slot)
    }

    fn int_binding(&self, name: &str) -> Option<u16> {
        self.int_scope
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .or_else(|| self.plan.int_params.iter().find(|(n, _)| *n == name))
            .map(|&(_, s)| s)
    }

    fn resolve_array(&self, name: &str) -> Result<u16, SealError> {
        self.array_scope
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|&(_, s)| s)
            .ok_or_else(|| SealError::UnresolvedArray(name.to_string()))
    }

    /// Resolve a scalar-expression variable read the way the interpreter
    /// would at runtime (scalars first, then ints), rejecting reads whose
    /// dynamic resolution cannot be proven static.
    fn resolve_var(&self, name: &str) -> Result<Instr, SealError> {
        let scalar = self.scalar_binding(name);
        let int = self.int_binding(name);
        match (scalar, int) {
            (Some(slot), None) => Ok(Instr::LoadScalar { dst: 0, slot }),
            (None, Some(slot)) => {
                if self.plan.assigned_anywhere.contains(&name) {
                    // An assignment elsewhere could have (or could later)
                    // put this name into the interpreter's scalar map.
                    Err(SealError::AmbiguousName(name.to_string()))
                } else {
                    Ok(Instr::LoadInt { dst: 0, slot })
                }
            }
            (Some(_), Some(_)) => Err(SealError::AmbiguousName(name.to_string())),
            (None, None) => Err(SealError::UnresolvedVariable(name.to_string())),
        }
    }

    fn seal_index(&self, index: &IndexExpr) -> SlotIndex {
        let slot = index.var().and_then(|v| self.int_binding(v));
        match (index, slot) {
            // No variable in scope: the interpreter substitutes 0.
            (_, None) => SlotIndex::Const(index.eval(0)),
            (IndexExpr::Const(k), _) => SlotIndex::Const(*k),
            (IndexExpr::Var(_), Some(slot)) => SlotIndex::Var(slot),
            (IndexExpr::Offset { offset, .. }, Some(slot)) => {
                SlotIndex::Offset { slot, offset: *offset }
            }
            (IndexExpr::Mod { modulus, .. }, Some(slot)) => {
                SlotIndex::Mod { slot, modulus: *modulus }
            }
        }
    }

    fn seal_block(&mut self, body: &'b [OStmt]) -> Result<(), SealError> {
        // Arrays are block-scoped (matching the validator); scalars are a
        // flat namespace (safe because every read lexically follows its
        // defining assignment in validated programs).
        let arrays_before = self.array_scope.len();
        for stmt in body {
            self.seal_stmt(stmt)?;
        }
        self.array_scope.truncate(arrays_before);
        Ok(())
    }

    fn seal_stmt(&mut self, stmt: &'b OStmt) -> Result<(), SealError> {
        self.instrs.push(Instr::Burn);
        match stmt {
            OStmt::Assign { target, expr } => {
                if self.int_binding(target).is_some() {
                    return Err(SealError::AmbiguousName(target.clone()));
                }
                self.compile_expr(expr, 0)?;
                self.assigns_done += 1;
                let slot = self
                    .plan
                    .scalar_slots
                    .iter()
                    .find(|s| s.name == target)
                    .map(|s| s.slot)
                    .ok_or_else(|| SealError::UnresolvedVariable(target.clone()))?;
                self.instrs.push(Instr::StoreScalar { slot, src: 0 });
            }
            OStmt::Store { array, index, expr } => {
                // Interpreter order: expression first, then index
                // resolution and the bounds check.
                self.compile_expr(expr, 0)?;
                let slot = self.resolve_array(array)?;
                let index = self.seal_index(index);
                self.instrs.push(Instr::StoreElem { array: slot, index, src: 0 });
            }
            OStmt::DeclArray { .. } => {
                let &(slot, init) = self
                    .plan
                    .decl_arrays
                    .get(self.next_decl)
                    .ok_or(SealError::TooComplex("plan/body mismatch"))?;
                self.next_decl += 1;
                // Scope entries borrow the array's name from the plan's
                // pool (every declared array is pooled), so they outlive
                // the per-statement body borrow.
                let pool_idx = self.plan.layout.arrays[slot as usize].name as usize;
                let scope_name: &'a str = &self.plan.layout.names[pool_idx];
                self.array_scope.push((scope_name, slot));
                self.instrs.push(Instr::DeclArray { array: slot, init });
            }
            OStmt::If { cond, then_block } => {
                self.compile_expr(&cond.lhs, 0)?;
                self.compile_expr(&cond.rhs, 1)?;
                let branch = self.instrs.len();
                self.instrs.push(Instr::JumpCmpFalse {
                    op: cond.op,
                    lhs: 0,
                    rhs: 1,
                    target: u32::MAX,
                });
                self.seal_block(then_block)?;
                let end = self.instrs.len() as u32;
                if let Instr::JumpCmpFalse { target, .. } = &mut self.instrs[branch] {
                    *target = end;
                }
            }
            OStmt::For { var, bound, body } => {
                let slot = self.next_int as u16;
                self.next_int += 1;
                self.instrs.push(Instr::SetInt { slot, value: 0 });
                let head = self.instrs.len();
                self.instrs.push(Instr::JumpIfIntGe { slot, bound: *bound, target: u32::MAX });
                // Per-iteration burn, exactly where the interpreter burns
                // (before the loop variable is visible to the body).
                self.instrs.push(Instr::Burn);
                self.int_scope.push((var.as_str(), slot));
                self.seal_block(body)?;
                self.int_scope.pop();
                self.instrs.push(Instr::IncInt { slot });
                self.instrs.push(Instr::Jump { target: head as u32 });
                let end = self.instrs.len() as u32;
                if let Instr::JumpIfIntGe { target, .. } = &mut self.instrs[head] {
                    *target = end;
                }
            }
        }
        Ok(())
    }

    /// Compile an expression so its value lands in register `dst`;
    /// children use registers `dst`, `dst + 1`, ... (left-to-right
    /// evaluation, matching the interpreter's recursion order).
    fn compile_expr(&mut self, expr: &'b OExpr, dst: Reg) -> Result<(), SealError> {
        self.n_regs = self.n_regs.max(dst as usize + 1);
        match expr {
            OExpr::Const(v) => {
                let value = round_to(self.plan.precision, *v);
                self.instrs.push(Instr::Const { dst, value });
            }
            OExpr::Var(name) => {
                let instr = match self.resolve_var(name)? {
                    Instr::LoadScalar { slot, .. } => Instr::LoadScalar { dst, slot },
                    Instr::LoadInt { slot, .. } => Instr::LoadInt { dst, slot },
                    other => other,
                };
                self.instrs.push(instr);
            }
            OExpr::Index { array, index } => {
                let slot = self.resolve_array(array)?;
                let index = self.seal_index(index);
                self.instrs.push(Instr::LoadElem { dst, array: slot, index });
            }
            OExpr::Neg(inner) => {
                self.compile_expr(inner, dst)?;
                self.instrs.push(Instr::Neg { dst, src: dst });
            }
            OExpr::Bin { op, lhs, rhs } => {
                let rhs_reg = checked_reg(dst, 1)?;
                self.compile_expr(lhs, dst)?;
                self.compile_expr(rhs, rhs_reg)?;
                self.instrs.push(Instr::Bin { op: *op, dst, lhs: dst, rhs: rhs_reg });
            }
            OExpr::Fma { a, b, c } => {
                let rb = checked_reg(dst, 1)?;
                let rc = checked_reg(dst, 2)?;
                self.compile_expr(a, dst)?;
                self.compile_expr(b, rb)?;
                self.compile_expr(c, rc)?;
                self.instrs.push(Instr::Fma { dst, a: dst, b: rb, c: rc });
            }
            OExpr::Recip { value, approx } => {
                self.compile_expr(value, dst)?;
                self.instrs.push(Instr::Recip { dst, src: dst, approx: *approx });
            }
            OExpr::Call { func, args } => {
                if args.len() > 3 {
                    return Err(SealError::TooComplex("call arity"));
                }
                for (i, arg) in args.iter().enumerate() {
                    let reg = checked_reg(dst, i as u16)?;
                    self.compile_expr(arg, reg)?;
                }
                self.instrs.push(Instr::Call {
                    func: *func,
                    dst,
                    base: dst,
                    arity: args.len() as u8,
                });
            }
        }
        Ok(())
    }
}

fn collect_assigned<'a>(body: &'a [OStmt], out: &mut Vec<&'a str>) {
    for stmt in body {
        match stmt {
            OStmt::Assign { target, .. } => {
                if !out.contains(&target.as_str()) {
                    out.push(target.as_str());
                }
            }
            OStmt::If { then_block, .. } => collect_assigned(then_block, out),
            OStmt::For { body, .. } => collect_assigned(body, out),
            OStmt::Store { .. } | OStmt::DeclArray { .. } => {}
        }
    }
}

fn checked_u16(value: usize, what: &'static str) -> Result<u16, SealError> {
    u16::try_from(value).map_err(|_| SealError::TooComplex(what))
}

fn checked_reg(base: Reg, offset: u16) -> Result<Reg, SealError> {
    base.checked_add(offset).ok_or(SealError::TooComplex("register file"))
}
