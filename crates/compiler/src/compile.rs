//! The compilation entry point: validation → lowering → pass pipeline →
//! an executable [`CompiledProgram`].

use serde::{Deserialize, Serialize};

use llm4fp_fpir::{validate, InputSet, Param, Precision, Program, ValidationError};

use crate::bytecode::{self, SealError, SealedProgram};
use crate::config::{CompilerConfig, Semantics};
use crate::interp::{ExecError, ExecResult, Interpreter, DEFAULT_FUEL};
use crate::ir::{count_in_body, OExpr, OStmt};
use crate::lower::lower_program;
use crate::passes::run_pipeline;

/// Why a program failed to compile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompileError {
    /// Static validation rejected the program (uninitialized variables,
    /// out-of-bounds accesses, oversized loops, ...). The paper counts such
    /// programs as generation failures: they never reach differential
    /// testing.
    Invalid(Vec<ValidationError>),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Invalid(errors) => {
                write!(f, "program rejected by validation: ")?;
                for (i, e) in errors.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// An executable artifact: the optimized body plus the semantics it must be
/// executed under. This plays the role of the binary produced by a real
/// compiler invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledProgram {
    /// The configuration that produced this artifact.
    pub config: CompilerConfig,
    /// Program precision.
    pub precision: Precision,
    /// `compute` parameters (used to bind inputs at execution time).
    pub params: Vec<Param>,
    /// Optimized statement list.
    pub body: Vec<OStmt>,
    /// Floating-point semantics the interpreter must honour.
    pub semantics: Semantics,
}

impl CompiledProgram {
    /// Execute on one input set with the default fuel budget.
    pub fn execute(&self, inputs: &InputSet) -> Result<ExecResult, ExecError> {
        self.execute_with_fuel(inputs, DEFAULT_FUEL)
    }

    /// Execute with an explicit fuel budget (mainly for tests that exercise
    /// the runaway-loop protection).
    pub fn execute_with_fuel(&self, inputs: &InputSet, fuel: u64) -> Result<ExecResult, ExecError> {
        let interp = Interpreter::new(self.precision, &self.params, inputs, &self.semantics, fuel)?;
        interp.run(&self.body)
    }

    /// Number of fused multiply-add operations the pass pipeline introduced
    /// (used by tests and the ablation benchmarks).
    pub fn fma_count(&self) -> usize {
        count_in_body(&self.body, |e| matches!(e, OExpr::Fma { .. }))
    }

    /// Number of reciprocal operations introduced by fast-math.
    pub fn recip_count(&self) -> usize {
        count_in_body(&self.body, |e| matches!(e, OExpr::Recip { .. }))
    }

    /// Seal this artifact into register-machine bytecode for repeated
    /// execution (see [`crate::bytecode`] and [`crate::vm`]). Sealed
    /// execution is bit-identical to [`CompiledProgram::execute`]; callers
    /// that receive a [`SealError`] fall back to the interpreter.
    pub fn seal(&self) -> Result<SealedProgram, SealError> {
        bytecode::seal(self.precision, &self.params, &self.body, &self.semantics)
    }
}

/// The configuration-independent front half of the virtual compiler:
/// validation and lowering, performed once per program. Specializing the
/// front end under a [`CompilerConfig`] runs only the per-configuration
/// pass pipeline, so the full evaluation matrix validates and lowers each
/// program once instead of once per configuration — the driver-side half
/// of the sealed execution hot path.
#[derive(Debug, Clone, PartialEq)]
pub struct Frontend {
    precision: Precision,
    params: Vec<Param>,
    lowered: Vec<OStmt>,
}

impl Frontend {
    /// Validate and lower a program once.
    pub fn new(program: &Program) -> Result<Frontend, CompileError> {
        let problems = validate(program);
        if !problems.is_empty() {
            return Err(CompileError::Invalid(problems));
        }
        Ok(Frontend {
            precision: program.precision,
            params: program.params.clone(),
            lowered: lower_program(program),
        })
    }

    /// Specialize the lowered program under one configuration. Equivalent
    /// to [`compile`] with the validation and lowering amortized away.
    pub fn specialize(&self, config: CompilerConfig) -> CompiledProgram {
        let semantics = config.semantics();
        let body = run_pipeline(self.lowered.clone(), &semantics);
        CompiledProgram {
            config,
            precision: self.precision,
            params: self.params.clone(),
            body,
            semantics,
        }
    }

    /// Specialize and seal in one step, skipping the intermediate
    /// [`CompiledProgram`] (and its parameter-list clone) on the hot path.
    /// Produces bytecode identical to `self.specialize(config).seal()`.
    pub fn seal(&self, config: CompilerConfig) -> Result<SealedProgram, SealError> {
        let semantics = config.semantics();
        let body = run_pipeline(self.lowered.clone(), &semantics);
        bytecode::seal(self.precision, &self.params, &body, &semantics)
    }
}

/// Compile a program under one configuration.
///
/// Validation failures are reported as [`CompileError::Invalid`]; valid
/// programs always compile (the virtual compiler has no resource limits of
/// its own — execution is bounded separately by fuel).
pub fn compile(program: &Program, config: CompilerConfig) -> Result<CompiledProgram, CompileError> {
    Ok(Frontend::new(program)?.specialize(config))
}

/// Compile a program under every configuration of the full evaluation
/// matrix (3 compilers × 6 levels), returning the artifacts in matrix order.
pub fn compile_matrix(program: &Program) -> Result<Vec<CompiledProgram>, CompileError> {
    CompilerConfig::full_matrix().into_iter().map(|cfg| compile(program, cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CompilerId, OptLevel};
    use llm4fp_fpir::{parse_compute, InputValue};

    #[test]
    fn invalid_programs_are_rejected_with_details() {
        let program =
            parse_compute("void compute(double x) { comp = undeclared_variable + x; }").unwrap();
        match compile(&program, CompilerConfig::new(CompilerId::Gcc, OptLevel::O0)) {
            Err(CompileError::Invalid(errors)) => {
                assert!(errors.iter().any(|e| e.message.contains("undeclared_variable")));
            }
            other => panic!("expected validation failure, got {other:?}"),
        }
    }

    #[test]
    fn compile_matrix_produces_all_18_artifacts() {
        let program = parse_compute("void compute(double x) { comp = x * x + 1.0; }").unwrap();
        let artifacts = compile_matrix(&program).unwrap();
        assert_eq!(artifacts.len(), 18);
        // nvcc artifacts contract even at O0; strict artifacts never do.
        let nvcc_o0 = artifacts
            .iter()
            .find(|a| a.config == CompilerConfig::new(CompilerId::Nvcc, OptLevel::O0))
            .unwrap();
        assert_eq!(nvcc_o0.fma_count(), 1);
        for a in &artifacts {
            if a.config.level == OptLevel::O0Nofma {
                assert_eq!(a.fma_count(), 0, "{}", a.config);
            }
        }
    }

    #[test]
    fn strict_configurations_agree_with_each_other_on_pure_arithmetic() {
        // Without math calls, O0_nofma results are identical across all three
        // compilers: IEEE arithmetic is deterministic.
        let program = parse_compute(
            "void compute(double x, double y) {\n\
             comp = (x + y) * (x - y);\n\
             comp /= x * y + 1.0;\n\
             }",
        )
        .unwrap();
        let inputs =
            InputSet::new().with("x", InputValue::Fp(1.25)).with("y", InputValue::Fp(-7.5));
        let mut bits = std::collections::HashSet::new();
        for &c in &CompilerId::ALL {
            let artifact = compile(&program, CompilerConfig::new(c, OptLevel::O0Nofma)).unwrap();
            bits.insert(artifact.execute(&inputs).unwrap().bits());
        }
        assert_eq!(bits.len(), 1);
    }

    #[test]
    fn compiled_artifacts_are_serializable() {
        // Experiment records persist compiled artifacts; confirm the Serialize
        // and Deserialize impls exist and the artifact is cloneable/eq.
        fn assert_roundtrippable<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_roundtrippable::<CompiledProgram>();
        let program = parse_compute("void compute(double x) { comp = x + 1.0; }").unwrap();
        let artifact =
            compile(&program, CompilerConfig::new(CompilerId::Clang, OptLevel::O2)).unwrap();
        assert_eq!(artifact.clone(), artifact);
        assert_eq!(artifact.recip_count(), 0);
    }
}
