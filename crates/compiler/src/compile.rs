//! The compilation entry point: validation → lowering → pass pipeline →
//! an executable [`CompiledProgram`].

use std::borrow::Cow;

use serde::{Deserialize, Serialize};

use llm4fp_fpir::{validate, InputSet, Param, Precision, Program, ValidationError};
use llm4fp_telemetry::{keys, Telemetry};

use crate::bytecode::{self, SealError, SealPlan, SealedProgram};
use crate::config::{CompilerConfig, Semantics};
use crate::interp::{ExecError, ExecResult, Interpreter, DEFAULT_FUEL};
use crate::ir::{count_in_body, OExpr, OStmt};
use crate::lower::lower_program;
use crate::passes::{apply_stage, apply_stage_ref, run_pipeline, stages, Stage};
use crate::peephole::{self, SealMode, SealScratch};

/// Why a program failed to compile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompileError {
    /// Static validation rejected the program (uninitialized variables,
    /// out-of-bounds accesses, oversized loops, ...). The paper counts such
    /// programs as generation failures: they never reach differential
    /// testing.
    Invalid(Vec<ValidationError>),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Invalid(errors) => {
                write!(f, "program rejected by validation: ")?;
                for (i, e) in errors.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// An executable artifact: the optimized body plus the semantics it must be
/// executed under. This plays the role of the binary produced by a real
/// compiler invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledProgram {
    /// The configuration that produced this artifact.
    pub config: CompilerConfig,
    /// Program precision.
    pub precision: Precision,
    /// `compute` parameters (used to bind inputs at execution time).
    pub params: Vec<Param>,
    /// Optimized statement list.
    pub body: Vec<OStmt>,
    /// Floating-point semantics the interpreter must honour.
    pub semantics: Semantics,
}

impl CompiledProgram {
    /// Execute on one input set with the default fuel budget.
    pub fn execute(&self, inputs: &InputSet) -> Result<ExecResult, ExecError> {
        self.execute_with_fuel(inputs, DEFAULT_FUEL)
    }

    /// Execute with an explicit fuel budget (mainly for tests that exercise
    /// the runaway-loop protection).
    pub fn execute_with_fuel(&self, inputs: &InputSet, fuel: u64) -> Result<ExecResult, ExecError> {
        let interp = Interpreter::new(self.precision, &self.params, inputs, &self.semantics, fuel)?;
        interp.run(&self.body)
    }

    /// Number of fused multiply-add operations the pass pipeline introduced
    /// (used by tests and the ablation benchmarks).
    pub fn fma_count(&self) -> usize {
        count_in_body(&self.body, |e| matches!(e, OExpr::Fma { .. }))
    }

    /// Number of reciprocal operations introduced by fast-math.
    pub fn recip_count(&self) -> usize {
        count_in_body(&self.body, |e| matches!(e, OExpr::Recip { .. }))
    }

    /// Seal this artifact into register-machine bytecode for repeated
    /// execution (see [`crate::bytecode`] and [`crate::vm`]), running the
    /// seal-time peephole optimizer ([`crate::peephole`]). Sealed
    /// execution is bit-identical to [`CompiledProgram::execute`]; callers
    /// that receive a [`SealError`] fall back to the interpreter.
    pub fn seal(&self) -> Result<SealedProgram, SealError> {
        self.seal_with(SealMode::Optimized)
    }

    /// [`CompiledProgram::seal`] with an explicit [`SealMode`] (`Raw`
    /// skips the optimizer — the PR 3 stream, kept for A/B comparison).
    pub fn seal_with(&self, mode: SealMode) -> Result<SealedProgram, SealError> {
        let mut sealed = bytecode::seal(self.precision, &self.params, &self.body, &self.semantics)?;
        if mode == SealMode::Optimized {
            peephole::optimize(&mut sealed, &mut SealScratch::new());
        }
        Ok(sealed)
    }
}

/// The configuration-independent front half of the virtual compiler:
/// validation and lowering, performed once per program. Specializing the
/// front end under a [`CompilerConfig`] runs only the per-configuration
/// pass pipeline, so the full evaluation matrix validates and lowers each
/// program once instead of once per configuration — the driver-side half
/// of the sealed execution hot path.
#[derive(Debug, Clone, PartialEq)]
pub struct Frontend {
    precision: Precision,
    params: Vec<Param>,
    lowered: Vec<OStmt>,
}

impl Frontend {
    /// Validate and lower a program once.
    pub fn new(program: &Program) -> Result<Frontend, CompileError> {
        let problems = validate(program);
        if !problems.is_empty() {
            return Err(CompileError::Invalid(problems));
        }
        Ok(Frontend {
            precision: program.precision,
            params: program.params.clone(),
            lowered: lower_program(program),
        })
    }

    /// Specialize the lowered program under one configuration. Equivalent
    /// to [`compile`] with the validation and lowering amortized away.
    pub fn specialize(&self, config: CompilerConfig) -> CompiledProgram {
        let semantics = config.semantics();
        let body = run_pipeline(self.lowered.clone(), &semantics);
        CompiledProgram {
            config,
            precision: self.precision,
            params: self.params.clone(),
            body,
            semantics,
        }
    }

    /// Specialize and seal in one step, skipping the intermediate
    /// [`CompiledProgram`] (and its parameter-list clone) on the hot path.
    /// Produces bytecode identical to `self.specialize(config).seal()`
    /// (peephole optimizer included).
    pub fn seal(&self, config: CompilerConfig) -> Result<SealedProgram, SealError> {
        self.seal_with(config, SealMode::Optimized)
    }

    /// [`Frontend::seal`] with an explicit [`SealMode`].
    pub fn seal_with(
        &self,
        config: CompilerConfig,
        mode: SealMode,
    ) -> Result<SealedProgram, SealError> {
        let semantics = config.semantics();
        let body = run_pipeline(self.lowered.clone(), &semantics);
        let mut sealed = bytecode::seal(self.precision, &self.params, &body, &semantics)?;
        if mode == SealMode::Optimized {
            peephole::optimize(&mut sealed, &mut SealScratch::new());
        }
        Ok(sealed)
    }

    /// Seal one program under a whole configuration matrix at once,
    /// sharing everything the configurations cannot influence:
    ///
    /// * the pass pipeline is factored into a **prefix tree** -- stage
    ///   sequences that share a prefix share the intermediate IR after it,
    ///   computed once per prefix: the tree is walked depth-first with the
    ///   body *moved* into a prefix's last child and materialized (one
    ///   rebuild pass) only at branch points, so e.g. all nine `O1`-`O3`
    ///   configurations fold constants exactly once;
    /// * name->slot resolution, the parameter binding plan and the
    ///   initializer pool run **once per program** (`bytecode::SealPlan`)
    ///   and land in one `Arc`-shared [`bytecode` layout] shared by every
    ///   artifact of the matrix;
    /// * configurations with *identical* stage sequences share the raw
    ///   flatten itself (the bodies are the same tree), and the peephole
    ///   optimizer runs once per `(pipeline, math library, flush)` class
    ///   -- the only semantics inputs folding reads -- so each sealed
    ///   artifact of a class pays a `Vec<Instr>` copy, not a re-run.
    ///
    /// Results are per-configuration and independent: a configuration
    /// whose body no longer references a dynamically ambiguous name may
    /// seal while its siblings refuse. Every entry is identical to what
    /// [`Frontend::seal_with`] produces for that configuration.
    ///
    /// [`bytecode` layout]: crate::bytecode
    pub fn seal_matrix(&self, configs: &[CompilerConfig]) -> Vec<Result<SealedProgram, SealError>> {
        self.seal_matrix_with(configs, SealMode::Optimized, &mut SealScratch::new())
    }

    /// [`Frontend::seal_matrix`] with an explicit mode and a reusable
    /// seal scratch (worker loops thread one scratch across programs).
    pub fn seal_matrix_with(
        &self,
        configs: &[CompilerConfig],
        mode: SealMode,
        scratch: &mut SealScratch,
    ) -> Vec<Result<SealedProgram, SealError>> {
        self.seal_matrix_instrumented(configs, mode, scratch, &Telemetry::disabled(), 0)
    }

    /// [`Frontend::seal_matrix_with`] plus telemetry: per-pass peephole
    /// spans and instruction/register-shrink counters, keyed by
    /// `program_id` (the caller's stable program hash) so racy duplicate
    /// seals of the same program collapse to one contribution when lanes
    /// merge. Counts cover each *distinct* optimizer run of the matrix —
    /// memoized `(pipeline, lib, flush)` classes are counted once, which
    /// is also what makes the totals deterministic per program.
    pub fn seal_matrix_instrumented(
        &self,
        configs: &[CompilerConfig],
        mode: SealMode,
        scratch: &mut SealScratch,
        telemetry: &Telemetry,
        program_id: u64,
    ) -> Vec<Result<SealedProgram, SealError>> {
        let plan = match SealPlan::new(self.precision, &self.params, &self.lowered) {
            Ok(plan) => plan,
            Err(e) => return configs.iter().map(|_| Err(e.clone())).collect(),
        };
        let pipelines: Vec<(Semantics, Vec<Stage>)> = configs
            .iter()
            .map(|config| {
                let semantics = config.semantics();
                let pipeline = stages(&semantics);
                (semantics, pipeline)
            })
            .collect();
        // Distinct pipelines, in first-appearance order (identical
        // sequences produce the identical raw instruction stream, so one
        // flatten serves them all).
        let mut distinct: Vec<&[Stage]> = Vec::new();
        for (_, pipeline) in &pipelines {
            if !distinct.iter().any(|d| *d == &pipeline[..]) {
                distinct.push(pipeline);
            }
        }
        // Depth-first prefix-tree walk producing the raw flatten of every
        // distinct pipeline.
        let mut flats: Vec<(&[Stage], Flat)> = Vec::with_capacity(distinct.len());
        seal_prefix_group(&plan, Cow::Borrowed(&self.lowered), 0, &distinct, &mut flats);
        // Optimized-stream memo. Peephole folding replays VM arithmetic,
        // whose only configuration-dependent inputs are the math library
        // and the flush-to-zero flag (precision is program-wide, and the
        // approximate-reciprocal flag is baked into the instructions), so
        // configurations agreeing on (pipeline, lib, flush) share the
        // optimizer run itself.
        type OptKey<'k> = (&'k [Stage], crate::config::MathLibKind, bool);
        let mut opts: Vec<(OptKey, Flat)> = Vec::new();
        let mut instrs_saved = 0u64;
        let mut regs_saved = 0u64;

        let results: Vec<Result<SealedProgram, SealError>> = pipelines
            .iter()
            .map(|(semantics, pipeline)| {
                let (pipeline, flat) = flats
                    .iter()
                    .map(|(path, flat)| (*path, flat))
                    .find(|(path, _)| *path == &pipeline[..])
                    .expect("every distinct pipeline was flattened");
                if mode != SealMode::Optimized {
                    return flat
                        .clone()
                        .map(|(instrs, n_regs)| plan.assemble(instrs, n_regs, semantics));
                }
                let key: OptKey = (pipeline, semantics.math_lib, semantics.flush_to_zero);
                let optimized = match opts.iter().find(|(k, _)| *k == key) {
                    Some((_, optimized)) => optimized.clone(),
                    None => {
                        let optimized = flat.clone().map(|(instrs, n_regs)| {
                            let mut sealed = plan.assemble(instrs, n_regs, semantics);
                            let stats = peephole::optimize_with(&mut sealed, scratch, telemetry);
                            instrs_saved +=
                                stats.instrs_before.saturating_sub(stats.instrs_after) as u64;
                            regs_saved += stats.regs_before.saturating_sub(stats.regs_after) as u64;
                            (sealed.instrs, sealed.n_regs)
                        });
                        // Memoize only classes another configuration will
                        // actually hit — singleton classes (most of the
                        // full matrix) skip the extra stream clone.
                        let shared = pipelines
                            .iter()
                            .filter(|(s, p)| {
                                &p[..] == key.0 && s.math_lib == key.1 && s.flush_to_zero == key.2
                            })
                            .count()
                            > 1;
                        if shared {
                            opts.push((key, optimized.clone()));
                        }
                        optimized
                    }
                };
                optimized.map(|(instrs, n_regs)| plan.assemble(instrs, n_regs, semantics))
            })
            .collect();
        if telemetry.is_enabled() && (instrs_saved > 0 || regs_saved > 0) {
            telemetry.add_keyed(keys::PEEPHOLE_INSTRS_SAVED, program_id, instrs_saved);
            telemetry.add_keyed(keys::PEEPHOLE_REGS_SAVED, program_id, regs_saved);
        }
        results
    }
}

/// A raw flatten outcome: the instruction stream and its register count.
type Flat = Result<(Vec<bytecode::Instr>, usize), SealError>;

/// Depth-first walk of the prefix tree implied by the distinct stage
/// sequences in `group` (all sharing the same first `depth` stages, whose
/// rewritten IR is `body`). Flattens every complete pipeline in the
/// group. The body is **moved** into the last child branch and rebuilt
/// (one by-reference pass) only for earlier siblings, so a stage chain
/// used by a single pipeline costs string-free consuming applications --
/// the same tree work one independent seal performs -- while shared
/// prefixes are computed exactly once for all their descendants.
fn seal_prefix_group<'p>(
    plan: &SealPlan<'_>,
    body: Cow<'_, [OStmt]>,
    depth: usize,
    group: &[&'p [Stage]],
    flats: &mut Vec<(&'p [Stage], Flat)>,
) {
    // Pipelines completed at this depth flatten against the current body.
    for &pipeline in group {
        if pipeline.len() == depth {
            flats.push((pipeline, plan.flatten_instrs(&body)));
        }
    }
    // Partition the rest by their next stage (first-appearance order).
    let mut partitions: Vec<(Stage, Vec<&'p [Stage]>)> = Vec::new();
    for &pipeline in group {
        if pipeline.len() == depth {
            continue;
        }
        let stage = pipeline[depth];
        match partitions.iter_mut().find(|(s, _)| *s == stage) {
            Some((_, bucket)) => bucket.push(pipeline),
            None => partitions.push((stage, vec![pipeline])),
        }
    }
    let Some((last_stage, last_bucket)) = partitions.pop() else {
        return;
    };
    for (stage, bucket) in partitions {
        let child = apply_stage_ref(&body, stage);
        seal_prefix_group(plan, Cow::Owned(child), depth + 1, &bucket, flats);
    }
    // The final branch consumes the body: no rebuild when it was owned.
    let child = match body {
        Cow::Owned(owned) => apply_stage(owned, last_stage),
        Cow::Borrowed(borrowed) => apply_stage_ref(borrowed, last_stage),
    };
    seal_prefix_group(plan, Cow::Owned(child), depth + 1, &last_bucket, flats);
}

/// Compile a program under one configuration.
///
/// Validation failures are reported as [`CompileError::Invalid`]; valid
/// programs always compile (the virtual compiler has no resource limits of
/// its own — execution is bounded separately by fuel).
pub fn compile(program: &Program, config: CompilerConfig) -> Result<CompiledProgram, CompileError> {
    Ok(Frontend::new(program)?.specialize(config))
}

/// Compile a program under every configuration of the full evaluation
/// matrix (3 compilers × 6 levels), returning the artifacts in matrix order.
pub fn compile_matrix(program: &Program) -> Result<Vec<CompiledProgram>, CompileError> {
    CompilerConfig::full_matrix().into_iter().map(|cfg| compile(program, cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CompilerId, OptLevel};
    use llm4fp_fpir::{parse_compute, InputValue};

    #[test]
    fn invalid_programs_are_rejected_with_details() {
        let program =
            parse_compute("void compute(double x) { comp = undeclared_variable + x; }").unwrap();
        match compile(&program, CompilerConfig::new(CompilerId::Gcc, OptLevel::O0)) {
            Err(CompileError::Invalid(errors)) => {
                assert!(errors.iter().any(|e| e.message.contains("undeclared_variable")));
            }
            other => panic!("expected validation failure, got {other:?}"),
        }
    }

    #[test]
    fn compile_matrix_produces_all_18_artifacts() {
        let program = parse_compute("void compute(double x) { comp = x * x + 1.0; }").unwrap();
        let artifacts = compile_matrix(&program).unwrap();
        assert_eq!(artifacts.len(), 18);
        // nvcc artifacts contract even at O0; strict artifacts never do.
        let nvcc_o0 = artifacts
            .iter()
            .find(|a| a.config == CompilerConfig::new(CompilerId::Nvcc, OptLevel::O0))
            .unwrap();
        assert_eq!(nvcc_o0.fma_count(), 1);
        for a in &artifacts {
            if a.config.level == OptLevel::O0Nofma {
                assert_eq!(a.fma_count(), 0, "{}", a.config);
            }
        }
    }

    #[test]
    fn strict_configurations_agree_with_each_other_on_pure_arithmetic() {
        // Without math calls, O0_nofma results are identical across all three
        // compilers: IEEE arithmetic is deterministic.
        let program = parse_compute(
            "void compute(double x, double y) {\n\
             comp = (x + y) * (x - y);\n\
             comp /= x * y + 1.0;\n\
             }",
        )
        .unwrap();
        let inputs =
            InputSet::new().with("x", InputValue::Fp(1.25)).with("y", InputValue::Fp(-7.5));
        let mut bits = std::collections::HashSet::new();
        for &c in &CompilerId::ALL {
            let artifact = compile(&program, CompilerConfig::new(c, OptLevel::O0Nofma)).unwrap();
            bits.insert(artifact.execute(&inputs).unwrap().bits());
        }
        assert_eq!(bits.len(), 1);
    }

    #[test]
    fn seal_matrix_matches_independent_seals_instruction_for_instruction() {
        let sources = [
            "void compute(double x, double y) { comp = x * y + 2.5; comp /= y - 0.5; }",
            "void compute(double *a, double s) {\n\
             double buf[3] = {1.5, -2.25};\n\
             for (int i = 0; i < 4; ++i) {\n\
               buf[i % 3] += a[i] * s + sin(a[i]) + 1.0 + 2.0;\n\
             }\n\
             if (buf[0] > 1.0) { comp = buf[0] / (s + 2.0); }\n\
             }",
        ];
        let matrix = CompilerConfig::full_matrix();
        for src in sources {
            let frontend = Frontend::new(&parse_compute(src).unwrap()).unwrap();
            for mode in [SealMode::Raw, SealMode::Optimized] {
                let batch = frontend.seal_matrix_with(&matrix, mode, &mut SealScratch::new());
                for (&config, batched) in matrix.iter().zip(&batch) {
                    let single = frontend.seal_with(config, mode).unwrap();
                    let batched = batched
                        .as_ref()
                        .unwrap_or_else(|e| panic!("matrix seal failed under {config}: {e}"));
                    assert_eq!(batched.instrs, single.instrs, "{config} {mode:?}");
                    assert_eq!(batched.register_count(), single.register_count(), "{config}");
                    assert_eq!(batched.instruction_count(), single.instruction_count());
                }
            }
        }
    }

    #[test]
    fn seal_matrix_refusals_mirror_independent_seals() {
        // `t` is a loop variable in one scope and a scalar target in
        // another: every configuration must refuse, exactly as the
        // independent path does.
        let src = "void compute(double x) {\n\
                   for (int t = 0; t < 3; ++t) { comp += x * t; }\n\
                   double t = 2.0;\n\
                   comp += t;\n\
                   }";
        let frontend = Frontend::new(&parse_compute(src).unwrap()).unwrap();
        let matrix = CompilerConfig::full_matrix();
        let batch = frontend.seal_matrix(&matrix);
        assert_eq!(batch.len(), matrix.len());
        for (&config, result) in matrix.iter().zip(&batch) {
            let single = frontend.seal(config);
            match (result, &single) {
                (Err(a), Err(b)) => assert_eq!(a, b, "{config}"),
                other => panic!("expected matching refusals under {config}: {other:?}"),
            }
        }
    }

    #[test]
    fn seal_matrix_shares_one_layout_across_the_matrix() {
        let src = "void compute(double *a, double s) {\n\
                   double buf[2] = {0.5};\n\
                   for (int i = 0; i < 4; ++i) { comp += a[i] * s + buf[i % 2]; }\n\
                   }";
        let frontend = Frontend::new(&parse_compute(src).unwrap()).unwrap();
        let sealed: Vec<_> = frontend
            .seal_matrix(&CompilerConfig::full_matrix())
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(sealed.len(), 18);
        let first = &sealed[0];
        for other in &sealed[1..] {
            assert!(
                std::sync::Arc::ptr_eq(&first.layout, &other.layout),
                "layouts are not structurally shared"
            );
        }
    }

    #[test]
    fn compiled_artifacts_are_serializable() {
        // Experiment records persist compiled artifacts; confirm the Serialize
        // and Deserialize impls exist and the artifact is cloneable/eq.
        fn assert_roundtrippable<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_roundtrippable::<CompiledProgram>();
        let program = parse_compute("void compute(double x) { comp = x + 1.0; }").unwrap();
        let artifact =
            compile(&program, CompilerConfig::new(CompilerId::Clang, OptLevel::O2)).unwrap();
        assert_eq!(artifact.clone(), artifact);
        assert_eq!(artifact.recip_count(), 0);
    }
}
