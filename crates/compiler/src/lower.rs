//! Front end: lowering the source AST ([`llm4fp_fpir`]) into the virtual
//! compiler's IR.
//!
//! Lowering is semantics-preserving and identical for every compiler
//! configuration: it strips parentheses (they only exist to fix evaluation
//! order, which the tree structure already encodes), desugars compound
//! assignments (`comp += e` becomes `comp = comp + e`, which is also what
//! allows the contraction pass to fuse accumulator updates the way real
//! compilers do), and converts declarations into ordinary assignments.

use llm4fp_fpir::{AssignOp, Block, Expr, Program, Stmt};

use crate::ir::{OCond, OExpr, OStmt};

/// Lower a full program body.
pub fn lower_program(program: &Program) -> Vec<OStmt> {
    lower_block(&program.body)
}

/// Lower one block.
pub fn lower_block(block: &Block) -> Vec<OStmt> {
    block.stmts.iter().map(lower_stmt).collect()
}

fn lower_stmt(stmt: &Stmt) -> OStmt {
    match stmt {
        Stmt::Assign { target, op, expr } => OStmt::Assign {
            target: target.clone(),
            expr: desugar_compound(OExpr::Var(target.clone()), *op, lower_expr(expr)),
        },
        Stmt::DeclScalar { name, expr } => {
            OStmt::Assign { target: name.clone(), expr: lower_expr(expr) }
        }
        Stmt::DeclArray { name, size, init } => {
            OStmt::DeclArray { name: name.clone(), size: *size, init: init.clone() }
        }
        Stmt::AssignIndex { array, index, op, expr } => OStmt::Store {
            array: array.clone(),
            index: index.clone(),
            expr: desugar_compound(
                OExpr::Index { array: array.clone(), index: index.clone() },
                *op,
                lower_expr(expr),
            ),
        },
        Stmt::If { cond, then_block } => OStmt::If {
            cond: OCond { lhs: lower_expr(&cond.lhs), op: cond.op, rhs: lower_expr(&cond.rhs) },
            then_block: lower_block(then_block),
        },
        Stmt::For { var, bound, body } => {
            OStmt::For { var: var.clone(), bound: *bound, body: lower_block(body) }
        }
    }
}

fn desugar_compound(current: OExpr, op: AssignOp, rhs: OExpr) -> OExpr {
    match op.bin_op() {
        None => rhs,
        Some(bin) => OExpr::bin(bin, current, rhs),
    }
}

/// Lower one expression, dropping parentheses and converting integer
/// literals to floating-point constants (C's usual arithmetic conversions:
/// every expression in the grammar is evaluated in the program's fp type).
pub fn lower_expr(expr: &Expr) -> OExpr {
    match expr {
        Expr::Num(v) => OExpr::Const(*v),
        Expr::Int(v) => OExpr::Const(*v as f64),
        Expr::Var(name) => OExpr::Var(name.clone()),
        Expr::Index { array, index } => OExpr::Index { array: array.clone(), index: index.clone() },
        Expr::Paren(inner) => lower_expr(inner),
        Expr::Neg(inner) => OExpr::Neg(Box::new(lower_expr(inner))),
        Expr::Bin { op, lhs, rhs } => OExpr::bin(*op, lower_expr(lhs), lower_expr(rhs)),
        Expr::Call { func, args } => {
            OExpr::Call { func: *func, args: args.iter().map(lower_expr).collect() }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm4fp_fpir::{parse_compute, BinOp};

    fn lower_src(src: &str) -> Vec<OStmt> {
        lower_program(&parse_compute(src).unwrap())
    }

    #[test]
    fn parentheses_disappear_but_association_is_kept() {
        let body = lower_src(
            "void compute(double a, double b, double c) { comp = (a + b) + c; comp = a + (b + c); }",
        );
        let (first, second) = match (&body[0], &body[1]) {
            (OStmt::Assign { expr: e1, .. }, OStmt::Assign { expr: e2, .. }) => (e1, e2),
            _ => panic!("expected two assignments"),
        };
        assert_ne!(first, second, "association must survive lowering");
        assert!(
            matches!(first, OExpr::Bin { op: BinOp::Add, lhs, .. } if matches!(**lhs, OExpr::Bin { .. }))
        );
        assert!(
            matches!(second, OExpr::Bin { op: BinOp::Add, rhs, .. } if matches!(**rhs, OExpr::Bin { .. }))
        );
    }

    #[test]
    fn compound_assignments_are_desugared() {
        let body = lower_src("void compute(double x) { comp += x * 2.0; }");
        match &body[0] {
            OStmt::Assign { target, expr } => {
                assert_eq!(target, "comp");
                match expr {
                    OExpr::Bin { op: BinOp::Add, lhs, rhs } => {
                        assert_eq!(**lhs, OExpr::Var("comp".into()));
                        assert!(matches!(**rhs, OExpr::Bin { op: BinOp::Mul, .. }));
                    }
                    other => panic!("expected desugared add, got {other:?}"),
                }
            }
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn array_compound_stores_read_the_element() {
        let body =
            lower_src("void compute(double *a) { for (int i = 0; i < 4; ++i) { a[i] *= 2.0; } }");
        match &body[0] {
            OStmt::For { body, .. } => match &body[0] {
                OStmt::Store { array, expr, .. } => {
                    assert_eq!(array, "a");
                    assert!(matches!(expr, OExpr::Bin { op: BinOp::Mul, .. }));
                    assert_eq!(
                        expr.count_matching(&|e| matches!(e, OExpr::Index { .. })),
                        1,
                        "the desugared store reads the element once"
                    );
                }
                other => panic!("expected store, got {other:?}"),
            },
            other => panic!("expected loop, got {other:?}"),
        }
    }

    #[test]
    fn declarations_and_int_literals_lower_to_assignments_and_constants() {
        let body = lower_src("void compute(int n) { double t0 = 2 + 0.5; comp = t0; }");
        match &body[0] {
            OStmt::Assign { target, expr } => {
                assert_eq!(target, "t0");
                assert_eq!(expr.count_matching(&|e| matches!(e, OExpr::Const(_))), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn control_flow_structure_is_preserved() {
        let body = lower_src(
            "void compute(double x) {\n\
             double buf[2] = {1.0, 2.0};\n\
             for (int i = 0; i < 2; ++i) {\n\
               if (x > 0.5) { comp += buf[i]; }\n\
             }\n\
            }",
        );
        assert_eq!(body.len(), 2);
        assert!(matches!(body[0], OStmt::DeclArray { size: 2, .. }));
        match &body[1] {
            OStmt::For { bound: 2, body, .. } => {
                assert!(matches!(body[0], OStmt::If { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
