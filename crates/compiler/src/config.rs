//! Compiler personalities, optimization levels and the floating-point
//! semantics derived from them.
//!
//! This module is the direct counterpart of Table 1 in the paper: three
//! compilers (gcc, clang as host compilers; nvcc as the device compiler) and
//! six optimization levels from `O0_nofma` (most IEEE-compliant) to
//! `O3_fastmath` (fastest, least compliant).

use serde::{Deserialize, Serialize};
use std::sync::Arc;

use llm4fp_mathlib::{DeviceMathLib, FastMathLib, HostLibm, HostVariantLibm, MathLib};

/// Compiler personality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CompilerId {
    /// Host compiler, GNU-style defaults (contracts FMAs from `-O1`, links
    /// the reference host math library).
    Gcc,
    /// Host compiler, LLVM-style defaults (more conservative in-statement
    /// contraction, links a slightly different math library build).
    Clang,
    /// Device compiler (contracts FMAs at every level unless `--fmad=false`,
    /// links the device math library, `--use_fast_math` swaps in hardware
    /// approximation routines).
    Nvcc,
}

impl CompilerId {
    /// All personalities, host compilers first (mirrors the paper's setup).
    pub const ALL: [CompilerId; 3] = [CompilerId::Gcc, CompilerId::Clang, CompilerId::Nvcc];

    /// True for compilers that target the host CPU.
    pub fn is_host(self) -> bool {
        !matches!(self, CompilerId::Nvcc)
    }

    /// Short display name, matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            CompilerId::Gcc => "gcc",
            CompilerId::Clang => "clang",
            CompilerId::Nvcc => "nvcc",
        }
    }

    /// The three compiler pairs evaluated in Table 4.
    pub fn pairs() -> [(CompilerId, CompilerId); 3] {
        [
            (CompilerId::Gcc, CompilerId::Clang),
            (CompilerId::Gcc, CompilerId::Nvcc),
            (CompilerId::Clang, CompilerId::Nvcc),
        ]
    }
}

impl std::fmt::Display for CompilerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Optimization level (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OptLevel {
    /// `-O0 -ffp-contract=off` / `-O0 --fmad=false`: the most IEEE-compliant
    /// configuration, used as the reference level in RQ4.
    O0Nofma,
    /// `-O0` with FMA contraction left at the compiler's default.
    O0,
    /// `-O1`.
    O1,
    /// `-O2`.
    O2,
    /// `-O3`.
    O3,
    /// `-O3 -ffast-math` / `-O3 --use_fast_math`: value-unsafe optimizations.
    O3Fastmath,
}

impl OptLevel {
    /// All levels in increasing aggressiveness, as iterated by the harness.
    pub const ALL: [OptLevel; 6] = [
        OptLevel::O0Nofma,
        OptLevel::O0,
        OptLevel::O1,
        OptLevel::O2,
        OptLevel::O3,
        OptLevel::O3Fastmath,
    ];

    /// Display name used in tables (matches the paper's spelling).
    pub fn name(self) -> &'static str {
        match self {
            OptLevel::O0Nofma => "O0_nofma",
            OptLevel::O0 => "O0",
            OptLevel::O1 => "O1",
            OptLevel::O2 => "O2",
            OptLevel::O3 => "O3",
            OptLevel::O3Fastmath => "O3_fastmath",
        }
    }

    /// The command-line flags of Table 1 for a given compiler personality.
    /// These are what the external (real-compiler) harness passes to actual
    /// binaries, and they double as documentation for the virtual semantics.
    pub fn flags(self, compiler: CompilerId) -> Vec<&'static str> {
        match (compiler, self) {
            (CompilerId::Nvcc, OptLevel::O0Nofma) => vec!["-O0", "--fmad=false"],
            (CompilerId::Nvcc, OptLevel::O0) => vec!["-O0"],
            (CompilerId::Nvcc, OptLevel::O1) => vec!["-O1"],
            (CompilerId::Nvcc, OptLevel::O2) => vec!["-O2"],
            (CompilerId::Nvcc, OptLevel::O3) => vec!["-O3"],
            (CompilerId::Nvcc, OptLevel::O3Fastmath) => vec!["-O3", "--use_fast_math"],
            (_, OptLevel::O0Nofma) => vec!["-O0", "-ffp-contract=off"],
            (_, OptLevel::O0) => vec!["-O0"],
            (_, OptLevel::O1) => vec!["-O1"],
            (_, OptLevel::O2) => vec!["-O2"],
            (_, OptLevel::O3) => vec!["-O3"],
            (_, OptLevel::O3Fastmath) => vec!["-O3", "-ffast-math"],
        }
    }

    /// Numeric rank (0 = `O0_nofma`), used when aggregating "vs `O0_nofma`"
    /// statistics.
    pub fn rank(self) -> usize {
        OptLevel::ALL.iter().position(|&l| l == self).expect("level is in ALL")
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which `a*b ± c` shapes a personality is willing to contract into fused
/// multiply-adds. Real compilers differ here: GCC's `-ffp-contract=fast`
/// contracts across the whole expression including when the multiply is the
/// right-hand addend, while LLVM's in-statement contraction is more
/// conservative; nvcc contracts aggressively at every level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContractionStyle {
    /// No contraction.
    Off,
    /// Contract only `mul + addend` and `mul - subtrahend` (multiply on the
    /// left-hand side of the addition/subtraction).
    MulOnLeft,
    /// Contract every shape: `a*b + c`, `c + a*b`, `a*b - c`, `c - a*b`.
    Aggressive,
}

/// How fast-math reassociates chains of associative operations. The three
/// personalities use different strategies, so `-ffast-math` compilations of
/// the same sum legitimately differ between compilers (this drives the
/// host-host inconsistencies at `O3_fastmath` in Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReassocStyle {
    /// Keep the source association (no reassociation).
    SourceOrder,
    /// Rebuild chains as a balanced tree (pairwise/vectorized style).
    BalancedTree,
    /// Regroup constants and hoist them to the front, keep the rest in
    /// source order.
    ConstantsFirst,
    /// Reverse the chain (accumulate from the last operand backwards).
    Reversed,
}

/// Which math library call sites are lowered to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MathLibKind {
    /// Reference host library (gcc).
    Host,
    /// Variant host library build (clang).
    HostVariant,
    /// Device math library (nvcc).
    Device,
    /// Fast-math approximation library (nvcc under `--use_fast_math`).
    Fast,
}

impl MathLibKind {
    /// Instantiate the library.
    pub fn instantiate(self) -> Arc<dyn MathLib> {
        match self {
            MathLibKind::Host => Arc::new(HostLibm::new()),
            MathLibKind::HostVariant => Arc::new(HostVariantLibm::new()),
            MathLibKind::Device => Arc::new(DeviceMathLib::new()),
            MathLibKind::Fast => Arc::new(FastMathLib::new()),
        }
    }

    /// Process-wide shared instance. The libraries are stateless, so a
    /// shared instance is observationally identical to a fresh one; the
    /// sealing hot path uses this to avoid a per-seal allocation.
    pub fn shared(self) -> Arc<dyn MathLib> {
        use std::sync::OnceLock;
        static HOST: OnceLock<Arc<dyn MathLib>> = OnceLock::new();
        static HOST_VARIANT: OnceLock<Arc<dyn MathLib>> = OnceLock::new();
        static DEVICE: OnceLock<Arc<dyn MathLib>> = OnceLock::new();
        static FAST: OnceLock<Arc<dyn MathLib>> = OnceLock::new();
        let cell = match self {
            MathLibKind::Host => &HOST,
            MathLibKind::HostVariant => &HOST_VARIANT,
            MathLibKind::Device => &DEVICE,
            MathLibKind::Fast => &FAST,
        };
        Arc::clone(cell.get_or_init(|| self.instantiate()))
    }
}

/// The floating-point semantics a (compiler, level) pair compiles under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Semantics {
    /// FMA contraction style.
    pub contraction: ContractionStyle,
    /// Whether value-unsafe fast-math rewrites are enabled at all.
    pub fast_math: bool,
    /// Reassociation strategy (only used when `fast_math` is true).
    pub reassoc: ReassocStyle,
    /// Rewrite `x / y` into `x * (1/y)` (fast-math). When `approx_recip` is
    /// also set the reciprocal itself is an approximation.
    pub recip_division: bool,
    /// Use the hardware approximate-reciprocal path for reciprocals.
    pub approx_recip: bool,
    /// Apply algebraic simplifications that are invalid under IEEE semantics
    /// (`x - x -> 0`, `x * 0 -> 0`, `x + 0 -> x`).
    pub algebraic_simplify: bool,
    /// Math library used for call lowering.
    pub math_lib: MathLibKind,
    /// Flush subnormal results of arithmetic to zero.
    pub flush_to_zero: bool,
    /// Perform compile-time constant folding.
    pub const_fold: bool,
}

/// A complete compiler configuration: who compiles, at which level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CompilerConfig {
    pub compiler: CompilerId,
    pub level: OptLevel,
}

impl CompilerConfig {
    pub fn new(compiler: CompilerId, level: OptLevel) -> Self {
        CompilerConfig { compiler, level }
    }

    /// Every (compiler, level) combination of the evaluation matrix
    /// (3 compilers × 6 levels = 18 configurations).
    pub fn full_matrix() -> Vec<CompilerConfig> {
        let mut out = Vec::with_capacity(CompilerId::ALL.len() * OptLevel::ALL.len());
        for &c in &CompilerId::ALL {
            for &l in &OptLevel::ALL {
                out.push(CompilerConfig::new(c, l));
            }
        }
        out
    }

    /// Display label like `gcc@O3_fastmath`.
    pub fn label(&self) -> String {
        format!("{}@{}", self.compiler.name(), self.level.name())
    }

    /// Derive the floating-point semantics this configuration compiles under.
    ///
    /// The table below is the heart of the virtual compiler; DESIGN.md
    /// documents how each row maps to real gcc/clang/nvcc behaviour.
    pub fn semantics(&self) -> Semantics {
        use CompilerId::*;
        use OptLevel::*;

        let contraction = match (self.compiler, self.level) {
            // O0_nofma disables contraction everywhere (that is its purpose).
            (_, O0Nofma) => ContractionStyle::Off,
            // nvcc contracts at every other level by default (--fmad=true).
            (Nvcc, _) => ContractionStyle::Aggressive,
            // gcc -ffp-contract=fast kicks in with optimization.
            (Gcc, O0) => ContractionStyle::Off,
            (Gcc, _) => ContractionStyle::Aggressive,
            // clang contracts in-statement only, and only with optimization.
            (Clang, O0) => ContractionStyle::Off,
            (Clang, _) => ContractionStyle::MulOnLeft,
        };

        let fast_math = self.level == O3Fastmath;

        let reassoc = if !fast_math {
            ReassocStyle::SourceOrder
        } else {
            match self.compiler {
                Gcc => ReassocStyle::BalancedTree,
                Clang => ReassocStyle::ConstantsFirst,
                Nvcc => ReassocStyle::Reversed,
            }
        };

        let math_lib = match (self.compiler, fast_math) {
            (Gcc, _) => MathLibKind::Host,
            (Clang, _) => MathLibKind::HostVariant,
            // Host fast-math keeps libm but allows unsafe rewrites; nvcc
            // --use_fast_math swaps the math functions themselves.
            (Nvcc, false) => MathLibKind::Device,
            (Nvcc, true) => MathLibKind::Fast,
        };

        Semantics {
            contraction,
            fast_math,
            reassoc,
            recip_division: fast_math,
            approx_recip: fast_math && self.compiler == Nvcc,
            algebraic_simplify: fast_math,
            math_lib,
            flush_to_zero: fast_math,
            const_fold: self.level.rank() >= OptLevel::O1.rank(),
        }
    }
}

impl std::fmt::Display for CompilerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matrix_has_18_configurations() {
        let m = CompilerConfig::full_matrix();
        assert_eq!(m.len(), 18);
        // All distinct.
        let mut sorted = m.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 18);
    }

    #[test]
    fn table1_flags_match_the_paper() {
        assert_eq!(OptLevel::O0Nofma.flags(CompilerId::Gcc), vec!["-O0", "-ffp-contract=off"]);
        assert_eq!(OptLevel::O0Nofma.flags(CompilerId::Nvcc), vec!["-O0", "--fmad=false"]);
        assert_eq!(OptLevel::O3Fastmath.flags(CompilerId::Clang), vec!["-O3", "-ffast-math"]);
        assert_eq!(OptLevel::O3Fastmath.flags(CompilerId::Nvcc), vec!["-O3", "--use_fast_math"]);
        assert_eq!(OptLevel::O2.flags(CompilerId::Gcc), vec!["-O2"]);
    }

    #[test]
    fn o0_nofma_is_strict_for_every_compiler() {
        for &c in &CompilerId::ALL {
            let s = CompilerConfig::new(c, OptLevel::O0Nofma).semantics();
            assert_eq!(s.contraction, ContractionStyle::Off, "{c}");
            assert!(!s.fast_math);
            assert!(!s.recip_division);
            assert!(!s.flush_to_zero);
            assert!(!s.const_fold);
        }
    }

    #[test]
    fn nvcc_contracts_at_o0_but_hosts_do_not() {
        let nvcc = CompilerConfig::new(CompilerId::Nvcc, OptLevel::O0).semantics();
        let gcc = CompilerConfig::new(CompilerId::Gcc, OptLevel::O0).semantics();
        let clang = CompilerConfig::new(CompilerId::Clang, OptLevel::O0).semantics();
        assert_eq!(nvcc.contraction, ContractionStyle::Aggressive);
        assert_eq!(gcc.contraction, ContractionStyle::Off);
        assert_eq!(clang.contraction, ContractionStyle::Off);
    }

    #[test]
    fn host_compilers_contract_differently_with_optimization() {
        let gcc = CompilerConfig::new(CompilerId::Gcc, OptLevel::O2).semantics();
        let clang = CompilerConfig::new(CompilerId::Clang, OptLevel::O2).semantics();
        assert_eq!(gcc.contraction, ContractionStyle::Aggressive);
        assert_eq!(clang.contraction, ContractionStyle::MulOnLeft);
    }

    #[test]
    fn fastmath_semantics_differ_per_compiler() {
        let gcc = CompilerConfig::new(CompilerId::Gcc, OptLevel::O3Fastmath).semantics();
        let clang = CompilerConfig::new(CompilerId::Clang, OptLevel::O3Fastmath).semantics();
        let nvcc = CompilerConfig::new(CompilerId::Nvcc, OptLevel::O3Fastmath).semantics();
        for s in [gcc, clang, nvcc] {
            assert!(s.fast_math);
            assert!(s.recip_division);
            assert!(s.algebraic_simplify);
            assert!(s.flush_to_zero);
        }
        assert_ne!(gcc.reassoc, clang.reassoc);
        assert_ne!(gcc.reassoc, nvcc.reassoc);
        // Only the device compiler swaps in the approximation library.
        assert_eq!(gcc.math_lib, MathLibKind::Host);
        assert_eq!(clang.math_lib, MathLibKind::HostVariant);
        assert_eq!(nvcc.math_lib, MathLibKind::Fast);
        assert!(nvcc.approx_recip);
        assert!(!gcc.approx_recip);
    }

    #[test]
    fn math_libraries_track_the_compiler_below_fastmath() {
        for &l in &[OptLevel::O0Nofma, OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3] {
            assert_eq!(
                CompilerConfig::new(CompilerId::Gcc, l).semantics().math_lib,
                MathLibKind::Host
            );
            assert_eq!(
                CompilerConfig::new(CompilerId::Clang, l).semantics().math_lib,
                MathLibKind::HostVariant
            );
            assert_eq!(
                CompilerConfig::new(CompilerId::Nvcc, l).semantics().math_lib,
                MathLibKind::Device
            );
        }
    }

    #[test]
    fn labels_and_ranks() {
        assert_eq!(
            CompilerConfig::new(CompilerId::Gcc, OptLevel::O3Fastmath).label(),
            "gcc@O3_fastmath"
        );
        assert_eq!(OptLevel::O0Nofma.rank(), 0);
        assert_eq!(OptLevel::O3Fastmath.rank(), 5);
        assert_eq!(CompilerId::pairs().len(), 3);
        assert!(CompilerId::Gcc.is_host());
        assert!(!CompilerId::Nvcc.is_host());
    }

    #[test]
    fn mathlib_kinds_instantiate_with_matching_names() {
        assert_eq!(MathLibKind::Host.instantiate().name(), "host-libm");
        assert_eq!(MathLibKind::HostVariant.instantiate().name(), "host-libm-variant");
        assert_eq!(MathLibKind::Device.instantiate().name(), "device");
        assert_eq!(MathLibKind::Fast.instantiate().name(), "fast-math");
    }
}
