//! The virtual compiler's intermediate representation.
//!
//! The IR keeps the structured control flow of the source program (loops and
//! conditionals are interpreted, not unrolled) but normalizes expressions:
//! parentheses are gone, compound assignments are desugared, and two
//! operation kinds that do not exist in the source language appear —
//! [`OExpr::Fma`] (produced by the contraction pass) and [`OExpr::Recip`]
//! (produced by the fast-math reciprocal-division pass).

use serde::{Deserialize, Serialize};

use llm4fp_fpir::{BinOp, CmpOp, IndexExpr, MathFunc};

/// An optimized expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OExpr {
    /// Floating-point constant.
    Const(f64),
    /// Scalar variable read (fp temporaries, parameters, `comp`, or integer
    /// variables, which are converted to fp on read).
    Var(String),
    /// Array element read.
    Index { array: String, index: IndexExpr },
    /// Negation.
    Neg(Box<OExpr>),
    /// Binary arithmetic.
    Bin { op: BinOp, lhs: Box<OExpr>, rhs: Box<OExpr> },
    /// Fused multiply-add `a * b + c` evaluated with a single rounding.
    Fma { a: Box<OExpr>, b: Box<OExpr>, c: Box<OExpr> },
    /// Reciprocal `1 / x`; `approx` selects the hardware approximation path.
    Recip { value: Box<OExpr>, approx: bool },
    /// Math library call.
    Call { func: MathFunc, args: Vec<OExpr> },
}

impl OExpr {
    pub fn bin(op: BinOp, lhs: OExpr, rhs: OExpr) -> OExpr {
        OExpr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    pub fn fma(a: OExpr, b: OExpr, c: OExpr) -> OExpr {
        OExpr::Fma { a: Box::new(a), b: Box::new(b), c: Box::new(c) }
    }

    pub fn var(name: impl Into<String>) -> OExpr {
        OExpr::Var(name.into())
    }

    /// Constant value if this node is a literal.
    pub fn as_const(&self) -> Option<f64> {
        match self {
            OExpr::Const(v) => Some(*v),
            _ => None,
        }
    }

    /// Number of nodes in the tree.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Pre-order visit of the tree.
    pub fn visit(&self, f: &mut impl FnMut(&OExpr)) {
        f(self);
        match self {
            OExpr::Neg(inner) => inner.visit(f),
            OExpr::Bin { lhs, rhs, .. } => {
                lhs.visit(f);
                rhs.visit(f);
            }
            OExpr::Fma { a, b, c } => {
                a.visit(f);
                b.visit(f);
                c.visit(f);
            }
            OExpr::Recip { value, .. } => value.visit(f),
            OExpr::Call { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            OExpr::Const(_) | OExpr::Var(_) | OExpr::Index { .. } => {}
        }
    }

    /// Count of nodes of a particular shape, used by pass tests and by the
    /// ablation benchmarks ("how many FMAs did contraction introduce?").
    pub fn count_matching(&self, pred: &impl Fn(&OExpr) -> bool) -> usize {
        let mut n = 0;
        self.visit(&mut |e| {
            if pred(e) {
                n += 1;
            }
        });
        n
    }

    /// True if the subtree contains no variable or array reads (and can
    /// therefore be folded at compile time).
    pub fn is_constant_tree(&self) -> bool {
        let mut constant = true;
        self.visit(&mut |e| {
            if matches!(e, OExpr::Var(_) | OExpr::Index { .. }) {
                constant = false;
            }
        });
        constant
    }
}

/// Comparison condition of an `if`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OCond {
    pub lhs: OExpr,
    pub op: CmpOp,
    pub rhs: OExpr,
}

/// An optimized statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OStmt {
    /// Scalar assignment (covers declarations, plain and compound
    /// assignments of the source program; compound forms are desugared).
    Assign { target: String, expr: OExpr },
    /// Array element store.
    Store { array: String, index: IndexExpr, expr: OExpr },
    /// Local array declaration (zero-filled beyond the initializer list).
    DeclArray { name: String, size: usize, init: Vec<f64> },
    /// Conditional.
    If { cond: OCond, then_block: Vec<OStmt> },
    /// Bounded counting loop `for (var = 0; var < bound; ++var)`.
    For { var: String, bound: i64, body: Vec<OStmt> },
}

impl OStmt {
    /// Visit every expression in this statement (and nested statements).
    pub fn visit_exprs(&self, f: &mut impl FnMut(&OExpr)) {
        match self {
            OStmt::Assign { expr, .. } | OStmt::Store { expr, .. } => expr.visit(f),
            OStmt::DeclArray { .. } => {}
            OStmt::If { cond, then_block } => {
                cond.lhs.visit(f);
                cond.rhs.visit(f);
                for s in then_block {
                    s.visit_exprs(f);
                }
            }
            OStmt::For { body, .. } => {
                for s in body {
                    s.visit_exprs(f);
                }
            }
        }
    }

    /// Rewrite every expression in this statement bottom-up using `rewrite`.
    pub fn map_exprs(self, rewrite: &impl Fn(OExpr) -> OExpr) -> OStmt {
        match self {
            OStmt::Assign { target, expr } => OStmt::Assign { target, expr: rewrite(expr) },
            OStmt::Store { array, index, expr } => {
                OStmt::Store { array, index, expr: rewrite(expr) }
            }
            OStmt::DeclArray { .. } => self,
            OStmt::If { cond, then_block } => OStmt::If {
                cond: OCond { lhs: rewrite(cond.lhs), op: cond.op, rhs: rewrite(cond.rhs) },
                then_block: then_block.into_iter().map(|s| s.map_exprs(rewrite)).collect(),
            },
            OStmt::For { var, bound, body } => OStmt::For {
                var,
                bound,
                body: body.into_iter().map(|s| s.map_exprs(rewrite)).collect(),
            },
        }
    }
}

/// Count matching expression nodes across a whole body.
pub fn count_in_body(body: &[OStmt], pred: impl Fn(&OExpr) -> bool) -> usize {
    let mut n = 0;
    for s in body {
        s.visit_exprs(&mut |e| {
            if pred(e) {
                n += 1;
            }
        });
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_helpers() {
        let e = OExpr::fma(OExpr::var("a"), OExpr::var("b"), OExpr::Const(1.0));
        assert_eq!(e.size(), 4);
        assert_eq!(e.as_const(), None);
        assert_eq!(OExpr::Const(2.0).as_const(), Some(2.0));
        assert!(!e.is_constant_tree());
        assert!(OExpr::bin(BinOp::Add, OExpr::Const(1.0), OExpr::Const(2.0)).is_constant_tree());
        assert_eq!(e.count_matching(&|x| matches!(x, OExpr::Var(_))), 2);
    }

    #[test]
    fn map_exprs_rewrites_nested_statements() {
        let body = vec![OStmt::For {
            var: "i".into(),
            bound: 3,
            body: vec![OStmt::If {
                cond: OCond { lhs: OExpr::Const(1.0), op: CmpOp::Gt, rhs: OExpr::Const(0.0) },
                then_block: vec![OStmt::Assign { target: "comp".into(), expr: OExpr::Const(1.0) }],
            }],
        }];
        let rewritten: Vec<OStmt> = body
            .into_iter()
            .map(|s| {
                s.map_exprs(&|e| match e {
                    OExpr::Const(v) => OExpr::Const(v + 1.0),
                    other => other,
                })
            })
            .collect();
        assert_eq!(count_in_body(&rewritten, |e| e.as_const() == Some(2.0)), 2);
        assert_eq!(count_in_body(&rewritten, |e| e.as_const() == Some(1.0)), 1);
    }

    #[test]
    fn count_in_body_sees_conditions_and_stores() {
        let body = vec![
            OStmt::Store { array: "a".into(), index: IndexExpr::Const(0), expr: OExpr::var("x") },
            OStmt::If {
                cond: OCond { lhs: OExpr::var("x"), op: CmpOp::Lt, rhs: OExpr::var("y") },
                then_block: vec![],
            },
        ];
        assert_eq!(count_in_body(&body, |e| matches!(e, OExpr::Var(_))), 3);
    }
}
