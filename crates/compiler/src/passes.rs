//! The optimization pass pipeline.
//!
//! Each pass is a tree rewrite over [`OStmt`] bodies, parameterized by the
//! [`Semantics`] derived from a [`crate::CompilerConfig`]:
//!
//! 1. **Constant folding** (`-O1` and above) — folds arithmetic on literal
//!    constants with correct rounding (value-preserving).
//! 2. **Algebraic simplification** (fast-math only) — `x - x → 0`,
//!    `x * 0 → 0`, `x + 0 → x`, `x * 1 → x`, `x / 1 → x`. Invalid under
//!    IEEE semantics when `x` is NaN, infinite or signed zero, which is one
//!    of the ways `O3_fastmath` produces extreme-value inconsistencies.
//! 3. **Reassociation** (fast-math only) — flattens chains of `+` / `*` and
//!    rebuilds them in a personality-specific order, changing rounding.
//! 4. **Reciprocal division** (fast-math only) — `x / y → x * (1/y)`, with
//!    an approximate reciprocal on the device personality.
//! 5. **FMA contraction** — fuses `a*b ± c` into a single-rounding FMA
//!    according to the personality's [`ContractionStyle`].
//!
//! The contraction pass runs last so that reassociation (when enabled)
//! changes which multiply-add pairs are adjacent — mirroring how real
//! backends contract after the IR has been reshaped.

use llm4fp_fpir::BinOp;

use crate::config::{ContractionStyle, ReassocStyle, Semantics};
use crate::ir::{OExpr, OStmt};

/// Run the full pipeline for the given semantics.
pub fn run_pipeline(body: Vec<OStmt>, sem: &Semantics) -> Vec<OStmt> {
    let mut body = body;
    if sem.const_fold {
        body = map_body(body, &const_fold_expr);
    }
    if sem.algebraic_simplify {
        body = map_body(body, &algebraic_simplify_expr);
    }
    if sem.fast_math && sem.reassoc != ReassocStyle::SourceOrder {
        let style = sem.reassoc;
        body = map_body(body, &move |e| reassociate_expr(e, style));
    }
    if sem.recip_division {
        let approx = sem.approx_recip;
        body = map_body(body, &move |e| recip_division_expr(e, approx));
    }
    if sem.contraction != ContractionStyle::Off {
        let style = sem.contraction;
        body = map_body(body, &move |e| contract_expr(e, style));
    }
    body
}

/// Apply an expression rewriter to every expression in a body.
fn map_body(body: Vec<OStmt>, rewrite: &impl Fn(OExpr) -> OExpr) -> Vec<OStmt> {
    body.into_iter().map(|s| s.map_exprs(rewrite)).collect()
}

// ---------------------------------------------------------------------------
// 1. Constant folding
// ---------------------------------------------------------------------------

/// Fold arithmetic on literals, bottom-up. Only plain binary arithmetic and
/// negation are folded (with the same rounding the interpreter would apply),
/// so folding never changes the program's result — it models the
/// value-preserving part of `-O1`/`-O2`/`-O3`.
pub fn const_fold_expr(expr: OExpr) -> OExpr {
    let expr = map_children(expr, &const_fold_expr);
    match &expr {
        OExpr::Neg(inner) => {
            if let Some(v) = inner.as_const() {
                return OExpr::Const(-v);
            }
        }
        OExpr::Bin { op, lhs, rhs } => {
            if let (Some(a), Some(b)) = (lhs.as_const(), rhs.as_const()) {
                let v = match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                };
                // NaN/Inf results are kept symbolic (not folded): real
                // compilers avoid folding traps/exceptional values at
                // compile time.
                if v.is_finite() {
                    return OExpr::Const(v);
                }
            }
        }
        _ => {}
    }
    expr
}

// ---------------------------------------------------------------------------
// 2. Algebraic simplification (fast-math)
// ---------------------------------------------------------------------------

/// Value-unsafe algebraic identities applied under fast-math.
pub fn algebraic_simplify_expr(expr: OExpr) -> OExpr {
    let expr = map_children(expr, &algebraic_simplify_expr);
    if let OExpr::Bin { op, lhs, rhs } = &expr {
        match op {
            BinOp::Sub if lhs == rhs => return OExpr::Const(0.0),
            BinOp::Add => {
                if rhs.as_const() == Some(0.0) {
                    return (**lhs).clone();
                }
                if lhs.as_const() == Some(0.0) {
                    return (**rhs).clone();
                }
            }
            BinOp::Mul => {
                if lhs.as_const() == Some(0.0) || rhs.as_const() == Some(0.0) {
                    return OExpr::Const(0.0);
                }
                if rhs.as_const() == Some(1.0) {
                    return (**lhs).clone();
                }
                if lhs.as_const() == Some(1.0) {
                    return (**rhs).clone();
                }
            }
            BinOp::Div if rhs.as_const() == Some(1.0) => {
                return (**lhs).clone();
            }
            _ => {}
        }
    }
    expr
}

// ---------------------------------------------------------------------------
// 3. Reassociation (fast-math)
// ---------------------------------------------------------------------------

/// Reassociate chains of the associative operators according to `style`.
pub fn reassociate_expr(expr: OExpr, style: ReassocStyle) -> OExpr {
    let expr = map_children(expr, &|e| reassociate_expr(e, style));
    if let OExpr::Bin { op, .. } = &expr {
        if op.is_associative() {
            let op = *op;
            let mut operands = Vec::new();
            flatten_chain(&expr, op, &mut operands);
            if operands.len() > 2 {
                return rebuild_chain(op, operands, style);
            }
        }
    }
    expr
}

/// Collect the operands of a maximal chain of `op` (e.g. `a + b + c + d`).
fn flatten_chain(expr: &OExpr, op: BinOp, out: &mut Vec<OExpr>) {
    match expr {
        OExpr::Bin { op: o, lhs, rhs } if *o == op => {
            flatten_chain(lhs, op, out);
            flatten_chain(rhs, op, out);
        }
        other => out.push(other.clone()),
    }
}

fn rebuild_chain(op: BinOp, operands: Vec<OExpr>, style: ReassocStyle) -> OExpr {
    match style {
        ReassocStyle::SourceOrder => fold_left(op, operands),
        ReassocStyle::Reversed => {
            let mut ops = operands;
            ops.reverse();
            fold_left(op, ops)
        }
        ReassocStyle::ConstantsFirst => {
            let (consts, rest): (Vec<_>, Vec<_>) =
                operands.into_iter().partition(|e| matches!(e, OExpr::Const(_)));
            let mut ordered = consts;
            ordered.extend(rest);
            fold_left(op, ordered)
        }
        ReassocStyle::BalancedTree => build_balanced(op, &operands),
    }
}

fn fold_left(op: BinOp, operands: Vec<OExpr>) -> OExpr {
    let mut iter = operands.into_iter();
    let first = iter.next().expect("chain has at least one operand");
    iter.fold(first, |acc, next| OExpr::bin(op, acc, next))
}

fn build_balanced(op: BinOp, operands: &[OExpr]) -> OExpr {
    match operands.len() {
        0 => unreachable!("chain cannot be empty"),
        1 => operands[0].clone(),
        n => {
            let mid = n / 2;
            OExpr::bin(
                op,
                build_balanced(op, &operands[..mid]),
                build_balanced(op, &operands[mid..]),
            )
        }
    }
}

// ---------------------------------------------------------------------------
// 4. Reciprocal division (fast-math)
// ---------------------------------------------------------------------------

/// Rewrite divisions into multiplications by a (possibly approximate)
/// reciprocal.
pub fn recip_division_expr(expr: OExpr, approx: bool) -> OExpr {
    let expr = map_children(expr, &|e| recip_division_expr(e, approx));
    if let OExpr::Bin { op: BinOp::Div, lhs, rhs } = expr {
        // `1 / y` stays a plain reciprocal of y; `x / y` becomes x * (1/y).
        let recip = OExpr::Recip { value: rhs, approx };
        if lhs.as_const() == Some(1.0) {
            return recip;
        }
        return OExpr::Bin { op: BinOp::Mul, lhs, rhs: Box::new(recip) };
    }
    expr
}

// ---------------------------------------------------------------------------
// 5. FMA contraction
// ---------------------------------------------------------------------------

/// Contract `a*b ± c` shapes into fused multiply-adds.
pub fn contract_expr(expr: OExpr, style: ContractionStyle) -> OExpr {
    let expr = map_children(expr, &|e| contract_expr(e, style));
    if style == ContractionStyle::Off {
        return expr;
    }
    if let OExpr::Bin { op, lhs, rhs } = &expr {
        match op {
            BinOp::Add => {
                // a*b + c (both styles)
                if let OExpr::Bin { op: BinOp::Mul, lhs: a, rhs: b } = &**lhs {
                    return OExpr::fma((**a).clone(), (**b).clone(), (**rhs).clone());
                }
                // c + a*b (aggressive only)
                if style == ContractionStyle::Aggressive {
                    if let OExpr::Bin { op: BinOp::Mul, lhs: a, rhs: b } = &**rhs {
                        return OExpr::fma((**a).clone(), (**b).clone(), (**lhs).clone());
                    }
                }
            }
            BinOp::Sub => {
                // a*b - c  →  fma(a, b, -c) (both styles)
                if let OExpr::Bin { op: BinOp::Mul, lhs: a, rhs: b } = &**lhs {
                    return OExpr::fma(
                        (**a).clone(),
                        (**b).clone(),
                        OExpr::Neg(Box::new((**rhs).clone())),
                    );
                }
                // c - a*b  →  fma(-a, b, c) (aggressive only)
                if style == ContractionStyle::Aggressive {
                    if let OExpr::Bin { op: BinOp::Mul, lhs: a, rhs: b } = &**rhs {
                        return OExpr::fma(
                            OExpr::Neg(Box::new((**a).clone())),
                            (**b).clone(),
                            (**lhs).clone(),
                        );
                    }
                }
            }
            _ => {}
        }
    }
    expr
}

// ---------------------------------------------------------------------------
// shared helpers
// ---------------------------------------------------------------------------

/// Rebuild an expression with its children rewritten by `f` (the children
/// only — the caller decides what to do with the node itself).
fn map_children(expr: OExpr, f: &impl Fn(OExpr) -> OExpr) -> OExpr {
    match expr {
        OExpr::Neg(inner) => OExpr::Neg(Box::new(f(*inner))),
        OExpr::Bin { op, lhs, rhs } => {
            OExpr::Bin { op, lhs: Box::new(f(*lhs)), rhs: Box::new(f(*rhs)) }
        }
        OExpr::Fma { a, b, c } => {
            OExpr::Fma { a: Box::new(f(*a)), b: Box::new(f(*b)), c: Box::new(f(*c)) }
        }
        OExpr::Recip { value, approx } => OExpr::Recip { value: Box::new(f(*value)), approx },
        OExpr::Call { func, args } => OExpr::Call { func, args: args.into_iter().map(f).collect() },
        leaf @ (OExpr::Const(_) | OExpr::Var(_) | OExpr::Index { .. }) => leaf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CompilerConfig, CompilerId, OptLevel};
    use crate::ir::count_in_body;
    use crate::lower::lower_program;
    use llm4fp_fpir::parse_compute;

    fn lower_src(src: &str) -> Vec<OStmt> {
        lower_program(&parse_compute(src).unwrap())
    }

    fn sem(compiler: CompilerId, level: OptLevel) -> Semantics {
        CompilerConfig::new(compiler, level).semantics()
    }

    #[test]
    fn const_folding_folds_literal_arithmetic_only() {
        let e = const_fold_expr(OExpr::bin(
            BinOp::Mul,
            OExpr::bin(BinOp::Add, OExpr::Const(1.5), OExpr::Const(2.5)),
            OExpr::var("x"),
        ));
        match e {
            OExpr::Bin { op: BinOp::Mul, lhs, .. } => assert_eq!(lhs.as_const(), Some(4.0)),
            other => panic!("unexpected {other:?}"),
        }
        // Division by literal zero is left symbolic.
        let e = const_fold_expr(OExpr::bin(BinOp::Div, OExpr::Const(1.0), OExpr::Const(0.0)));
        assert!(matches!(e, OExpr::Bin { .. }));
    }

    #[test]
    fn algebraic_simplification_applies_unsafe_identities() {
        let x_minus_x = OExpr::bin(BinOp::Sub, OExpr::var("x"), OExpr::var("x"));
        assert_eq!(algebraic_simplify_expr(x_minus_x).as_const(), Some(0.0));
        let x_times_0 = OExpr::bin(BinOp::Mul, OExpr::var("x"), OExpr::Const(0.0));
        assert_eq!(algebraic_simplify_expr(x_times_0).as_const(), Some(0.0));
        let x_plus_0 = OExpr::bin(BinOp::Add, OExpr::Const(0.0), OExpr::var("x"));
        assert_eq!(algebraic_simplify_expr(x_plus_0), OExpr::var("x"));
        let x_div_1 = OExpr::bin(BinOp::Div, OExpr::var("x"), OExpr::Const(1.0));
        assert_eq!(algebraic_simplify_expr(x_div_1), OExpr::var("x"));
        // x - y is untouched.
        let x_minus_y = OExpr::bin(BinOp::Sub, OExpr::var("x"), OExpr::var("y"));
        assert_eq!(algebraic_simplify_expr(x_minus_y.clone()), x_minus_y);
    }

    #[test]
    fn reassociation_styles_produce_different_trees() {
        let chain = OExpr::bin(
            BinOp::Add,
            OExpr::bin(
                BinOp::Add,
                OExpr::bin(BinOp::Add, OExpr::var("a"), OExpr::var("b")),
                OExpr::Const(3.0),
            ),
            OExpr::var("d"),
        );
        let balanced = reassociate_expr(chain.clone(), ReassocStyle::BalancedTree);
        let constants_first = reassociate_expr(chain.clone(), ReassocStyle::ConstantsFirst);
        let reversed = reassociate_expr(chain.clone(), ReassocStyle::Reversed);
        assert_ne!(balanced, chain);
        assert_ne!(constants_first, balanced);
        assert_ne!(reversed, balanced);
        // Constants-first puts the literal in the leftmost position.
        fn leftmost(e: &OExpr) -> &OExpr {
            match e {
                OExpr::Bin { lhs, .. } => leftmost(lhs),
                other => other,
            }
        }
        assert_eq!(leftmost(&constants_first).as_const(), Some(3.0));
        assert_eq!(leftmost(&reversed), &OExpr::var("d"));
        // All styles keep the same operand multiset (same size).
        assert_eq!(balanced.size(), chain.size());
        assert_eq!(reversed.size(), chain.size());
    }

    #[test]
    fn short_chains_are_not_reassociated() {
        let two = OExpr::bin(BinOp::Add, OExpr::var("a"), OExpr::var("b"));
        assert_eq!(reassociate_expr(two.clone(), ReassocStyle::BalancedTree), two);
        // Non-associative operators are never flattened.
        let subs = OExpr::bin(
            BinOp::Sub,
            OExpr::bin(BinOp::Sub, OExpr::var("a"), OExpr::var("b")),
            OExpr::var("c"),
        );
        assert_eq!(reassociate_expr(subs.clone(), ReassocStyle::Reversed), subs);
    }

    #[test]
    fn reciprocal_division_rewrites_divisions() {
        let div = OExpr::bin(BinOp::Div, OExpr::var("x"), OExpr::var("y"));
        match recip_division_expr(div, false) {
            OExpr::Bin { op: BinOp::Mul, rhs, .. } => {
                assert!(matches!(*rhs, OExpr::Recip { approx: false, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        let one_over = OExpr::bin(BinOp::Div, OExpr::Const(1.0), OExpr::var("y"));
        assert!(matches!(recip_division_expr(one_over, true), OExpr::Recip { approx: true, .. }));
    }

    #[test]
    fn contraction_styles_cover_different_patterns() {
        let mul_left = OExpr::bin(
            BinOp::Add,
            OExpr::bin(BinOp::Mul, OExpr::var("a"), OExpr::var("b")),
            OExpr::var("c"),
        );
        let mul_right = OExpr::bin(
            BinOp::Add,
            OExpr::var("c"),
            OExpr::bin(BinOp::Mul, OExpr::var("a"), OExpr::var("b")),
        );
        assert!(matches!(
            contract_expr(mul_left.clone(), ContractionStyle::MulOnLeft),
            OExpr::Fma { .. }
        ));
        assert!(matches!(contract_expr(mul_left, ContractionStyle::Aggressive), OExpr::Fma { .. }));
        // The conservative style leaves `c + a*b` alone; the aggressive one fuses it.
        assert!(matches!(
            contract_expr(mul_right.clone(), ContractionStyle::MulOnLeft),
            OExpr::Bin { .. }
        ));
        assert!(matches!(
            contract_expr(mul_right, ContractionStyle::Aggressive),
            OExpr::Fma { .. }
        ));
        // Subtraction with the multiply on the right needs a negated operand.
        let sub_right = OExpr::bin(
            BinOp::Sub,
            OExpr::var("c"),
            OExpr::bin(BinOp::Mul, OExpr::var("a"), OExpr::var("b")),
        );
        match contract_expr(sub_right, ContractionStyle::Aggressive) {
            OExpr::Fma { a, .. } => assert!(matches!(*a, OExpr::Neg(_))),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            contract_expr(
                OExpr::bin(
                    BinOp::Add,
                    OExpr::bin(BinOp::Mul, OExpr::var("a"), OExpr::var("b")),
                    OExpr::var("c")
                ),
                ContractionStyle::Off
            ),
            OExpr::Bin { .. }
        ));
    }

    #[test]
    fn pipeline_matches_table1_expectations_per_configuration() {
        let src = "void compute(double x, double y, double z) {\n\
                   comp = x * y + z;\n\
                   comp += x / y;\n\
                   comp = comp + x + y + z + 1.0;\n\
                   }";
        // O0_nofma: nothing happens.
        let strict = run_pipeline(lower_src(src), &sem(CompilerId::Gcc, OptLevel::O0Nofma));
        assert_eq!(count_in_body(&strict, |e| matches!(e, OExpr::Fma { .. })), 0);
        assert_eq!(count_in_body(&strict, |e| matches!(e, OExpr::Recip { .. })), 0);

        // gcc -O2 contracts but does not touch division or association.
        let gcc_o2 = run_pipeline(lower_src(src), &sem(CompilerId::Gcc, OptLevel::O2));
        assert!(count_in_body(&gcc_o2, |e| matches!(e, OExpr::Fma { .. })) >= 1);
        assert_eq!(count_in_body(&gcc_o2, |e| matches!(e, OExpr::Recip { .. })), 0);

        // nvcc -O0 already contracts (fmad default), hosts at -O0 do not.
        let nvcc_o0 = run_pipeline(lower_src(src), &sem(CompilerId::Nvcc, OptLevel::O0));
        let gcc_o0 = run_pipeline(lower_src(src), &sem(CompilerId::Gcc, OptLevel::O0));
        assert!(count_in_body(&nvcc_o0, |e| matches!(e, OExpr::Fma { .. })) >= 1);
        assert_eq!(count_in_body(&gcc_o0, |e| matches!(e, OExpr::Fma { .. })), 0);

        // Fast-math introduces reciprocals everywhere and approximate ones on
        // the device.
        let gcc_fast = run_pipeline(lower_src(src), &sem(CompilerId::Gcc, OptLevel::O3Fastmath));
        let nvcc_fast = run_pipeline(lower_src(src), &sem(CompilerId::Nvcc, OptLevel::O3Fastmath));
        assert!(count_in_body(&gcc_fast, |e| matches!(e, OExpr::Recip { approx: false, .. })) >= 1);
        assert!(count_in_body(&nvcc_fast, |e| matches!(e, OExpr::Recip { approx: true, .. })) >= 1);

        // The three personalities produce three different fast-math bodies.
        let clang_fast =
            run_pipeline(lower_src(src), &sem(CompilerId::Clang, OptLevel::O3Fastmath));
        assert_ne!(gcc_fast, clang_fast);
        assert_ne!(gcc_fast, nvcc_fast);
        assert_ne!(clang_fast, nvcc_fast);
    }

    #[test]
    fn pipeline_is_identity_preserving_for_structure() {
        // Control flow shape survives every pipeline.
        let src = "void compute(double *a, double s) {\n\
                   for (int i = 0; i < 4; ++i) {\n\
                     if (s > 0.0) { comp += a[i] * s + 1.0; }\n\
                   }\n\
                   }";
        for &c in &CompilerId::ALL {
            for &l in &OptLevel::ALL {
                let body = run_pipeline(lower_src(src), &sem(c, l));
                assert_eq!(body.len(), 1);
                match &body[0] {
                    OStmt::For { bound: 4, body, .. } => {
                        assert!(matches!(body[0], OStmt::If { .. }))
                    }
                    other => panic!("loop structure lost for {c} {l}: {other:?}"),
                }
            }
        }
    }
}
