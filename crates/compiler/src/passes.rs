//! The optimization pass pipeline.
//!
//! Each pass is a tree rewrite over [`OStmt`] bodies, parameterized by the
//! [`Semantics`] derived from a [`crate::CompilerConfig`]:
//!
//! 1. **Constant folding** (`-O1` and above) — folds arithmetic on literal
//!    constants with correct rounding (value-preserving).
//! 2. **Algebraic simplification** (fast-math only) — `x - x → 0`,
//!    `x * 0 → 0`, `x + 0 → x`, `x * 1 → x`, `x / 1 → x`. Invalid under
//!    IEEE semantics when `x` is NaN, infinite or signed zero, which is one
//!    of the ways `O3_fastmath` produces extreme-value inconsistencies.
//! 3. **Reassociation** (fast-math only) — flattens chains of `+` / `*` and
//!    rebuilds them in a personality-specific order, changing rounding.
//! 4. **Reciprocal division** (fast-math only) — `x / y → x * (1/y)`, with
//!    an approximate reciprocal on the device personality.
//! 5. **FMA contraction** — fuses `a*b ± c` into a single-rounding FMA
//!    according to the personality's [`ContractionStyle`].
//!
//! The contraction pass runs last so that reassociation (when enabled)
//! changes which multiply-add pairs are adjacent — mirroring how real
//! backends contract after the IR has been reshaped.

use llm4fp_fpir::BinOp;

use crate::config::{ContractionStyle, ReassocStyle, Semantics};
use crate::ir::{OExpr, OStmt};

/// One enabled pass application, fully parameterized. The pipeline a
/// [`Semantics`] selects is a *sequence* of stages ([`stages`]); running
/// them in order ([`apply_stage`]) is exactly [`run_pipeline`]. Matrix
/// sealing exploits the decomposition: configurations whose stage
/// sequences share a prefix share the intermediate IR after that prefix
/// (see `Frontend::seal_matrix`), so equality of `Stage` values is the
/// sharing criterion and must capture every parameter a pass reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Stage {
    ConstFold,
    AlgebraicSimplify,
    Reassociate(ReassocStyle),
    RecipDivision { approx: bool },
    Contract(ContractionStyle),
}

/// The stage sequence a semantics enables, in pipeline order.
pub(crate) fn stages(sem: &Semantics) -> Vec<Stage> {
    let mut out = Vec::with_capacity(5);
    if sem.const_fold {
        out.push(Stage::ConstFold);
    }
    if sem.algebraic_simplify {
        out.push(Stage::AlgebraicSimplify);
    }
    if sem.fast_math && sem.reassoc != ReassocStyle::SourceOrder {
        out.push(Stage::Reassociate(sem.reassoc));
    }
    if sem.recip_division {
        out.push(Stage::RecipDivision { approx: sem.approx_recip });
    }
    if sem.contraction != ContractionStyle::Off {
        out.push(Stage::Contract(sem.contraction));
    }
    out
}

/// Apply one stage to a body.
pub(crate) fn apply_stage(body: Vec<OStmt>, stage: Stage) -> Vec<OStmt> {
    match stage {
        Stage::ConstFold => map_body(body, &const_fold_expr),
        Stage::AlgebraicSimplify => map_body(body, &algebraic_simplify_expr),
        Stage::Reassociate(style) => map_body(body, &move |e| reassociate_expr(e, style)),
        Stage::RecipDivision { approx } => map_body(body, &move |e| recip_division_expr(e, approx)),
        Stage::Contract(style) => map_body(body, &move |e| contract_expr(e, style)),
    }
}

/// Apply one stage to a *borrowed* body, building the rewritten tree in
/// a single allocation pass. Produces exactly the same tree as
/// `apply_stage(body.to_vec(), stage)` — both drivers are bottom-up and
/// call the same node-local rewrite once per node — but skips the
/// intermediate clone, which matters because the prefix tree applies
/// stages to memoized `Arc` bodies it must not consume. This is the hot
/// driver of `Frontend::seal_matrix`.
pub(crate) fn apply_stage_ref(body: &[OStmt], stage: Stage) -> Vec<OStmt> {
    body.iter().map(|stmt| rewrite_stmt_ref(stmt, stage)).collect()
}

fn rewrite_stmt_ref(stmt: &OStmt, stage: Stage) -> OStmt {
    match stmt {
        OStmt::Assign { target, expr } => {
            OStmt::Assign { target: target.clone(), expr: rewrite_expr_ref(expr, stage) }
        }
        OStmt::Store { array, index, expr } => OStmt::Store {
            array: array.clone(),
            index: index.clone(),
            expr: rewrite_expr_ref(expr, stage),
        },
        OStmt::DeclArray { .. } => stmt.clone(),
        OStmt::If { cond, then_block } => OStmt::If {
            cond: crate::ir::OCond {
                lhs: rewrite_expr_ref(&cond.lhs, stage),
                op: cond.op,
                rhs: rewrite_expr_ref(&cond.rhs, stage),
            },
            then_block: then_block.iter().map(|s| rewrite_stmt_ref(s, stage)).collect(),
        },
        OStmt::For { var, bound, body } => OStmt::For {
            var: var.clone(),
            bound: *bound,
            body: body.iter().map(|s| rewrite_stmt_ref(s, stage)).collect(),
        },
    }
}

/// Bottom-up by-reference rewrite: children first, then the stage's
/// node-local function on the rebuilt node — the same evaluation order as
/// the consuming drivers above.
fn rewrite_expr_ref(expr: &OExpr, stage: Stage) -> OExpr {
    let rebuilt = match expr {
        OExpr::Neg(inner) => OExpr::Neg(Box::new(rewrite_expr_ref(inner, stage))),
        OExpr::Bin { op, lhs, rhs } => OExpr::Bin {
            op: *op,
            lhs: Box::new(rewrite_expr_ref(lhs, stage)),
            rhs: Box::new(rewrite_expr_ref(rhs, stage)),
        },
        OExpr::Fma { a, b, c } => OExpr::Fma {
            a: Box::new(rewrite_expr_ref(a, stage)),
            b: Box::new(rewrite_expr_ref(b, stage)),
            c: Box::new(rewrite_expr_ref(c, stage)),
        },
        OExpr::Recip { value, approx } => {
            OExpr::Recip { value: Box::new(rewrite_expr_ref(value, stage)), approx: *approx }
        }
        OExpr::Call { func, args } => OExpr::Call {
            func: *func,
            args: args.iter().map(|a| rewrite_expr_ref(a, stage)).collect(),
        },
        leaf @ (OExpr::Const(_) | OExpr::Var(_) | OExpr::Index { .. }) => leaf.clone(),
    };
    apply_node(rebuilt, stage)
}

/// One stage's node-local rewrite (children already rewritten).
fn apply_node(expr: OExpr, stage: Stage) -> OExpr {
    match stage {
        Stage::ConstFold => const_fold_node(expr),
        Stage::AlgebraicSimplify => algebraic_simplify_node(expr),
        Stage::Reassociate(style) => reassociate_node(expr, style),
        Stage::RecipDivision { approx } => recip_division_node(expr, approx),
        Stage::Contract(style) => contract_node(expr, style),
    }
}

/// Run the full pipeline for the given semantics.
pub fn run_pipeline(body: Vec<OStmt>, sem: &Semantics) -> Vec<OStmt> {
    stages(sem).into_iter().fold(body, apply_stage)
}

/// Apply an expression rewriter to every expression in a body.
fn map_body(body: Vec<OStmt>, rewrite: &impl Fn(OExpr) -> OExpr) -> Vec<OStmt> {
    body.into_iter().map(|s| s.map_exprs(rewrite)).collect()
}

// ---------------------------------------------------------------------------
// 1. Constant folding
// ---------------------------------------------------------------------------

/// Fold arithmetic on literals, bottom-up. Only plain binary arithmetic and
/// negation are folded (with the same rounding the interpreter would apply),
/// so folding never changes the program's result — it models the
/// value-preserving part of `-O1`/`-O2`/`-O3`.
pub fn const_fold_expr(expr: OExpr) -> OExpr {
    const_fold_node(map_children(expr, &const_fold_expr))
}

/// Node-local half of [`const_fold_expr`] (children already rewritten).
fn const_fold_node(expr: OExpr) -> OExpr {
    match &expr {
        OExpr::Neg(inner) => {
            if let Some(v) = inner.as_const() {
                return OExpr::Const(-v);
            }
        }
        OExpr::Bin { op, lhs, rhs } => {
            if let (Some(a), Some(b)) = (lhs.as_const(), rhs.as_const()) {
                let v = match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                };
                // NaN/Inf results are kept symbolic (not folded): real
                // compilers avoid folding traps/exceptional values at
                // compile time.
                if v.is_finite() {
                    return OExpr::Const(v);
                }
            }
        }
        _ => {}
    }
    expr
}

// ---------------------------------------------------------------------------
// 2. Algebraic simplification (fast-math)
// ---------------------------------------------------------------------------

/// Value-unsafe algebraic identities applied under fast-math.
pub fn algebraic_simplify_expr(expr: OExpr) -> OExpr {
    algebraic_simplify_node(map_children(expr, &algebraic_simplify_expr))
}

/// Node-local half of [`algebraic_simplify_expr`].
fn algebraic_simplify_node(expr: OExpr) -> OExpr {
    if let OExpr::Bin { op, lhs, rhs } = &expr {
        match op {
            BinOp::Sub if lhs == rhs => return OExpr::Const(0.0),
            BinOp::Add => {
                if rhs.as_const() == Some(0.0) {
                    return (**lhs).clone();
                }
                if lhs.as_const() == Some(0.0) {
                    return (**rhs).clone();
                }
            }
            BinOp::Mul => {
                if lhs.as_const() == Some(0.0) || rhs.as_const() == Some(0.0) {
                    return OExpr::Const(0.0);
                }
                if rhs.as_const() == Some(1.0) {
                    return (**lhs).clone();
                }
                if lhs.as_const() == Some(1.0) {
                    return (**rhs).clone();
                }
            }
            BinOp::Div if rhs.as_const() == Some(1.0) => {
                return (**lhs).clone();
            }
            _ => {}
        }
    }
    expr
}

// ---------------------------------------------------------------------------
// 3. Reassociation (fast-math)
// ---------------------------------------------------------------------------

/// Reassociate chains of the associative operators according to `style`.
pub fn reassociate_expr(expr: OExpr, style: ReassocStyle) -> OExpr {
    reassociate_node(map_children(expr, &|e| reassociate_expr(e, style)), style)
}

/// Node-local half of [`reassociate_expr`].
fn reassociate_node(expr: OExpr, style: ReassocStyle) -> OExpr {
    if let OExpr::Bin { op, .. } = &expr {
        if op.is_associative() {
            let op = *op;
            let mut operands = Vec::new();
            flatten_chain(&expr, op, &mut operands);
            if operands.len() > 2 {
                return rebuild_chain(op, operands, style);
            }
        }
    }
    expr
}

/// Collect the operands of a maximal chain of `op` (e.g. `a + b + c + d`).
fn flatten_chain(expr: &OExpr, op: BinOp, out: &mut Vec<OExpr>) {
    match expr {
        OExpr::Bin { op: o, lhs, rhs } if *o == op => {
            flatten_chain(lhs, op, out);
            flatten_chain(rhs, op, out);
        }
        other => out.push(other.clone()),
    }
}

fn rebuild_chain(op: BinOp, operands: Vec<OExpr>, style: ReassocStyle) -> OExpr {
    match style {
        ReassocStyle::SourceOrder => fold_left(op, operands),
        ReassocStyle::Reversed => {
            let mut ops = operands;
            ops.reverse();
            fold_left(op, ops)
        }
        ReassocStyle::ConstantsFirst => {
            let (consts, rest): (Vec<_>, Vec<_>) =
                operands.into_iter().partition(|e| matches!(e, OExpr::Const(_)));
            let mut ordered = consts;
            ordered.extend(rest);
            fold_left(op, ordered)
        }
        ReassocStyle::BalancedTree => build_balanced(op, &operands),
    }
}

fn fold_left(op: BinOp, operands: Vec<OExpr>) -> OExpr {
    let mut iter = operands.into_iter();
    let first = iter.next().expect("chain has at least one operand");
    iter.fold(first, |acc, next| OExpr::bin(op, acc, next))
}

fn build_balanced(op: BinOp, operands: &[OExpr]) -> OExpr {
    match operands.len() {
        0 => unreachable!("chain cannot be empty"),
        1 => operands[0].clone(),
        n => {
            let mid = n / 2;
            OExpr::bin(
                op,
                build_balanced(op, &operands[..mid]),
                build_balanced(op, &operands[mid..]),
            )
        }
    }
}

// ---------------------------------------------------------------------------
// 4. Reciprocal division (fast-math)
// ---------------------------------------------------------------------------

/// Rewrite divisions into multiplications by a (possibly approximate)
/// reciprocal.
pub fn recip_division_expr(expr: OExpr, approx: bool) -> OExpr {
    recip_division_node(map_children(expr, &|e| recip_division_expr(e, approx)), approx)
}

/// Node-local half of [`recip_division_expr`].
fn recip_division_node(expr: OExpr, approx: bool) -> OExpr {
    if let OExpr::Bin { op: BinOp::Div, lhs, rhs } = expr {
        // `1 / y` stays a plain reciprocal of y; `x / y` becomes x * (1/y).
        let recip = OExpr::Recip { value: rhs, approx };
        if lhs.as_const() == Some(1.0) {
            return recip;
        }
        return OExpr::Bin { op: BinOp::Mul, lhs, rhs: Box::new(recip) };
    }
    expr
}

// ---------------------------------------------------------------------------
// 5. FMA contraction
// ---------------------------------------------------------------------------

/// Contract `a*b ± c` shapes into fused multiply-adds.
pub fn contract_expr(expr: OExpr, style: ContractionStyle) -> OExpr {
    contract_node(map_children(expr, &|e| contract_expr(e, style)), style)
}

/// Node-local half of [`contract_expr`].
fn contract_node(expr: OExpr, style: ContractionStyle) -> OExpr {
    if style == ContractionStyle::Off {
        return expr;
    }
    if let OExpr::Bin { op, lhs, rhs } = &expr {
        match op {
            BinOp::Add => {
                // a*b + c (both styles)
                if let OExpr::Bin { op: BinOp::Mul, lhs: a, rhs: b } = &**lhs {
                    return OExpr::fma((**a).clone(), (**b).clone(), (**rhs).clone());
                }
                // c + a*b (aggressive only)
                if style == ContractionStyle::Aggressive {
                    if let OExpr::Bin { op: BinOp::Mul, lhs: a, rhs: b } = &**rhs {
                        return OExpr::fma((**a).clone(), (**b).clone(), (**lhs).clone());
                    }
                }
            }
            BinOp::Sub => {
                // a*b - c  →  fma(a, b, -c) (both styles)
                if let OExpr::Bin { op: BinOp::Mul, lhs: a, rhs: b } = &**lhs {
                    return OExpr::fma(
                        (**a).clone(),
                        (**b).clone(),
                        OExpr::Neg(Box::new((**rhs).clone())),
                    );
                }
                // c - a*b  →  fma(-a, b, c) (aggressive only)
                if style == ContractionStyle::Aggressive {
                    if let OExpr::Bin { op: BinOp::Mul, lhs: a, rhs: b } = &**rhs {
                        return OExpr::fma(
                            OExpr::Neg(Box::new((**a).clone())),
                            (**b).clone(),
                            (**lhs).clone(),
                        );
                    }
                }
            }
            _ => {}
        }
    }
    expr
}

// ---------------------------------------------------------------------------
// shared helpers
// ---------------------------------------------------------------------------

/// Rebuild an expression with its children rewritten by `f` (the children
/// only — the caller decides what to do with the node itself).
fn map_children(expr: OExpr, f: &impl Fn(OExpr) -> OExpr) -> OExpr {
    match expr {
        OExpr::Neg(inner) => OExpr::Neg(Box::new(f(*inner))),
        OExpr::Bin { op, lhs, rhs } => {
            OExpr::Bin { op, lhs: Box::new(f(*lhs)), rhs: Box::new(f(*rhs)) }
        }
        OExpr::Fma { a, b, c } => {
            OExpr::Fma { a: Box::new(f(*a)), b: Box::new(f(*b)), c: Box::new(f(*c)) }
        }
        OExpr::Recip { value, approx } => OExpr::Recip { value: Box::new(f(*value)), approx },
        OExpr::Call { func, args } => OExpr::Call { func, args: args.into_iter().map(f).collect() },
        leaf @ (OExpr::Const(_) | OExpr::Var(_) | OExpr::Index { .. }) => leaf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CompilerConfig, CompilerId, OptLevel};
    use crate::ir::count_in_body;
    use crate::lower::lower_program;
    use llm4fp_fpir::parse_compute;

    fn lower_src(src: &str) -> Vec<OStmt> {
        lower_program(&parse_compute(src).unwrap())
    }

    fn sem(compiler: CompilerId, level: OptLevel) -> Semantics {
        CompilerConfig::new(compiler, level).semantics()
    }

    #[test]
    fn const_folding_folds_literal_arithmetic_only() {
        let e = const_fold_expr(OExpr::bin(
            BinOp::Mul,
            OExpr::bin(BinOp::Add, OExpr::Const(1.5), OExpr::Const(2.5)),
            OExpr::var("x"),
        ));
        match e {
            OExpr::Bin { op: BinOp::Mul, lhs, .. } => assert_eq!(lhs.as_const(), Some(4.0)),
            other => panic!("unexpected {other:?}"),
        }
        // Division by literal zero is left symbolic.
        let e = const_fold_expr(OExpr::bin(BinOp::Div, OExpr::Const(1.0), OExpr::Const(0.0)));
        assert!(matches!(e, OExpr::Bin { .. }));
    }

    #[test]
    fn algebraic_simplification_applies_unsafe_identities() {
        let x_minus_x = OExpr::bin(BinOp::Sub, OExpr::var("x"), OExpr::var("x"));
        assert_eq!(algebraic_simplify_expr(x_minus_x).as_const(), Some(0.0));
        let x_times_0 = OExpr::bin(BinOp::Mul, OExpr::var("x"), OExpr::Const(0.0));
        assert_eq!(algebraic_simplify_expr(x_times_0).as_const(), Some(0.0));
        let x_plus_0 = OExpr::bin(BinOp::Add, OExpr::Const(0.0), OExpr::var("x"));
        assert_eq!(algebraic_simplify_expr(x_plus_0), OExpr::var("x"));
        let x_div_1 = OExpr::bin(BinOp::Div, OExpr::var("x"), OExpr::Const(1.0));
        assert_eq!(algebraic_simplify_expr(x_div_1), OExpr::var("x"));
        // x - y is untouched.
        let x_minus_y = OExpr::bin(BinOp::Sub, OExpr::var("x"), OExpr::var("y"));
        assert_eq!(algebraic_simplify_expr(x_minus_y.clone()), x_minus_y);
    }

    #[test]
    fn reassociation_styles_produce_different_trees() {
        let chain = OExpr::bin(
            BinOp::Add,
            OExpr::bin(
                BinOp::Add,
                OExpr::bin(BinOp::Add, OExpr::var("a"), OExpr::var("b")),
                OExpr::Const(3.0),
            ),
            OExpr::var("d"),
        );
        let balanced = reassociate_expr(chain.clone(), ReassocStyle::BalancedTree);
        let constants_first = reassociate_expr(chain.clone(), ReassocStyle::ConstantsFirst);
        let reversed = reassociate_expr(chain.clone(), ReassocStyle::Reversed);
        assert_ne!(balanced, chain);
        assert_ne!(constants_first, balanced);
        assert_ne!(reversed, balanced);
        // Constants-first puts the literal in the leftmost position.
        fn leftmost(e: &OExpr) -> &OExpr {
            match e {
                OExpr::Bin { lhs, .. } => leftmost(lhs),
                other => other,
            }
        }
        assert_eq!(leftmost(&constants_first).as_const(), Some(3.0));
        assert_eq!(leftmost(&reversed), &OExpr::var("d"));
        // All styles keep the same operand multiset (same size).
        assert_eq!(balanced.size(), chain.size());
        assert_eq!(reversed.size(), chain.size());
    }

    #[test]
    fn short_chains_are_not_reassociated() {
        let two = OExpr::bin(BinOp::Add, OExpr::var("a"), OExpr::var("b"));
        assert_eq!(reassociate_expr(two.clone(), ReassocStyle::BalancedTree), two);
        // Non-associative operators are never flattened.
        let subs = OExpr::bin(
            BinOp::Sub,
            OExpr::bin(BinOp::Sub, OExpr::var("a"), OExpr::var("b")),
            OExpr::var("c"),
        );
        assert_eq!(reassociate_expr(subs.clone(), ReassocStyle::Reversed), subs);
    }

    #[test]
    fn reciprocal_division_rewrites_divisions() {
        let div = OExpr::bin(BinOp::Div, OExpr::var("x"), OExpr::var("y"));
        match recip_division_expr(div, false) {
            OExpr::Bin { op: BinOp::Mul, rhs, .. } => {
                assert!(matches!(*rhs, OExpr::Recip { approx: false, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        let one_over = OExpr::bin(BinOp::Div, OExpr::Const(1.0), OExpr::var("y"));
        assert!(matches!(recip_division_expr(one_over, true), OExpr::Recip { approx: true, .. }));
    }

    #[test]
    fn contraction_styles_cover_different_patterns() {
        let mul_left = OExpr::bin(
            BinOp::Add,
            OExpr::bin(BinOp::Mul, OExpr::var("a"), OExpr::var("b")),
            OExpr::var("c"),
        );
        let mul_right = OExpr::bin(
            BinOp::Add,
            OExpr::var("c"),
            OExpr::bin(BinOp::Mul, OExpr::var("a"), OExpr::var("b")),
        );
        assert!(matches!(
            contract_expr(mul_left.clone(), ContractionStyle::MulOnLeft),
            OExpr::Fma { .. }
        ));
        assert!(matches!(contract_expr(mul_left, ContractionStyle::Aggressive), OExpr::Fma { .. }));
        // The conservative style leaves `c + a*b` alone; the aggressive one fuses it.
        assert!(matches!(
            contract_expr(mul_right.clone(), ContractionStyle::MulOnLeft),
            OExpr::Bin { .. }
        ));
        assert!(matches!(
            contract_expr(mul_right, ContractionStyle::Aggressive),
            OExpr::Fma { .. }
        ));
        // Subtraction with the multiply on the right needs a negated operand.
        let sub_right = OExpr::bin(
            BinOp::Sub,
            OExpr::var("c"),
            OExpr::bin(BinOp::Mul, OExpr::var("a"), OExpr::var("b")),
        );
        match contract_expr(sub_right, ContractionStyle::Aggressive) {
            OExpr::Fma { a, .. } => assert!(matches!(*a, OExpr::Neg(_))),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            contract_expr(
                OExpr::bin(
                    BinOp::Add,
                    OExpr::bin(BinOp::Mul, OExpr::var("a"), OExpr::var("b")),
                    OExpr::var("c")
                ),
                ContractionStyle::Off
            ),
            OExpr::Bin { .. }
        ));
    }

    #[test]
    fn pipeline_matches_table1_expectations_per_configuration() {
        let src = "void compute(double x, double y, double z) {\n\
                   comp = x * y + z;\n\
                   comp += x / y;\n\
                   comp = comp + x + y + z + 1.0;\n\
                   }";
        // O0_nofma: nothing happens.
        let strict = run_pipeline(lower_src(src), &sem(CompilerId::Gcc, OptLevel::O0Nofma));
        assert_eq!(count_in_body(&strict, |e| matches!(e, OExpr::Fma { .. })), 0);
        assert_eq!(count_in_body(&strict, |e| matches!(e, OExpr::Recip { .. })), 0);

        // gcc -O2 contracts but does not touch division or association.
        let gcc_o2 = run_pipeline(lower_src(src), &sem(CompilerId::Gcc, OptLevel::O2));
        assert!(count_in_body(&gcc_o2, |e| matches!(e, OExpr::Fma { .. })) >= 1);
        assert_eq!(count_in_body(&gcc_o2, |e| matches!(e, OExpr::Recip { .. })), 0);

        // nvcc -O0 already contracts (fmad default), hosts at -O0 do not.
        let nvcc_o0 = run_pipeline(lower_src(src), &sem(CompilerId::Nvcc, OptLevel::O0));
        let gcc_o0 = run_pipeline(lower_src(src), &sem(CompilerId::Gcc, OptLevel::O0));
        assert!(count_in_body(&nvcc_o0, |e| matches!(e, OExpr::Fma { .. })) >= 1);
        assert_eq!(count_in_body(&gcc_o0, |e| matches!(e, OExpr::Fma { .. })), 0);

        // Fast-math introduces reciprocals everywhere and approximate ones on
        // the device.
        let gcc_fast = run_pipeline(lower_src(src), &sem(CompilerId::Gcc, OptLevel::O3Fastmath));
        let nvcc_fast = run_pipeline(lower_src(src), &sem(CompilerId::Nvcc, OptLevel::O3Fastmath));
        assert!(count_in_body(&gcc_fast, |e| matches!(e, OExpr::Recip { approx: false, .. })) >= 1);
        assert!(count_in_body(&nvcc_fast, |e| matches!(e, OExpr::Recip { approx: true, .. })) >= 1);

        // The three personalities produce three different fast-math bodies.
        let clang_fast =
            run_pipeline(lower_src(src), &sem(CompilerId::Clang, OptLevel::O3Fastmath));
        assert_ne!(gcc_fast, clang_fast);
        assert_ne!(gcc_fast, nvcc_fast);
        assert_ne!(clang_fast, nvcc_fast);
    }

    #[test]
    fn pipeline_is_identity_preserving_for_structure() {
        // Control flow shape survives every pipeline.
        let src = "void compute(double *a, double s) {\n\
                   for (int i = 0; i < 4; ++i) {\n\
                     if (s > 0.0) { comp += a[i] * s + 1.0; }\n\
                   }\n\
                   }";
        for &c in &CompilerId::ALL {
            for &l in &OptLevel::ALL {
                let body = run_pipeline(lower_src(src), &sem(c, l));
                assert_eq!(body.len(), 1);
                match &body[0] {
                    OStmt::For { bound: 4, body, .. } => {
                        assert!(matches!(body[0], OStmt::If { .. }))
                    }
                    other => panic!("loop structure lost for {c} {l}: {other:?}"),
                }
            }
        }
    }
}
