//! # llm4fp-compiler
//!
//! The virtual floating-point compiler: the substrate that stands in for the
//! gcc / clang / nvcc toolchains of the paper's testbed.
//!
//! A [`CompilerConfig`] — a compiler *personality* ([`CompilerId`]) plus an
//! optimization level ([`OptLevel`], Table 1 of the paper) — determines a set
//! of floating-point [`Semantics`]: whether FMA contraction is performed and
//! with which pattern coverage, whether fast-math value-unsafe rewrites
//! (reassociation, reciprocal division, algebraic simplification) are
//! applied, which math library calls are lowered to, and whether subnormal
//! results are flushed to zero. Compiling a program runs a front end
//! ([`lower`]), a pass pipeline ([`passes`]) parameterized by those
//! semantics, and produces a [`CompiledProgram`] that the bit-exact
//! interpreter ([`interp`]) executes to obtain the program's printed result.
//!
//! The design goal is not to model any particular compiler version exactly,
//! but to reproduce the *mechanics* by which real compilers make the same
//! source program produce different bits: different FMA contraction
//! defaults, different math libraries on host vs device, and value-unsafe
//! fast-math transformations (see DESIGN.md for the mapping).
//!
//! ```
//! use llm4fp_fpir::{parse_compute, InputSet, InputValue};
//! use llm4fp_compiler::{compile, CompilerConfig, CompilerId, OptLevel};
//!
//! let program = parse_compute(
//!     "void compute(double x) { double comp = 0.0; comp = sin(x) * x + x; }",
//! ).unwrap();
//! let inputs = InputSet::new().with("x", InputValue::Fp(0.7));
//!
//! let host = compile(&program, CompilerConfig::new(CompilerId::Gcc, OptLevel::O0Nofma)).unwrap();
//! let device = compile(&program, CompilerConfig::new(CompilerId::Nvcc, OptLevel::O3)).unwrap();
//! let a = host.execute(&inputs).unwrap();
//! let b = device.execute(&inputs).unwrap();
//! // The two configurations may legitimately produce different bit patterns.
//! println!("{:016x} vs {:016x}", a.bits(), b.bits());
//! ```

#![deny(unsafe_code)]

pub mod bytecode;
pub mod compile;
pub mod config;
pub mod interp;
pub mod ir;
pub mod lower;
pub mod passes;
pub mod peephole;
pub mod vm;

pub use bytecode::{SealError, SealedProgram};
pub use compile::{compile, CompileError, CompiledProgram, Frontend};
pub use config::{CompilerConfig, CompilerId, ContractionStyle, OptLevel, ReassocStyle, Semantics};
pub use interp::{ExecError, ExecResult};
pub use ir::{OExpr, OStmt};
pub use peephole::{PeepholeStats, SealMode, SealScratch};
pub use vm::ExecScratch;
