//! # llm4fp-difftest
//!
//! Differential testing of floating-point programs across compiler
//! configurations (Section 2.4 of the paper).
//!
//! For one (program, input set) pair the [`DiffTester`] compiles the program
//! under every configuration of the evaluation matrix (3 compilers × 6
//! optimization levels by default), executes all artifacts on the same
//! inputs, and compares the printed hexadecimal results of every compiler
//! pair at every level. A *floating-point inconsistency* is recorded
//! whenever two outputs differ in their bitwise representation.
//!
//! The [`aggregate`] module accumulates the statistics the paper reports:
//! inconsistency rates per compiler pair and level with digit-difference
//! statistics (Table 4), inconsistency-kind counts (Figure 3 and Table 3),
//! and per-compiler rates of each level against `O0_nofma` (Table 5).

#![deny(unsafe_code)]

pub mod aggregate;
pub mod backend;
pub mod cache;
pub mod compare;
pub mod matrix;

pub use aggregate::{Aggregates, KindByLevel, PairLevelStats, VsBaselineStats};
pub use backend::{BudgetGuard, ExecBackend, ProcessBudget};
pub use cache::{CacheStats, CachedDiff, ResultCache};
pub use compare::{classify, digit_difference, DiffRecord, InconsistencyKind, ValueClass};
pub use matrix::{
    record_outcome_metrics, ConfigOutcome, DiffTester, ExecEngine, MatrixScratch, Outcome,
    ProgramDiffResult,
};
