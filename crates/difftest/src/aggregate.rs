//! Aggregation of differential-testing results into the statistics the
//! paper reports.
//!
//! * [`PairLevelStats`] — inconsistency counts and digit-difference
//!   min/max/avg per (compiler pair, optimization level): Table 4.
//! * [`KindByLevel`] — inconsistency-kind counts overall (Figure 3) and per
//!   level (Table 3).
//! * [`VsBaselineStats`] — within-compiler comparisons of every level
//!   against `O0_nofma`: Table 5.
//! * [`Aggregates`] — everything above plus the overall inconsistency rate
//!   of Table 2, accumulated incrementally as programs are tested.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use llm4fp_compiler::{CompilerId, OptLevel};

use crate::compare::{DiffRecord, InconsistencyKind};
use crate::matrix::ProgramDiffResult;

/// Digit-difference statistics (min / max / mean) for one cell of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct DigitStats {
    pub count: u64,
    pub min: usize,
    pub max: usize,
    pub sum: u64,
}

impl DigitStats {
    fn record(&mut self, digits: usize) {
        if self.count == 0 {
            self.min = digits;
            self.max = digits;
        } else {
            self.min = self.min.min(digits);
            self.max = self.max.max(digits);
        }
        self.count += 1;
        self.sum += digits as u64;
    }

    /// Mean digit difference (0 when no inconsistencies were recorded).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Per (compiler pair, level) inconsistency statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PairLevelStats {
    /// Inconsistency count per (pair, level).
    counts: BTreeMap<((CompilerId, CompilerId), OptLevel), u64>,
    /// Digit statistics per (pair, level).
    digits: BTreeMap<((CompilerId, CompilerId), OptLevel), DigitStats>,
}

impl PairLevelStats {
    fn record(&mut self, rec: &DiffRecord) {
        let key = (rec.pair, rec.level);
        *self.counts.entry(key).or_default() += 1;
        self.digits.entry(key).or_default().record(rec.digit_diff);
    }

    /// Inconsistency count for one cell.
    pub fn count(&self, pair: (CompilerId, CompilerId), level: OptLevel) -> u64 {
        self.counts.get(&(pair, level)).copied().unwrap_or(0)
    }

    /// Total count for a pair across all levels.
    pub fn pair_total(&self, pair: (CompilerId, CompilerId)) -> u64 {
        self.counts.iter().filter(|((p, _), _)| *p == pair).map(|(_, c)| *c).sum()
    }

    /// Digit statistics for one cell.
    pub fn digit_stats(&self, pair: (CompilerId, CompilerId), level: OptLevel) -> DigitStats {
        self.digits.get(&(pair, level)).copied().unwrap_or_default()
    }

    /// Rate for one cell given the number of programs tested (each program
    /// contributes exactly one comparison per pair per level).
    pub fn rate(&self, pair: (CompilerId, CompilerId), level: OptLevel, programs: u64) -> f64 {
        if programs == 0 {
            0.0
        } else {
            self.count(pair, level) as f64 / programs as f64
        }
    }

    /// Total rate for a pair: inconsistencies across all levels divided by
    /// (programs × levels), matching the "Total" row of Table 4.
    pub fn pair_rate(&self, pair: (CompilerId, CompilerId), programs: u64, levels: usize) -> f64 {
        let denom = programs * levels as u64;
        if denom == 0 {
            0.0
        } else {
            self.pair_total(pair) as f64 / denom as f64
        }
    }
}

/// Inconsistency-kind counts, overall and per optimization level.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KindByLevel {
    overall: BTreeMap<InconsistencyKind, u64>,
    by_level: BTreeMap<(OptLevel, InconsistencyKind), u64>,
}

impl KindByLevel {
    fn record(&mut self, rec: &DiffRecord) {
        *self.overall.entry(rec.kind()).or_default() += 1;
        *self.by_level.entry((rec.level, rec.kind())).or_default() += 1;
    }

    /// Overall count for a kind (Figure 3 bars).
    pub fn count(&self, kind: InconsistencyKind) -> u64 {
        self.overall.get(&kind).copied().unwrap_or(0)
    }

    /// Count for a kind at one level (Table 3 cells).
    pub fn count_at(&self, level: OptLevel, kind: InconsistencyKind) -> u64 {
        self.by_level.get(&(level, kind)).copied().unwrap_or(0)
    }

    /// Total number of recorded inconsistencies.
    pub fn total(&self) -> u64 {
        self.overall.values().sum()
    }

    /// Fraction of inconsistencies belonging to `kind`.
    pub fn fraction(&self, kind: InconsistencyKind) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(kind) as f64 / total as f64
        }
    }
}

/// Within-compiler comparisons of every level against `O0_nofma` (RQ4).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VsBaselineStats {
    differing: BTreeMap<(CompilerId, OptLevel), u64>,
    compared: BTreeMap<(CompilerId, OptLevel), u64>,
}

impl VsBaselineStats {
    /// Record the outcome of one (compiler, level) vs `O0_nofma` comparison.
    pub fn record(&mut self, compiler: CompilerId, level: OptLevel, differs: bool) {
        *self.compared.entry((compiler, level)).or_default() += 1;
        if differs {
            *self.differing.entry((compiler, level)).or_default() += 1;
        }
    }

    /// Number of differing comparisons for a cell of Table 5.
    pub fn differing(&self, compiler: CompilerId, level: OptLevel) -> u64 {
        self.differing.get(&(compiler, level)).copied().unwrap_or(0)
    }

    /// Inconsistency rate for one cell of Table 5, computed against the
    /// number of programs tested.
    pub fn rate(&self, compiler: CompilerId, level: OptLevel, programs: u64) -> f64 {
        if programs == 0 {
            0.0
        } else {
            self.differing(compiler, level) as f64 / programs as f64
        }
    }

    /// Total rate for one compiler across all non-baseline levels (the
    /// "Total" row of Table 5).
    pub fn compiler_rate(&self, compiler: CompilerId, programs: u64, levels: usize) -> f64 {
        let total: u64 = OptLevel::ALL
            .iter()
            .filter(|&&l| l != OptLevel::O0Nofma)
            .map(|&l| self.differing(compiler, l))
            .sum();
        let denom = programs * levels.saturating_sub(1) as u64;
        if denom == 0 {
            0.0
        } else {
            total as f64 / denom as f64
        }
    }
}

/// Everything the experiment binaries need, accumulated program by program.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Aggregates {
    /// Number of programs fed to the differential tester.
    pub programs: u64,
    /// Number of programs that triggered at least one inconsistency.
    pub triggering_programs: u64,
    /// Total pairwise comparisons in the denominator of the inconsistency
    /// rate (`(C choose 2) × O × N`).
    pub total_comparisons: u64,
    /// Comparisons that could actually be performed (both sides executed).
    pub performed_comparisons: u64,
    /// Total inconsistencies.
    pub inconsistencies: u64,
    /// Table 4 statistics.
    pub pair_level: PairLevelStats,
    /// Figure 3 / Table 3 statistics.
    pub kinds: KindByLevel,
    /// Table 5 statistics.
    pub vs_baseline: VsBaselineStats,
}

impl Aggregates {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one program's differential-testing result into the aggregates.
    /// `comparisons_per_program` is the matrix-defined denominator
    /// contribution (18 for the full matrix).
    pub fn add_result(&mut self, result: &ProgramDiffResult, comparisons_per_program: usize) {
        self.programs += 1;
        self.total_comparisons += comparisons_per_program as u64;
        self.performed_comparisons += result.comparisons_performed as u64;
        if result.triggered_inconsistency() {
            self.triggering_programs += 1;
        }
        self.inconsistencies += result.records.len() as u64;
        for rec in &result.records {
            self.pair_level.record(rec);
            self.kinds.record(rec);
        }
    }

    /// Fold the RQ4 baseline comparisons of one program.
    pub fn add_baseline_comparisons(&mut self, comparisons: &[(CompilerId, OptLevel, bool)]) {
        for &(c, l, differs) in comparisons {
            self.vs_baseline.record(c, l, differs);
        }
    }

    /// The headline inconsistency rate of Table 2.
    pub fn inconsistency_rate(&self) -> f64 {
        if self.total_comparisons == 0 {
            0.0
        } else {
            self.inconsistencies as f64 / self.total_comparisons as f64
        }
    }

    /// Merge another aggregate (used when campaigns run sharded across
    /// threads).
    pub fn merge(&mut self, other: &Aggregates) {
        self.programs += other.programs;
        self.triggering_programs += other.triggering_programs;
        self.total_comparisons += other.total_comparisons;
        self.performed_comparisons += other.performed_comparisons;
        self.inconsistencies += other.inconsistencies;
        for (k, v) in &other.pair_level.counts {
            *self.pair_level.counts.entry(*k).or_default() += v;
        }
        for (k, v) in &other.pair_level.digits {
            let entry = self.pair_level.digits.entry(*k).or_default();
            if entry.count == 0 {
                *entry = *v;
            } else if v.count > 0 {
                entry.min = entry.min.min(v.min);
                entry.max = entry.max.max(v.max);
                entry.count += v.count;
                entry.sum += v.sum;
            }
        }
        for (k, v) in &other.kinds.overall {
            *self.kinds.overall.entry(*k).or_default() += v;
        }
        for (k, v) in &other.kinds.by_level {
            *self.kinds.by_level.entry(*k).or_default() += v;
        }
        for (k, v) in &other.vs_baseline.differing {
            *self.vs_baseline.differing.entry(*k).or_default() += v;
        }
        for (k, v) in &other.vs_baseline.compared {
            *self.vs_baseline.compared.entry(*k).or_default() += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::ValueClass;

    fn record(pair: (CompilerId, CompilerId), level: OptLevel, digits: usize) -> DiffRecord {
        DiffRecord {
            program_id: "p".into(),
            level,
            pair,
            value_a: 1.0,
            value_b: 2.0,
            bits_a: 1,
            bits_b: 2,
            class_a: ValueClass::Real,
            class_b: ValueClass::Real,
            digit_diff: digits,
        }
    }

    fn result_with(records: Vec<DiffRecord>) -> ProgramDiffResult {
        ProgramDiffResult {
            program_id: "p".into(),
            outcomes: vec![],
            comparisons_performed: 18,
            records,
        }
    }

    #[test]
    fn digit_stats_track_min_max_mean() {
        let mut s = DigitStats::default();
        assert_eq!(s.mean(), 0.0);
        s.record(3);
        s.record(7);
        s.record(2);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 7);
        assert_eq!(s.count, 3);
        assert!((s.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn aggregates_compute_rates_and_kind_fractions() {
        let gcc_nvcc = (CompilerId::Gcc, CompilerId::Nvcc);
        let mut agg = Aggregates::new();
        for i in 0..10 {
            let recs = if i < 4 {
                vec![record(gcc_nvcc, OptLevel::O3Fastmath, 3), record(gcc_nvcc, OptLevel::O0, 1)]
            } else {
                vec![]
            };
            agg.add_result(&result_with(recs), 18);
        }
        assert_eq!(agg.programs, 10);
        assert_eq!(agg.triggering_programs, 4);
        assert_eq!(agg.inconsistencies, 8);
        assert_eq!(agg.total_comparisons, 180);
        assert!((agg.inconsistency_rate() - 8.0 / 180.0).abs() < 1e-12);
        assert_eq!(agg.pair_level.count(gcc_nvcc, OptLevel::O3Fastmath), 4);
        assert_eq!(agg.pair_level.pair_total(gcc_nvcc), 8);
        assert!((agg.pair_level.rate(gcc_nvcc, OptLevel::O0, 10) - 0.4).abs() < 1e-12);
        assert!((agg.pair_level.pair_rate(gcc_nvcc, 10, 6) - 8.0 / 60.0).abs() < 1e-12);
        let real_real = InconsistencyKind::new(ValueClass::Real, ValueClass::Real);
        assert_eq!(agg.kinds.count(real_real), 8);
        assert_eq!(agg.kinds.count_at(OptLevel::O0, real_real), 4);
        assert!((agg.kinds.fraction(real_real) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn baseline_stats_follow_table5_shape() {
        let mut agg = Aggregates::new();
        for i in 0..20 {
            agg.add_baseline_comparisons(&[
                (CompilerId::Gcc, OptLevel::O3Fastmath, i % 2 == 0),
                (CompilerId::Gcc, OptLevel::O1, false),
                (CompilerId::Nvcc, OptLevel::O0, i % 4 == 0),
            ]);
        }
        assert_eq!(agg.vs_baseline.differing(CompilerId::Gcc, OptLevel::O3Fastmath), 10);
        assert_eq!(agg.vs_baseline.differing(CompilerId::Gcc, OptLevel::O1), 0);
        assert!(
            (agg.vs_baseline.rate(CompilerId::Gcc, OptLevel::O3Fastmath, 20) - 0.5).abs() < 1e-12
        );
        assert!((agg.vs_baseline.rate(CompilerId::Nvcc, OptLevel::O0, 20) - 0.25).abs() < 1e-12);
        // Compiler totals: gcc has 10 differing out of 20 programs × 5 levels.
        assert!((agg.vs_baseline.compiler_rate(CompilerId::Gcc, 20, 6) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_shards_correctly() {
        let pair = (CompilerId::Clang, CompilerId::Nvcc);
        let mut a = Aggregates::new();
        a.add_result(&result_with(vec![record(pair, OptLevel::O2, 2)]), 18);
        let mut b = Aggregates::new();
        b.add_result(&result_with(vec![record(pair, OptLevel::O2, 6)]), 18);
        b.add_result(&result_with(vec![]), 18);
        let mut merged = Aggregates::new();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.programs, 3);
        assert_eq!(merged.inconsistencies, 2);
        assert_eq!(merged.total_comparisons, 54);
        let ds = merged.pair_level.digit_stats(pair, OptLevel::O2);
        assert_eq!(ds.min, 2);
        assert_eq!(ds.max, 6);
        assert_eq!(ds.count, 2);
        assert!((ds.mean() - 4.0).abs() < 1e-12);
        assert_eq!(merged.kinds.total(), 2);
    }

    #[test]
    fn empty_aggregates_report_zero_rates() {
        let agg = Aggregates::new();
        assert_eq!(agg.inconsistency_rate(), 0.0);
        assert_eq!(agg.pair_level.rate((CompilerId::Gcc, CompilerId::Clang), OptLevel::O0, 0), 0.0);
        assert_eq!(agg.vs_baseline.rate(CompilerId::Gcc, OptLevel::O1, 0), 0.0);
        assert_eq!(
            agg.kinds.fraction(InconsistencyKind::new(ValueClass::Real, ValueClass::NaN)),
            0.0
        );
    }
}
