//! The compilation driver and execution matrix.
//!
//! For each generated program the driver compiles one artifact per
//! configuration (compiler × optimization level), runs every artifact that
//! compiled on the program's input set, and performs the pairwise output
//! comparisons. Compilation and execution of the matrix are parallelized
//! with crossbeam scoped threads; results are deterministic regardless of
//! the number of worker threads.

use crossbeam::thread;
use serde::{Deserialize, Serialize};

use llm4fp_compiler::{compile, CompilerConfig, CompilerId, OptLevel};
use llm4fp_fpir::{program_id, InputSet, Program};

use crate::compare::{classify, digit_difference, DiffRecord};

/// Outcome of building + running one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Outcome {
    /// The artifact compiled and executed; these are the printed bits.
    Ok { value: f64, bits: u64, hex: String },
    /// The virtual compiler rejected the program.
    CompileFail { reason: String },
    /// The artifact compiled but execution failed (fuel, runtime error).
    ExecFail { reason: String },
}

impl Outcome {
    /// The executed value, if the configuration produced one.
    pub fn value(&self) -> Option<f64> {
        match self {
            Outcome::Ok { value, .. } => Some(*value),
            _ => None,
        }
    }

    pub fn bits(&self) -> Option<u64> {
        match self {
            Outcome::Ok { bits, .. } => Some(*bits),
            _ => None,
        }
    }

    pub fn is_ok(&self) -> bool {
        matches!(self, Outcome::Ok { .. })
    }
}

/// The outcome of one configuration of the matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigOutcome {
    pub config: CompilerConfig,
    pub outcome: Outcome,
}

/// Everything the differential tester learned about one program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramDiffResult {
    /// Structural identifier of the program.
    pub program_id: String,
    /// Per-configuration outcomes, in matrix order.
    pub outcomes: Vec<ConfigOutcome>,
    /// All pairwise same-level inconsistencies found.
    pub records: Vec<DiffRecord>,
    /// Number of pairwise comparisons actually performed (both sides ran).
    pub comparisons_performed: usize,
}

impl ProgramDiffResult {
    /// True when at least one inconsistency was found — the program then
    /// joins the "successful" set used by Feedback-Based Mutation.
    pub fn triggered_inconsistency(&self) -> bool {
        !self.records.is_empty()
    }

    /// The outcome of a specific configuration.
    pub fn outcome_of(&self, config: CompilerConfig) -> Option<&Outcome> {
        self.outcomes.iter().find(|o| o.config == config).map(|o| &o.outcome)
    }

    /// Number of configurations that compiled and executed successfully.
    pub fn ok_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.outcome.is_ok()).count()
    }
}

/// The differential tester.
#[derive(Debug, Clone)]
pub struct DiffTester {
    /// Compilers under test (defaults to gcc, clang, nvcc).
    pub compilers: Vec<CompilerId>,
    /// Optimization levels under test (defaults to the six of Table 1).
    pub levels: Vec<OptLevel>,
    /// Number of worker threads for the matrix (1 = sequential).
    pub threads: usize,
}

impl Default for DiffTester {
    fn default() -> Self {
        DiffTester {
            compilers: CompilerId::ALL.to_vec(),
            levels: OptLevel::ALL.to_vec(),
            threads: 4,
        }
    }
}

impl DiffTester {
    pub fn new() -> Self {
        Self::default()
    }

    /// Restrict or reorder the configuration matrix.
    pub fn with_matrix(compilers: Vec<CompilerId>, levels: Vec<OptLevel>) -> Self {
        DiffTester { compilers, levels, threads: 4 }
    }

    /// Use `threads` workers when building/executing the matrix.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// All configurations of this tester's matrix, compiler-major.
    pub fn configurations(&self) -> Vec<CompilerConfig> {
        let mut out = Vec::with_capacity(self.compilers.len() * self.levels.len());
        for &c in &self.compilers {
            for &l in &self.levels {
                out.push(CompilerConfig::new(c, l));
            }
        }
        out
    }

    /// Compiler pairs compared at each level (host-host first, then
    /// host-device, matching Table 4's column order).
    pub fn compiler_pairs(&self) -> Vec<(CompilerId, CompilerId)> {
        let mut pairs = Vec::new();
        for (i, &a) in self.compilers.iter().enumerate() {
            for &b in self.compilers.iter().skip(i + 1) {
                pairs.push((a, b));
            }
        }
        pairs
    }

    /// Total number of pairwise comparisons per program:
    /// `(C choose 2) × O` — the denominator of the paper's inconsistency
    /// rate once multiplied by the number of programs.
    pub fn comparisons_per_program(&self) -> usize {
        let c = self.compilers.len();
        c * (c - 1) / 2 * self.levels.len()
    }

    /// Compile and execute the full matrix for one program, then compare
    /// every compiler pair at every level.
    pub fn run(&self, program: &Program, inputs: &InputSet) -> ProgramDiffResult {
        let configs = self.configurations();
        let outcomes = self.build_and_run(program, inputs, &configs);
        let records = self.compare_all(program, &outcomes);
        let comparisons_performed = self
            .compiler_pairs()
            .iter()
            .flat_map(|&(a, b)| self.levels.iter().map(move |&l| (a, b, l)))
            .filter(|&(a, b, l)| {
                let oa = outcomes.iter().find(|o| o.config == CompilerConfig::new(a, l));
                let ob = outcomes.iter().find(|o| o.config == CompilerConfig::new(b, l));
                matches!((oa, ob), (Some(x), Some(y)) if x.outcome.is_ok() && y.outcome.is_ok())
            })
            .count();
        ProgramDiffResult {
            program_id: program_id(program),
            outcomes,
            records,
            comparisons_performed,
        }
    }

    fn build_and_run(
        &self,
        program: &Program,
        inputs: &InputSet,
        configs: &[CompilerConfig],
    ) -> Vec<ConfigOutcome> {
        let threads = self.threads.min(configs.len()).max(1);
        if threads == 1 {
            return configs.iter().map(|&cfg| run_one(program, inputs, cfg)).collect();
        }
        let chunk_size = configs.len().div_ceil(threads);
        let mut results: Vec<Vec<ConfigOutcome>> = Vec::new();
        thread::scope(|scope| {
            let handles: Vec<_> = configs
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move |_| {
                        chunk.iter().map(|&cfg| run_one(program, inputs, cfg)).collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                results.push(h.join().expect("matrix worker panicked"));
            }
        })
        .expect("crossbeam scope failed");
        results.into_iter().flatten().collect()
    }

    fn compare_all(&self, program: &Program, outcomes: &[ConfigOutcome]) -> Vec<DiffRecord> {
        let mut records = Vec::new();
        let id = program_id(program);
        for &(a, b) in &self.compiler_pairs() {
            for &level in &self.levels {
                let oa = outcomes.iter().find(|o| o.config == CompilerConfig::new(a, level));
                let ob = outcomes.iter().find(|o| o.config == CompilerConfig::new(b, level));
                let (Some(oa), Some(ob)) = (oa, ob) else { continue };
                let (
                    Outcome::Ok { value: va, bits: ba, .. },
                    Outcome::Ok { value: vb, bits: bb, .. },
                ) = (&oa.outcome, &ob.outcome)
                else {
                    continue;
                };
                if ba != bb {
                    records.push(DiffRecord {
                        program_id: id.clone(),
                        level,
                        pair: (a, b),
                        value_a: *va,
                        value_b: *vb,
                        bits_a: *ba,
                        bits_b: *bb,
                        class_a: classify(*va),
                        class_b: classify(*vb),
                        digit_diff: digit_difference(*ba, *bb, program.precision),
                    });
                }
            }
        }
        records
    }

    /// RQ4-style comparison: within each compiler, compare every level
    /// against `O0_nofma`. Returns `(compiler, level, differs)` tuples for
    /// levels other than the baseline where both sides executed.
    pub fn compare_vs_baseline(
        &self,
        outcomes: &[ConfigOutcome],
    ) -> Vec<(CompilerId, OptLevel, bool)> {
        let mut results = Vec::new();
        for &c in &self.compilers {
            let baseline = outcomes
                .iter()
                .find(|o| o.config == CompilerConfig::new(c, OptLevel::O0Nofma))
                .and_then(|o| o.outcome.bits());
            let Some(base_bits) = baseline else { continue };
            for &l in &self.levels {
                if l == OptLevel::O0Nofma {
                    continue;
                }
                if let Some(bits) = outcomes
                    .iter()
                    .find(|o| o.config == CompilerConfig::new(c, l))
                    .and_then(|o| o.outcome.bits())
                {
                    results.push((c, l, bits != base_bits));
                }
            }
        }
        results
    }
}

fn run_one(program: &Program, inputs: &InputSet, config: CompilerConfig) -> ConfigOutcome {
    let outcome = match compile(program, config) {
        Err(e) => Outcome::CompileFail { reason: e.to_string() },
        Ok(artifact) => match artifact.execute(inputs) {
            Err(e) => Outcome::ExecFail { reason: e.to_string() },
            Ok(result) => {
                Outcome::Ok { value: result.value, bits: result.bits(), hex: result.hex() }
            }
        },
    };
    ConfigOutcome { config, outcome }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm4fp_fpir::{parse_compute, InputValue};

    fn inputs_x(v: f64) -> InputSet {
        InputSet::new().with("x", InputValue::Fp(v))
    }

    #[test]
    fn identical_programs_produce_no_records_for_pure_arithmetic_at_strict_levels() {
        // A program with no math calls and no FMA opportunities is bitwise
        // identical everywhere: zero inconsistencies.
        let program =
            parse_compute("void compute(double x) { comp = x + 1.0; comp = comp - x; }").unwrap();
        let tester = DiffTester::new();
        let result = tester.run(&program, &inputs_x(0.375));
        assert_eq!(result.records.len(), 0);
        assert_eq!(result.ok_count(), 18);
        assert_eq!(result.comparisons_performed, 18);
        assert!(!result.triggered_inconsistency());
    }

    #[test]
    fn math_heavy_programs_trigger_host_device_inconsistencies() {
        let program = parse_compute(
            "void compute(double x, double y) {\n\
             comp = sin(x) * y + exp(x) / (y + 2.0);\n\
             comp += log(x * x + 1.0) * tanh(y);\n\
             }",
        )
        .unwrap();
        let inputs = InputSet::new().with("x", InputValue::Fp(1.7)).with("y", InputValue::Fp(-0.3));
        let result = DiffTester::new().run(&program, &inputs);
        assert!(result.triggered_inconsistency());
        // Host–device pairs must dominate.
        let host_device = result
            .records
            .iter()
            .filter(|r| r.pair.0 == CompilerId::Nvcc || r.pair.1 == CompilerId::Nvcc)
            .count();
        let host_host = result.records.len() - host_device;
        assert!(host_device >= host_host, "{host_device} vs {host_host}");
        // Every record involves two successfully executed configurations and
        // a nonzero digit difference.
        for r in &result.records {
            assert!(r.digit_diff >= 1);
            assert_ne!(r.bits_a, r.bits_b);
        }
    }

    #[test]
    fn fma_sensitive_program_differs_between_strict_and_contracting_configs() {
        let program =
            parse_compute("void compute(double x, double y, double z) { comp = x * y + z; }")
                .unwrap();
        let x = 1.0 + 2f64.powi(-30);
        let inputs = InputSet::new()
            .with("x", InputValue::Fp(x))
            .with("y", InputValue::Fp(x))
            .with("z", InputValue::Fp(-1.0));
        let tester = DiffTester::new();
        let result = tester.run(&program, &inputs);
        // gcc (no contraction at O0) vs nvcc (contraction at O0) differ at O0.
        assert!(result
            .records
            .iter()
            .any(|r| r.level == OptLevel::O0 && r.pair == (CompilerId::Gcc, CompilerId::Nvcc)));
        // RQ4 comparison: nvcc O0 differs from nvcc O0_nofma.
        let vs = tester.compare_vs_baseline(&result.outcomes);
        assert!(vs
            .iter()
            .any(|&(c, l, differs)| c == CompilerId::Nvcc && l == OptLevel::O0 && differs));
        assert!(vs
            .iter()
            .any(|&(c, l, differs)| c == CompilerId::Gcc && l == OptLevel::O0 && !differs));
    }

    #[test]
    fn compile_failures_reduce_performed_comparisons_but_not_the_matrix() {
        let program =
            parse_compute("void compute(double x) { comp = x + undeclared_thing; }").unwrap();
        let result = DiffTester::new().run(&program, &inputs_x(1.0));
        assert_eq!(result.ok_count(), 0);
        assert_eq!(result.comparisons_performed, 0);
        assert_eq!(result.records.len(), 0);
        assert_eq!(result.outcomes.len(), 18);
        assert!(result.outcomes.iter().all(|o| matches!(o.outcome, Outcome::CompileFail { .. })));
    }

    #[test]
    fn sequential_and_parallel_runs_agree() {
        let program = parse_compute(
            "void compute(double x, double *a) {\n\
             for (int i = 0; i < 8; ++i) { comp += a[i] * x + cos(x); }\n\
             comp /= x + 3.0;\n\
             }",
        )
        .unwrap();
        let inputs = InputSet::new()
            .with("x", InputValue::Fp(2.25))
            .with("a", InputValue::FpArray(vec![1.0, -2.0, 3.0, -4.0, 5.5, 0.25, 7.0, 8.125]));
        let sequential = DiffTester::new().with_threads(1).run(&program, &inputs);
        let parallel = DiffTester::new().with_threads(6).run(&program, &inputs);
        assert_eq!(sequential.records, parallel.records);
        assert_eq!(sequential.outcomes, parallel.outcomes);
    }

    #[test]
    fn matrix_accessors_report_the_expected_shape() {
        let tester = DiffTester::new();
        assert_eq!(tester.configurations().len(), 18);
        assert_eq!(tester.compiler_pairs().len(), 3);
        assert_eq!(tester.comparisons_per_program(), 18);
        let reduced = DiffTester::with_matrix(
            vec![CompilerId::Gcc, CompilerId::Nvcc],
            vec![OptLevel::O0, OptLevel::O3],
        );
        assert_eq!(reduced.configurations().len(), 4);
        assert_eq!(reduced.comparisons_per_program(), 2);
    }

    #[test]
    fn outcome_accessors() {
        let ok = Outcome::Ok { value: 1.5, bits: 1.5f64.to_bits(), hex: "x".into() };
        assert_eq!(ok.value(), Some(1.5));
        assert!(ok.is_ok());
        let fail = Outcome::ExecFail { reason: "fuel".into() };
        assert_eq!(fail.bits(), None);
        assert!(!fail.is_ok());
    }
}
