//! The compilation driver and execution matrix.
//!
//! The driver is backend-pluggable ([`ExecBackend`]): the virtual path
//! below is the evaluation default, and [`ExecBackend::External`] swaps
//! in a real host toolchain (one compiler spawn per configuration, one
//! binary spawn per input set, every failure recorded as an outcome)
//! while reusing the same comparison and aggregation code.
//!
//! For each generated program the virtual driver validates and lowers once
//! ([`Frontend`]), seals the **whole configuration matrix in one call**
//! ([`Frontend::seal_matrix`]: prefix-shared pass pipelines, one name→slot
//! layout per program, per-configuration peephole optimization), runs
//! every input set against the sealed artifacts on the register VM
//! (reusing one [`ExecScratch`] per worker — and, through
//! [`MatrixScratch`], across *programs* in a worker loop — so the hot
//! path is allocation-free), and performs the pairwise output
//! comparisons. Sealed execution is bit-identical to the reference
//! tree-walking interpreter — [`ExecEngine::Reference`] selects the old
//! path for A/B benchmarking, and the driver falls back to it
//! automatically for the rare programs that refuse to seal — so results
//! are unchanged from the pre-bytecode driver. Execution of the matrix is
//! parallelized with crossbeam scoped threads; results are deterministic
//! regardless of the number of worker threads.

use std::sync::Arc;

use crossbeam::thread;
use serde::{Deserialize, Serialize};

use llm4fp_compiler::interp::DEFAULT_FUEL;
use llm4fp_compiler::{
    CompiledProgram, CompilerConfig, CompilerId, ExecError, ExecResult, ExecScratch, Frontend,
    OptLevel, SealMode, SealScratch, SealedProgram,
};
use llm4fp_extcc::HostToolchain;
use llm4fp_fpir::{program_hash, program_id, InputSet, Precision, Program};
use llm4fp_telemetry::{keys, Telemetry};

use crate::backend::{ExecBackend, ProcessBudget};
use crate::compare::{classify, digit_difference, DiffRecord};

/// Outcome of building + running one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Outcome {
    /// The artifact compiled and executed; these are the printed bits.
    Ok { value: f64, bits: u64, hex: String },
    /// The virtual compiler rejected the program.
    CompileFail { reason: String },
    /// The artifact compiled but execution failed (fuel, runtime error).
    ExecFail { reason: String },
}

impl Outcome {
    /// The executed value, if the configuration produced one.
    pub fn value(&self) -> Option<f64> {
        match self {
            Outcome::Ok { value, .. } => Some(*value),
            _ => None,
        }
    }

    pub fn bits(&self) -> Option<u64> {
        match self {
            Outcome::Ok { bits, .. } => Some(*bits),
            _ => None,
        }
    }

    pub fn is_ok(&self) -> bool {
        matches!(self, Outcome::Ok { .. })
    }
}

/// The outcome of one configuration of the matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigOutcome {
    pub config: CompilerConfig,
    pub outcome: Outcome,
}

/// Everything the differential tester learned about one program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramDiffResult {
    /// Structural identifier of the program.
    pub program_id: String,
    /// Per-configuration outcomes, in matrix order.
    pub outcomes: Vec<ConfigOutcome>,
    /// All pairwise same-level inconsistencies found.
    pub records: Vec<DiffRecord>,
    /// Number of pairwise comparisons actually performed (both sides ran).
    pub comparisons_performed: usize,
}

impl ProgramDiffResult {
    /// True when at least one inconsistency was found — the program then
    /// joins the "successful" set used by Feedback-Based Mutation.
    pub fn triggered_inconsistency(&self) -> bool {
        !self.records.is_empty()
    }

    /// The outcome of a specific configuration.
    pub fn outcome_of(&self, config: CompilerConfig) -> Option<&Outcome> {
        self.outcomes.iter().find(|o| o.config == config).map(|o| &o.outcome)
    }

    /// Number of configurations that compiled and executed successfully.
    pub fn ok_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.outcome.is_ok()).count()
    }
}

/// Which execution back end the tester drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ExecEngine {
    /// Seal each specialized artifact into bytecode and run it on the
    /// register VM (the fast path; bit-identical to the reference).
    #[default]
    Sealed,
    /// Execute with the reference tree-walking interpreter (the slow
    /// path, kept as the semantic authority and for A/B benchmarks).
    Reference,
}

/// The differential tester.
#[derive(Debug, Clone)]
pub struct DiffTester {
    /// Compilers under test (defaults to gcc, clang, nvcc).
    pub compilers: Vec<CompilerId>,
    /// Optimization levels under test (defaults to the six of Table 1).
    pub levels: Vec<OptLevel>,
    /// Number of worker threads for the matrix (1 = sequential; the
    /// external backend always runs its matrix sequentially and draws
    /// process-level parallelism from the orchestrator's shards).
    pub threads: usize,
    /// Execution backend (defaults to the virtual compiler on the sealed
    /// register VM).
    pub backend: ExecBackend,
    /// Whether sealing runs the seal-time peephole optimizer (pinned
    /// bit-identical to raw sealing; `Raw` exists for A/B benchmarks via
    /// `--no-seal-opt`).
    pub seal_mode: SealMode,
    /// Optional bound on concurrent external process activity (shared
    /// across shards by the orchestrator; ignored by the virtual
    /// backend).
    pub process_budget: Option<Arc<ProcessBudget>>,
    /// Telemetry handle (disabled by default — every recording call is a
    /// single branch). Pure observation: results are bit-identical with
    /// telemetry on or off, and compute-level counters are keyed by the
    /// program hash so racy duplicate computations collapse on merge.
    pub telemetry: Telemetry,
}

impl Default for DiffTester {
    fn default() -> Self {
        DiffTester {
            compilers: CompilerId::ALL.to_vec(),
            levels: OptLevel::ALL.to_vec(),
            threads: 4,
            backend: ExecBackend::Virtual(ExecEngine::Sealed),
            seal_mode: SealMode::Optimized,
            process_budget: None,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Reusable build-and-execute state for one virtual-matrix worker loop:
/// the seal scratch (peephole work buffers) plus one [`ExecScratch`] per
/// matrix worker thread. Threading one `MatrixScratch` across programs —
/// as the campaign runner does per shard — makes the whole build-side
/// hot path allocation-free after the first program.
#[derive(Debug, Default)]
pub struct MatrixScratch {
    seal: SealScratch,
    exec: Vec<ExecScratch>,
}

impl MatrixScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Largest VM register file any program prepared against this
    /// scratch (reported in the orchestrator's `summary.json`).
    pub fn peak_regs(&self) -> usize {
        self.exec.iter().map(ExecScratch::peak_regs).max().unwrap_or(0)
    }

    fn workers(&mut self, count: usize) -> &mut [ExecScratch] {
        if self.exec.len() < count {
            self.exec.resize_with(count, ExecScratch::new);
        }
        &mut self.exec[..count]
    }
}

impl DiffTester {
    pub fn new() -> Self {
        Self::default()
    }

    /// Restrict or reorder the configuration matrix.
    pub fn with_matrix(compilers: Vec<CompilerId>, levels: Vec<OptLevel>) -> Self {
        DiffTester { compilers, levels, ..DiffTester::default() }
    }

    /// Use `threads` workers when building/executing the matrix.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Select the virtual execution engine (sealed VM or reference
    /// interpreter). Shorthand for a [`ExecBackend::Virtual`] backend.
    pub fn with_engine(mut self, engine: ExecEngine) -> Self {
        self.backend = ExecBackend::Virtual(engine);
        self
    }

    /// Select the execution backend (virtual compiler or external real
    /// toolchain).
    pub fn with_backend(mut self, backend: ExecBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Select whether sealing runs the peephole optimizer (A/B knob; the
    /// two modes produce bit-identical results).
    pub fn with_seal_mode(mut self, mode: SealMode) -> Self {
        self.seal_mode = mode;
        self
    }

    /// Bound concurrent external process activity with a shared budget
    /// (no effect on the virtual backend).
    pub fn with_process_budget(mut self, budget: Arc<ProcessBudget>) -> Self {
        self.process_budget = Some(budget);
        self
    }

    /// Record seal/execute spans and compute-level counters through
    /// `telemetry` (campaigns pass their shard lane's handle).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Stable identity of the configured backend (see
    /// [`ExecBackend::fingerprint`]) — what backend-aware result-cache
    /// keys are scoped by.
    pub fn backend_fingerprint(&self) -> String {
        self.backend.fingerprint()
    }

    /// All configurations of this tester's matrix, compiler-major.
    pub fn configurations(&self) -> Vec<CompilerConfig> {
        let mut out = Vec::with_capacity(self.compilers.len() * self.levels.len());
        for &c in &self.compilers {
            for &l in &self.levels {
                out.push(CompilerConfig::new(c, l));
            }
        }
        out
    }

    /// Compiler pairs compared at each level (host-host first, then
    /// host-device, matching Table 4's column order).
    pub fn compiler_pairs(&self) -> Vec<(CompilerId, CompilerId)> {
        let mut pairs = Vec::new();
        for (i, &a) in self.compilers.iter().enumerate() {
            for &b in self.compilers.iter().skip(i + 1) {
                pairs.push((a, b));
            }
        }
        pairs
    }

    /// Total number of pairwise comparisons per program:
    /// `(C choose 2) × O` — the denominator of the paper's inconsistency
    /// rate once multiplied by the number of programs.
    pub fn comparisons_per_program(&self) -> usize {
        let c = self.compilers.len();
        c * (c - 1) / 2 * self.levels.len()
    }

    /// Compile and execute the full matrix for one program, then compare
    /// every compiler pair at every level.
    pub fn run(&self, program: &Program, inputs: &InputSet) -> ProgramDiffResult {
        self.run_many(program, std::slice::from_ref(inputs)).pop().expect("one result per input")
    }

    /// [`DiffTester::run`] reusing a caller-held [`MatrixScratch`]
    /// (allocation-free across programs after the first).
    pub fn run_with(
        &self,
        program: &Program,
        inputs: &InputSet,
        scratch: &mut MatrixScratch,
    ) -> ProgramDiffResult {
        self.run_many_with(program, std::slice::from_ref(inputs), scratch)
            .pop()
            .expect("one result per input")
    }

    /// Run the matrix for one program against many input sets, sealing
    /// the whole configuration matrix **once** ([`Frontend::seal_matrix`])
    /// and executing every input set against the sealed bytecode. Returns
    /// one [`ProgramDiffResult`] per input set, in order.
    pub fn run_many(&self, program: &Program, input_sets: &[InputSet]) -> Vec<ProgramDiffResult> {
        self.run_many_with(program, input_sets, &mut MatrixScratch::new())
    }

    /// [`DiffTester::run_many`] reusing a caller-held [`MatrixScratch`].
    pub fn run_many_with(
        &self,
        program: &Program,
        input_sets: &[InputSet],
        scratch: &mut MatrixScratch,
    ) -> Vec<ProgramDiffResult> {
        let configs = self.configurations();
        let per_config = self.build_and_run(program, input_sets, &configs, scratch);
        let id = program_id(program);
        (0..input_sets.len())
            .map(|set_idx| {
                let outcomes: Vec<ConfigOutcome> = configs
                    .iter()
                    .zip(&per_config)
                    .map(|(&config, outs)| ConfigOutcome { config, outcome: outs[set_idx].clone() })
                    .collect();
                let records = self.compare_all(&id, program.precision, &outcomes);
                let comparisons_performed = self
                    .compiler_pairs()
                    .iter()
                    .flat_map(|&(a, b)| self.levels.iter().map(move |&l| (a, b, l)))
                    .filter(|&(a, b, l)| {
                        let oa = outcomes.iter().find(|o| o.config == CompilerConfig::new(a, l));
                        let ob = outcomes.iter().find(|o| o.config == CompilerConfig::new(b, l));
                        matches!(
                            (oa, ob),
                            (Some(x), Some(y)) if x.outcome.is_ok() && y.outcome.is_ok()
                        )
                    })
                    .count();
                ProgramDiffResult {
                    program_id: id.clone(),
                    outcomes,
                    records,
                    comparisons_performed,
                }
            })
            .collect()
    }

    /// Outcome lists per configuration (outer index follows `configs`,
    /// inner index follows `input_sets`), dispatched to the configured
    /// backend.
    fn build_and_run(
        &self,
        program: &Program,
        input_sets: &[InputSet],
        configs: &[CompilerConfig],
        scratch: &mut MatrixScratch,
    ) -> Vec<Vec<Outcome>> {
        match &self.backend {
            ExecBackend::Virtual(engine) => {
                self.build_and_run_virtual(program, input_sets, configs, *engine, scratch)
            }
            ExecBackend::External(toolchain) => {
                self.build_and_run_external(toolchain, program, input_sets, configs)
            }
        }
    }

    /// External path: one scratch session per program, one **compiler
    /// spawn per configuration** (the binary reads inputs from argv, so
    /// every input set reuses the artifact), one binary spawn per
    /// (configuration, input set). All external failures land as
    /// `CompileFail`/`ExecFail` outcomes. Runs sequentially within the
    /// program — process-level parallelism comes from the orchestrator's
    /// shards, bounded by the shared [`ProcessBudget`].
    fn build_and_run_external(
        &self,
        toolchain: &Arc<HostToolchain>,
        program: &Program,
        input_sets: &[InputSet],
        configs: &[CompilerConfig],
    ) -> Vec<Vec<Outcome>> {
        let telemetry = &self.telemetry;
        let id = if telemetry.is_enabled() { program_hash(program) } else { 0 };
        // Process-spawn and failure-taxonomy totals accumulate locally and
        // land as one keyed contribution per program: however many lanes
        // race to recompute this program, the merged report counts it once.
        let mut compiles = 0u64;
        let mut runs = 0u64;
        let mut errors: std::collections::BTreeMap<&'static str, u64> =
            std::collections::BTreeMap::new();
        let mut record_error = |e: &llm4fp_extcc::ExtError| {
            *errors.entry(e.taxonomy()).or_insert(0) += 1;
        };
        let _permit = self.process_budget.as_ref().map(|budget| budget.acquire());
        let outcomes = (|| {
            let mut session = match toolchain.session() {
                Ok(session) => session,
                Err(e) => {
                    record_error(&e);
                    let row =
                        vec![Outcome::CompileFail { reason: e.to_string() }; input_sets.len()];
                    return vec![row; configs.len()];
                }
            };
            configs
                .iter()
                .map(|&config| match session.compile(program, config) {
                    Err(e) => {
                        record_error(&e);
                        vec![Outcome::CompileFail { reason: e.to_string() }; input_sets.len()]
                    }
                    Ok(artifact) => {
                        compiles += 1;
                        telemetry.observe(keys::EXTCC_COMPILE_TIME, artifact.compile_time);
                        input_sets
                            .iter()
                            .map(|inputs| match session.run_inputs(&artifact, program, inputs) {
                                Ok(r) => {
                                    runs += 1;
                                    telemetry.observe(keys::EXTCC_RUN_TIME, r.run_time);
                                    Outcome::Ok {
                                        value: r.value,
                                        bits: r.bits,
                                        hex: program.precision.hex_of_bits(r.bits),
                                    }
                                }
                                Err(e) => {
                                    record_error(&e);
                                    Outcome::ExecFail { reason: e.to_string() }
                                }
                            })
                            .collect()
                    }
                })
                .collect()
        })();
        if telemetry.is_enabled() {
            if compiles > 0 {
                telemetry.add_keyed(keys::EXTCC_COMPILES, id, compiles);
            }
            if runs > 0 {
                telemetry.add_keyed(keys::EXTCC_RUNS, id, runs);
            }
            for (taxonomy, n) in errors {
                telemetry.add_keyed(&format!("{}{taxonomy}", keys::EXTCC_ERR_PREFIX), id, n);
            }
        }
        outcomes
    }

    /// Virtual path: the front end runs once and the whole configuration
    /// matrix seals **once** through [`Frontend::seal_matrix`] (the pass
    /// pipeline is prefix-shared and name→slot layout runs once per
    /// program); workers then execute their configurations' input sets
    /// against the sealed artifacts with reused [`ExecScratch`]es.
    fn build_and_run_virtual(
        &self,
        program: &Program,
        input_sets: &[InputSet],
        configs: &[CompilerConfig],
        engine: ExecEngine,
        scratch: &mut MatrixScratch,
    ) -> Vec<Vec<Outcome>> {
        let frontend = match Frontend::new(program) {
            Ok(frontend) => frontend,
            Err(e) => {
                // Validation failure: the whole matrix fails to compile
                // with the same reason, for every input set.
                let reason = e.to_string();
                let row = vec![Outcome::CompileFail { reason: reason.clone() }; input_sets.len()];
                return vec![row; configs.len()];
            }
        };
        let telemetry = &self.telemetry;
        let id = if telemetry.is_enabled() { program_hash(program) } else { 0 };
        // The sealed artifacts for the whole matrix (None on the
        // reference engine, which specializes per worker below).
        let sealed: Option<Vec<Result<SealedProgram, llm4fp_compiler::SealError>>> = match engine {
            ExecEngine::Sealed => {
                let _span = telemetry.span(keys::SPAN_SEAL);
                Some(frontend.seal_matrix_instrumented(
                    configs,
                    self.seal_mode,
                    &mut scratch.seal,
                    telemetry,
                    id,
                ))
            }
            ExecEngine::Reference => None,
        };
        if telemetry.is_enabled() {
            let refused =
                sealed.iter().flatten().filter(|artifact| artifact.is_err()).count() as u64;
            if refused > 0 {
                // One refused program; `refused` config slots fall back to
                // the reference interpreter.
                telemetry.add_keyed(keys::SEAL_REFUSALS, id, 1);
                telemetry.add_keyed(keys::INTERPRETER_FALLBACKS, id, refused);
            }
        }
        let _span = telemetry.span(keys::SPAN_EXECUTE);
        let threads = self.threads.min(configs.len()).max(1);
        if threads == 1 {
            let exec = &mut scratch.workers(1)[0];
            return configs
                .iter()
                .enumerate()
                .map(|(k, &cfg)| {
                    run_config(&frontend, input_sets, cfg, sealed.as_ref().map(|s| &s[k]), exec)
                })
                .collect();
        }
        let chunk_size = configs.len().div_ceil(threads);
        let chunk_count = configs.len().div_ceil(chunk_size);
        let exec_scratches = scratch.workers(chunk_count);
        let mut results: Vec<Vec<Vec<Outcome>>> = Vec::new();
        thread::scope(|scope| {
            let frontend = &frontend;
            let sealed = sealed.as_ref();
            let handles: Vec<_> = configs
                .chunks(chunk_size)
                .enumerate()
                .zip(exec_scratches.iter_mut())
                .map(|((chunk_index, chunk), exec)| {
                    scope.spawn(move |_| {
                        let base = chunk_index * chunk_size;
                        chunk
                            .iter()
                            .enumerate()
                            .map(|(offset, &cfg)| {
                                let artifact = sealed.map(|s| &s[base + offset]);
                                run_config(frontend, input_sets, cfg, artifact, exec)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                results.push(h.join().expect("matrix worker panicked"));
            }
        })
        .expect("crossbeam scope failed");
        results.into_iter().flatten().collect()
    }

    fn compare_all(
        &self,
        id: &str,
        precision: Precision,
        outcomes: &[ConfigOutcome],
    ) -> Vec<DiffRecord> {
        let mut records = Vec::new();
        for &(a, b) in &self.compiler_pairs() {
            for &level in &self.levels {
                let oa = outcomes.iter().find(|o| o.config == CompilerConfig::new(a, level));
                let ob = outcomes.iter().find(|o| o.config == CompilerConfig::new(b, level));
                let (Some(oa), Some(ob)) = (oa, ob) else { continue };
                let (
                    Outcome::Ok { value: va, bits: ba, .. },
                    Outcome::Ok { value: vb, bits: bb, .. },
                ) = (&oa.outcome, &ob.outcome)
                else {
                    continue;
                };
                if ba != bb {
                    records.push(DiffRecord {
                        program_id: id.to_string(),
                        level,
                        pair: (a, b),
                        value_a: *va,
                        value_b: *vb,
                        bits_a: *ba,
                        bits_b: *bb,
                        class_a: classify(*va),
                        class_b: classify(*vb),
                        digit_diff: digit_difference(*ba, *bb, precision),
                    });
                }
            }
        }
        records
    }

    /// RQ4-style comparison: within each compiler, compare every level
    /// against `O0_nofma`. Returns `(compiler, level, differs)` tuples for
    /// levels other than the baseline where both sides executed.
    pub fn compare_vs_baseline(
        &self,
        outcomes: &[ConfigOutcome],
    ) -> Vec<(CompilerId, OptLevel, bool)> {
        let mut results = Vec::new();
        for &c in &self.compilers {
            let baseline = outcomes
                .iter()
                .find(|o| o.config == CompilerConfig::new(c, OptLevel::O0Nofma))
                .and_then(|o| o.outcome.bits());
            let Some(base_bits) = baseline else { continue };
            for &l in &self.levels {
                if l == OptLevel::O0Nofma {
                    continue;
                }
                if let Some(bits) = outcomes
                    .iter()
                    .find(|o| o.config == CompilerConfig::new(c, l))
                    .and_then(|o| o.outcome.bits())
                {
                    results.push((c, l, bits != base_bits));
                }
            }
        }
        results
    }
}

/// Execute one configuration's input sets against its pre-sealed
/// artifact, falling back to the reference interpreter when the engine
/// asks for it (`artifact == None`) or the program refused to seal.
fn run_config(
    frontend: &Frontend,
    input_sets: &[InputSet],
    config: CompilerConfig,
    artifact: Option<&Result<SealedProgram, llm4fp_compiler::SealError>>,
    scratch: &mut ExecScratch,
) -> Vec<Outcome> {
    match artifact {
        Some(Ok(sealed)) => input_sets
            .iter()
            .map(|inputs| outcome_of(sealed.execute_into(inputs, DEFAULT_FUEL, scratch)))
            .collect(),
        Some(Err(_)) | None => reference_outcomes(&frontend.specialize(config), input_sets),
    }
}

fn reference_outcomes(artifact: &CompiledProgram, input_sets: &[InputSet]) -> Vec<Outcome> {
    input_sets.iter().map(|inputs| outcome_of(artifact.execute(inputs))).collect()
}

/// Record the campaign-level counters for one program's diff result:
/// programs, comparisons, total and per-config-pair discrepancy counts.
/// Callers invoke this *post-cache* (on the result a program actually
/// contributes, computed or replayed), which is what makes these plain
/// counters deterministic — unlike compute-level work, which is keyed.
pub fn record_outcome_metrics(telemetry: &Telemetry, result: &ProgramDiffResult) {
    if !telemetry.is_enabled() {
        return;
    }
    telemetry.add(keys::PROGRAMS, 1);
    telemetry.add(keys::COMPARISONS, result.comparisons_performed as u64);
    if !result.records.is_empty() {
        telemetry.add(keys::DISCREPANCIES, result.records.len() as u64);
        for record in &result.records {
            let key = format!(
                "{}{}-{lvl}.vs.{}-{lvl}",
                keys::DISCREPANCY_PAIR_PREFIX,
                record.pair.0,
                record.pair.1,
                lvl = record.level,
            );
            telemetry.add(&key, 1);
        }
    }
}

fn outcome_of(result: Result<ExecResult, ExecError>) -> Outcome {
    match result {
        Err(e) => Outcome::ExecFail { reason: e.to_string() },
        Ok(result) => Outcome::Ok { value: result.value, bits: result.bits(), hex: result.hex() },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm4fp_fpir::{parse_compute, InputValue};

    fn inputs_x(v: f64) -> InputSet {
        InputSet::new().with("x", InputValue::Fp(v))
    }

    #[test]
    fn identical_programs_produce_no_records_for_pure_arithmetic_at_strict_levels() {
        // A program with no math calls and no FMA opportunities is bitwise
        // identical everywhere: zero inconsistencies.
        let program =
            parse_compute("void compute(double x) { comp = x + 1.0; comp = comp - x; }").unwrap();
        let tester = DiffTester::new();
        let result = tester.run(&program, &inputs_x(0.375));
        assert_eq!(result.records.len(), 0);
        assert_eq!(result.ok_count(), 18);
        assert_eq!(result.comparisons_performed, 18);
        assert!(!result.triggered_inconsistency());
    }

    #[test]
    fn math_heavy_programs_trigger_host_device_inconsistencies() {
        let program = parse_compute(
            "void compute(double x, double y) {\n\
             comp = sin(x) * y + exp(x) / (y + 2.0);\n\
             comp += log(x * x + 1.0) * tanh(y);\n\
             }",
        )
        .unwrap();
        let inputs = InputSet::new().with("x", InputValue::Fp(1.7)).with("y", InputValue::Fp(-0.3));
        let result = DiffTester::new().run(&program, &inputs);
        assert!(result.triggered_inconsistency());
        // Host–device pairs must dominate.
        let host_device = result
            .records
            .iter()
            .filter(|r| r.pair.0 == CompilerId::Nvcc || r.pair.1 == CompilerId::Nvcc)
            .count();
        let host_host = result.records.len() - host_device;
        assert!(host_device >= host_host, "{host_device} vs {host_host}");
        // Every record involves two successfully executed configurations and
        // a nonzero digit difference.
        for r in &result.records {
            assert!(r.digit_diff >= 1);
            assert_ne!(r.bits_a, r.bits_b);
        }
    }

    #[test]
    fn fma_sensitive_program_differs_between_strict_and_contracting_configs() {
        let program =
            parse_compute("void compute(double x, double y, double z) { comp = x * y + z; }")
                .unwrap();
        let x = 1.0 + 2f64.powi(-30);
        let inputs = InputSet::new()
            .with("x", InputValue::Fp(x))
            .with("y", InputValue::Fp(x))
            .with("z", InputValue::Fp(-1.0));
        let tester = DiffTester::new();
        let result = tester.run(&program, &inputs);
        // gcc (no contraction at O0) vs nvcc (contraction at O0) differ at O0.
        assert!(result
            .records
            .iter()
            .any(|r| r.level == OptLevel::O0 && r.pair == (CompilerId::Gcc, CompilerId::Nvcc)));
        // RQ4 comparison: nvcc O0 differs from nvcc O0_nofma.
        let vs = tester.compare_vs_baseline(&result.outcomes);
        assert!(vs
            .iter()
            .any(|&(c, l, differs)| c == CompilerId::Nvcc && l == OptLevel::O0 && differs));
        assert!(vs
            .iter()
            .any(|&(c, l, differs)| c == CompilerId::Gcc && l == OptLevel::O0 && !differs));
    }

    #[test]
    fn compile_failures_reduce_performed_comparisons_but_not_the_matrix() {
        let program =
            parse_compute("void compute(double x) { comp = x + undeclared_thing; }").unwrap();
        let result = DiffTester::new().run(&program, &inputs_x(1.0));
        assert_eq!(result.ok_count(), 0);
        assert_eq!(result.comparisons_performed, 0);
        assert_eq!(result.records.len(), 0);
        assert_eq!(result.outcomes.len(), 18);
        assert!(result.outcomes.iter().all(|o| matches!(o.outcome, Outcome::CompileFail { .. })));
    }

    #[test]
    fn sequential_and_parallel_runs_agree() {
        let program = parse_compute(
            "void compute(double x, double *a) {\n\
             for (int i = 0; i < 8; ++i) { comp += a[i] * x + cos(x); }\n\
             comp /= x + 3.0;\n\
             }",
        )
        .unwrap();
        let inputs = InputSet::new()
            .with("x", InputValue::Fp(2.25))
            .with("a", InputValue::FpArray(vec![1.0, -2.0, 3.0, -4.0, 5.5, 0.25, 7.0, 8.125]));
        let sequential = DiffTester::new().with_threads(1).run(&program, &inputs);
        let parallel = DiffTester::new().with_threads(6).run(&program, &inputs);
        assert_eq!(sequential.records, parallel.records);
        assert_eq!(sequential.outcomes, parallel.outcomes);
    }

    #[test]
    fn matrix_accessors_report_the_expected_shape() {
        let tester = DiffTester::new();
        assert_eq!(tester.configurations().len(), 18);
        assert_eq!(tester.compiler_pairs().len(), 3);
        assert_eq!(tester.comparisons_per_program(), 18);
        let reduced = DiffTester::with_matrix(
            vec![CompilerId::Gcc, CompilerId::Nvcc],
            vec![OptLevel::O0, OptLevel::O3],
        );
        assert_eq!(reduced.configurations().len(), 4);
        assert_eq!(reduced.comparisons_per_program(), 2);
    }

    #[test]
    fn sealed_and_reference_engines_agree_exactly() {
        // The whole point of the bytecode back end: ProgramDiffResults are
        // indistinguishable from the reference interpreter's, bit for bit.
        let sources = [
            "void compute(double x) { comp = x + 1.0; comp = comp - x; }",
            "void compute(double x, double y) {\n\
             comp = sin(x) * y + exp(x) / (y + 2.0);\n\
             comp += log(x * x + 1.0) * tanh(y);\n\
             }",
            "void compute(double x, double *a) {\n\
             double buf[4] = {0.5, -1.5};\n\
             for (int i = 0; i < 8; ++i) { buf[i % 4] += a[i] * x; }\n\
             for (int i = 0; i < 4; ++i) { comp += buf[i] / (x + 2.0); }\n\
             if (comp > 1.0) { comp = sqrt(comp); }\n\
             }",
        ];
        for src in sources {
            let program = parse_compute(src).unwrap();
            let inputs = InputSet::new()
                .with("x", InputValue::Fp(1.7))
                .with("y", InputValue::Fp(-0.3))
                .with("a", InputValue::FpArray(vec![1.0, -2.0, 3.0, -4.0, 5.5, 0.25, 7.0, 8.125]));
            let sealed = DiffTester::new().with_threads(1).run(&program, &inputs);
            let reference = DiffTester::new()
                .with_threads(1)
                .with_engine(ExecEngine::Reference)
                .run(&program, &inputs);
            assert_eq!(sealed, reference, "engines disagree for {src}");
        }
    }

    #[test]
    fn optimized_and_raw_seal_modes_agree_exactly() {
        // The seal-time optimizer is a pure perf knob: ProgramDiffResults
        // are bit-identical with peepholes on or off, and both match the
        // reference interpreter.
        let sources = [
            "void compute(double x) { comp = 1.5 + 2.5 + x; comp *= 2.0 * 4.0; }",
            "void compute(double x, double *a) {\n\
             double buf[4] = {0.5, -1.5};\n\
             for (int i = 0; i < 8; ++i) { buf[i % 4] += a[i] * x + sin(0.25); }\n\
             for (int i = 0; i < 4; ++i) { comp += buf[i] / (x + 2.0); }\n\
             if (comp > 1.0) { comp = sqrt(comp); }\n\
             }",
        ];
        for src in sources {
            let program = parse_compute(src).unwrap();
            let inputs = InputSet::new()
                .with("x", InputValue::Fp(1.7))
                .with("a", InputValue::FpArray(vec![1.0, -2.0, 3.0, -4.0, 5.5, 0.25, 7.0, 8.125]));
            let optimized = DiffTester::new().with_threads(1).run(&program, &inputs);
            let raw = DiffTester::new()
                .with_threads(1)
                .with_seal_mode(SealMode::Raw)
                .run(&program, &inputs);
            let reference = DiffTester::new()
                .with_threads(1)
                .with_engine(ExecEngine::Reference)
                .run(&program, &inputs);
            assert_eq!(optimized, raw, "seal modes disagree for {src}");
            assert_eq!(optimized, reference, "optimizer diverges from interpreter for {src}");
        }
    }

    #[test]
    fn matrix_scratch_reuse_across_programs_is_bit_stable() {
        let sources = [
            "void compute(double x) { comp = x * 3.0 + 1.0; }",
            "void compute(double x, double *a) {\n\
             for (int i = 0; i < 8; ++i) { comp += a[i] * x + cos(x); }\n\
             comp /= x + 3.0;\n\
             }",
            "void compute(double x) { comp = sin(x) + 1.0 + 2.0; }",
        ];
        for threads in [1, 3] {
            let tester = DiffTester::new().with_threads(threads);
            let mut scratch = MatrixScratch::new();
            for src in sources {
                let program = parse_compute(src).unwrap();
                let inputs = InputSet::new().with("x", InputValue::Fp(0.8125)).with(
                    "a",
                    InputValue::FpArray(vec![1.0, -2.0, 3.0, -4.0, 5.5, 0.25, 7.0, 8.125]),
                );
                let reused = tester.run_with(&program, &inputs, &mut scratch);
                let fresh = tester.run(&program, &inputs);
                assert_eq!(reused, fresh, "scratch reuse changed results for {src}");
            }
            assert!(scratch.peak_regs() > 0, "peak register file not tracked");
        }
    }

    #[test]
    fn run_many_reuses_sealed_artifacts_across_input_sets() {
        let program = parse_compute(
            "void compute(double x, double *a) {\n\
             for (int i = 0; i < 8; ++i) { comp += a[i] * x + cos(x); }\n\
             comp /= x + 3.0;\n\
             }",
        )
        .unwrap();
        let input_sets: Vec<InputSet> = (0..5)
            .map(|k| {
                InputSet::new().with("x", InputValue::Fp(0.25 + k as f64)).with(
                    "a",
                    InputValue::FpArray(vec![1.0, -2.0, 3.0, -4.0, 5.5, 0.25, 7.0, 8.125]),
                )
            })
            .collect();
        let tester = DiffTester::new().with_threads(2);
        let batched = tester.run_many(&program, &input_sets);
        assert_eq!(batched.len(), input_sets.len());
        for (inputs, batch_result) in input_sets.iter().zip(&batched) {
            let single = tester.run(&program, inputs);
            assert_eq!(&single, batch_result);
        }
    }

    #[test]
    #[cfg(unix)]
    fn external_backend_fills_the_matrix_with_one_compile_per_config() {
        let dir = std::env::temp_dir()
            .join("llm4fp-difftest-tests")
            .join(format!("ext-matrix-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let toolchain =
            Arc::new(llm4fp_extcc::fakecc::install_toolchain(&dir).expect("install fakecc"));
        let tester = DiffTester::with_matrix(
            vec![CompilerId::Gcc, CompilerId::Clang],
            OptLevel::ALL.to_vec(),
        )
        .with_threads(1)
        .with_backend(ExecBackend::External(Arc::clone(&toolchain)));
        assert_ne!(tester.backend_fingerprint(), "virtual");
        let program = parse_compute(
            "void compute(double x, double y) { comp = x * y + 1.0; comp += sin(x); }",
        )
        .unwrap();
        let input_sets: Vec<InputSet> = (0..3)
            .map(|k| {
                InputSet::new()
                    .with("x", InputValue::Fp(0.5 + k as f64))
                    .with("y", InputValue::Fp(-1.25))
            })
            .collect();
        let results = tester.run_many(&program, &input_sets);
        assert_eq!(results.len(), 3);
        for result in &results {
            // Both fake personalities compile and run all 6 levels.
            assert_eq!(result.ok_count(), 12);
            assert_eq!(result.comparisons_performed, 6);
            // fakecc personalities agree at the strict reference level and
            // disagree everywhere else: 5 records for the gcc-clang pair.
            assert_eq!(result.records.len(), 5);
            assert!(result.records.iter().all(|r| r.level != OptLevel::O0Nofma));
            // The RQ4 baseline comparison is computable from external runs.
            let vs = tester.compare_vs_baseline(&result.outcomes);
            assert_eq!(vs.len(), 10);
        }
        // Compile-once-run-many: 12 configurations compiled once each, the
        // binaries executed once per input set.
        assert_eq!(llm4fp_extcc::fakecc::compile_count(&dir), 12);
        assert_eq!(llm4fp_extcc::fakecc::run_count(&dir), 12 * 3);
        // The external matrix is deterministic across repeats.
        assert_eq!(results, tester.run_many(&program, &input_sets));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn outcome_accessors() {
        let ok = Outcome::Ok { value: 1.5, bits: 1.5f64.to_bits(), hex: "x".into() };
        assert_eq!(ok.value(), Some(1.5));
        assert!(ok.is_ok());
        let fail = Outcome::ExecFail { reason: "fuel".into() };
        assert_eq!(fail.bits(), None);
        assert!(!fail.is_ok());
    }
}
