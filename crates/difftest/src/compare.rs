//! Result comparison and classification.
//!
//! Outputs are compared on their hexadecimal bit-pattern encoding (16 hex
//! digits for FP64, 8 for FP32): any differing digit is an inconsistency.
//! Each result value is classified into one of the five classes the paper
//! uses — Real (normal and subnormal numbers), Zero (±0), +Inf, −Inf and
//! NaN — and an inconsistency's *kind* is the unordered pair of the two
//! classes, e.g. `{Real, Real}` or `{Real, +Inf}`.

use serde::{Deserialize, Serialize};

use llm4fp_compiler::{CompilerConfig, CompilerId, OptLevel};
use llm4fp_fpir::Precision;

/// The five value classes of RQ2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ValueClass {
    /// Normal or subnormal finite non-zero value.
    Real,
    /// Positive or negative zero.
    Zero,
    /// Positive infinity.
    PosInf,
    /// Negative infinity.
    NegInf,
    /// Not-a-number.
    NaN,
}

impl ValueClass {
    pub fn name(self) -> &'static str {
        match self {
            ValueClass::Real => "Real",
            ValueClass::Zero => "Zero",
            ValueClass::PosInf => "+Inf",
            ValueClass::NegInf => "-Inf",
            ValueClass::NaN => "NaN",
        }
    }
}

impl std::fmt::Display for ValueClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Classify a floating-point value.
pub fn classify(value: f64) -> ValueClass {
    if value.is_nan() {
        ValueClass::NaN
    } else if value.is_infinite() {
        if value > 0.0 {
            ValueClass::PosInf
        } else {
            ValueClass::NegInf
        }
    } else if value == 0.0 {
        ValueClass::Zero
    } else {
        ValueClass::Real
    }
}

/// An unordered pair of value classes — the "kind" of an inconsistency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InconsistencyKind {
    /// The smaller class (by enum order).
    pub first: ValueClass,
    /// The larger class (by enum order).
    pub second: ValueClass,
}

impl InconsistencyKind {
    /// Build the unordered pair.
    pub fn new(a: ValueClass, b: ValueClass) -> Self {
        if a <= b {
            InconsistencyKind { first: a, second: b }
        } else {
            InconsistencyKind { first: b, second: a }
        }
    }

    /// The eleven kinds, in the order Figure 3 lists them.
    pub fn figure3_order() -> Vec<InconsistencyKind> {
        use ValueClass::*;
        [
            (Real, Real),
            (Real, Zero),
            (Real, NaN),
            (Real, PosInf),
            (Real, NegInf),
            (Zero, NaN),
            (Zero, PosInf),
            (Zero, NegInf),
            (NaN, PosInf),
            (NaN, NegInf),
            (PosInf, NegInf),
        ]
        .into_iter()
        .map(|(a, b)| InconsistencyKind::new(a, b))
        .collect()
    }

    /// Label like `{Real, +Inf}`.
    pub fn label(&self) -> String {
        format!("{{{}, {}}}", self.first, self.second)
    }
}

/// Number of differing hexadecimal digits between two results, the severity
/// measure reported in Table 4 (1–16 for FP64, 1–8 for FP32; 0 means the
/// results are identical).
pub fn digit_difference(bits_a: u64, bits_b: u64, precision: Precision) -> usize {
    let digits = precision.hex_digits();
    let mut count = 0;
    for i in 0..digits {
        let shift = 4 * i;
        if (bits_a >> shift) & 0xf != (bits_b >> shift) & 0xf {
            count += 1;
        }
    }
    count
}

/// One recorded inconsistency: a pair of configurations at the same
/// optimization level whose outputs differ bitwise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffRecord {
    /// Identifier of the program (structural hash rendered in hex).
    pub program_id: String,
    /// Optimization level at which the pair was compared.
    pub level: OptLevel,
    /// The two compilers (host compilers come first, matching Table 4).
    pub pair: (CompilerId, CompilerId),
    /// Configurations, values and bit patterns of the two results.
    pub value_a: f64,
    pub value_b: f64,
    pub bits_a: u64,
    pub bits_b: u64,
    /// Value classes of the two results.
    pub class_a: ValueClass,
    pub class_b: ValueClass,
    /// Number of differing hex digits.
    pub digit_diff: usize,
}

impl DiffRecord {
    /// The unordered class pair.
    pub fn kind(&self) -> InconsistencyKind {
        InconsistencyKind::new(self.class_a, self.class_b)
    }

    /// The two compiler configurations involved.
    pub fn configs(&self) -> (CompilerConfig, CompilerConfig) {
        (CompilerConfig::new(self.pair.0, self.level), CompilerConfig::new(self.pair.1, self.level))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_all_value_categories() {
        assert_eq!(classify(1.5), ValueClass::Real);
        assert_eq!(classify(f64::MIN_POSITIVE / 4.0), ValueClass::Real, "subnormals are Real");
        assert_eq!(classify(0.0), ValueClass::Zero);
        assert_eq!(classify(-0.0), ValueClass::Zero);
        assert_eq!(classify(f64::INFINITY), ValueClass::PosInf);
        assert_eq!(classify(f64::NEG_INFINITY), ValueClass::NegInf);
        assert_eq!(classify(f64::NAN), ValueClass::NaN);
    }

    #[test]
    fn kinds_are_unordered_pairs() {
        let a = InconsistencyKind::new(ValueClass::Real, ValueClass::NaN);
        let b = InconsistencyKind::new(ValueClass::NaN, ValueClass::Real);
        assert_eq!(a, b);
        assert_eq!(a.label(), "{Real, NaN}");
        assert_eq!(InconsistencyKind::figure3_order().len(), 11);
        // All eleven are distinct.
        let set: std::collections::HashSet<_> =
            InconsistencyKind::figure3_order().into_iter().collect();
        assert_eq!(set.len(), 11);
    }

    #[test]
    fn digit_difference_counts_nibbles() {
        let a = 0x3ff0_0000_0000_0000u64;
        assert_eq!(digit_difference(a, a, Precision::F64), 0);
        assert_eq!(digit_difference(a, a ^ 0x1, Precision::F64), 1);
        assert_eq!(digit_difference(a, a ^ 0xff, Precision::F64), 2);
        assert_eq!(digit_difference(0, u64::MAX, Precision::F64), 16);
        // FP32 comparisons only look at the low 8 digits.
        assert_eq!(digit_difference(0x0000_0000, 0xffff_ffff, Precision::F32), 8);
        assert_eq!(digit_difference(0x1234_5678, 0x1234_5678, Precision::F32), 0);
    }

    #[test]
    fn one_ulp_differences_are_visible() {
        let x = 1.0f64 / 3.0;
        let y = f64::from_bits(x.to_bits() + 1);
        let d = digit_difference(x.to_bits(), y.to_bits(), Precision::F64);
        assert!(d >= 1);
    }

    #[test]
    fn diff_record_kind_and_configs() {
        let rec = DiffRecord {
            program_id: "abc".into(),
            level: OptLevel::O3,
            pair: (CompilerId::Gcc, CompilerId::Nvcc),
            value_a: 1.0,
            value_b: f64::INFINITY,
            bits_a: 1.0f64.to_bits(),
            bits_b: f64::INFINITY.to_bits(),
            class_a: ValueClass::Real,
            class_b: ValueClass::PosInf,
            digit_diff: 3,
        };
        assert_eq!(rec.kind(), InconsistencyKind::new(ValueClass::PosInf, ValueClass::Real));
        let (a, b) = rec.configs();
        assert_eq!(a.label(), "gcc@O3");
        assert_eq!(b.label(), "nvcc@O3");
    }
}
