//! A concurrent result cache over the differential-testing matrix.
//!
//! Generators produce structurally duplicate programs — Direct-Prompt's
//! unguided sampling repeats knowledge-base programs outright (~30% of a
//! 600-program budget), and campaigns sharing a seed regenerate each
//! other's programs — and every duplicate re-runs the full
//! 18-configuration compile/execute/compare matrix, the most expensive
//! stage of the pipeline. Campaigns derive each program's input set from
//! the program's structural hash (see `llm4fp::campaign`), so a duplicate
//! program is guaranteed to produce a bit-identical [`ProgramDiffResult`];
//! caching by structural `program_id` is therefore semantically
//! transparent: a campaign with the cache enabled returns exactly the same
//! result as one without it.
//!
//! The cache is **backend-aware**: entries computed by different
//! execution backends are never interchangeable (a real toolchain's bits
//! legitimately differ from the virtual compiler's), so lookups key on a
//! [`ResultCache::scoped_key`] composed of the backend's fingerprint and
//! the structural program id. On the external backend a hit is the big
//! win the ROADMAP promised: all of a duplicate's process spawns — one
//! compiler spawn per configuration plus one binary spawn per input set,
//! so 24 for the usual detected gcc + clang matrix (2 compilers × 6
//! levels) and 36 if every personality of the full 18-configuration
//! matrix had a host binary — are skipped outright.
//!
//! The map is sharded 16 ways to keep lock contention negligible when many
//! campaign shards share one cache. Hit/miss counters are advisory
//! statistics: under concurrent execution two workers may both miss on the
//! same program and compute it twice — the merged campaign result is
//! unaffected because both computations are bit-identical.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use llm4fp_compiler::{CompilerId, OptLevel};

use crate::matrix::ProgramDiffResult;

const SHARDS: usize = 16;

/// One cached test outcome: the full matrix result plus the RQ4 baseline
/// comparisons.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedDiff {
    pub result: ProgramDiffResult,
    pub baseline: Vec<(CompilerId, OptLevel, bool)>,
}

/// Cache statistics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when never used).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Sharded concurrent map from structural `program_id` to [`CachedDiff`].
#[derive(Debug)]
pub struct ResultCache {
    shards: [Mutex<HashMap<String, CachedDiff>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for ResultCache {
    fn default() -> Self {
        ResultCache {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl ResultCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Compose the backend-scoped cache key for a program: the backend
    /// fingerprint (see `ExecBackend::fingerprint`) joined to the
    /// structural program id with a separator neither side contains.
    /// Different backends therefore occupy disjoint key spaces of one
    /// shared cache — sharing the map is always sound.
    pub fn scoped_key(backend_fingerprint: &str, program_id: &str) -> String {
        format!("{backend_fingerprint}\u{1f}{program_id}")
    }

    fn shard(&self, key: &str) -> &Mutex<HashMap<String, CachedDiff>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    /// Look up a program by structural id, counting a hit or miss.
    pub fn get(&self, program_id: &str) -> Option<CachedDiff> {
        let found = self.shard(program_id).lock().unwrap().get(program_id).cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Insert a freshly computed outcome. Last write wins; concurrent
    /// writers always insert bit-identical values (see module docs).
    pub fn insert(&self, program_id: String, cached: CachedDiff) {
        self.shard(&program_id).lock().unwrap().insert(program_id, cached);
    }

    /// Number of distinct programs currently cached.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiffTester;
    use llm4fp_fpir::{parse_compute, program_id, InputSet, InputValue};

    fn sample() -> (String, CachedDiff) {
        let program = parse_compute(
            "void compute(double x, double y) { comp = sin(x) * y + exp(x) / (y + 2.0); }",
        )
        .unwrap();
        let inputs = InputSet::new().with("x", InputValue::Fp(1.7)).with("y", InputValue::Fp(-0.3));
        let tester = DiffTester::new().with_threads(1);
        let result = tester.run(&program, &inputs);
        let baseline = tester.compare_vs_baseline(&result.outcomes);
        (program_id(&program), CachedDiff { result, baseline })
    }

    #[test]
    fn second_lookup_hits_and_returns_identical_results() {
        let cache = ResultCache::new();
        let (id, value) = sample();
        assert!(cache.get(&id).is_none());
        cache.insert(id.clone(), value.clone());
        let cached = cache.get(&id).expect("present after insert");
        assert_eq!(cached, value);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn concurrent_access_is_safe_and_counts_every_lookup() {
        let cache = ResultCache::new();
        let (id, value) = sample();
        cache.insert(id.clone(), value);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        assert!(cache.get(&id).is_some());
                    }
                });
            }
        });
        assert_eq!(cache.stats(), CacheStats { hits: 800, misses: 0 });
    }

    #[test]
    fn empty_cache_reports_zero_rate() {
        let cache = ResultCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hit_rate(), 0.0);
    }

    #[test]
    fn scoped_keys_keep_backends_disjoint() {
        let cache = ResultCache::new();
        let (id, value) = sample();
        let virtual_key = ResultCache::scoped_key("virtual", &id);
        let external_key = ResultCache::scoped_key("extcc[gcc=gcc(13)]", &id);
        assert_ne!(virtual_key, external_key);
        cache.insert(virtual_key.clone(), value);
        // The same program under a different backend is a miss.
        assert!(cache.get(&external_key).is_none());
        assert!(cache.get(&virtual_key).is_some());
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }
}
