//! The pluggable execution-backend layer.
//!
//! [`ExecBackend`] selects how the differential tester obtains each
//! configuration's result bits: the **virtual** compiler (sealed bytecode
//! VM or the reference interpreter — machine-independent, the evaluation
//! default) or an **external** real toolchain driven through
//! `llm4fp-extcc` (`std::process` spawns with the exact Table 1 flags).
//! Both paths flow into the same [`crate::ProgramDiffResult`] shape, so
//! comparison, aggregation, caching, campaign and orchestrator code are
//! backend-agnostic.
//!
//! External campaigns additionally throttle their process spawns through
//! an optional [`ProcessBudget`] — a counting semaphore shared across
//! shards that bounds how many program matrices spawn processes
//! concurrently, independently of the orchestrator's thread pool (virtual
//! shards never touch it). Throttling changes wall-clock interleaving
//! only; recorded results stay a pure function of the toolchain.

use std::sync::{Arc, Condvar, Mutex};

use llm4fp_extcc::HostToolchain;

use crate::matrix::ExecEngine;

/// Which execution backend produces a configuration's result bits.
#[derive(Debug, Clone)]
pub enum ExecBackend {
    /// The virtual compiler (the default: sealed register VM, with
    /// [`ExecEngine::Reference`] selecting the tree-walking interpreter).
    Virtual(ExecEngine),
    /// A real host toolchain: compile with actual binaries, run the
    /// produced executables, parse the printed bit patterns. External
    /// failures (compile errors, crashes, timeouts, garbage output) are
    /// recorded as `CompileFail`/`ExecFail` outcomes, never panics.
    External(Arc<HostToolchain>),
}

impl Default for ExecBackend {
    fn default() -> Self {
        ExecBackend::Virtual(ExecEngine::default())
    }
}

impl ExecBackend {
    /// Shorthand for the default virtual backend.
    pub fn virtual_default() -> Self {
        ExecBackend::default()
    }

    /// True for the external (process-spawning) backend.
    pub fn is_external(&self) -> bool {
        matches!(self, ExecBackend::External(_))
    }

    /// Stable identity of this backend for result-cache key scoping.
    /// The two virtual engines are pinned bit-identical, so they share
    /// one identity; external identities cover binaries, versions and the
    /// timeout (see [`HostToolchain::fingerprint`]).
    pub fn fingerprint(&self) -> String {
        match self {
            ExecBackend::Virtual(_) => "virtual".to_string(),
            ExecBackend::External(toolchain) => toolchain.fingerprint(),
        }
    }
}

/// A counting semaphore bounding concurrent external process activity.
///
/// The orchestrator hands one budget to every external shard of a run
/// (`OrchestratorOptions::process_slots`); the differential tester
/// acquires a permit around each program's compile-and-run matrix. This
/// keeps a mixed virtual/real campaign suite from forking hundreds of
/// compilers at once while the virtual shards saturate the thread pool.
#[derive(Debug)]
pub struct ProcessBudget {
    slots: Mutex<usize>,
    available: Condvar,
    capacity: usize,
}

impl ProcessBudget {
    /// A budget with `slots` permits (clamped to at least 1).
    pub fn new(slots: usize) -> Self {
        let slots = slots.max(1);
        ProcessBudget { slots: Mutex::new(slots), available: Condvar::new(), capacity: slots }
    }

    /// Total number of permits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Block until a permit is free and take it; the guard returns the
    /// permit when dropped.
    pub fn acquire(&self) -> BudgetGuard<'_> {
        let mut slots = self.slots.lock().unwrap();
        while *slots == 0 {
            slots = self.available.wait(slots).unwrap();
        }
        *slots -= 1;
        BudgetGuard { budget: self }
    }

    /// Permits currently free (advisory; for tests and stats).
    pub fn free(&self) -> usize {
        *self.slots.lock().unwrap()
    }
}

/// RAII permit of a [`ProcessBudget`].
#[derive(Debug)]
pub struct BudgetGuard<'b> {
    budget: &'b ProcessBudget,
}

impl Drop for BudgetGuard<'_> {
    fn drop(&mut self) {
        let mut slots = self.budget.slots.lock().unwrap();
        *slots += 1;
        drop(slots);
        self.budget.available.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn backend_fingerprints_distinguish_external_toolchains_only() {
        let sealed = ExecBackend::Virtual(ExecEngine::Sealed);
        let reference = ExecBackend::Virtual(ExecEngine::Reference);
        // The two virtual engines are bit-identical by invariant, so they
        // intentionally share cache identity.
        assert_eq!(sealed.fingerprint(), reference.fingerprint());
        assert!(!sealed.is_external());
        let external = ExecBackend::External(Arc::new(HostToolchain::new(vec![])));
        assert!(external.is_external());
        assert_ne!(external.fingerprint(), sealed.fingerprint());
    }

    #[test]
    fn budget_bounds_concurrency() {
        let budget = ProcessBudget::new(2);
        assert_eq!(budget.capacity(), 2);
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let _guard = budget.acquire();
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    live.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "budget exceeded");
        assert_eq!(budget.free(), 2, "all permits returned");
    }

    #[test]
    fn zero_slot_budgets_clamp_to_one() {
        let budget = ProcessBudget::new(0);
        assert_eq!(budget.capacity(), 1);
        let _guard = budget.acquire();
        assert_eq!(budget.free(), 0);
    }
}
