//! Orchestrator benchmarks: sequential driver vs sharded execution of the
//! same 200-program Varity campaign, plus the result cache's effect on a
//! duplicate-heavy Direct-Prompt campaign (the approach whose unguided
//! sampling repeats knowledge-base programs — ~30% duplicates at a
//! 600-program budget). The sharded/sequential pair is the acceptance
//! benchmark for the sharded engine: on a 4-core runner the 8-shard
//! configuration should finish at least ~2x faster than the sequential
//! baseline. On fewer cores, expect parity — the interesting number there
//! is the orchestration overhead, which should be negligible.
//!
//! The cache pair measures bookkeeping overhead vs duplicate savings. On
//! the *virtual* compiler a matrix run costs microseconds, so expect the
//! two near parity; the cache's real payoff is the `extcc` backend and
//! larger matrices, where one cached program saves 18 process spawns.

use criterion::{criterion_group, criterion_main, Criterion};
use llm4fp::{ApproachKind, Campaign, CampaignConfig};
use llm4fp_orchestrator::Orchestrator;

fn varity_200(threads: usize) -> CampaignConfig {
    CampaignConfig::new(ApproachKind::Varity).with_budget(200).with_seed(7).with_threads(threads)
}

fn bench_sharding(c: &mut Criterion) {
    let mut group = c.benchmark_group("orchestrator_varity_200");
    group.sample_size(10);

    group.bench_function("sequential_campaign", |b| {
        let config = varity_200(1);
        b.iter(|| Campaign::new(config.clone()).run())
    });
    for shards in [2usize, 4, 8] {
        group.bench_function(format!("sharded_k{shards}"), |b| {
            let orchestrator = Orchestrator::new(varity_200(1)).shards(shards).cache(false);
            b.iter(|| orchestrator.clone().run().unwrap())
        });
    }
    // Feedback exchange adds E - 1 barrier synchronizations per campaign;
    // against sharded_k8 this prices the barrier overhead.
    group.bench_function("sharded_k8_e4_exchange", |b| {
        let orchestrator = Orchestrator::new(varity_200(1)).shards(8).epochs(4).cache(false);
        b.iter(|| orchestrator.clone().run().unwrap())
    });
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("orchestrator_direct_prompt_600_cache");
    group.sample_size(10);
    let config = CampaignConfig::new(ApproachKind::DirectPrompt)
        .with_budget(600)
        .with_seed(3)
        .with_threads(1);
    for (label, cache) in [("cache_off", false), ("cache_on", true)] {
        group.bench_function(label, |b| {
            let orchestrator = Orchestrator::new(config.clone()).shards(4).cache(cache);
            b.iter(|| orchestrator.clone().run().unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sharding, bench_cache);
criterion_main!(benches);
