//! Execution hot-path benchmarks: the sealed bytecode VM against the
//! reference tree-walking interpreter, and the restructured differential-
//! testing driver on both engines.
//!
//! `interp_vs_vm` measures the per-(program, configuration, input)
//! execution cost on a fixed Varity corpus — the innermost loop of every
//! campaign. Artifacts are prebuilt for both sides so the comparison
//! isolates execution; `seal_and_execute` adds the one-time sealing cost
//! to show the break-even point (sealing pays for itself on the first
//! run). `difftest_matrix` prices the full 18-configuration driver per
//! program on each engine, plus the batched `run_many` path that reuses
//! one sealed artifact per configuration across many input sets.
//!
//! Both groups are saved into the CI bench-regression baseline
//! (`BENCH_hotpath.json`) and gated by `bench_compare`, so a slowdown on
//! the sealed path fails the PR.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use llm4fp_compiler::interp::DEFAULT_FUEL;
use llm4fp_compiler::{
    compile, CompiledProgram, CompilerConfig, CompilerId, ExecScratch, OptLevel, SealedProgram,
};
use llm4fp_difftest::{DiffTester, ExecEngine};
use llm4fp_fpir::{InputSet, Program};
use llm4fp_generator::{InputGenerator, VarityGenerator};

const CORPUS: usize = 24;

fn corpus() -> Vec<(Program, InputSet)> {
    (0..CORPUS as u64)
        .map(|seed| {
            let program = VarityGenerator::new(seed * 7 + 1).generate();
            let inputs = InputGenerator::new(seed ^ 0xbe9c).generate(&program);
            (program, inputs)
        })
        .collect()
}

fn artifacts(corpus: &[(Program, InputSet)]) -> Vec<(CompiledProgram, SealedProgram, InputSet)> {
    let configs = [
        CompilerConfig::new(CompilerId::Gcc, OptLevel::O0Nofma),
        CompilerConfig::new(CompilerId::Clang, OptLevel::O2),
        CompilerConfig::new(CompilerId::Nvcc, OptLevel::O3Fastmath),
    ];
    corpus
        .iter()
        .flat_map(|(program, inputs)| {
            configs.iter().map(move |&config| {
                let artifact = compile(program, config).expect("varity programs compile");
                let sealed = artifact.seal().expect("varity programs seal");
                (artifact, sealed, inputs.clone())
            })
        })
        .collect()
}

fn bench_interp_vs_vm(c: &mut Criterion) {
    let mut group = c.benchmark_group("interp_vs_vm");
    group.sample_size(20);
    let prebuilt = artifacts(&corpus());

    group.bench_function("reference_interpreter", |b| {
        b.iter(|| {
            for (artifact, _, inputs) in &prebuilt {
                black_box(artifact.execute(inputs).ok());
            }
        })
    });
    group.bench_function("sealed_vm", |b| {
        let mut scratch = ExecScratch::new();
        b.iter(|| {
            for (_, sealed, inputs) in &prebuilt {
                black_box(sealed.execute_into(inputs, DEFAULT_FUEL, &mut scratch).ok());
            }
        })
    });
    group.bench_function("seal_and_execute", |b| {
        let mut scratch = ExecScratch::new();
        b.iter(|| {
            for (artifact, _, inputs) in &prebuilt {
                let sealed = artifact.seal().expect("seals");
                black_box(sealed.execute_into(inputs, DEFAULT_FUEL, &mut scratch).ok());
            }
        })
    });
    group.finish();
}

fn bench_difftest_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("difftest_matrix");
    group.sample_size(10);
    let corpus = corpus();

    for (label, engine) in
        [("sealed_engine", ExecEngine::Sealed), ("reference_engine", ExecEngine::Reference)]
    {
        group.bench_function(label, |b| {
            let tester = DiffTester::new().with_threads(1).with_engine(engine);
            b.iter(|| {
                for (program, inputs) in &corpus {
                    black_box(tester.run(program, inputs));
                }
            })
        });
    }

    // Artifact reuse across input sets: one program, many inputs, the
    // matrix specialized and sealed once.
    let (program, _) = &corpus[0];
    let input_sets: Vec<InputSet> =
        (0..16).map(|k| InputGenerator::new(0x1234 + k).generate(program)).collect();
    group.bench_function("run_many_16_inputs", |b| {
        let tester = DiffTester::new().with_threads(1);
        b.iter(|| black_box(tester.run_many(program, &input_sets)))
    });
    group.finish();
}

criterion_group!(benches, bench_interp_vs_vm, bench_difftest_matrix);
criterion_main!(benches);
