//! Execution hot-path benchmarks: the sealed bytecode VM against the
//! reference tree-walking interpreter, the restructured differential-
//! testing driver on both engines, and the seal-side pipeline itself.
//!
//! `interp_vs_vm` measures the per-(program, configuration, input)
//! execution cost on a fixed Varity corpus — the innermost loop of every
//! campaign. Artifacts are prebuilt for both sides so the comparison
//! isolates execution; `seal_and_execute` adds the one-time sealing cost
//! to show the break-even point (sealing pays for itself on the first
//! run). `difftest_matrix` prices the full 18-configuration driver per
//! program on each engine, plus the batched `run_many` path that reuses
//! one sealed artifact per configuration across many input sets.
//! `seal_matrix` prices the build side: 18 independent `Frontend::seal`
//! calls against one matrix-shared `Frontend::seal_matrix` (prefix-tree
//! pass pipelines + one layout per program), with and without the
//! seal-time peephole optimizer.
//! `telemetry_overhead` prices the observability layer on a sharded
//! campaign: telemetry off (the gated disabled path — every recording
//! call must stay one `None` branch), metrics mode and full trace mode.
//!
//! All groups are saved into the CI bench-regression baseline
//! (`BENCH_hotpath.json`) and gated by `bench_compare`, so a slowdown on
//! the sealed path fails the PR.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use llm4fp::{ApproachKind, CampaignConfig};
use llm4fp_compiler::interp::DEFAULT_FUEL;
use llm4fp_compiler::{
    compile, CompiledProgram, CompilerConfig, CompilerId, ExecScratch, Frontend, OptLevel,
    SealMode, SealScratch, SealedProgram,
};
use llm4fp_difftest::{DiffTester, ExecEngine, MatrixScratch};
use llm4fp_fpir::{InputSet, Program};
use llm4fp_generator::{InputGenerator, VarityGenerator};
use llm4fp_orchestrator::Orchestrator;
use llm4fp_telemetry::TelemetrySpec;

const CORPUS: usize = 24;

fn corpus() -> Vec<(Program, InputSet)> {
    (0..CORPUS as u64)
        .map(|seed| {
            let program = VarityGenerator::new(seed * 7 + 1).generate();
            let inputs = InputGenerator::new(seed ^ 0xbe9c).generate(&program);
            (program, inputs)
        })
        .collect()
}

fn artifacts(corpus: &[(Program, InputSet)]) -> Vec<(CompiledProgram, SealedProgram, InputSet)> {
    let configs = [
        CompilerConfig::new(CompilerId::Gcc, OptLevel::O0Nofma),
        CompilerConfig::new(CompilerId::Clang, OptLevel::O2),
        CompilerConfig::new(CompilerId::Nvcc, OptLevel::O3Fastmath),
    ];
    corpus
        .iter()
        .flat_map(|(program, inputs)| {
            configs.iter().map(move |&config| {
                let artifact = compile(program, config).expect("varity programs compile");
                let sealed = artifact.seal().expect("varity programs seal");
                (artifact, sealed, inputs.clone())
            })
        })
        .collect()
}

fn bench_interp_vs_vm(c: &mut Criterion) {
    let mut group = c.benchmark_group("interp_vs_vm");
    group.sample_size(20);
    let prebuilt = artifacts(&corpus());

    group.bench_function("reference_interpreter", |b| {
        b.iter(|| {
            for (artifact, _, inputs) in &prebuilt {
                black_box(artifact.execute(inputs).ok());
            }
        })
    });
    group.bench_function("sealed_vm", |b| {
        let mut scratch = ExecScratch::new();
        b.iter(|| {
            for (_, sealed, inputs) in &prebuilt {
                black_box(sealed.execute_into(inputs, DEFAULT_FUEL, &mut scratch).ok());
            }
        })
    });
    // The PR 3 series: raw flatten + one execution (sealing has paid for
    // itself on the first run ever since). The peephole optimizer is a
    // deliberate additional seal-time investment that amortizes over
    // repeated execution, so it gets its own series below instead of
    // silently redefining this one.
    group.bench_function("seal_and_execute", |b| {
        let mut scratch = ExecScratch::new();
        b.iter(|| {
            for (artifact, _, inputs) in &prebuilt {
                let sealed = artifact.seal_with(SealMode::Raw).expect("seals");
                black_box(sealed.execute_into(inputs, DEFAULT_FUEL, &mut scratch).ok());
            }
        })
    });
    // Optimizer on, single execution: the worst case for the peepholes
    // (their payoff is shrunk re-execution, shared across a matrix by
    // `seal_matrix` — see the `seal_matrix` group for the amortized
    // build-side numbers).
    group.bench_function("seal_opt_and_execute", |b| {
        let mut scratch = ExecScratch::new();
        b.iter(|| {
            for (artifact, _, inputs) in &prebuilt {
                let sealed = artifact.seal().expect("seals");
                black_box(sealed.execute_into(inputs, DEFAULT_FUEL, &mut scratch).ok());
            }
        })
    });
    group.finish();
}

fn bench_difftest_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("difftest_matrix");
    group.sample_size(10);
    let corpus = corpus();

    for (label, engine) in
        [("sealed_engine", ExecEngine::Sealed), ("reference_engine", ExecEngine::Reference)]
    {
        group.bench_function(label, |b| {
            let tester = DiffTester::new().with_threads(1).with_engine(engine);
            b.iter(|| {
                for (program, inputs) in &corpus {
                    black_box(tester.run(program, inputs));
                }
            })
        });
    }

    // Artifact reuse across input sets: one program, many inputs, the
    // matrix specialized and sealed once.
    let (program, _) = &corpus[0];
    let input_sets: Vec<InputSet> =
        (0..16).map(|k| InputGenerator::new(0x1234 + k).generate(program)).collect();
    group.bench_function("run_many_16_inputs", |b| {
        let tester = DiffTester::new().with_threads(1);
        b.iter(|| black_box(tester.run_many(program, &input_sets)))
    });
    // The worker-loop shape: one reused MatrixScratch across the corpus
    // (what each orchestrator shard does per program).
    group.bench_function("scratch_reuse_across_programs", |b| {
        let tester = DiffTester::new().with_threads(1);
        let mut scratch = MatrixScratch::new();
        b.iter(|| {
            for (program, inputs) in &corpus {
                black_box(tester.run_with(program, inputs, &mut scratch));
            }
        })
    });
    group.finish();
}

fn bench_seal_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("seal_matrix");
    group.sample_size(20);
    let corpus = corpus();
    let frontends: Vec<Frontend> =
        corpus.iter().map(|(p, _)| Frontend::new(p).expect("varity programs validate")).collect();
    let matrix = CompilerConfig::full_matrix();

    // The PR 3 shape: every configuration seals independently (pass
    // pipeline + layout + flatten per configuration).
    group.bench_function("independent_18_seals", |b| {
        b.iter(|| {
            for frontend in &frontends {
                for &config in &matrix {
                    black_box(frontend.seal(config).ok());
                }
            }
        })
    });
    // Matrix-shared sealing: prefix-tree pass pipelines, one layout per
    // program, per-configuration peepholes, reused seal scratch.
    group.bench_function("seal_matrix_shared", |b| {
        let mut scratch = SealScratch::new();
        b.iter(|| {
            for frontend in &frontends {
                black_box(frontend.seal_matrix_with(&matrix, SealMode::Optimized, &mut scratch));
            }
        })
    });
    // A/B partner of `seal_matrix_shared`: the shared path minus the
    // optimizer isolates what the peepholes cost at seal time.
    group.bench_function("seal_matrix_shared_raw", |b| {
        let mut scratch = SealScratch::new();
        b.iter(|| {
            for frontend in &frontends {
                black_box(frontend.seal_matrix_with(&matrix, SealMode::Raw, &mut scratch));
            }
        })
    });
    group.finish();
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    let config =
        CampaignConfig::new(ApproachKind::Varity).with_budget(80).with_seed(1).with_threads(1);
    // `sharded_campaign_off` is the gated entry proving the disabled path
    // costs nothing measurable: telemetry off must track the pre-telemetry
    // sharded-campaign cost (every recording call is one `None` branch).
    // The metrics/trace series price what opting in actually buys.
    for (label, telemetry) in [
        ("sharded_campaign_off", TelemetrySpec::OFF),
        ("sharded_campaign_metrics", TelemetrySpec::METRICS),
        ("sharded_campaign_trace", TelemetrySpec::TRACE),
    ] {
        group.bench_function(label, |b| {
            let orchestrator = Orchestrator::new(config.clone())
                .shards(4)
                .workers(2)
                .cache(false)
                .telemetry(telemetry);
            b.iter(|| black_box(orchestrator.clone().run().unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_interp_vs_vm,
    bench_difftest_matrix,
    bench_seal_matrix,
    bench_telemetry_overhead
);
criterion_main!(benches);
