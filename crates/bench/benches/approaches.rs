//! End-to-end approach benchmarks: small campaigns for each approach
//! (Table 2's time-cost ordering at reduced scale: Varity's pipeline is the
//! cheapest per program; the LLM-based approaches add generation work and,
//! in reality, API latency which is accounted separately).

use criterion::{criterion_group, criterion_main, Criterion};
use llm4fp::{ApproachKind, Campaign, CampaignConfig};

fn bench_approaches(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaigns_10_programs");
    group.sample_size(10);
    for approach in ApproachKind::ALL {
        group.bench_function(approach.name(), |b| {
            b.iter(|| {
                Campaign::new(
                    CampaignConfig::new(approach).with_budget(10).with_seed(7).with_threads(2),
                )
                .run()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_approaches);
criterion_main!(benches);
