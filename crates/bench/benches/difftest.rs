//! Differential-testing benchmarks: full 18-configuration matrix per
//! program, sequential vs parallel.

use criterion::{criterion_group, criterion_main, Criterion};
use llm4fp_difftest::DiffTester;
use llm4fp_generator::{InputGenerator, LlmClient, PromptBuilder, SimulatedLlm};

fn bench_difftest(c: &mut Criterion) {
    let mut group = c.benchmark_group("difftest_matrix");
    group.sample_size(20);
    let mut llm = SimulatedLlm::new(21);
    let prompt = PromptBuilder::new(Default::default()).grammar_based();
    let program = llm4fp_fpir::parse_compute(&llm.generate(&prompt).source).unwrap();
    let inputs = InputGenerator::new(22).generate(&program);

    group.bench_function("full_matrix_sequential", |b| {
        let tester = DiffTester::new().with_threads(1);
        b.iter(|| tester.run(&program, &inputs))
    });
    group.bench_function("full_matrix_4_threads", |b| {
        let tester = DiffTester::new().with_threads(4);
        b.iter(|| tester.run(&program, &inputs))
    });
    group.finish();
}

criterion_group!(benches, bench_difftest);
criterion_main!(benches);
