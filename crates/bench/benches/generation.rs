//! Generation-stage benchmarks: the per-program cost of each generation
//! approach (the dominant term of Table 2's time-cost column, minus the
//! simulated API latency which is reported separately).

use criterion::{criterion_group, criterion_main, Criterion};
use llm4fp_generator::{InputGenerator, LlmClient, PromptBuilder, SimulatedLlm, VarityGenerator};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation");
    group.sample_size(30);

    group.bench_function("varity_program", |b| {
        let mut gen = VarityGenerator::new(1);
        b.iter(|| gen.generate())
    });

    group.bench_function("simulated_llm_grammar_based", |b| {
        let mut llm = SimulatedLlm::new(2);
        let prompt = PromptBuilder::new(Default::default()).grammar_based();
        b.iter(|| llm.generate(&prompt))
    });

    group.bench_function("simulated_llm_feedback_mutation", |b| {
        let mut llm = SimulatedLlm::new(3);
        let seed = llm4fp_fpir::to_compute_source(&VarityGenerator::new(9).generate());
        let prompt = PromptBuilder::new(Default::default()).feedback_mutation(&seed);
        b.iter(|| llm.generate(&prompt))
    });

    group.bench_function("input_set", |b| {
        let program = VarityGenerator::new(4).generate();
        let mut inputs = InputGenerator::new(5);
        b.iter(|| inputs.generate(&program))
    });

    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
