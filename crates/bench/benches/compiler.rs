//! Virtual-compiler benchmarks: lowering + pass pipeline and execution cost
//! per configuration, plus an ablation of the strict vs fast-math pipelines.

use criterion::{criterion_group, criterion_main, Criterion};
use llm4fp_compiler::{compile, CompilerConfig, CompilerId, OptLevel};
use llm4fp_generator::{InputGenerator, LlmClient, PromptBuilder, SimulatedLlm};

fn setup_program() -> (llm4fp_fpir::Program, llm4fp_fpir::InputSet) {
    let mut llm = SimulatedLlm::new(11);
    let prompt = PromptBuilder::new(Default::default()).grammar_based();
    let program = llm4fp_fpir::parse_compute(&llm.generate(&prompt).source).unwrap();
    let inputs = InputGenerator::new(12).generate(&program);
    (program, inputs)
}

fn bench_compiler(c: &mut Criterion) {
    let mut group = c.benchmark_group("virtual_compiler");
    group.sample_size(30);
    let (program, inputs) = setup_program();

    for (label, config) in [
        ("compile_gcc_O0_nofma", CompilerConfig::new(CompilerId::Gcc, OptLevel::O0Nofma)),
        ("compile_gcc_O3", CompilerConfig::new(CompilerId::Gcc, OptLevel::O3)),
        ("compile_nvcc_O3_fastmath", CompilerConfig::new(CompilerId::Nvcc, OptLevel::O3Fastmath)),
    ] {
        group.bench_function(label, |b| b.iter(|| compile(&program, config).unwrap()));
    }

    for (label, config) in [
        ("execute_gcc_O0_nofma", CompilerConfig::new(CompilerId::Gcc, OptLevel::O0Nofma)),
        ("execute_nvcc_O3_fastmath", CompilerConfig::new(CompilerId::Nvcc, OptLevel::O3Fastmath)),
    ] {
        let artifact = compile(&program, config).unwrap();
        group.bench_function(label, |b| b.iter(|| artifact.execute(&inputs).unwrap()));
    }

    group.finish();
}

criterion_group!(benches, bench_compiler);
criterion_main!(benches);
