//! Diversity-metric benchmarks: one CodeBLEU pair, corpus-level averaging
//! and clone detection.

use criterion::{criterion_group, criterion_main, Criterion};
use llm4fp_generator::VarityGenerator;
use llm4fp_metrics::{average_pairwise_codebleu, codebleu, detect_clones, CodeBleuWeights};

fn corpus(n: usize) -> Vec<String> {
    let mut gen = VarityGenerator::new(31);
    (0..n).map(|_| llm4fp_fpir::to_compute_source(&gen.generate())).collect()
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics");
    group.sample_size(20);
    let sources = corpus(40);

    group.bench_function("codebleu_single_pair", |b| {
        b.iter(|| codebleu(&sources[0], &sources[1], CodeBleuWeights::default()))
    });
    group.bench_function("pairwise_codebleu_40_programs", |b| {
        b.iter(|| average_pairwise_codebleu(&sources, 4, usize::MAX))
    });
    group.bench_function("clone_detection_40_programs", |b| b.iter(|| detect_clones(&sources)));
    group.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
