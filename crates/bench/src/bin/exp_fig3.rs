//! Regenerates Figure 3: inconsistency counts per value-class kind,
//! Varity vs LLM4FP.

use llm4fp::report::figure3;
use llm4fp_bench::{run_varity_and_llm4fp, ExpOptions};

fn main() {
    let opts = ExpOptions::from_env();
    let (varity, llm4fp) = run_varity_and_llm4fp(&opts);
    println!(
        "\nFigure 3: Inconsistency counts of different kinds ({} programs/approach)\n",
        opts.programs
    );
    print!("{}", figure3(&varity, &llm4fp));
}
