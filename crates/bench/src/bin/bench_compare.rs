//! Diff two benchmark baseline files (flat `{"group/name": seconds}`
//! JSON, as written by `cargo bench ... -- --save-baseline <path>`) and
//! fail on regressions — the CI `bench-gate` job runs this against the
//! previous run's uploaded artifact.
//!
//! Usage:
//!
//! ```text
//! bench_compare <baseline.json> <current.json>
//!               [--threshold 0.10]   # max allowed mean-time growth
//!               [--filter substring] # only compare matching benchmarks
//! ```
//!
//! Benchmarks present in only one file are reported but never fail the
//! gate (the suite is allowed to grow and shrink); a shared benchmark
//! whose current mean exceeds `baseline * (1 + threshold)` does. Exit
//! codes: 0 pass, 1 regression, 2 usage or parse error.

use std::process::exit;

struct Options {
    baseline: String,
    current: String,
    threshold: f64,
    filter: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_compare <baseline.json> <current.json> \
         [--threshold FRACTION] [--filter SUBSTRING]"
    );
    exit(2)
}

fn parse_args() -> Options {
    let mut positional: Vec<String> = Vec::new();
    let mut threshold = 0.10;
    let mut filter = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                let v = args.next().unwrap_or_else(|| usage());
                threshold = match v.parse::<f64>() {
                    Ok(t) if t >= 0.0 => t,
                    _ => {
                        eprintln!("bench_compare: invalid --threshold {v}");
                        exit(2)
                    }
                };
            }
            "--filter" => filter = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => {
                eprintln!("bench_compare: unknown flag {other}");
                exit(2)
            }
            other => positional.push(other.to_string()),
        }
    }
    if positional.len() != 2 {
        usage();
    }
    let mut positional = positional.into_iter();
    Options {
        baseline: positional.next().expect("two positionals"),
        current: positional.next().expect("two positionals"),
        threshold,
        filter,
    }
}

/// Load a baseline file as (benchmark label, mean seconds) pairs.
fn load(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_compare: cannot read {path}: {e}");
        exit(2)
    });
    let value = serde_json::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_compare: {path} is not valid JSON: {e}");
        exit(2)
    });
    let Some(obj) = value.as_obj() else {
        eprintln!("bench_compare: {path}: expected a flat JSON object");
        exit(2)
    };
    obj.iter()
        .map(|(label, mean)| match mean {
            serde_json::Value::Num(n) => (label.clone(), n.as_f64()),
            _ => {
                eprintln!("bench_compare: {path}: benchmark {label} has a non-numeric mean");
                exit(2)
            }
        })
        .collect()
}

fn main() {
    let opts = parse_args();
    let matches = |label: &str| match opts.filter.as_deref() {
        None => true,
        Some(filter) => label.contains(filter),
    };
    let baseline = load(&opts.baseline);
    let current = load(&opts.current);

    let mut regressions = 0usize;
    let mut compared = 0usize;
    println!(
        "comparing {} (current) against {} (baseline), threshold +{:.0}%",
        opts.current,
        opts.baseline,
        100.0 * opts.threshold
    );
    for (label, new_mean) in &current {
        if !matches(label) {
            continue;
        }
        let Some((_, old_mean)) = baseline.iter().find(|(l, _)| l == label) else {
            println!("  NEW      {label}: {new_mean:.6}s (no baseline entry)");
            continue;
        };
        compared += 1;
        let ratio = if *old_mean > 0.0 { new_mean / old_mean } else { f64::INFINITY };
        let verdict = if ratio > 1.0 + opts.threshold {
            regressions += 1;
            "REGRESSED"
        } else if ratio < 1.0 - opts.threshold {
            "improved"
        } else {
            "ok"
        };
        println!(
            "  {verdict:<9} {label}: {old_mean:.6}s -> {new_mean:.6}s ({:+.1}%)",
            100.0 * (ratio - 1.0)
        );
    }
    for (label, _) in &baseline {
        if matches(label) && !current.iter().any(|(l, _)| l == label) {
            println!("  DROPPED  {label} (present only in baseline)");
        }
    }

    if compared == 0 {
        println!("no shared benchmarks to compare — gate passes vacuously");
    }
    if regressions > 0 {
        eprintln!(
            "bench_compare: {regressions} of {compared} shared benchmark(s) regressed \
             beyond +{:.0}%",
            100.0 * opts.threshold
        );
        exit(1);
    }
    println!("bench_compare: {compared} shared benchmark(s) within threshold");
}
