//! Regenerates Table 2: inconsistency rate, inconsistency count, time cost
//! and CodeBLEU diversity for Varity, Direct-Prompt, Grammar-Guided and
//! LLM4FP.

use llm4fp::report::{table2, Table2Row};
use llm4fp_bench::{run_all_approaches, ExpOptions};
use llm4fp_metrics::CloneType;

fn main() {
    let opts = ExpOptions::from_env();
    let results = run_all_approaches(&opts);
    let mut rows = Vec::new();
    for result in &results {
        let diversity = result.measure_diversity();
        println!(
            "[{}] generation failures: {}, programs with inconsistencies: {}, clones (T1/T2/T2c): {}/{}/{}",
            result.config.approach.name(),
            result.generation_failures,
            result.aggregates.triggering_programs,
            diversity.clone_pairs(CloneType::Type1),
            diversity.clone_pairs(CloneType::Type2),
            diversity.clone_pairs(CloneType::Type2c),
        );
        rows.push(Table2Row::from_parts(result, &diversity));
    }
    println!("\nTable 2: Comparing LLM4FP with baselines ({} programs/approach)\n", opts.programs);
    print!("{}", table2(&rows));
}
