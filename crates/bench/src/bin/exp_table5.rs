//! Regenerates Table 5: inconsistency rates of every optimization level
//! against O0_nofma within each compiler, Varity vs LLM4FP.

use llm4fp::report::table5;
use llm4fp_bench::{run_varity_and_llm4fp, ExpOptions};

fn main() {
    let opts = ExpOptions::from_env();
    let (varity, llm4fp) = run_varity_and_llm4fp(&opts);
    println!(
        "\nTable 5: Inconsistency rates vs O0_nofma within each compiler ({} programs/approach)\n",
        opts.programs
    );
    print!("{}", table5(&varity, &llm4fp));
}
