//! Summarize a persisted run's telemetry flight recorders.
//!
//! Reads `summary.json`, `metrics.json` and (when present) `trace.jsonl`
//! from a run directory written with telemetry enabled (`--run-dir` plus
//! the default metrics mode or `--trace` on any experiment binary) and
//! prints the run's health at a glance: the merged counters, seal-refusal
//! and interpreter-fallback rates, the external-backend error taxonomy,
//! per-shard span imbalance and the top spans by total time.
//!
//! Usage:
//!
//! ```text
//! trace_report <run_dir> [--top N]
//! ```
//!
//! Exit codes: 0 ok, 2 usage error or unreadable run directory.

use std::collections::BTreeMap;
use std::process::exit;

use llm4fp_orchestrator::{RunDir, RunStats};
use llm4fp_telemetry::{keys, MetricsReport};

fn usage() -> ! {
    eprintln!("usage: trace_report <run_dir> [--top N]");
    exit(2)
}

fn main() {
    let mut root = None;
    let mut top = 10usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--top" => {
                let v = args.next().unwrap_or_else(|| usage());
                top = v.parse().unwrap_or_else(|_| usage());
            }
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => usage(),
            other => {
                if root.replace(other.to_string()).is_some() {
                    usage();
                }
            }
        }
    }
    let Some(root) = root else { usage() };

    let manifest = RunDir::read_manifest(&root).unwrap_or_else(|e| {
        eprintln!("trace_report: cannot read {root}/manifest.json: {e}");
        exit(2)
    });
    let dir = RunDir::open(&root, &manifest).unwrap_or_else(|e| {
        eprintln!("trace_report: cannot open run dir {root}: {e}");
        exit(2)
    });

    println!("run directory: {root}");
    println!(
        "plan: {} program(s), {} shard(s), {} epoch(s), approach {}",
        manifest.config.programs,
        manifest.shards,
        manifest.epochs,
        manifest.config.approach.name()
    );

    match dir.load_summary() {
        Some(stats) => print_summary(&stats),
        None => println!("summary.json: absent (run incomplete?)"),
    }
    match dir.load_metrics() {
        Some(report) => print_metrics(&report, top),
        None => println!("metrics.json: absent (telemetry off, or a partially reused run)"),
    }
    match dir.load_trace_lines() {
        Some(lines) => print_trace(&lines, top),
        None => println!("trace.jsonl: absent (run without --trace)"),
    }
}

fn print_summary(stats: &RunStats) {
    println!("\n== summary.json ==");
    println!("{}", stats.summary_line());
    for report in &stats.failures {
        println!(
            "quarantined shard {}: {} dispatch attempt(s); last error: {}",
            report.shard, report.attempts, report.last_error
        );
    }
    if let Some(t) = &stats.telemetry {
        println!(
            "telemetry: {} counter key(s), {} trace event(s), {} seal refusal(s), \
             {} interpreter fallback(s), {} discrepancies",
            t.counter_keys,
            t.trace_events,
            t.seal_refusals,
            t.interpreter_fallbacks,
            t.discrepancies
        );
    }
}

fn rate(part: u64, whole: u64) -> String {
    if whole == 0 {
        "n/a".to_string()
    } else {
        format!("{:.2}%", 100.0 * part as f64 / whole as f64)
    }
}

fn print_metrics(report: &MetricsReport, top: usize) {
    println!("\n== metrics.json ==");
    let programs = report.get(keys::PROGRAMS);
    let refusals = report.get(keys::SEAL_REFUSALS);
    let fallbacks = report.get(keys::INTERPRETER_FALLBACKS);
    println!("programs: {programs}, comparisons: {}", report.get(keys::COMPARISONS));
    println!(
        "seal refusals: {refusals} ({} of programs), interpreter fallbacks: {fallbacks}",
        rate(refusals, programs)
    );
    println!(
        "discrepancies: {} across {} config pair(s)",
        report.get(keys::DISCREPANCIES),
        report.counters.keys().filter(|k| k.starts_with(keys::DISCREPANCY_PAIR_PREFIX)).count()
    );
    let spawns = report.get(keys::EXTCC_COMPILES) + report.get(keys::EXTCC_RUNS);
    if spawns > 0 {
        let errors = report.prefix_sum(keys::EXTCC_ERR_PREFIX);
        let timeouts = report.prefix_sum("extcc.err.timeout-");
        println!(
            "extcc: {} compile(s), {} run(s), {} error(s) ({} timeout rate)",
            report.get(keys::EXTCC_COMPILES),
            report.get(keys::EXTCC_RUNS),
            errors,
            rate(timeouts, spawns)
        );
    }
    println!("top counters:");
    let mut counters: Vec<(&String, &u64)> = report.counters.iter().collect();
    counters.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
    for (key, value) in counters.into_iter().take(top) {
        println!("  {value:>12}  {key}");
    }
}

/// One span name's aggregate across the trace.
#[derive(Default)]
struct SpanAgg {
    count: u64,
    total_micros: u64,
}

fn print_trace(lines: &[String], top: usize) {
    let mut by_name: BTreeMap<String, SpanAgg> = BTreeMap::new();
    let mut shard_micros: BTreeMap<u64, u64> = BTreeMap::new();
    let mut events = 0u64;
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(value) = serde_json::parse(line) else { continue };
        let Some(obj) = value.as_obj() else { continue };
        let field = |name: &str| -> Option<u64> {
            match obj.get(name) {
                Some(serde_json::Value::Num(n)) => Some(n.as_f64() as u64),
                _ => None,
            }
        };
        let name = match obj.get("name") {
            Some(serde_json::Value::Str(s)) => s.clone(),
            _ => continue,
        };
        let (Some(dur), Some(tid)) = (field("dur"), field("tid")) else { continue };
        events += 1;
        let agg = by_name.entry(name.clone()).or_default();
        agg.count += 1;
        agg.total_micros += dur;
        if name == keys::SPAN_SHARD_RUN {
            *shard_micros.entry(tid).or_insert(0) += dur;
        }
    }

    println!("\n== trace.jsonl ==");
    println!("{events} span event(s)");
    let mut spans: Vec<(&String, &SpanAgg)> = by_name.iter().collect();
    spans.sort_by(|a, b| b.1.total_micros.cmp(&a.1.total_micros).then_with(|| a.0.cmp(b.0)));
    println!("top spans by total time:");
    for (name, agg) in spans.into_iter().take(top) {
        println!("  {:>10.3}s  {:>8} call(s)  {name}", agg.total_micros as f64 / 1e6, agg.count);
    }
    if shard_micros.len() > 1 {
        let max = shard_micros.values().copied().max().unwrap_or(0);
        let sum: u64 = shard_micros.values().sum();
        let mean = sum / shard_micros.len() as u64;
        println!(
            "shard imbalance: slowest lane {:.3}s vs mean {:.3}s ({:.2}x) across {} lane(s)",
            max as f64 / 1e6,
            mean as f64 / 1e6,
            if mean == 0 { 1.0 } else { max as f64 / mean as f64 },
            shard_micros.len()
        );
    }
}
