//! Runs every experiment (Tables 1-5 and Figure 3) from a single set of
//! campaigns and prints a complete report, suitable for pasting into
//! EXPERIMENTS.md.

use llm4fp::report::{figure3, table1, table2, table3, table4, table5, Table2Row};
use llm4fp::ApproachKind;
use llm4fp_bench::{run_all_approaches, ExpOptions};

fn main() {
    let opts = ExpOptions::from_env();
    let results = run_all_approaches(&opts);
    println!("# LLM4FP reproduction — full experiment run");
    println!("\nBudget: {} programs per approach, seed {}\n", opts.programs, opts.seed);

    println!("## Table 1\n\n{}", table1());

    let mut rows = Vec::new();
    for result in &results {
        let diversity = result.measure_diversity();
        rows.push(Table2Row::from_parts(result, &diversity));
    }
    println!("## Table 2\n\n{}", table2(&rows));

    let varity = &results[0];
    let llm4fp = results
        .iter()
        .find(|r| r.config.approach == ApproachKind::Llm4Fp)
        .expect("LLM4FP campaign present");
    println!("## Figure 3\n\n{}", figure3(varity, llm4fp));
    println!("## Table 3\n\n{}", table3(llm4fp));
    println!("## Table 4\n\n{}", table4(varity, llm4fp));
    println!("## Table 5\n\n{}", table5(varity, llm4fp));
}
