//! Regenerates Table 1: the optimization levels and compiler flags of the
//! evaluation matrix (a static configuration check).

fn main() {
    println!("Table 1: Optimization Levels and Compiler Flags\n");
    print!("{}", llm4fp::report::table1());
}
