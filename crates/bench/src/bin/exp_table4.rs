//! Regenerates Table 4: inconsistency rates and digit differences per
//! compiler pair and optimization level, Varity vs LLM4FP.

use llm4fp::report::table4;
use llm4fp_bench::{run_varity_and_llm4fp, ExpOptions};

fn main() {
    let opts = ExpOptions::from_env();
    let (varity, llm4fp) = run_varity_and_llm4fp(&opts);
    println!("\nTable 4: Inconsistency rates and digit differences per compiler pair ({} programs/approach)\n", opts.programs);
    print!("{}", table4(&varity, &llm4fp));
}
