//! Regenerates Table 3: LLM4FP inconsistency kinds across optimization
//! levels.

use llm4fp::report::table3;
use llm4fp::ApproachKind;
use llm4fp_bench::{run_campaign, ExpOptions};

fn main() {
    let opts = ExpOptions::from_env();
    let llm4fp = run_campaign(&opts, ApproachKind::Llm4Fp);
    println!(
        "\nTable 3: Inconsistency counts for LLM4FP across optimization levels ({} programs)\n",
        opts.programs
    );
    print!("{}", table3(&llm4fp));
}
