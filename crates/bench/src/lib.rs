//! # llm4fp-bench
//!
//! Shared harness for the experiment binaries (`exp_table1` … `exp_all`)
//! that regenerate every table and figure of the paper, and for the
//! Criterion benchmarks that measure the cost of each pipeline stage.
//!
//! Campaigns run through the `llm4fp-orchestrator` engine: sharded over a
//! worker pool with the differential-testing result cache enabled. With
//! the default `--shards 1` the results are bit-identical to the
//! sequential driver; higher shard counts trade the single global
//! feedback set for wall-clock scalability (results stay deterministic
//! per `(seed, shards)`).
//!
//! Every experiment binary accepts:
//!
//! * `--programs N` — program budget per approach (default 150, chosen so a
//!   full experiment finishes in well under a minute on a laptop);
//! * `--paper` — use the paper's budget of 1,000 programs per approach;
//! * `--seed S` — base RNG seed (default 42);
//! * `--threads T` — worker threads for the differential-testing matrix;
//! * `--shards K` — shards per campaign (default 1: sequential-equivalent);
//! * `--epochs E` — cross-shard feedback-exchange epochs (default 4; at
//!   `--shards 1` exchange is a structural no-op, and `--epochs 1`
//!   disables it so shards feed only on their own findings);
//! * `--workers W` — shard worker threads (default: available parallelism).

#![deny(unsafe_code)]

use llm4fp::{ApproachKind, CampaignConfig, CampaignResult};
use llm4fp_orchestrator::{
    default_workers, OrchestratedResult, Orchestrator, OrchestratorOptions, Scheduler,
};

/// Command-line options shared by all experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpOptions {
    pub programs: usize,
    pub seed: u64,
    pub threads: usize,
    pub shards: usize,
    pub epochs: usize,
    pub workers: usize,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            programs: 150,
            seed: 42,
            threads: 4,
            shards: 1,
            epochs: 4,
            workers: default_workers(),
        }
    }
}

impl ExpOptions {
    /// Parse options from an iterator of CLI arguments (excluding argv\[0\]).
    /// Unknown arguments are rejected with an error message.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut opts = ExpOptions::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--paper" => opts.programs = 1_000,
                "--programs" => {
                    let v = iter.next().ok_or("--programs needs a value")?;
                    opts.programs = v.parse().map_err(|_| format!("invalid --programs {v}"))?;
                }
                "--seed" => {
                    let v = iter.next().ok_or("--seed needs a value")?;
                    opts.seed = v.parse().map_err(|_| format!("invalid --seed {v}"))?;
                }
                "--threads" => {
                    let v = iter.next().ok_or("--threads needs a value")?;
                    opts.threads = v.parse().map_err(|_| format!("invalid --threads {v}"))?;
                }
                "--shards" => {
                    let v = iter.next().ok_or("--shards needs a value")?;
                    opts.shards = v.parse().map_err(|_| format!("invalid --shards {v}"))?;
                }
                "--epochs" => {
                    let v = iter.next().ok_or("--epochs needs a value")?;
                    opts.epochs = v.parse().map_err(|_| format!("invalid --epochs {v}"))?;
                }
                "--workers" => {
                    let v = iter.next().ok_or("--workers needs a value")?;
                    opts.workers = v.parse().map_err(|_| format!("invalid --workers {v}"))?;
                }
                "--help" | "-h" => {
                    return Err("usage: [--programs N] [--paper] [--seed S] [--threads T] \
                         [--shards K] [--epochs E] [--workers W]"
                        .into())
                }
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        if opts.programs == 0 {
            return Err("--programs must be positive".into());
        }
        if opts.shards == 0 {
            return Err("--shards must be positive".into());
        }
        if opts.epochs == 0 {
            return Err("--epochs must be positive".into());
        }
        Ok(opts)
    }

    /// Parse from the process environment.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(opts) => opts,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Campaign configuration for one approach under these options.
    pub fn campaign_config(&self, approach: ApproachKind) -> CampaignConfig {
        CampaignConfig::new(approach)
            .with_budget(self.programs)
            .with_seed(self.seed)
            .with_threads(self.threads)
    }

    /// Orchestrator options for these CLI options.
    pub fn orchestrator_options(&self) -> OrchestratorOptions {
        OrchestratorOptions {
            workers: self.workers,
            cache: true,
            epochs: self.epochs,
            run_dir: None,
        }
    }
}

fn log_stats(approach: ApproachKind, orchestrated: &OrchestratedResult) {
    eprintln!("[llm4fp-bench] {}: {}", approach.name(), orchestrated.stats.summary_line());
}

/// Run one campaign for the given approach through the orchestrator.
pub fn run_campaign(opts: ExpOptions, approach: ApproachKind) -> CampaignResult {
    eprintln!(
        "[llm4fp-bench] running {} campaign: {} programs, seed {}, {} shard(s), {} epoch(s)",
        approach.name(),
        opts.programs,
        opts.seed,
        opts.shards,
        opts.epochs
    );
    let orchestrated = Orchestrator::new(opts.orchestrator_options())
        .run(&opts.campaign_config(approach), opts.shards)
        .expect("in-memory orchestrated run cannot fail");
    log_stats(approach, &orchestrated);
    orchestrated.result
}

/// Run the Varity and LLM4FP campaigns (the pair most tables compare),
/// scheduled concurrently over one worker pool.
pub fn run_varity_and_llm4fp(opts: ExpOptions) -> (CampaignResult, CampaignResult) {
    let mut results = run_suite(opts, &[ApproachKind::Varity, ApproachKind::Llm4Fp]).into_iter();
    (results.next().expect("varity result"), results.next().expect("llm4fp result"))
}

/// Run all four approaches in Table 2 order, scheduled concurrently over
/// one worker pool.
pub fn run_all_approaches(opts: ExpOptions) -> Vec<CampaignResult> {
    run_suite(opts, &ApproachKind::ALL)
}

fn run_suite(opts: ExpOptions, approaches: &[ApproachKind]) -> Vec<CampaignResult> {
    eprintln!(
        "[llm4fp-bench] scheduling {} campaigns: {} programs each, seed {}, {} shard(s), \
         {} epoch(s), {} workers",
        approaches.len(),
        opts.programs,
        opts.seed,
        opts.shards,
        opts.epochs,
        opts.workers
    );
    let configs: Vec<CampaignConfig> =
        approaches.iter().map(|&a| opts.campaign_config(a)).collect();
    let suite = Scheduler::new(opts.orchestrator_options()).run_suite(&configs, opts.shards);
    approaches
        .iter()
        .zip(suite)
        .map(|(&approach, orchestrated)| {
            log_stats(approach, &orchestrated);
            orchestrated.result
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_parsing_handles_all_flags() {
        let opts = ExpOptions::parse(
            [
                "--programs",
                "25",
                "--seed",
                "7",
                "--threads",
                "2",
                "--shards",
                "4",
                "--epochs",
                "2",
                "--workers",
                "3",
            ]
            .map(String::from),
        )
        .unwrap();
        assert_eq!(
            opts,
            ExpOptions { programs: 25, seed: 7, threads: 2, shards: 4, epochs: 2, workers: 3 }
        );
        let paper = ExpOptions::parse(["--paper".to_string()]).unwrap();
        assert_eq!(paper.programs, 1_000);
        assert!(ExpOptions::parse(["--programs".to_string(), "zero".to_string()]).is_err());
        assert!(ExpOptions::parse(["--bogus".to_string()]).is_err());
        assert!(ExpOptions::parse(["--programs".to_string(), "0".to_string()]).is_err());
        assert!(ExpOptions::parse(["--shards".to_string(), "0".to_string()]).is_err());
        assert!(ExpOptions::parse(["--epochs".to_string(), "0".to_string()]).is_err());
        assert_eq!(ExpOptions::parse(std::iter::empty::<String>()).unwrap(), ExpOptions::default());
    }

    #[test]
    fn campaign_config_reflects_options() {
        let opts =
            ExpOptions { programs: 9, seed: 123, threads: 3, shards: 2, epochs: 1, workers: 2 };
        let cfg = opts.campaign_config(ApproachKind::GrammarGuided);
        assert_eq!(cfg.programs, 9);
        assert_eq!(cfg.seed, 123);
        assert_eq!(cfg.threads, 3);
        assert_eq!(cfg.approach, ApproachKind::GrammarGuided);
    }

    #[test]
    fn tiny_experiment_pipeline_end_to_end() {
        let opts =
            ExpOptions { programs: 6, seed: 1, threads: 1, shards: 2, epochs: 2, workers: 2 };
        let results = run_all_approaches(opts);
        assert_eq!(results.len(), 4);
        for r in &results {
            assert_eq!(r.aggregates.programs, 6);
        }
    }

    #[test]
    fn single_shard_run_campaign_matches_sequential() {
        let opts =
            ExpOptions { programs: 10, seed: 2, threads: 1, shards: 1, epochs: 4, workers: 4 };
        let orchestrated = run_campaign(opts, ApproachKind::Varity);
        let sequential = llm4fp::Campaign::new(opts.campaign_config(ApproachKind::Varity)).run();
        assert_eq!(orchestrated.records, sequential.records);
        assert_eq!(orchestrated.aggregates, sequential.aggregates);
    }
}
