//! # llm4fp-bench
//!
//! Shared harness for the experiment binaries (`exp_table1` … `exp_all`)
//! that regenerate every table and figure of the paper, and for the
//! Criterion benchmarks that measure the cost of each pipeline stage.
//!
//! Every experiment binary accepts:
//!
//! * `--programs N` — program budget per approach (default 150, chosen so a
//!   full experiment finishes in well under a minute on a laptop);
//! * `--paper` — use the paper's budget of 1,000 programs per approach;
//! * `--seed S` — base RNG seed (default 42);
//! * `--threads T` — worker threads for the differential-testing matrix.

#![deny(unsafe_code)]

use llm4fp::{ApproachKind, Campaign, CampaignConfig, CampaignResult};

/// Command-line options shared by all experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpOptions {
    pub programs: usize,
    pub seed: u64,
    pub threads: usize,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions { programs: 150, seed: 42, threads: 4 }
    }
}

impl ExpOptions {
    /// Parse options from an iterator of CLI arguments (excluding argv[0]).
    /// Unknown arguments are rejected with an error message.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut opts = ExpOptions::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--paper" => opts.programs = 1_000,
                "--programs" => {
                    let v = iter.next().ok_or("--programs needs a value")?;
                    opts.programs = v.parse().map_err(|_| format!("invalid --programs {v}"))?;
                }
                "--seed" => {
                    let v = iter.next().ok_or("--seed needs a value")?;
                    opts.seed = v.parse().map_err(|_| format!("invalid --seed {v}"))?;
                }
                "--threads" => {
                    let v = iter.next().ok_or("--threads needs a value")?;
                    opts.threads = v.parse().map_err(|_| format!("invalid --threads {v}"))?;
                }
                "--help" | "-h" => {
                    return Err("usage: [--programs N] [--paper] [--seed S] [--threads T]".into())
                }
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        if opts.programs == 0 {
            return Err("--programs must be positive".into());
        }
        Ok(opts)
    }

    /// Parse from the process environment.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(opts) => opts,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Campaign configuration for one approach under these options.
    pub fn campaign_config(&self, approach: ApproachKind) -> CampaignConfig {
        CampaignConfig::new(approach)
            .with_budget(self.programs)
            .with_seed(self.seed)
            .with_threads(self.threads)
    }
}

/// Run one campaign for the given approach.
pub fn run_campaign(opts: ExpOptions, approach: ApproachKind) -> CampaignResult {
    eprintln!(
        "[llm4fp-bench] running {} campaign: {} programs, seed {}",
        approach.name(),
        opts.programs,
        opts.seed
    );
    Campaign::new(opts.campaign_config(approach)).run()
}

/// Run the Varity and LLM4FP campaigns (the pair most tables compare).
pub fn run_varity_and_llm4fp(opts: ExpOptions) -> (CampaignResult, CampaignResult) {
    (run_campaign(opts, ApproachKind::Varity), run_campaign(opts, ApproachKind::Llm4Fp))
}

/// Run all four approaches in Table 2 order.
pub fn run_all_approaches(opts: ExpOptions) -> Vec<CampaignResult> {
    ApproachKind::ALL.iter().map(|&a| run_campaign(opts, a)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_parsing_handles_all_flags() {
        let opts = ExpOptions::parse(
            ["--programs", "25", "--seed", "7", "--threads", "2"].map(String::from),
        )
        .unwrap();
        assert_eq!(opts, ExpOptions { programs: 25, seed: 7, threads: 2 });
        let paper = ExpOptions::parse(["--paper".to_string()]).unwrap();
        assert_eq!(paper.programs, 1_000);
        assert!(ExpOptions::parse(["--programs".to_string(), "zero".to_string()]).is_err());
        assert!(ExpOptions::parse(["--bogus".to_string()]).is_err());
        assert!(ExpOptions::parse(["--programs".to_string(), "0".to_string()]).is_err());
        assert_eq!(ExpOptions::parse(std::iter::empty::<String>()).unwrap(), ExpOptions::default());
    }

    #[test]
    fn campaign_config_reflects_options() {
        let opts = ExpOptions { programs: 9, seed: 123, threads: 3 };
        let cfg = opts.campaign_config(ApproachKind::GrammarGuided);
        assert_eq!(cfg.programs, 9);
        assert_eq!(cfg.seed, 123);
        assert_eq!(cfg.threads, 3);
        assert_eq!(cfg.approach, ApproachKind::GrammarGuided);
    }

    #[test]
    fn tiny_experiment_pipeline_end_to_end() {
        let opts = ExpOptions { programs: 6, seed: 1, threads: 2 };
        let results = run_all_approaches(opts);
        assert_eq!(results.len(), 4);
        for r in &results {
            assert_eq!(r.aggregates.programs, 6);
        }
    }
}
