//! # llm4fp-bench
//!
//! Shared harness for the experiment binaries (`exp_table1` … `exp_all`)
//! that regenerate every table and figure of the paper, and for the
//! Criterion benchmarks that measure the cost of each pipeline stage.
//!
//! Campaigns run through the `llm4fp-orchestrator` engine: sharded over a
//! worker pool with the differential-testing result cache enabled. With
//! the default `--shards 1` the results are bit-identical to the
//! sequential driver; higher shard counts trade the single global
//! feedback set for wall-clock scalability (results stay deterministic
//! per `(seed, shards)`).
//!
//! Every experiment binary accepts:
//!
//! * `--programs N` — program budget per approach (default 150, chosen so a
//!   full experiment finishes in well under a minute on a laptop);
//! * `--paper` — use the paper's budget of 1,000 programs per approach;
//! * `--seed S` — base RNG seed (default 42);
//! * `--threads T` — worker threads for the differential-testing matrix;
//! * `--shards K` — shards per campaign (default 1: sequential-equivalent);
//! * `--epochs E` — cross-shard feedback-exchange epochs (default 4; at
//!   `--shards 1` exchange is a structural no-op, and `--epochs 1`
//!   disables it so shards feed only on their own findings);
//! * `--workers W` — shard worker threads (default: available parallelism);
//! * `--backend virtual|extcc` — execution backend (default `virtual`;
//!   `extcc` detects host gcc/clang and drives the real toolchain,
//!   restricting the matrix to the detected compilers — the binary exits
//!   with a clear message when fewer than two are installed);
//! * `--process-slots P` — bound on concurrently process-spawning shards
//!   for `--backend extcc` (default: available parallelism);
//! * `--no-seal-opt` — disable the seal-time bytecode peephole optimizer
//!   for A/B measurements (results are bit-identical; only seal cost and
//!   executed instruction counts change);
//! * `--run-dir PATH` — persist the run (and its telemetry flight
//!   recorders) into a resumable run directory (single-campaign binaries;
//!   suite binaries schedule in memory);
//! * `--executor in-process|process-pool|remote` — the shard transport
//!   (default `in-process`: a thread pool in this process;
//!   `process-pool` farms shard segments to out-of-process
//!   `llm4fp-worker` daemons over pipes; `remote` serves the same
//!   workers over a TCP socket with leases, heartbeats and
//!   reconnect-and-resume — results are bit-identical across all
//!   three);
//! * `--worker-procs N` — worker daemon count for `--executor
//!   process-pool` and `--executor remote` (default: available
//!   parallelism);
//! * `--listen ADDR` (alias `--workers-addr ADDR`) — bind the
//!   `--executor remote` coordinator to this address (default
//!   `127.0.0.1:0`, an ephemeral loopback port for self-spawned
//!   workers; use e.g. `0.0.0.0:7070` for workers dialing in from
//!   elsewhere);
//! * `--no-spawn-workers` — don't self-spawn loopback workers for
//!   `--executor remote`; the run waits for external
//!   `llm4fp-worker --connect` daemons to dial `--listen`;
//! * `--max-frame-len BYTES` — cap on one wire frame's payload for the
//!   out-of-process transports (default 256 MiB; `0` is rejected);
//! * `--trace` — record span events; with `--run-dir` a Chrome
//!   `trace_event`-compatible `trace.jsonl` is written (implies metrics);
//! * `--no-metrics` — disable telemetry counters/histograms entirely
//!   (they are on by default for experiment runs; campaign results are
//!   bit-identical either way);
//! * `--max-dispatch-attempts N` — per-shard-job dispatch budget for
//!   `--executor process-pool` (default 3; crashes and timeouts consume
//!   attempts, results stay bit-identical across redispatch);
//! * `--shard-timeout-ms N` — straggler/stall timeout per shard job
//!   (`--executor process-pool`'s kill deadline; `--executor remote`'s
//!   dispatch lease — the remote analogue of the same bound);
//! * `--on-shard-failure abort|quarantine` — what happens when a shard
//!   job exhausts its dispatch budget (default `abort`; `quarantine`
//!   completes the surviving shards and reports the casualties in the
//!   run stats);
//! * `--fallback-in-process` — degrade to the in-process executor (same
//!   results) when the process-pool transport cannot spawn workers;
//! * `--fault-plan PATH` — chaos testing: load a JSON
//!   `llm4fp_orchestrator::FaultPlan` and inject its worker/persistence
//!   faults into the run (deterministic supervision means an abort-mode
//!   run that survives a fault plan is bit-identical to a fault-free
//!   run).

#![deny(unsafe_code)]

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use llm4fp::{
    ApproachKind, BackendSpec, CampaignConfig, CampaignResult, ExternalBackendSpec, SealMode,
};
use llm4fp_orchestrator::{
    default_workers, FailurePolicy, FaultPlan, OrchestratedResult, Orchestrator,
    OrchestratorOptions, ProcessPoolExecutor, RemoteWorkerExecutor, Scheduler, ShardExecutor,
};
use llm4fp_telemetry::TelemetrySpec;

/// Which execution backend the experiment binaries drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CliBackend {
    /// The machine-independent virtual compiler (the default).
    #[default]
    Virtual,
    /// Real host compilers detected on this machine (`llm4fp-extcc`).
    Extcc,
}

/// Which shard transport the experiment binaries execute through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CliExecutor {
    /// A thread pool inside this process (the default).
    #[default]
    InProcess,
    /// Out-of-process `llm4fp-worker` daemons (`llm4fp-orchestrator`'s
    /// process-pool transport). Results are bit-identical to in-process.
    ProcessPool,
    /// The same workers dialing a TCP coordinator
    /// (`llm4fp-orchestrator`'s socket transport: leases, heartbeats,
    /// reconnect-and-resume). Results are bit-identical to in-process.
    Remote,
}

/// Command-line options shared by all experiment binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpOptions {
    pub programs: usize,
    pub seed: u64,
    pub threads: usize,
    pub shards: usize,
    pub epochs: usize,
    pub workers: usize,
    pub backend: CliBackend,
    /// 0 = use the worker default.
    pub process_slots: usize,
    /// `false` disables the seal-time peephole optimizer
    /// (`--no-seal-opt`) for A/B runs; results are bit-identical either
    /// way, only seal/execute cost changes.
    pub seal_opt: bool,
    /// Collect telemetry counters and histograms (on by default for
    /// experiment runs; `--no-metrics` turns everything off). Pure
    /// observation — results are bit-identical either way.
    pub metrics: bool,
    /// Also record span events (`--trace`); persisted runs write a
    /// Chrome `trace_event`-compatible `trace.jsonl`. Implies metrics.
    pub trace: bool,
    /// Persist single-campaign runs into this directory (`--run-dir`),
    /// including the `metrics.json`/`trace.jsonl` flight recorders.
    pub run_dir: Option<PathBuf>,
    /// The shard transport (`--executor in-process|process-pool|remote`).
    pub executor: CliExecutor,
    /// Worker daemon count for `--executor process-pool` / `remote`
    /// (`--worker-procs`; 0 = available parallelism).
    pub worker_procs: usize,
    /// Bind address for the `--executor remote` coordinator (`--listen`
    /// / `--workers-addr`; `None` = `127.0.0.1:0`).
    pub listen: Option<String>,
    /// `false` (via `--no-spawn-workers`) makes `--executor remote`
    /// wait for external workers instead of self-spawning loopback
    /// daemons.
    pub spawn_workers: bool,
    /// Wire-frame payload cap for the out-of-process transports
    /// (`--max-frame-len`; 0 = transport default of 256 MiB).
    pub max_frame_len: usize,
    /// Dispatch budget per shard job for `--executor process-pool`
    /// (`--max-dispatch-attempts`; 0 = transport default).
    pub max_dispatch_attempts: u8,
    /// Straggler/stall timeout per shard job for `--executor
    /// process-pool` (`--shard-timeout-ms`; 0 = transport default).
    pub shard_timeout_ms: u64,
    /// What to do when a shard job exhausts its dispatch budget
    /// (`--on-shard-failure abort|quarantine`).
    pub on_shard_failure: FailurePolicy,
    /// Degrade to the in-process executor when the selected transport's
    /// workers cannot be spawned (`--fallback-in-process`).
    pub fallback_in_process: bool,
    /// Deterministic chaos-testing plan loaded from `--fault-plan PATH`:
    /// worker faults ship to the process-pool transport, persistence
    /// faults to the run directory.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            programs: 150,
            seed: 42,
            threads: 4,
            shards: 1,
            epochs: 4,
            workers: default_workers(),
            backend: CliBackend::Virtual,
            process_slots: 0,
            seal_opt: true,
            metrics: true,
            trace: false,
            run_dir: None,
            executor: CliExecutor::InProcess,
            worker_procs: 0,
            listen: None,
            spawn_workers: true,
            max_frame_len: 0,
            max_dispatch_attempts: 0,
            shard_timeout_ms: 0,
            on_shard_failure: FailurePolicy::default(),
            fallback_in_process: false,
            fault_plan: None,
        }
    }
}

impl ExpOptions {
    /// Parse options from an iterator of CLI arguments (excluding argv\[0\]).
    /// Unknown arguments are rejected with an error message.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut opts = ExpOptions::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--paper" => opts.programs = 1_000,
                "--programs" => {
                    let v = iter.next().ok_or("--programs needs a value")?;
                    opts.programs = v.parse().map_err(|_| format!("invalid --programs {v}"))?;
                }
                "--seed" => {
                    let v = iter.next().ok_or("--seed needs a value")?;
                    opts.seed = v.parse().map_err(|_| format!("invalid --seed {v}"))?;
                }
                "--threads" => {
                    let v = iter.next().ok_or("--threads needs a value")?;
                    opts.threads = v.parse().map_err(|_| format!("invalid --threads {v}"))?;
                }
                "--shards" => {
                    let v = iter.next().ok_or("--shards needs a value")?;
                    opts.shards = v.parse().map_err(|_| format!("invalid --shards {v}"))?;
                }
                "--epochs" => {
                    let v = iter.next().ok_or("--epochs needs a value")?;
                    opts.epochs = v.parse().map_err(|_| format!("invalid --epochs {v}"))?;
                }
                "--workers" => {
                    let v = iter.next().ok_or("--workers needs a value")?;
                    opts.workers = v.parse().map_err(|_| format!("invalid --workers {v}"))?;
                }
                "--backend" => {
                    let v = iter.next().ok_or("--backend needs a value")?;
                    opts.backend = match v.as_str() {
                        "virtual" => CliBackend::Virtual,
                        "extcc" => CliBackend::Extcc,
                        other => return Err(format!("invalid --backend `{other}`")),
                    };
                }
                "--process-slots" => {
                    let v = iter.next().ok_or("--process-slots needs a value")?;
                    opts.process_slots =
                        v.parse().map_err(|_| format!("invalid --process-slots {v}"))?;
                }
                "--executor" => {
                    let v = iter.next().ok_or("--executor needs a value")?;
                    opts.executor = match v.as_str() {
                        "in-process" => CliExecutor::InProcess,
                        "process-pool" => CliExecutor::ProcessPool,
                        "remote" => CliExecutor::Remote,
                        other => return Err(format!("invalid --executor `{other}`")),
                    };
                }
                "--worker-procs" => {
                    let v = iter.next().ok_or("--worker-procs needs a value")?;
                    opts.worker_procs =
                        v.parse().map_err(|_| format!("invalid --worker-procs {v}"))?;
                }
                "--listen" | "--workers-addr" => {
                    let v = iter.next().ok_or("--listen needs an address")?;
                    opts.listen = Some(v);
                }
                "--no-spawn-workers" => opts.spawn_workers = false,
                "--max-frame-len" => {
                    let v = iter.next().ok_or("--max-frame-len needs a byte count")?;
                    opts.max_frame_len =
                        v.parse().map_err(|_| format!("invalid --max-frame-len {v}"))?;
                    if opts.max_frame_len == 0 {
                        return Err("--max-frame-len must be at least 1 byte".into());
                    }
                }
                "--max-dispatch-attempts" => {
                    let v = iter.next().ok_or("--max-dispatch-attempts needs a value")?;
                    opts.max_dispatch_attempts =
                        v.parse().map_err(|_| format!("invalid --max-dispatch-attempts {v}"))?;
                    if opts.max_dispatch_attempts == 0 {
                        return Err("--max-dispatch-attempts must be at least 1".into());
                    }
                }
                "--shard-timeout-ms" => {
                    let v = iter.next().ok_or("--shard-timeout-ms needs a value")?;
                    opts.shard_timeout_ms =
                        v.parse().map_err(|_| format!("invalid --shard-timeout-ms {v}"))?;
                    if opts.shard_timeout_ms == 0 {
                        return Err("--shard-timeout-ms must be positive".into());
                    }
                }
                "--on-shard-failure" => {
                    let v = iter.next().ok_or("--on-shard-failure needs a value")?;
                    opts.on_shard_failure = match v.as_str() {
                        "abort" => FailurePolicy::Abort,
                        "quarantine" => FailurePolicy::Quarantine,
                        other => return Err(format!("invalid --on-shard-failure `{other}`")),
                    };
                }
                "--fallback-in-process" => opts.fallback_in_process = true,
                "--fault-plan" => {
                    let v = iter.next().ok_or("--fault-plan needs a path")?;
                    let text = std::fs::read_to_string(&v)
                        .map_err(|e| format!("cannot read --fault-plan {v}: {e}"))?;
                    let plan: FaultPlan = serde_json::from_str(&text)
                        .map_err(|e| format!("cannot parse --fault-plan {v}: {e}"))?;
                    opts.fault_plan = Some(plan);
                }
                "--no-seal-opt" => opts.seal_opt = false,
                "--trace" => opts.trace = true,
                "--no-metrics" => opts.metrics = false,
                "--run-dir" => {
                    let v = iter.next().ok_or("--run-dir needs a path")?;
                    opts.run_dir = Some(PathBuf::from(v));
                }
                "--help" | "-h" => {
                    return Err("usage: [--programs N] [--paper] [--seed S] [--threads T] \
                         [--shards K] [--epochs E] [--workers W] \
                         [--backend virtual|extcc] [--process-slots P] [--no-seal-opt] \
                         [--run-dir PATH] [--trace] [--no-metrics] \
                         [--executor in-process|process-pool|remote] [--worker-procs N] \
                         [--listen ADDR] [--no-spawn-workers] [--max-frame-len BYTES] \
                         [--max-dispatch-attempts N] [--shard-timeout-ms N] \
                         [--on-shard-failure abort|quarantine] [--fallback-in-process] \
                         [--fault-plan PATH]"
                        .into())
                }
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        if opts.programs == 0 {
            return Err("--programs must be positive".into());
        }
        if opts.shards == 0 {
            return Err("--shards must be positive".into());
        }
        if opts.epochs == 0 {
            return Err("--epochs must be positive".into());
        }
        Ok(opts)
    }

    /// Parse from the process environment.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(opts) => opts,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Resolve the selected backend into a campaign spec. `--backend
    /// extcc` probes this machine for host compilers; differential
    /// testing needs at least two of them.
    pub fn resolve_backend(&self) -> Result<BackendSpec, String> {
        match self.backend {
            CliBackend::Virtual => Ok(BackendSpec::Virtual),
            CliBackend::Extcc => match ExternalBackendSpec::detect() {
                Some(spec) if spec.has_differential_pair() => Ok(BackendSpec::External(spec)),
                Some(spec) => Err(format!(
                    "--backend extcc needs at least two host compilers for differential \
                     testing, but only {} responded ({}); install gcc and clang",
                    spec.compilers.len(),
                    spec.describe()
                )),
                None => {
                    Err("--backend extcc: no host compilers (gcc/clang) detected on this machine"
                        .to_string())
                }
            },
        }
    }

    /// Resolve the backend once for this process (exiting with a clear
    /// message on `--backend extcc` without enough host compilers — this
    /// helper backs the experiment binaries), so multi-approach suites
    /// probe the toolchain a single time and every campaign pins the
    /// identical spec.
    fn resolve_backend_or_exit(&self) -> BackendSpec {
        match self.resolve_backend() {
            Ok(backend) => backend,
            Err(msg) => {
                eprintln!("[llm4fp-bench] {msg}");
                std::process::exit(2);
            }
        }
    }

    /// Campaign configuration for one approach with an already-resolved
    /// backend spec.
    pub fn campaign_config_with(
        &self,
        approach: ApproachKind,
        backend: BackendSpec,
    ) -> CampaignConfig {
        CampaignConfig::new(approach)
            .with_budget(self.programs)
            .with_seed(self.seed)
            .with_threads(self.threads)
            .with_backend(backend)
            .with_seal_mode(if self.seal_opt { SealMode::Optimized } else { SealMode::Raw })
    }

    /// Campaign configuration for one approach under these options.
    /// With `--backend extcc`, missing host compilers exit the process
    /// with a clear message.
    pub fn campaign_config(&self, approach: ApproachKind) -> CampaignConfig {
        self.campaign_config_with(approach, self.resolve_backend_or_exit())
    }

    /// The telemetry features these options select. `--trace` implies
    /// metrics (span histograms are counters' siblings); `--no-metrics`
    /// without `--trace` turns collection off entirely.
    pub fn telemetry_spec(&self) -> TelemetrySpec {
        if self.trace {
            TelemetrySpec::TRACE
        } else if self.metrics {
            TelemetrySpec::METRICS
        } else {
            TelemetrySpec::OFF
        }
    }

    /// Orchestrator options for these CLI options.
    pub fn orchestrator_options(&self) -> OrchestratorOptions {
        OrchestratorOptions {
            workers: self.workers,
            cache: true,
            epochs: self.epochs,
            process_slots: if self.process_slots == 0 {
                default_workers()
            } else {
                self.process_slots
            },
            run_dir: self.run_dir.clone(),
            telemetry: self.telemetry_spec(),
            fallback_to_in_process: self.fallback_in_process,
            persist_faults: self
                .fault_plan
                .as_ref()
                .map(|plan| plan.persist.clone())
                .unwrap_or_default(),
        }
    }

    /// The shard transport these options select, or `None` for the
    /// orchestrator's in-process default. The out-of-process transports
    /// pick up the supervision knobs (`--max-dispatch-attempts`,
    /// `--shard-timeout-ms`, `--on-shard-failure`, `--max-frame-len`)
    /// and the worker half of any `--fault-plan`; `--shard-timeout-ms`
    /// doubles as the remote transport's dispatch lease.
    pub fn shard_executor(&self) -> Option<Arc<dyn ShardExecutor>> {
        match self.executor {
            CliExecutor::InProcess => None,
            CliExecutor::ProcessPool => {
                let procs =
                    if self.worker_procs == 0 { default_workers() } else { self.worker_procs };
                let mut executor =
                    ProcessPoolExecutor::new(procs).on_shard_failure(self.on_shard_failure);
                if self.max_dispatch_attempts != 0 {
                    executor = executor.max_dispatch_attempts(self.max_dispatch_attempts);
                }
                if self.shard_timeout_ms != 0 {
                    executor =
                        executor.with_shard_timeout(Duration::from_millis(self.shard_timeout_ms));
                }
                if self.max_frame_len != 0 {
                    executor = executor.with_max_frame_len(self.max_frame_len);
                }
                if let Some(plan) = &self.fault_plan {
                    executor = executor.with_fault_plan(plan.clone());
                }
                Some(Arc::new(executor))
            }
            CliExecutor::Remote => {
                let procs = if !self.spawn_workers {
                    0
                } else if self.worker_procs == 0 {
                    default_workers()
                } else {
                    self.worker_procs
                };
                let mut executor =
                    RemoteWorkerExecutor::new(procs).on_shard_failure(self.on_shard_failure);
                if let Some(addr) = &self.listen {
                    executor = executor.listen(addr.clone());
                }
                if self.max_dispatch_attempts != 0 {
                    executor = executor.max_dispatch_attempts(self.max_dispatch_attempts);
                }
                if self.shard_timeout_ms != 0 {
                    executor =
                        executor.with_lease_timeout(Duration::from_millis(self.shard_timeout_ms));
                }
                if self.max_frame_len != 0 {
                    executor = executor.with_max_frame_len(self.max_frame_len);
                }
                if let Some(plan) = &self.fault_plan {
                    executor = executor.with_fault_plan(plan.clone());
                }
                Some(Arc::new(executor))
            }
        }
    }
}

fn log_stats(approach: ApproachKind, orchestrated: &OrchestratedResult) {
    eprintln!("[llm4fp-bench] {}: {}", approach.name(), orchestrated.stats.summary_line());
}

/// Run one campaign for the given approach through the orchestrator.
/// With `--run-dir` the run persists (and resumes) there, including the
/// telemetry flight recorders when enabled.
pub fn run_campaign(opts: &ExpOptions, approach: ApproachKind) -> CampaignResult {
    eprintln!(
        "[llm4fp-bench] running {} campaign: {} programs, seed {}, {} shard(s), {} epoch(s)",
        approach.name(),
        opts.programs,
        opts.seed,
        opts.shards,
        opts.epochs
    );
    let mut builder = Orchestrator::new(opts.campaign_config(approach))
        .options(opts.orchestrator_options())
        .shards(opts.shards);
    if let Some(executor) = opts.shard_executor() {
        builder = builder.executor(executor);
    }
    let orchestrated = builder.run().unwrap_or_else(|e| {
        eprintln!("[llm4fp-bench] campaign failed: {e}");
        std::process::exit(1);
    });
    log_stats(approach, &orchestrated);
    orchestrated.result
}

/// Run the Varity and LLM4FP campaigns (the pair most tables compare),
/// scheduled concurrently over one worker pool.
pub fn run_varity_and_llm4fp(opts: &ExpOptions) -> (CampaignResult, CampaignResult) {
    let mut results = run_suite(opts, &[ApproachKind::Varity, ApproachKind::Llm4Fp]).into_iter();
    (results.next().expect("varity result"), results.next().expect("llm4fp result"))
}

/// Run all four approaches in Table 2 order, scheduled concurrently over
/// one worker pool.
pub fn run_all_approaches(opts: &ExpOptions) -> Vec<CampaignResult> {
    run_suite(opts, &ApproachKind::ALL)
}

fn run_suite(opts: &ExpOptions, approaches: &[ApproachKind]) -> Vec<CampaignResult> {
    eprintln!(
        "[llm4fp-bench] scheduling {} campaigns: {} programs each, seed {}, {} shard(s), \
         {} epoch(s), {} workers",
        approaches.len(),
        opts.programs,
        opts.seed,
        opts.shards,
        opts.epochs,
        opts.workers
    );
    // One probe, one pinned spec for the whole suite.
    let backend = opts.resolve_backend_or_exit();
    let configs: Vec<CampaignConfig> =
        approaches.iter().map(|&a| opts.campaign_config_with(a, backend.clone())).collect();
    let mut options = opts.orchestrator_options();
    if let Some(dir) = options.run_dir.take() {
        // A run directory records ONE campaign (its manifest pins one
        // config); the scheduler executes suites in memory. Say so
        // instead of silently dropping the flag. Telemetry itself still
        // applies — per-campaign summaries land in the printed stats.
        eprintln!(
            "[llm4fp-bench] note: --run-dir {} ignored for a multi-campaign suite; \
             persistence and the metrics.json/trace.jsonl flight recorders apply to \
             single-campaign binaries (e.g. exp_table3)",
            dir.display()
        );
    }
    let mut scheduler = Scheduler::new(options).shards(opts.shards);
    if let Some(executor) = opts.shard_executor() {
        scheduler = scheduler.executor(executor);
    }
    let suite = scheduler.run(&configs).unwrap_or_else(|e| {
        eprintln!("[llm4fp-bench] suite failed: {e}");
        std::process::exit(1);
    });
    approaches
        .iter()
        .zip(suite)
        .map(|(&approach, orchestrated)| {
            log_stats(approach, &orchestrated);
            orchestrated.result
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_parsing_handles_all_flags() {
        // A real fault-plan file for --fault-plan to load.
        let plan_path = std::env::temp_dir()
            .join(format!("llm4fp-bench-fault-plan-{}.json", std::process::id()));
        std::fs::write(
            &plan_path,
            r#"{"first_worker":[{"CrashAtJob":1}],"persist":[{"TornWrite":"checkpoint"}]}"#,
        )
        .unwrap();
        let opts = ExpOptions::parse(
            [
                "--programs",
                "25",
                "--seed",
                "7",
                "--threads",
                "2",
                "--shards",
                "4",
                "--epochs",
                "2",
                "--workers",
                "3",
                "--backend",
                "extcc",
                "--process-slots",
                "5",
                "--no-seal-opt",
                "--trace",
                "--run-dir",
                "/tmp/llm4fp-run",
                "--executor",
                "process-pool",
                "--worker-procs",
                "6",
                "--max-dispatch-attempts",
                "5",
                "--shard-timeout-ms",
                "2500",
                "--on-shard-failure",
                "quarantine",
                "--fallback-in-process",
                "--fault-plan",
                plan_path.to_str().unwrap(),
                "--listen",
                "127.0.0.1:9911",
                "--no-spawn-workers",
                "--max-frame-len",
                "1048576",
            ]
            .map(String::from),
        )
        .unwrap();
        std::fs::remove_file(&plan_path).ok();
        let expected_plan = FaultPlan {
            first_worker: vec![llm4fp_orchestrator::WorkerFault::CrashAtJob(1)],
            persist: vec![llm4fp_orchestrator::PersistFault::TornWrite("checkpoint".into())],
            ..FaultPlan::default()
        };
        assert_eq!(
            opts,
            ExpOptions {
                programs: 25,
                seed: 7,
                threads: 2,
                shards: 4,
                epochs: 2,
                workers: 3,
                backend: CliBackend::Extcc,
                process_slots: 5,
                seal_opt: false,
                metrics: true,
                trace: true,
                run_dir: Some(PathBuf::from("/tmp/llm4fp-run")),
                executor: CliExecutor::ProcessPool,
                worker_procs: 6,
                max_dispatch_attempts: 5,
                shard_timeout_ms: 2500,
                on_shard_failure: FailurePolicy::Quarantine,
                fallback_in_process: true,
                fault_plan: Some(expected_plan.clone()),
                listen: Some("127.0.0.1:9911".to_string()),
                spawn_workers: false,
                max_frame_len: 1 << 20,
            }
        );
        let options = opts.orchestrator_options();
        assert!(options.fallback_to_in_process);
        assert_eq!(options.persist_faults, expected_plan.persist);
        assert_eq!(opts.telemetry_spec(), TelemetrySpec::TRACE);
        assert!(opts.shard_executor().is_some(), "process-pool selects an executor");
        assert!(ExpOptions::default().shard_executor().is_none(), "in-process is the default");
        let remote = ExpOptions::parse(
            ["--executor", "remote", "--workers-addr", "127.0.0.1:0"].map(String::from),
        )
        .unwrap();
        assert_eq!(remote.executor, CliExecutor::Remote);
        assert_eq!(
            remote.listen.as_deref(),
            Some("127.0.0.1:0"),
            "--workers-addr aliases --listen"
        );
        assert!(remote.shard_executor().is_some(), "remote selects an executor");
        assert!(
            ExpOptions::parse(["--max-frame-len".to_string(), "0".to_string()]).is_err(),
            "a zero frame cap is rejected at the CLI boundary"
        );
        assert!(ExpOptions::parse(["--executor".to_string(), "bogus".to_string()]).is_err());
        let quiet = ExpOptions::parse(["--no-metrics".to_string()]).unwrap();
        assert_eq!(quiet.telemetry_spec(), TelemetrySpec::OFF);
        assert_eq!(ExpOptions::default().telemetry_spec(), TelemetrySpec::METRICS);
        assert!(ExpOptions::parse(["--backend".to_string(), "bogus".to_string()]).is_err());
        let paper = ExpOptions::parse(["--paper".to_string()]).unwrap();
        assert_eq!(paper.programs, 1_000);
        assert!(ExpOptions::parse(["--programs".to_string(), "zero".to_string()]).is_err());
        assert!(ExpOptions::parse(["--bogus".to_string()]).is_err());
        assert!(ExpOptions::parse(["--programs".to_string(), "0".to_string()]).is_err());
        assert!(ExpOptions::parse(["--shards".to_string(), "0".to_string()]).is_err());
        assert!(ExpOptions::parse(["--epochs".to_string(), "0".to_string()]).is_err());
        assert!(
            ExpOptions::parse(["--max-dispatch-attempts".to_string(), "0".to_string()]).is_err(),
            "a zero dispatch budget is rejected at the CLI boundary"
        );
        assert!(ExpOptions::parse(["--shard-timeout-ms".to_string(), "0".to_string()]).is_err());
        assert!(ExpOptions::parse(["--on-shard-failure".to_string(), "bogus".to_string()]).is_err());
        assert!(
            ExpOptions::parse(["--fault-plan".to_string(), "/nonexistent/plan.json".to_string()])
                .is_err(),
            "an unreadable fault plan is a parse error, not a silent no-op"
        );
        assert_eq!(ExpOptions::parse(std::iter::empty::<String>()).unwrap(), ExpOptions::default());
    }

    #[test]
    fn campaign_config_reflects_options() {
        let opts = ExpOptions {
            programs: 9,
            seed: 123,
            threads: 3,
            shards: 2,
            epochs: 1,
            workers: 2,
            ..ExpOptions::default()
        };
        let cfg = opts.campaign_config(ApproachKind::GrammarGuided);
        assert_eq!(cfg.programs, 9);
        assert_eq!(cfg.seed, 123);
        assert_eq!(cfg.threads, 3);
        assert_eq!(cfg.approach, ApproachKind::GrammarGuided);
    }

    #[test]
    fn tiny_experiment_pipeline_end_to_end() {
        let opts = ExpOptions {
            programs: 6,
            seed: 1,
            threads: 1,
            shards: 2,
            epochs: 2,
            workers: 2,
            ..ExpOptions::default()
        };
        let results = run_all_approaches(&opts);
        assert_eq!(results.len(), 4);
        for r in &results {
            assert_eq!(r.aggregates.programs, 6);
        }
    }

    #[test]
    fn single_shard_run_campaign_matches_sequential() {
        let opts = ExpOptions {
            programs: 10,
            seed: 2,
            threads: 1,
            shards: 1,
            epochs: 4,
            workers: 4,
            ..ExpOptions::default()
        };
        let orchestrated = run_campaign(&opts, ApproachKind::Varity);
        let sequential = llm4fp::Campaign::new(opts.campaign_config(ApproachKind::Varity)).run();
        assert_eq!(orchestrated.records, sequential.records);
        assert_eq!(orchestrated.aggregates, sequential.aggregates);
    }
}
