//! Hermetic external-backend tests: the `fakecc` mock compiler drives the
//! exact process-spawning code paths (`HostToolchain` / `ExtSession`)
//! with no real toolchain installed, pinning every [`ExtError`] variant,
//! the wall-clock timeout path, and the compile-once-run-many contract.

#![cfg(unix)]

use std::path::PathBuf;
use std::time::Duration;

use llm4fp_compiler::{CompilerConfig, CompilerId, OptLevel};
use llm4fp_extcc::{fakecc, probe_compiler, ExtError, ExtPhase, HostToolchain, SpawnStats};
use llm4fp_fpir::{parse_compute, InputSet, InputValue, Precision};

fn temp_install(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("llm4fp-fakecc-tests")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn gcc(level: OptLevel) -> CompilerConfig {
    CompilerConfig::new(CompilerId::Gcc, level)
}

#[test]
fn compile_once_run_many_spawns_one_compiler_process() {
    let dir = temp_install("compile-once");
    let toolchain = fakecc::install_toolchain(&dir).expect("install fakecc");
    let program = parse_compute(
        "void compute(double x, double y) { comp = x * y + 1.0; comp += x / (y + 2.0); }",
    )
    .unwrap();
    let mut session = toolchain.session().expect("session");
    let artifact = session.compile(&program, gcc(OptLevel::O2)).expect("fake compile");
    let inputs_a = InputSet::new().with("x", InputValue::Fp(1.5)).with("y", InputValue::Fp(-2.25));
    let inputs_b = InputSet::new().with("x", InputValue::Fp(0.5)).with("y", InputValue::Fp(3.0));
    let a = session.run_inputs(&artifact, &program, &inputs_a).expect("run a");
    let b = session.run_inputs(&artifact, &program, &inputs_b).expect("run b");
    // fakecc output is a function of (source, flags, compiler name) only,
    // so two runs of one artifact agree bit for bit — and, crucially, the
    // compiler was spawned exactly once for the two executions.
    assert_eq!(a.bits, b.bits);
    assert_eq!(fakecc::compile_count(&dir), 1);
    assert_eq!(fakecc::run_count(&dir), 2);
    assert_eq!(toolchain.spawn_stats(), SpawnStats { compiles: 1, runs: 2 });
    drop(session);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fake_personalities_agree_at_strict_level_and_disagree_with_optimization() {
    let dir = temp_install("strict");
    let toolchain = fakecc::install_toolchain(&dir).expect("install fakecc");
    let program = parse_compute("void compute(double x) { comp = x * 0.5 + 1.0; }").unwrap();
    let inputs = InputSet::new().with("x", InputValue::Fp(2.0));
    let run = |config: CompilerConfig| {
        toolchain.compile_and_run(&program, &inputs, config).expect("fake compile+run").bits
    };
    let clang = |level| CompilerConfig::new(CompilerId::Clang, level);
    // O0_nofma is the reference level: all personalities agree.
    assert_eq!(run(gcc(OptLevel::O0Nofma)), run(clang(OptLevel::O0Nofma)));
    // With optimization the personalities diverge (like real toolchains).
    assert_ne!(run(gcc(OptLevel::O1)), run(clang(OptLevel::O1)));
    // And the same personality at the same level is deterministic.
    assert_eq!(run(gcc(OptLevel::O3)), run(gcc(OptLevel::O3)));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_ext_error_variant_is_reachable_and_structured() {
    let dir = temp_install("taxonomy");
    let toolchain = fakecc::install_toolchain(&dir)
        .expect("install fakecc")
        .with_timeout(Duration::from_millis(300));
    let mut session = toolchain.session().expect("session");
    let compile = |session: &mut llm4fp_extcc::ExtSession<'_>, source: &str| {
        session.compile_source(source, Precision::F64, gcc(OptLevel::O0))
    };

    // CompileFailed: the compiler rejects the unit.
    let err = compile(&mut session, "/* FAKECC_COMPILE_ERROR */").unwrap_err();
    assert!(
        matches!(&err, ExtError::CompileFailed { stderr } if stderr.contains("refusing")),
        "{err}"
    );

    // Timeout (compile phase): the compiler hangs past the deadline.
    let err = compile(&mut session, "/* FAKECC_COMPILE_HANG */").unwrap_err();
    assert_eq!(err, ExtError::Timeout { phase: ExtPhase::Compile, after_ms: 300 });

    // RunCrashed: the binary exits non-zero.
    let artifact = compile(&mut session, "/* FAKECC_CRASH */").unwrap();
    let err = session.run(&artifact, &[]).unwrap_err();
    assert!(
        matches!(&err, ExtError::RunCrashed { code: Some(3), stderr } if stderr.contains("crash")),
        "{err}"
    );

    // Timeout (run phase): the binary hangs past the deadline.
    let artifact = compile(&mut session, "/* FAKECC_HANG */").unwrap();
    let err = session.run(&artifact, &[]).unwrap_err();
    assert_eq!(err, ExtError::Timeout { phase: ExtPhase::Run, after_ms: 300 });

    // BadOutput: the binary prints something that is not a result.
    let artifact = compile(&mut session, "/* FAKECC_GARBAGE */").unwrap();
    let err = session.run(&artifact, &[]).unwrap_err();
    assert!(matches!(&err, ExtError::BadOutput { stdout } if stdout.contains("not-hex")), "{err}");

    // MissingCompiler: no binary for the requested personality.
    let err = session
        .compile_source(
            "int main(void) { return 0; }",
            Precision::F64,
            CompilerConfig::new(CompilerId::Nvcc, OptLevel::O0),
        )
        .unwrap_err();
    assert_eq!(err, ExtError::MissingCompiler { compiler: "nvcc".to_string() });

    drop(session);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn f32_sources_produce_eight_digit_patterns() {
    let dir = temp_install("f32");
    let toolchain = fakecc::install_toolchain(&dir).expect("install fakecc");
    let mut program = parse_compute("void compute(double x) { comp = x + 0.5; }").unwrap();
    program.precision = Precision::F32;
    let inputs = InputSet::new().with("x", InputValue::Fp(1.0));
    let result = toolchain.compile_and_run(&program, &inputs, gcc(OptLevel::O0)).expect("run");
    assert!(result.bits <= u32::MAX as u64, "F32 results are 32-bit patterns");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fakecc_answers_version_probes_like_a_compiler() {
    let dir = temp_install("probe");
    let path = fakecc::install(&dir, "fakegcc").expect("install fakecc");
    let probed =
        probe_compiler(CompilerId::Gcc, path.to_str().expect("utf-8 path")).expect("probe");
    assert!(probed.version.contains("fakecc 1.0"), "{}", probed.version);
    assert!(probed.version.contains("fakegcc"), "{}", probed.version);
    // Probing does not count as a compile.
    assert_eq!(fakecc::compile_count(&dir), 0);
    // A probed entry is usable as a toolchain directly.
    let toolchain = HostToolchain::new(vec![probed]);
    assert!(toolchain.compiler_for(CompilerId::Gcc).is_some());
    let _ = std::fs::remove_dir_all(&dir);
}
