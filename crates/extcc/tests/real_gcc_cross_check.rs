//! Cross-validate the virtual compiler's strict `O0_nofma` semantics
//! against a **real** gcc: for programs whose math calls go through the
//! reference host library, the virtual gcc personality at `O0_nofma` must
//! produce bit-identical results to `gcc -O0 -ffp-contract=off` on this
//! machine. Skipped with a visible message when gcc is not installed
//! (CI's dedicated toolchain job installs it; the hermetic `fakecc`
//! suite covers the process path everywhere else).

use llm4fp_compiler::{compile, CompilerConfig, CompilerId, OptLevel};
use llm4fp_extcc::{detect_host_compilers, HostToolchain};
use llm4fp_fpir::{parse_compute, InputSet, InputValue};

fn real_gcc() -> Option<HostToolchain> {
    let gcc = detect_host_compilers().into_iter().find(|c| c.id == CompilerId::Gcc)?;
    Some(HostToolchain::new(vec![gcc]))
}

/// Curated programs covering arithmetic, loops, arrays, branches and the
/// libm calls whose virtual host library mirrors the real one.
fn corpus() -> Vec<(&'static str, InputSet)> {
    vec![
        (
            "void compute(double x, double y) {\n\
             double comp = 0.0;\n\
             double t0 = x * 0.5 + y;\n\
             for (int i = 0; i < 4; ++i) { comp += t0 / (i + 1.0); }\n\
             if (comp > 1.0) { comp = sqrt(comp) + sin(x); }\n\
             }",
            InputSet::new().with("x", InputValue::Fp(2.375)).with("y", InputValue::Fp(-0.625)),
        ),
        (
            "void compute(double x, double *a) {\n\
             double buf[4] = {0.5, -1.5};\n\
             for (int i = 0; i < 8; ++i) { buf[i % 4] += a[i] * x; }\n\
             for (int i = 0; i < 4; ++i) { comp += buf[i] / (x + 2.0); }\n\
             }",
            InputSet::new()
                .with("x", InputValue::Fp(1.25))
                .with("a", InputValue::FpArray(vec![1.0, -2.0, 3.0, -4.0, 5.5, 0.25, 7.0, 8.125])),
        ),
        (
            "void compute(double x, double y) {\n\
             comp = exp(x / 8.0) * cos(y) + log(x * x + 1.0);\n\
             comp += tanh(y) - x / 3.0;\n\
             }",
            InputSet::new().with("x", InputValue::Fp(1.7)).with("y", InputValue::Fp(-0.3)),
        ),
    ]
}

#[test]
fn real_gcc_cross_check() {
    let Some(toolchain) = real_gcc() else {
        eprintln!("gcc not installed; skipping external-compiler cross-check");
        return;
    };
    let config = CompilerConfig::new(CompilerId::Gcc, OptLevel::O0Nofma);
    for (source, inputs) in corpus() {
        let program = parse_compute(source).unwrap();
        let virt = compile(&program, config).unwrap().execute(&inputs).unwrap();

        // One-shot path: inputs baked into main.
        let baked = toolchain.compile_and_run(&program, &inputs, config).expect("gcc compile+run");
        assert_eq!(
            baked.bits,
            virt.bits(),
            "real gcc ({:016x}) and virtual gcc ({:016x}) disagree at O0_nofma for:\n{source}",
            baked.bits,
            virt.bits()
        );

        // Session path: compile once with an argv-reading main, run twice.
        let mut session = toolchain.session().expect("scratch session");
        let artifact = session.compile(&program, config).expect("gcc compile (argv main)");
        let first = session.run_inputs(&artifact, &program, &inputs).expect("gcc run");
        let second = session.run_inputs(&artifact, &program, &inputs).expect("gcc rerun");
        assert_eq!(first.bits, virt.bits(), "argv-main path diverged for:\n{source}");
        assert_eq!(first.bits, second.bits, "re-running one artifact must be deterministic");
    }
    // The corpus cost 3 baked compiles + 3 argv compiles and 9 runs.
    let stats = toolchain.spawn_stats();
    assert_eq!(stats.compiles, 6);
    assert_eq!(stats.runs, 9);
}
