//! # llm4fp-extcc
//!
//! The external (real) compiler backend: drives actual host compilers found
//! on the machine through `std::process`, using exactly the Table 1 flags.
//!
//! The evaluation pipeline uses the virtual compiler in `llm4fp-compiler` so
//! that results are machine-independent and do not require clang or nvcc to
//! be installed; this crate exists to (a) demonstrate the orchestration
//! harness against a real toolchain, and (b) cross-validate the virtual
//! `O0_nofma` semantics against real gcc on machines that have it (see the
//! `real_gcc_cross_check` integration test, which is skipped automatically
//! when no compiler is available).

#![deny(unsafe_code)]

use std::path::PathBuf;
use std::process::Command;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use llm4fp_compiler::{CompilerId, OptLevel};
use llm4fp_fpir::{to_c_source, InputSet, Precision, Program};

/// A host compiler binary found on this machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostCompiler {
    /// Which personality this binary corresponds to.
    pub id: CompilerId,
    /// The executable name/path.
    pub binary: String,
    /// Reported version line.
    pub version: String,
}

/// Detect the host compilers (gcc, clang) available on this machine.
/// nvcc is intentionally not probed: device compilation requires CUDA
/// hardware, which the virtual compiler substitutes for.
pub fn detect_host_compilers() -> Vec<HostCompiler> {
    let mut found = Vec::new();
    for (id, binary) in [(CompilerId::Gcc, "gcc"), (CompilerId::Clang, "clang")] {
        if let Ok(output) = Command::new(binary).arg("--version").output() {
            if output.status.success() {
                let version = String::from_utf8_lossy(&output.stdout)
                    .lines()
                    .next()
                    .unwrap_or_default()
                    .to_string();
                found.push(HostCompiler { id, binary: binary.to_string(), version });
            }
        }
    }
    found
}

/// Why an external compile-and-run failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExtError {
    /// Writing the source or binary to the scratch directory failed.
    Io(String),
    /// The compiler returned a non-zero exit status.
    CompileFailed { stderr: String },
    /// The produced binary returned a non-zero exit status.
    RunFailed { stderr: String },
    /// The program printed something that is not a hexadecimal result.
    BadOutput { stdout: String },
}

impl std::fmt::Display for ExtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtError::Io(e) => write!(f, "i/o error: {e}"),
            ExtError::CompileFailed { stderr } => write!(f, "compilation failed: {stderr}"),
            ExtError::RunFailed { stderr } => write!(f, "execution failed: {stderr}"),
            ExtError::BadOutput { stdout } => write!(f, "unparseable output: {stdout:?}"),
        }
    }
}

impl std::error::Error for ExtError {}

/// Result of compiling and running one program with a real compiler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtRunResult {
    /// Bit pattern printed by the program.
    pub bits: u64,
    /// The decoded floating-point value.
    pub value: f64,
    /// Wall-clock time spent compiling.
    pub compile_time: Duration,
    /// Wall-clock time spent executing.
    pub run_time: Duration,
}

/// Driver around one real host compiler.
#[derive(Debug, Clone)]
pub struct ExternalCompiler {
    compiler: HostCompiler,
    scratch_dir: PathBuf,
    counter: u64,
}

impl ExternalCompiler {
    /// Create a driver writing its scratch files under the system temp
    /// directory.
    pub fn new(compiler: HostCompiler) -> Self {
        let scratch_dir = std::env::temp_dir().join(format!(
            "llm4fp-extcc-{}-{}",
            compiler.id.name(),
            std::process::id()
        ));
        ExternalCompiler { compiler, scratch_dir, counter: 0 }
    }

    /// The compiler this driver wraps.
    pub fn compiler(&self) -> &HostCompiler {
        &self.compiler
    }

    /// Compile the program with the Table 1 flags of `level`, run it, and
    /// return the printed bit pattern.
    pub fn compile_and_run(
        &mut self,
        program: &Program,
        inputs: &InputSet,
        level: OptLevel,
    ) -> Result<ExtRunResult, ExtError> {
        std::fs::create_dir_all(&self.scratch_dir).map_err(|e| ExtError::Io(e.to_string()))?;
        self.counter += 1;
        let stem = format!("prog_{}_{}", level.name(), self.counter);
        let src_path = self.scratch_dir.join(format!("{stem}.c"));
        let bin_path = self.scratch_dir.join(stem);
        std::fs::write(&src_path, to_c_source(program, inputs))
            .map_err(|e| ExtError::Io(e.to_string()))?;

        let compile_start = Instant::now();
        let output = Command::new(&self.compiler.binary)
            .args(level.flags(self.compiler.id))
            .arg(&src_path)
            .arg("-o")
            .arg(&bin_path)
            .arg("-lm")
            .output()
            .map_err(|e| ExtError::Io(e.to_string()))?;
        let compile_time = compile_start.elapsed();
        if !output.status.success() {
            return Err(ExtError::CompileFailed {
                stderr: String::from_utf8_lossy(&output.stderr).to_string(),
            });
        }

        let run_start = Instant::now();
        let run = Command::new(&bin_path).output().map_err(|e| ExtError::Io(e.to_string()))?;
        let run_time = run_start.elapsed();
        if !run.status.success() {
            return Err(ExtError::RunFailed {
                stderr: String::from_utf8_lossy(&run.stderr).to_string(),
            });
        }
        let stdout = String::from_utf8_lossy(&run.stdout).trim().to_string();
        let bits = parse_hex_output(&stdout, program.precision)
            .ok_or(ExtError::BadOutput { stdout: stdout.clone() })?;
        let value = match program.precision {
            Precision::F64 => f64::from_bits(bits),
            Precision::F32 => f32::from_bits(bits as u32) as f64,
        };
        Ok(ExtRunResult { bits, value, compile_time, run_time })
    }

    /// Remove the scratch directory (best-effort).
    pub fn cleanup(&self) {
        let _ = std::fs::remove_dir_all(&self.scratch_dir);
    }
}

/// Parse the hexadecimal bit pattern a generated program prints.
pub fn parse_hex_output(stdout: &str, precision: Precision) -> Option<u64> {
    let line = stdout.lines().last()?.trim();
    if line.len() != precision.hex_digits() {
        return None;
    }
    u64::from_str_radix(line, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm4fp_fpir::{parse_compute, InputValue};

    #[test]
    fn hex_output_parsing_checks_width() {
        assert_eq!(parse_hex_output("3ff0000000000000", Precision::F64), Some(0x3ff0000000000000));
        assert_eq!(parse_hex_output("3f800000", Precision::F32), Some(0x3f800000));
        assert_eq!(parse_hex_output("3f800000", Precision::F64), None);
        assert_eq!(parse_hex_output("zzz", Precision::F32), None);
        assert_eq!(
            parse_hex_output("header\n3ff0000000000000", Precision::F64),
            Some(0x3ff0000000000000)
        );
        assert_eq!(parse_hex_output("", Precision::F64), None);
    }

    #[test]
    fn detection_reports_consistent_metadata() {
        // Whatever is installed, the entries must be well-formed.
        for c in detect_host_compilers() {
            assert!(c.id.is_host());
            assert!(!c.version.is_empty());
            assert!(!c.binary.is_empty());
        }
    }

    #[test]
    fn real_gcc_agrees_with_the_virtual_strict_configuration() {
        let Some(gcc) = detect_host_compilers().into_iter().find(|c| c.id == CompilerId::Gcc)
        else {
            eprintln!("gcc not installed; skipping external-compiler cross-check");
            return;
        };
        let program = parse_compute(
            "void compute(double x, double y) {\n\
             double comp = 0.0;\n\
             double t0 = x * 0.5 + y;\n\
             for (int i = 0; i < 4; ++i) { comp += t0 / (i + 1.0); }\n\
             if (comp > 1.0) { comp = sqrt(comp) + sin(x); }\n\
             }",
        )
        .unwrap();
        let inputs =
            InputSet::new().with("x", InputValue::Fp(2.375)).with("y", InputValue::Fp(-0.625));
        let mut ext = ExternalCompiler::new(gcc);
        let real =
            ext.compile_and_run(&program, &inputs, OptLevel::O0Nofma).expect("gcc compile+run");
        let virt = llm4fp_compiler::compile(
            &program,
            llm4fp_compiler::CompilerConfig::new(CompilerId::Gcc, OptLevel::O0Nofma),
        )
        .unwrap()
        .execute(&inputs)
        .unwrap();
        ext.cleanup();
        assert_eq!(
            real.bits,
            virt.bits(),
            "real gcc ({:016x}) and virtual gcc ({:016x}) disagree at O0_nofma",
            real.bits,
            virt.bits()
        );
    }
}
