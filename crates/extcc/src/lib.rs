//! # llm4fp-extcc
//!
//! The external (real) compiler backend: drives actual host compilers found
//! on the machine through `std::process`, using exactly the Table 1 flags.
//!
//! The evaluation pipeline defaults to the virtual compiler in
//! `llm4fp-compiler` so that results are machine-independent and do not
//! require clang or nvcc to be installed; this crate exists to (a) drive
//! campaigns against real toolchains through the orchestrator (see
//! `llm4fp_difftest::ExecBackend::External`), and (b) cross-validate the
//! virtual `O0_nofma` semantics against real gcc on machines that have it
//! (see the `real_gcc_cross_check` integration test in `tests/`, which is
//! skipped with a visible message when no compiler is available).
//!
//! The core abstraction is the [`HostToolchain`] (the set of host compiler
//! binaries, a wall-clock timeout, and spawn accounting) and its
//! [`ExtSession`] (a scratch directory whose lifetime owns the emitted
//! sources and binaries). A session **compiles once per configuration**
//! ([`ExtSession::compile`] renders the program with an argv-reading
//! `main`, so one binary serves any number of input sets) and **runs many
//! times** ([`ExtSession::run`]). Every external failure mode is a value
//! of [`ExtError`] — campaigns record them as findings; nothing in this
//! crate panics on toolchain misbehaviour.
//!
//! For hermetic tests (CI machines without any toolchain) the [`fakecc`]
//! module installs a tiny deterministic mock compiler that exercises the
//! identical process-spawning code paths.

#![deny(unsafe_code)]

mod session;

#[cfg(unix)]
pub mod fakecc;

pub use session::{
    group_spawn, kill_group, run_with_timeout, ExtArtifact, ExtRunResult, ExtSession,
    HostToolchain, SpawnStats, TimedOutput,
};

use std::process::Command;

use serde::{Deserialize, Serialize};

use llm4fp_compiler::CompilerId;
use llm4fp_fpir::Precision;

/// A host compiler binary found on this machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostCompiler {
    /// Which personality this binary corresponds to.
    pub id: CompilerId,
    /// The executable name/path.
    pub binary: String,
    /// Reported version line.
    pub version: String,
}

/// Wall-clock bound on a `--version` probe: a pinned binary that hangs
/// on probing reads as "not a compiler" instead of blocking campaign
/// setup.
const PROBE_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(5);

/// Probe one candidate binary with `--version`, returning its metadata
/// when it responds like a compiler (within the 5-second probe
/// deadline). Used by [`detect_host_compilers`] and by explicit backend
/// specifications that pin binary paths.
pub fn probe_compiler(id: CompilerId, binary: &str) -> Option<HostCompiler> {
    let mut cmd = Command::new(binary);
    cmd.arg("--version");
    let output = session::run_with_timeout(cmd, PROBE_TIMEOUT, ExtPhase::Compile).ok()?;
    if !output.status.success() {
        return None;
    }
    let version =
        String::from_utf8_lossy(&output.stdout).lines().next().unwrap_or_default().to_string();
    Some(HostCompiler { id, binary: binary.to_string(), version })
}

/// Detect the host compilers (gcc, clang) available on this machine.
/// nvcc is intentionally not probed: device compilation requires CUDA
/// hardware, which the virtual compiler substitutes for.
pub fn detect_host_compilers() -> Vec<HostCompiler> {
    [(CompilerId::Gcc, "gcc"), (CompilerId::Clang, "clang")]
        .into_iter()
        .filter_map(|(id, binary)| probe_compiler(id, binary))
        .collect()
}

/// Which external process phase a wall-clock timeout interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExtPhase {
    /// The compiler invocation itself.
    Compile,
    /// The produced binary.
    Run,
}

impl ExtPhase {
    fn name(self) -> &'static str {
        match self {
            ExtPhase::Compile => "compile",
            ExtPhase::Run => "run",
        }
    }
}

/// Why an external compile or run failed. This is the complete taxonomy
/// of the external backend: every variant is recorded as a finding in the
/// differential-testing matrix (a `CompileFail`/`ExecFail` outcome),
/// never surfaced as a panic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExtError {
    /// Writing the source or binary to the scratch directory failed, or
    /// the process could not be spawned at all.
    Io(String),
    /// The toolchain has no binary for the requested compiler personality.
    MissingCompiler { compiler: String },
    /// The compiler returned a non-zero exit status.
    CompileFailed { stderr: String },
    /// The produced binary crashed (non-zero exit status, or killed by a
    /// signal — `code` is `None` in the signal case).
    RunCrashed { code: Option<i32>, stderr: String },
    /// A process exceeded the toolchain's wall-clock timeout and was
    /// killed.
    Timeout { phase: ExtPhase, after_ms: u64 },
    /// The program printed something that is not a hexadecimal result of
    /// the expected width.
    BadOutput { stdout: String },
}

impl std::fmt::Display for ExtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtError::Io(e) => write!(f, "i/o error: {e}"),
            ExtError::MissingCompiler { compiler } => {
                write!(f, "no host compiler for {compiler}")
            }
            ExtError::CompileFailed { stderr } => write!(f, "compilation failed: {stderr}"),
            ExtError::RunCrashed { code, stderr } => match code {
                Some(code) => write!(f, "execution crashed (exit {code}): {stderr}"),
                None => write!(f, "execution killed by signal: {stderr}"),
            },
            ExtError::Timeout { phase, after_ms } => {
                write!(f, "{} timed out after {after_ms} ms", phase.name())
            }
            ExtError::BadOutput { stdout } => write!(f, "unparseable output: {stdout:?}"),
        }
    }
}

impl ExtError {
    /// A stable machine-readable slug for this failure class, used as
    /// the metric-key suffix of telemetry taxonomy counters
    /// (`extcc.err.<taxonomy>`). Timeouts split by phase because a
    /// compiler hang and a runaway binary are operationally different
    /// problems.
    pub fn taxonomy(&self) -> &'static str {
        match self {
            ExtError::Io(_) => "io",
            ExtError::MissingCompiler { .. } => "missing-compiler",
            ExtError::CompileFailed { .. } => "compile-failed",
            ExtError::RunCrashed { .. } => "run-crashed",
            ExtError::Timeout { phase: ExtPhase::Compile, .. } => "timeout-compile",
            ExtError::Timeout { phase: ExtPhase::Run, .. } => "timeout-run",
            ExtError::BadOutput { .. } => "bad-output",
        }
    }
}

impl std::error::Error for ExtError {}

/// Parse the hexadecimal bit pattern a generated program prints.
pub fn parse_hex_output(stdout: &str, precision: Precision) -> Option<u64> {
    let line = stdout.lines().last()?.trim();
    if line.len() != precision.hex_digits() {
        return None;
    }
    u64::from_str_radix(line, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_output_parsing_checks_width() {
        assert_eq!(parse_hex_output("3ff0000000000000", Precision::F64), Some(0x3ff0000000000000));
        assert_eq!(parse_hex_output("3f800000", Precision::F32), Some(0x3f800000));
        assert_eq!(parse_hex_output("3f800000", Precision::F64), None);
        assert_eq!(parse_hex_output("zzz", Precision::F32), None);
        assert_eq!(
            parse_hex_output("header\n3ff0000000000000", Precision::F64),
            Some(0x3ff0000000000000)
        );
        assert_eq!(parse_hex_output("", Precision::F64), None);
    }

    #[test]
    fn detection_reports_consistent_metadata() {
        // Whatever is installed, the entries must be well-formed.
        for c in detect_host_compilers() {
            assert!(c.id.is_host());
            assert!(!c.version.is_empty());
            assert!(!c.binary.is_empty());
        }
    }

    #[test]
    fn probing_a_nonexistent_binary_yields_none() {
        assert!(probe_compiler(CompilerId::Gcc, "/nonexistent/llm4fp-no-such-compiler").is_none());
    }

    #[test]
    fn errors_render_their_taxonomy() {
        let cases = [
            (ExtError::Io("boom".into()), "i/o error"),
            (ExtError::MissingCompiler { compiler: "nvcc".into() }, "no host compiler for nvcc"),
            (ExtError::CompileFailed { stderr: "bad".into() }, "compilation failed"),
            (ExtError::RunCrashed { code: Some(3), stderr: String::new() }, "exit 3"),
            (ExtError::RunCrashed { code: None, stderr: String::new() }, "signal"),
            (ExtError::Timeout { phase: ExtPhase::Compile, after_ms: 10 }, "compile timed out"),
            (ExtError::Timeout { phase: ExtPhase::Run, after_ms: 10 }, "run timed out"),
            (ExtError::BadOutput { stdout: "x".into() }, "unparseable"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn taxonomy_slugs_are_distinct_per_failure_class() {
        let errors = [
            ExtError::Io("boom".into()),
            ExtError::MissingCompiler { compiler: "nvcc".into() },
            ExtError::CompileFailed { stderr: String::new() },
            ExtError::RunCrashed { code: None, stderr: String::new() },
            ExtError::Timeout { phase: ExtPhase::Compile, after_ms: 10 },
            ExtError::Timeout { phase: ExtPhase::Run, after_ms: 10 },
            ExtError::BadOutput { stdout: String::new() },
        ];
        let slugs: std::collections::HashSet<&str> = errors.iter().map(|e| e.taxonomy()).collect();
        assert_eq!(slugs.len(), errors.len(), "taxonomy slugs must not collide");
        assert_eq!(errors[4].taxonomy(), "timeout-compile");
        assert_eq!(errors[5].taxonomy(), "timeout-run");
    }
}
