//! A hermetic mock compiler for exercising the external-backend process
//! path on machines with no toolchain installed (CI's default jobs).
//!
//! [`install`] writes a tiny POSIX-shell "compiler" script that honours
//! the exact invocation contract of [`crate::ExtSession`]
//! (`<flags…> src.c -o out -lm`, plus `--version` probing) and produces a
//! runnable "binary" (another shell script). Everything is deterministic:
//! the printed result is a checksum of the source text, the flags, and
//! the compiler's basename — so distinct "compilers" disagree like real
//! toolchains do (every configuration except the strict
//! `-ffp-contract=off` level, where all fake personalities agree, mirrors
//! the paper's `O0_nofma` reference role).
//!
//! Failure modes are selected by markers embedded in the C source —
//! campaigns never produce them, hand-written test sources do:
//!
//! | marker                 | behaviour                                  |
//! |------------------------|--------------------------------------------|
//! | `FAKECC_COMPILE_ERROR` | compiler exits non-zero (→ `CompileFailed`)|
//! | `FAKECC_COMPILE_HANG`  | compiler sleeps (→ compile `Timeout`)      |
//! | `FAKECC_CRASH`         | binary exits 3 (→ `RunCrashed`)            |
//! | `FAKECC_HANG`          | binary sleeps (→ run `Timeout`)            |
//! | `FAKECC_GARBAGE`       | binary prints non-hex (→ `BadOutput`)      |
//!
//! Every compiler and binary spawn appends a line to `fakecc.log` next to
//! the installed script; [`compile_count`]/[`run_count`] read it back, so
//! tests can assert that result-cache hits really skip process spawns.

use std::io;
use std::os::unix::fs::PermissionsExt;
use std::path::{Path, PathBuf};

use llm4fp_compiler::CompilerId;

use crate::{HostCompiler, HostToolchain};

/// The mock-compiler shell script. `%08x` in the source selects FP32
/// output width (the generated programs' printf format doubles as the
/// precision marker).
const FAKECC_SCRIPT: &str = r##"#!/bin/sh
# fakecc: deterministic mock compiler for hermetic llm4fp tests.
set -u
self="$0"
self_dir=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
log="$self_dir/fakecc.log"
if [ "${1:-}" = "--version" ]; then
  echo "fakecc 1.0 ($(basename "$self"))"
  exit 0
fi
echo "compile" >> "$log"
src=""
out=""
flags=""
prev=""
for a in "$@"; do
  case "$a" in
    *.c) src="$a" ;;
    -lm) ;;
    -o) ;;
    *) if [ "$prev" = "-o" ]; then out="$a"; else flags="$flags $a"; fi ;;
  esac
  prev="$a"
done
if [ -z "$src" ] || [ -z "$out" ]; then
  echo "fakecc: missing source or output path" >&2
  exit 1
fi
if grep -q FAKECC_COMPILE_HANG "$src"; then sleep 30; fi
if grep -q FAKECC_COMPILE_ERROR "$src"; then
  echo "fakecc: refusing to compile $src" >&2
  exit 1
fi
name=$(basename "$self")
case "$flags" in
  *-ffp-contract=off*|*--fmad=false*) ident="strict" ;;
  *) ident="$name" ;;
esac
digest=$( { printf '%s|%s|' "$ident" "$flags"; cat "$src"; } | cksum | cut -d' ' -f1 )
if grep -q '%08x' "$src"; then width=8; else width=16; fi
hex=$(printf "%0${width}x" "$digest")
beh="ok"
if grep -q FAKECC_CRASH "$src"; then beh="crash"; fi
if grep -q FAKECC_HANG "$src"; then beh="hang"; fi
if grep -q FAKECC_GARBAGE "$src"; then beh="garbage"; fi
{
  echo "#!/bin/sh"
  echo "echo run >> '$log'"
  case "$beh" in
    crash) echo "echo 'fakecc runtime crash' >&2"; echo "exit 3" ;;
    hang) echo "sleep 30" ;;
    garbage) echo "echo this-is-not-hex" ;;
    ok) echo "echo $hex" ;;
  esac
  echo "exit 0"
} > "$out"
chmod +x "$out"
exit 0
"##;

/// Install the mock compiler as `dir/name` (creating `dir` as needed)
/// and return its path. Distinct names behave like distinct compilers
/// (the printed checksum covers the basename).
pub fn install(dir: &Path, name: &str) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    std::fs::write(&path, FAKECC_SCRIPT)?;
    let mut perms = std::fs::metadata(&path)?.permissions();
    perms.set_mode(0o755);
    std::fs::set_permissions(&path, perms)?;
    Ok(path)
}

/// Install a two-personality fake toolchain (`fakegcc` → gcc,
/// `fakeclang` → clang) into `dir` and return the `(personality, path)`
/// pairs — the shape `llm4fp`'s `ExternalBackendSpec::new` takes. The
/// pair disagrees at every non-strict level, so fake campaigns populate
/// the successful set the way real cross-compiler campaigns do.
pub fn install_pair(dir: &Path) -> io::Result<Vec<(CompilerId, String)>> {
    [(CompilerId::Gcc, "fakegcc"), (CompilerId::Clang, "fakeclang")]
        .into_iter()
        .map(|(id, name)| Ok((id, install(dir, name)?.to_string_lossy().into_owned())))
        .collect()
}

/// [`install_pair`] assembled into a ready [`HostToolchain`].
pub fn install_toolchain(dir: &Path) -> io::Result<HostToolchain> {
    let entries = install_pair(dir)?
        .into_iter()
        .map(|(id, binary)| HostCompiler { id, binary, version: "fakecc 1.0".to_string() })
        .collect();
    Ok(HostToolchain::new(entries))
}

fn count_lines(dir: &Path, needle: &str) -> u64 {
    match std::fs::read_to_string(dir.join("fakecc.log")) {
        Ok(text) => text.lines().filter(|l| l.trim() == needle).count() as u64,
        Err(_) => 0,
    }
}

/// Number of compiler invocations the scripts installed in `dir` have
/// served so far.
pub fn compile_count(dir: &Path) -> u64 {
    count_lines(dir, "compile")
}

/// Number of produced-binary executions logged in `dir`.
pub fn run_count(dir: &Path) -> u64 {
    count_lines(dir, "run")
}
