//! The batch/session driver around a set of real host compilers.
//!
//! [`HostToolchain`] owns the configuration (which binaries implement
//! which compiler personality, the per-process wall-clock timeout) and
//! the spawn counters; [`ExtSession`] owns a scratch directory whose
//! lifetime bounds every file the session emits. The split matches how
//! the differential tester uses it: one toolchain shared by a whole
//! campaign (or many shards), one short-lived session per program.
//!
//! Compile-once-run-many: [`ExtSession::compile`] renders the program
//! with [`llm4fp_fpir::to_c_source_argv`] — inputs arrive as hexadecimal
//! bit patterns on the command line — so the expensive compiler spawn
//! happens once per (program, configuration) and the produced binary is
//! re-executed for every input set.

use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use llm4fp_compiler::{CompilerConfig, CompilerId};
use llm4fp_fpir::{to_c_source, to_c_source_argv, InputSet, Precision, Program};

use crate::{parse_hex_output, ExtError, ExtPhase, HostCompiler};

/// Result of one execution of an externally compiled binary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtRunResult {
    /// Bit pattern printed by the program.
    pub bits: u64,
    /// The decoded floating-point value.
    pub value: f64,
    /// Wall-clock time spent executing.
    pub run_time: Duration,
}

/// Spawn counters of one [`HostToolchain`] (cumulative over all its
/// sessions). Tests assert cache hits against these: a duplicate program
/// served from the result cache must not move either counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SpawnStats {
    /// Compiler processes spawned.
    pub compiles: u64,
    /// Produced-binary processes spawned.
    pub runs: u64,
}

impl SpawnStats {
    /// Total processes spawned.
    pub fn total(&self) -> u64 {
        self.compiles + self.runs
    }
}

/// A set of real host compiler binaries plus execution policy.
#[derive(Debug)]
pub struct HostToolchain {
    compilers: Vec<HostCompiler>,
    timeout: Duration,
    compiles: AtomicU64,
    runs: AtomicU64,
}

/// Distinguishes concurrently live scratch directories within one process.
static SESSION_IDS: AtomicU64 = AtomicU64::new(0);

impl HostToolchain {
    /// Default per-process wall-clock timeout (generous: generated
    /// programs compile and run in milliseconds; anything near this bound
    /// is a hang).
    pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(10);

    /// Build a toolchain from explicit compiler entries (first entry wins
    /// when a personality appears twice).
    pub fn new(compilers: Vec<HostCompiler>) -> Self {
        let mut deduped: Vec<HostCompiler> = Vec::with_capacity(compilers.len());
        for c in compilers {
            if !deduped.iter().any(|d| d.id == c.id) {
                deduped.push(c);
            }
        }
        HostToolchain {
            compilers: deduped,
            timeout: Self::DEFAULT_TIMEOUT,
            compiles: AtomicU64::new(0),
            runs: AtomicU64::new(0),
        }
    }

    /// Probe the machine for gcc/clang and build a toolchain from what
    /// responds.
    pub fn detect() -> Self {
        Self::new(crate::detect_host_compilers())
    }

    /// Set the per-process wall-clock timeout (applies to compiler and
    /// binary spawns alike).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout.max(Duration::from_millis(1));
        self
    }

    /// The configured per-process timeout.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// The compiler entries of this toolchain.
    pub fn compilers(&self) -> &[HostCompiler] {
        &self.compilers
    }

    /// The binary implementing one compiler personality, if any.
    pub fn compiler_for(&self, id: CompilerId) -> Option<&HostCompiler> {
        self.compilers.iter().find(|c| c.id == id)
    }

    /// Stable identity string of this toolchain — what the backend-aware
    /// result cache scopes its keys by. Two toolchains with the same
    /// binaries, versions and timeout produce the same outcomes for a
    /// given program, and only those may share cache entries.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("extcc[");
        for (i, c) in self.compilers.iter().enumerate() {
            if i > 0 {
                out.push(';');
            }
            let _ = write!(out, "{}={}({})", c.id.name(), c.binary, c.version);
        }
        let _ = write!(out, ";timeout={}ms]", self.timeout.as_millis());
        out
    }

    /// Snapshot of the cumulative spawn counters.
    pub fn spawn_stats(&self) -> SpawnStats {
        SpawnStats {
            compiles: self.compiles.load(Ordering::Relaxed),
            runs: self.runs.load(Ordering::Relaxed),
        }
    }

    /// Open a fresh scratch session. The directory lives under the system
    /// temp dir and is removed when the session drops.
    pub fn session(&self) -> Result<ExtSession<'_>, ExtError> {
        let dir = std::env::temp_dir().join(format!(
            "llm4fp-extcc-{}-{}",
            std::process::id(),
            SESSION_IDS.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).map_err(|e| ExtError::Io(e.to_string()))?;
        Ok(ExtSession { toolchain: self, dir, counter: 0 })
    }

    /// One-shot convenience: open a session, compile `program` with
    /// `inputs` baked into `main`, run the binary once, and clean up.
    /// (The cross-validation tests use this; campaigns go through
    /// [`ExtSession`] to amortize compilation.)
    pub fn compile_and_run(
        &self,
        program: &Program,
        inputs: &InputSet,
        config: CompilerConfig,
    ) -> Result<ExtRunResult, ExtError> {
        let mut session = self.session()?;
        let artifact = session.compile_baked(program, inputs, config)?;
        session.run(&artifact, &[])
    }
}

/// One externally compiled binary: the product of one
/// (program, configuration) compile, executable against many input sets.
#[derive(Debug, Clone)]
pub struct ExtArtifact {
    /// The configuration the binary was compiled under.
    pub config: CompilerConfig,
    /// Precision of the program (drives output parsing and decoding).
    pub precision: Precision,
    /// Wall-clock time the compiler spawn took.
    pub compile_time: Duration,
    bin: PathBuf,
}

/// A scratch directory bound to one [`HostToolchain`], accumulating the
/// session's sources and binaries; dropped (and deleted) when the caller
/// is done with the program.
#[derive(Debug)]
pub struct ExtSession<'t> {
    toolchain: &'t HostToolchain,
    dir: PathBuf,
    counter: u64,
}

impl ExtSession<'_> {
    /// The scratch directory this session writes into.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// Compile `program` for `config` with an argv-reading `main`
    /// (compile-once-run-many; pass each input set to [`ExtSession::run`]
    /// as `InputSet::to_argv`).
    pub fn compile(
        &mut self,
        program: &Program,
        config: CompilerConfig,
    ) -> Result<ExtArtifact, ExtError> {
        self.compile_source(&to_c_source_argv(program), program.precision, config)
    }

    /// Compile `program` with `inputs` baked into `main` (the classic
    /// one-shot shape; run the artifact with an empty argument list).
    pub fn compile_baked(
        &mut self,
        program: &Program,
        inputs: &InputSet,
        config: CompilerConfig,
    ) -> Result<ExtArtifact, ExtError> {
        self.compile_source(&to_c_source(program, inputs), program.precision, config)
    }

    /// Low-level entry point: compile raw C source text for `config`.
    /// This is what the hermetic `fakecc` tests drive directly (markers
    /// in the source select mock behaviours).
    pub fn compile_source(
        &mut self,
        source: &str,
        precision: Precision,
        config: CompilerConfig,
    ) -> Result<ExtArtifact, ExtError> {
        let compiler = self.toolchain.compiler_for(config.compiler).ok_or_else(|| {
            ExtError::MissingCompiler { compiler: config.compiler.name().to_string() }
        })?;
        self.counter += 1;
        let stem =
            format!("prog_{}_{}_{}", self.counter, config.compiler.name(), config.level.name());
        let src_path = self.dir.join(format!("{stem}.c"));
        let bin_path = self.dir.join(stem);
        std::fs::write(&src_path, source).map_err(|e| ExtError::Io(e.to_string()))?;

        let mut cmd = Command::new(&compiler.binary);
        cmd.args(config.level.flags(config.compiler))
            .arg(&src_path)
            .arg("-o")
            .arg(&bin_path)
            .arg("-lm");
        self.toolchain.compiles.fetch_add(1, Ordering::Relaxed);
        let output = run_with_timeout(cmd, self.toolchain.timeout, ExtPhase::Compile)?;
        if !output.status.success() {
            return Err(ExtError::CompileFailed {
                stderr: String::from_utf8_lossy(&output.stderr).to_string(),
            });
        }
        Ok(ExtArtifact { config, precision, compile_time: output.elapsed, bin: bin_path })
    }

    /// Execute a compiled artifact with the given argument list (empty
    /// for baked-input artifacts, `InputSet::to_argv` for argv ones) and
    /// parse the printed bit pattern.
    pub fn run(&self, artifact: &ExtArtifact, args: &[String]) -> Result<ExtRunResult, ExtError> {
        let mut cmd = Command::new(&artifact.bin);
        cmd.args(args);
        self.toolchain.runs.fetch_add(1, Ordering::Relaxed);
        let output = run_with_timeout(cmd, self.toolchain.timeout, ExtPhase::Run)?;
        if !output.status.success() {
            return Err(ExtError::RunCrashed {
                code: output.status.code(),
                stderr: String::from_utf8_lossy(&output.stderr).to_string(),
            });
        }
        let stdout = String::from_utf8_lossy(&output.stdout).trim().to_string();
        let bits = parse_hex_output(&stdout, artifact.precision)
            .ok_or(ExtError::BadOutput { stdout: stdout.clone() })?;
        let value = match artifact.precision {
            Precision::F64 => f64::from_bits(bits),
            Precision::F32 => f32::from_bits(bits as u32) as f64,
        };
        Ok(ExtRunResult { bits, value, run_time: output.elapsed })
    }

    /// Compile-once-run-many convenience: execute an argv artifact
    /// against one input set of `program`.
    pub fn run_inputs(
        &self,
        artifact: &ExtArtifact,
        program: &Program,
        inputs: &InputSet,
    ) -> Result<ExtRunResult, ExtError> {
        self.run(artifact, &inputs.to_argv(program))
    }
}

impl Drop for ExtSession<'_> {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Captured output of one timed process spawn ([`run_with_timeout`]).
#[derive(Debug)]
pub struct TimedOutput {
    /// Exit status of the process.
    pub status: std::process::ExitStatus,
    /// Everything the process wrote to stdout.
    pub stdout: Vec<u8>,
    /// Everything the process wrote to stderr.
    pub stderr: Vec<u8>,
    /// Wall-clock time from spawn to exit.
    pub elapsed: Duration,
}

/// Arrange for `cmd` to start in its own process group (pgid = child
/// pid) on Unix, so a later [`kill_group`] can signal the child's entire
/// descendant tree — a killed compiler driver cannot leave `cc1`-style
/// grandchildren burning CPU, and a killed worker daemon takes any
/// compiler processes it spawned with it. A no-op on other platforms,
/// where [`kill_group`] falls back to killing the child alone.
pub fn group_spawn(cmd: &mut Command) -> &mut Command {
    #[cfg(unix)]
    {
        use std::os::unix::process::CommandExt as _;
        cmd.process_group(0);
    }
    cmd
}

/// Spawn `cmd` with piped output and a wall-clock deadline. On timeout
/// the child — and, on Unix, its whole process group — is killed and
/// reaped; the caller gets a structured [`ExtError::Timeout`]. (The
/// pipes are drained only after exit, which is safe for the tiny
/// outputs generated programs produce — a process that fills the pipe
/// buffer and blocks reads as a hang, which the timeout converts into a
/// recorded finding.)
pub fn run_with_timeout(
    mut cmd: Command,
    timeout: Duration,
    phase: ExtPhase,
) -> Result<TimedOutput, ExtError> {
    cmd.stdin(Stdio::null()).stdout(Stdio::piped()).stderr(Stdio::piped());
    group_spawn(&mut cmd);
    let start = Instant::now();
    let mut child = cmd.spawn().map_err(|e| ExtError::Io(e.to_string()))?;
    loop {
        match child.try_wait() {
            Ok(Some(_)) => break,
            Ok(None) => {
                if start.elapsed() >= timeout {
                    kill_group(&mut child);
                    return Err(ExtError::Timeout { phase, after_ms: timeout.as_millis() as u64 });
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => {
                kill_group(&mut child);
                return Err(ExtError::Io(e.to_string()));
            }
        }
    }
    let elapsed = start.elapsed();
    let output = child.wait_with_output().map_err(|e| ExtError::Io(e.to_string()))?;
    Ok(TimedOutput { status: output.status, stdout: output.stdout, stderr: output.stderr, elapsed })
}

/// Kill a child spawned via [`group_spawn`] and (on Unix) every process
/// in its group, then reap it. The group signal goes through
/// `/bin/kill -- -pgid` — this crate is `deny(unsafe_code)`, so no
/// direct `libc::kill` — and is best-effort: the direct `Child::kill`
/// below covers the child itself either way.
pub fn kill_group(child: &mut std::process::Child) {
    #[cfg(unix)]
    {
        let _ = Command::new("kill")
            .args(["-9", "--", &format!("-{}", child.id())])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status();
    }
    let _ = child.kill();
    let _ = child.wait();
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm4fp_compiler::OptLevel;

    fn entry(id: CompilerId, binary: &str) -> HostCompiler {
        HostCompiler { id, binary: binary.to_string(), version: "test 1.0".to_string() }
    }

    #[test]
    fn toolchain_dedups_personalities_and_fingerprints_stably() {
        let tc = HostToolchain::new(vec![
            entry(CompilerId::Gcc, "gcc-a"),
            entry(CompilerId::Gcc, "gcc-b"),
            entry(CompilerId::Clang, "clang-a"),
        ])
        .with_timeout(Duration::from_millis(1234));
        assert_eq!(tc.compilers().len(), 2);
        assert_eq!(tc.compiler_for(CompilerId::Gcc).unwrap().binary, "gcc-a");
        assert!(tc.compiler_for(CompilerId::Nvcc).is_none());
        let fp = tc.fingerprint();
        assert!(fp.contains("gcc=gcc-a(test 1.0)"), "{fp}");
        assert!(fp.contains("clang=clang-a"), "{fp}");
        assert!(fp.contains("timeout=1234ms"), "{fp}");
        // Identical configuration, identical fingerprint.
        let tc2 = HostToolchain::new(vec![
            entry(CompilerId::Gcc, "gcc-a"),
            entry(CompilerId::Clang, "clang-a"),
        ])
        .with_timeout(Duration::from_millis(1234));
        assert_eq!(tc2.fingerprint(), fp);
    }

    #[test]
    fn missing_compiler_is_a_structured_error() {
        let tc = HostToolchain::new(vec![entry(CompilerId::Gcc, "gcc")]);
        let mut session = tc.session().expect("scratch dir");
        let err = session
            .compile_source(
                "int main(void) { return 0; }",
                Precision::F64,
                CompilerConfig::new(CompilerId::Nvcc, OptLevel::O0),
            )
            .unwrap_err();
        assert_eq!(err, ExtError::MissingCompiler { compiler: "nvcc".to_string() });
    }

    #[test]
    fn nonexistent_binaries_surface_as_io_errors_and_sessions_clean_up() {
        let tc = HostToolchain::new(vec![entry(
            CompilerId::Gcc,
            "/nonexistent/llm4fp-no-such-compiler",
        )]);
        let dir;
        {
            let mut session = tc.session().expect("scratch dir");
            dir = session.dir().to_path_buf();
            assert!(dir.exists());
            let err = session
                .compile_source(
                    "int main(void) { return 0; }",
                    Precision::F64,
                    CompilerConfig::new(CompilerId::Gcc, OptLevel::O0),
                )
                .unwrap_err();
            assert!(matches!(err, ExtError::Io(_)), "{err}");
            // The spawn was attempted and counted.
            assert_eq!(tc.spawn_stats(), SpawnStats { compiles: 1, runs: 0 });
        }
        assert!(!dir.exists(), "session drop must remove the scratch dir");
    }
}
