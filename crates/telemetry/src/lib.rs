//! Deterministic structured tracing and metrics for campaign runs.
//!
//! The observability layer the orchestrator carries into production: span
//! guards, counters and fixed-bucket duration histograms collected per
//! shard *lane* and merged in shard-index order, so the aggregated
//! [`MetricsReport`] is a pure function of `(config, K, E)` — exactly like
//! campaign results themselves. Worker counts, process slots and thread
//! interleavings change wall-clock numbers (histograms, trace events)
//! but never a counter.
//!
//! Two invariants carry the whole design:
//!
//! * **Zero cost when disabled.** A disabled [`Telemetry`] handle is a
//!   `None`; every recording call is one branch and returns. No clocks
//!   are read, nothing allocates, no locks are taken. Gated benchmarks
//!   run with telemetry off and must not move.
//! * **Side-effect-free when enabled.** Telemetry observes the campaign,
//!   it never participates: no RNG draws, no changes to iteration order,
//!   no entries in checkpoints. Campaign results are bit-identical with
//!   tracing on or off.
//!
//! Determinism under the shared result cache needs one extra idea: which
//! programs hit vs. miss the cross-shard cache is racy (two shards can
//! test the same structure concurrently and both miss), so any counter
//! recorded *inside* computed work would vary with the worker count.
//! Compute-level counters therefore go through [`Telemetry::add_keyed`],
//! which dedups by a caller-chosen stable id (the program hash): however
//! many times a racy miss recomputes the same program, the merged report
//! counts it once. Campaign-level counters recorded from cached results
//! use plain [`Telemetry::add`] and are deterministic by construction.
//!
//! There is deliberately no global static sink — handles are threaded
//! explicitly so parallel test suites and multi-campaign schedulers
//! cannot cross-contaminate.

#![forbid(unsafe_code)]

mod collector;
mod report;

pub use collector::{
    Collector, CounterSnapshot, DurationHistogram, TelemetryHub, TraceEvent, HISTOGRAM_BUCKETS,
};
pub use report::{MetricsReport, TelemetrySummary};

use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// Well-known metric keys, shared by every instrumentation site so the
/// sink layer and `trace_report` agree on names. Dynamic keys (per
/// config-pair discrepancy counters, `ExtError` taxonomy buckets) extend
/// these prefixes.
pub mod keys {
    /// Programs that completed the differential pipeline (plain).
    pub const PROGRAMS: &str = "campaign.programs";
    /// Generation attempts that produced no valid program (plain).
    pub const GENERATION_FAILURES: &str = "campaign.generation_failures";
    /// Pairwise output comparisons performed (plain).
    pub const COMPARISONS: &str = "campaign.comparisons";
    /// Comparisons that observed differing bit patterns (plain).
    pub const DISCREPANCIES: &str = "campaign.discrepancies";
    /// Prefix for per-config-pair discrepancy counters:
    /// `campaign.discrepancies.<cc-a>-O<la>.vs.<cc-b>-O<lb>` (plain).
    pub const DISCREPANCY_PAIR_PREFIX: &str = "campaign.discrepancies.";
    /// Programs the seal pipeline refused for at least one config (keyed
    /// by program hash).
    pub const SEAL_REFUSALS: &str = "difftest.seal_refusals";
    /// Config slots that fell back to the reference interpreter after a
    /// seal refusal (keyed by program hash).
    pub const INTERPRETER_FALLBACKS: &str = "difftest.interpreter_fallbacks";
    /// Instructions removed by the seal-time peephole pipeline (keyed by
    /// program hash).
    pub const PEEPHOLE_INSTRS_SAVED: &str = "compiler.peephole.instrs_saved";
    /// Registers freed by seal-time register coalescing (keyed by
    /// program hash).
    pub const PEEPHOLE_REGS_SAVED: &str = "compiler.peephole.regs_saved";
    /// External compiler processes spawned (keyed by program hash).
    pub const EXTCC_COMPILES: &str = "extcc.compiles";
    /// External binary processes spawned (keyed by program hash).
    pub const EXTCC_RUNS: &str = "extcc.runs";
    /// Prefix for `ExtError` taxonomy counters: `extcc.err.<taxonomy>`
    /// (keyed by program hash).
    pub const EXTCC_ERR_PREFIX: &str = "extcc.err.";
    /// Run-dir persistence failures — dropped shard progress lines and
    /// failed artifact writes (keyed by shard and line ordinal so a
    /// redispatched shard's retries collapse). Zero on healthy runs, so
    /// the deterministic `metrics.json` stays byte-identical; the plain
    /// count also surfaces as `persist_errors` in `summary.json`.
    pub const PERSIST_ERRORS: &str = "persist.errors";

    /// Span: one program through generate + difftest (histogram/trace).
    pub const SPAN_PROGRAM: &str = "campaign.program";
    /// Span: peephole census + constant-index folding pass.
    pub const SPAN_PEEPHOLE_CENSUS: &str = "peephole.census";
    /// Span: peephole constant-propagation pass.
    pub const SPAN_PEEPHOLE_PROPAGATE: &str = "peephole.propagate";
    /// Span: peephole dead-register elimination pass.
    pub const SPAN_PEEPHOLE_DCE: &str = "peephole.dce";
    /// Span: peephole register-coalescing pass.
    pub const SPAN_PEEPHOLE_COALESCE: &str = "peephole.coalesce";
    /// Span: peephole jump-threading pass.
    pub const SPAN_PEEPHOLE_THREAD_JUMPS: &str = "peephole.thread_jumps";
    /// Span: seal the whole config matrix for one program.
    pub const SPAN_SEAL: &str = "difftest.seal";
    /// Span: execute the sealed matrix over every input set.
    pub const SPAN_EXECUTE: &str = "difftest.execute";
    /// Span: one shard's full run segment.
    pub const SPAN_SHARD_RUN: &str = "shard.run";
    /// Span: the single-threaded exchange between epochs.
    pub const SPAN_EXCHANGE: &str = "orchestrator.exchange";
    /// Span: the whole orchestrated run.
    pub const SPAN_RUN: &str = "orchestrator.run";
    /// Histogram: delay between pool start and a shard being picked up.
    pub const QUEUE_WAIT: &str = "pool.queue_wait";
    /// Histogram: external compile wall time (per process).
    pub const EXTCC_COMPILE_TIME: &str = "extcc.compile_time";
    /// Histogram: external run wall time (per process).
    pub const EXTCC_RUN_TIME: &str = "extcc.run_time";
}

/// Which telemetry features a run enables. The default is fully off —
/// existing callers and gated benchmarks see the no-op path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TelemetrySpec {
    /// Collect counters and histograms; persisted runs write
    /// `metrics.json`.
    pub metrics: bool,
    /// Also record span events; persisted runs write a Chrome
    /// `trace_event`-compatible `trace.jsonl`. Implies `metrics`.
    pub trace: bool,
}

impl TelemetrySpec {
    /// Everything off (the default).
    pub const OFF: TelemetrySpec = TelemetrySpec { metrics: false, trace: false };

    /// Counters and histograms only.
    pub const METRICS: TelemetrySpec = TelemetrySpec { metrics: true, trace: false };

    /// Counters, histograms and span events.
    pub const TRACE: TelemetrySpec = TelemetrySpec { metrics: true, trace: true };

    /// True if any collection happens at all.
    pub fn enabled(&self) -> bool {
        self.metrics || self.trace
    }

    /// True if span events are recorded.
    pub fn trace_enabled(&self) -> bool {
        self.trace
    }
}

/// A cheaply clonable recording handle. Disabled handles (the default)
/// are a single `None` and make every call a no-op; enabled handles
/// share one per-lane [`Collector`] issued by a [`TelemetryHub`].
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    collector: Option<Arc<Collector>>,
}

impl Telemetry {
    /// The no-op handle. Recording through it costs one branch.
    pub fn disabled() -> Telemetry {
        Telemetry { collector: None }
    }

    pub(crate) fn from_collector(collector: Arc<Collector>) -> Telemetry {
        Telemetry { collector: Some(collector) }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.collector.is_some()
    }

    /// Whether span events are recorded (trace mode).
    pub fn trace_enabled(&self) -> bool {
        self.collector.as_ref().is_some_and(|c| c.trace_enabled())
    }

    /// Increment a plain counter. Use only for values that are already
    /// deterministic (derived from cached/merged results).
    pub fn add(&self, key: &str, n: u64) {
        if let Some(collector) = &self.collector {
            collector.add(key, n);
        }
    }

    /// Increment a deduplicated counter: contributions with the same
    /// `(key, id)` collapse to one when lanes merge, making compute-level
    /// counts immune to racy cache misses recomputing a program.
    pub fn add_keyed(&self, key: &str, id: u64, n: u64) {
        if let Some(collector) = &self.collector {
            collector.add_keyed(key, id, n);
        }
    }

    /// Export this handle's counter state as a serializable
    /// [`CounterSnapshot`] — what an out-of-process worker ships home at
    /// the end of a shard segment. `None` for disabled handles.
    pub fn export(&self) -> Option<CounterSnapshot> {
        self.collector.as_ref().map(|c| c.export())
    }

    /// Fold a worker's exported snapshot into this lane: plain counters
    /// add, keyed counters union by id (first writer wins — every writer
    /// wrote the same value, the computation is deterministic per id).
    /// No-op on disabled handles.
    pub fn absorb(&self, snapshot: &CounterSnapshot) {
        if let Some(collector) = &self.collector {
            collector.absorb(snapshot);
        }
    }

    /// Record one duration observation into the key's fixed-bucket
    /// histogram. Wall-clock data: never merged into `metrics.json`.
    pub fn observe(&self, key: &str, duration: Duration) {
        if let Some(collector) = &self.collector {
            collector.observe(key, duration);
        }
    }

    /// Open a span guard: on drop it records the elapsed time under
    /// `name` (histogram always, trace event in trace mode). Disabled
    /// handles return an inert guard without reading the clock.
    pub fn span(&self, name: &'static str) -> Span {
        match &self.collector {
            Some(collector) => {
                Span { collector: Some(Arc::clone(collector)), name, start: Some(Instant::now()) }
            }
            None => Span { collector: None, name, start: None },
        }
    }
}

/// RAII span guard returned by [`Telemetry::span`]. Records on drop;
/// [`Span::finish`] drops it explicitly for readability at call sites.
#[must_use = "a span records when dropped; binding it to `_` drops immediately"]
#[derive(Debug)]
pub struct Span {
    collector: Option<Arc<Collector>>,
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Explicitly end the span now.
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let (Some(collector), Some(start)) = (self.collector.take(), self.start) {
            collector.record_span(self.name, start);
        }
    }
}

/// Mix a stable sub-ordinal into a program id to key several distinct
/// per-program contributions (e.g. one per seal pipeline) without
/// collisions. Deterministic, order-free, and independent of where the
/// program was computed.
pub fn keyed_id(id: u64, ordinal: u64) -> u64 {
    // SplitMix64 finalizer over the combined value: cheap, well mixed.
    let mut z = id ^ ordinal.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        assert!(!tel.trace_enabled());
        tel.add("x", 1);
        tel.add_keyed("y", 7, 1);
        tel.observe("z", Duration::from_millis(1));
        tel.span("w").finish();
        // Nothing to assert beyond "does not panic": there is no sink.
    }

    #[test]
    fn spec_defaults_to_off_and_trace_implies_enabled() {
        assert_eq!(TelemetrySpec::default(), TelemetrySpec::OFF);
        assert!(!TelemetrySpec::OFF.enabled());
        assert!(TelemetrySpec::METRICS.enabled());
        assert!(!TelemetrySpec::METRICS.trace_enabled());
        assert!(TelemetrySpec::TRACE.enabled());
        assert!(TelemetrySpec::TRACE.trace_enabled());
    }

    #[test]
    fn keyed_ids_separate_ordinals_and_stay_stable() {
        assert_eq!(keyed_id(42, 0), keyed_id(42, 0));
        assert_ne!(keyed_id(42, 0), keyed_id(42, 1));
        assert_ne!(keyed_id(42, 0), keyed_id(43, 0));
    }

    #[test]
    fn counters_merge_in_lane_order_and_dedup_by_id() {
        for lanes in [1usize, 2, 4] {
            let hub = TelemetryHub::new(TelemetrySpec::METRICS);
            for lane in 0..lanes {
                let tel = hub.lane(lane);
                tel.add("campaign.programs", 10);
                // The same keyed contribution from every lane must count
                // once, regardless of how many lanes replayed it.
                tel.add_keyed("difftest.seal_refusals", 0xfeed, 2);
                tel.add_keyed("difftest.seal_refusals", lane as u64 + 1000, 1);
            }
            let report = hub.metrics();
            assert_eq!(report.get("campaign.programs"), 10 * lanes as u64);
            assert_eq!(report.get("difftest.seal_refusals"), 2 + lanes as u64);
        }
    }

    #[test]
    fn merged_reports_are_independent_of_recording_interleaving() {
        // Simulates the racy-cache scenario: lane 1 replays lane 0's
        // keyed work (both "missed"), plus recording order differs.
        let a = TelemetryHub::new(TelemetrySpec::METRICS);
        a.lane(0).add_keyed("k", 1, 5);
        a.lane(1).add_keyed("k", 2, 7);
        let b = TelemetryHub::new(TelemetrySpec::METRICS);
        b.lane(1).add_keyed("k", 2, 7);
        b.lane(0).add_keyed("k", 1, 5);
        b.lane(1).add_keyed("k", 1, 5); // racy duplicate computation
        assert_eq!(a.metrics(), b.metrics());
    }

    #[test]
    fn exported_snapshots_absorb_to_identical_metrics() {
        // The worker-daemon scenario: lane state exported in one hub
        // (the worker process), absorbed into another (the coordinator)
        // — merged metrics must match recording directly, including the
        // first-writer-wins dedup for keyed counters and plain-counter
        // summation across repeated segments.
        let direct = TelemetryHub::new(TelemetrySpec::METRICS);
        direct.lane(0).add("campaign.programs", 5);
        direct.lane(0).add("campaign.programs", 3);
        direct.lane(0).add_keyed("difftest.seal_refusals", 0xbeef, 2);
        direct.lane(1).add_keyed("difftest.seal_refusals", 0xbeef, 2);

        let coordinator = TelemetryHub::new(TelemetrySpec::METRICS);
        for (lane, adds) in [(0usize, [5u64, 3].as_slice()), (1, [].as_slice())] {
            let worker = TelemetryHub::new(TelemetrySpec::METRICS);
            let tel = worker.lane(0);
            for &n in adds {
                tel.add("campaign.programs", n);
            }
            tel.add_keyed("difftest.seal_refusals", 0xbeef, 2);
            let snapshot = tel.export().expect("enabled lane exports");
            coordinator.lane(lane).absorb(&snapshot);
            // Absorbing the same snapshot twice must not double keyed
            // contributions (straggler duplicates are filtered upstream,
            // but keyed dedup is the second line of defence).
            assert!(!snapshot.is_empty());
        }
        assert_eq!(coordinator.metrics(), direct.metrics());
    }

    #[test]
    fn disabled_handles_export_nothing_and_absorb_is_inert() {
        let tel = Telemetry::disabled();
        assert!(tel.export().is_none());
        tel.absorb(&CounterSnapshot::default()); // must not panic
        let mut snapshot = CounterSnapshot::default();
        assert!(snapshot.is_empty());
        snapshot.counters.insert("x".into(), 1);
        assert!(!snapshot.is_empty());
        tel.absorb(&snapshot);
    }

    #[test]
    fn spans_feed_histograms_and_trace_events() {
        let hub = TelemetryHub::new(TelemetrySpec::TRACE);
        let tel = hub.lane(0);
        assert!(tel.trace_enabled());
        tel.span("difftest.seal").finish();
        tel.span("difftest.seal").finish();
        let histogram = hub.histogram("difftest.seal").expect("histogram recorded");
        assert_eq!(histogram.count, 2);
        assert_eq!(hub.trace_events().len(), 2);
        assert!(hub.trace_events().iter().all(|e| e.name == "difftest.seal" && e.lane == 0));
    }

    #[test]
    fn metrics_mode_skips_trace_events_but_keeps_histograms() {
        let hub = TelemetryHub::new(TelemetrySpec::METRICS);
        let tel = hub.lane(0);
        assert!(!tel.trace_enabled());
        tel.span("difftest.execute").finish();
        assert_eq!(hub.histogram("difftest.execute").expect("histogram").count, 1);
        assert!(hub.trace_events().is_empty());
    }

    #[test]
    fn lane_handles_are_shared_per_index() {
        let hub = TelemetryHub::new(TelemetrySpec::METRICS);
        hub.lane(3).add("x", 1);
        hub.lane(3).add("x", 2);
        hub.lane(0).add("x", 4);
        assert_eq!(hub.metrics().get("x"), 7);
    }

    #[test]
    fn disabled_hub_issues_disabled_handles() {
        let hub = TelemetryHub::new(TelemetrySpec::OFF);
        assert!(!hub.enabled());
        assert!(!hub.lane(0).is_enabled());
        assert!(hub.metrics().is_empty());
    }
}
