//! Per-lane collectors and the hub that merges them deterministically.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::report::{MetricsReport, TelemetrySummary};
use crate::{keys, Telemetry, TelemetrySpec};

/// Number of power-of-two duration buckets: bucket `i` holds
/// observations with `i`-bit nanosecond magnitudes, so the top bucket
/// absorbs everything from ~9 minutes up.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A fixed-bucket log₂ duration histogram. Allocation-free to update;
/// `Copy` so merging is plain arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurationHistogram {
    /// `buckets[i]` counts observations whose nanosecond value has `i`
    /// significant bits (bucket 0: zero-length).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observations in nanoseconds (saturating).
    pub sum_nanos: u64,
    /// Largest single observation in nanoseconds.
    pub max_nanos: u64,
}

impl Default for DurationHistogram {
    fn default() -> Self {
        DurationHistogram { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum_nanos: 0, max_nanos: 0 }
    }
}

impl DurationHistogram {
    /// Record one observation.
    pub fn observe(&mut self, duration: Duration) {
        let nanos = u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX);
        let bucket = (64 - nanos.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum_nanos = self.sum_nanos.saturating_add(nanos);
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &DurationHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_nanos = self.sum_nanos.saturating_add(other.sum_nanos);
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }

    /// Total recorded time.
    pub fn sum(&self) -> Duration {
        Duration::from_nanos(self.sum_nanos)
    }

    /// Mean observation, or zero when empty.
    pub fn mean(&self) -> Duration {
        self.sum_nanos.checked_div(self.count).map_or(Duration::ZERO, Duration::from_nanos)
    }
}

/// One completed span occurrence, timestamped relative to the hub epoch
/// so events from every lane share a clock. Renders as a Chrome
/// `trace_event` complete event (`"ph": "X"`); lanes map to `tid`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (a `keys::SPAN_*` constant at every internal site).
    pub name: &'static str,
    /// Lane (shard index, or the orchestrator's own lane) — the `tid`.
    pub lane: u32,
    /// Start offset from the hub epoch, in microseconds.
    pub start_micros: u64,
    /// Span duration in microseconds.
    pub dur_micros: u64,
}

impl TraceEvent {
    /// One line of Chrome `trace_event` JSON (the JSON-lines flavour
    /// `chrome://tracing` and Perfetto both ingest). Span names are
    /// static identifiers, so no string escaping is needed.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"cat\":\"llm4fp\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
            self.name, self.start_micros, self.dur_micros, self.lane
        )
    }
}

/// A serializable snapshot of one lane's counter state — the part of a
/// collector that feeds the deterministic [`MetricsReport`]. This is the
/// wire format out-of-process workers use to ship their metrics home:
/// plain counters sum when absorbed, keyed counters union by id with
/// first-writer-wins — exactly the lane-merge semantics of
/// [`TelemetryHub::metrics`], so a campaign farmed to worker processes
/// reports byte-identical metrics to an in-process run. Histograms and
/// trace events are deliberately absent: they carry wall-clock data,
/// which never participates in `metrics.json`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Plain counters (deterministic by construction at the call sites).
    pub counters: BTreeMap<String, u64>,
    /// Keyed counters: metric key → (stable id → contribution).
    pub keyed: BTreeMap<String, BTreeMap<u64, u64>>,
}

impl CounterSnapshot {
    /// True when the snapshot carries no contributions at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.keyed.is_empty()
    }
}

/// The per-lane sink behind enabled [`Telemetry`] handles. Interior
/// mutability keeps the recording API `&self` (lanes are shared across
/// a shard's worker threads); each category sits behind its own lock so
/// counters never contend with span recording.
#[derive(Debug)]
pub struct Collector {
    lane: u32,
    trace: bool,
    epoch: Instant,
    counters: Mutex<BTreeMap<String, u64>>,
    keyed: Mutex<BTreeMap<String, BTreeMap<u64, u64>>>,
    histograms: Mutex<BTreeMap<String, DurationHistogram>>,
    events: Mutex<Vec<TraceEvent>>,
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // Telemetry never panics while holding these locks; recover anyway
    // rather than poison-propagate out of an observability call.
    mutex.lock().unwrap_or_else(|poison| poison.into_inner())
}

impl Collector {
    fn new(lane: u32, trace: bool, epoch: Instant) -> Collector {
        Collector {
            lane,
            trace,
            epoch,
            counters: Mutex::new(BTreeMap::new()),
            keyed: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Whether this collector records trace events.
    pub fn trace_enabled(&self) -> bool {
        self.trace
    }

    pub(crate) fn add(&self, key: &str, n: u64) {
        let mut counters = lock(&self.counters);
        match counters.get_mut(key) {
            Some(count) => *count += n,
            None => {
                counters.insert(key.to_string(), n);
            }
        }
    }

    pub(crate) fn add_keyed(&self, key: &str, id: u64, n: u64) {
        let mut keyed = lock(&self.keyed);
        match keyed.get_mut(key) {
            Some(ids) => {
                ids.insert(id, n);
            }
            None => {
                keyed.insert(key.to_string(), BTreeMap::from([(id, n)]));
            }
        }
    }

    pub(crate) fn observe(&self, key: &str, duration: Duration) {
        let mut histograms = lock(&self.histograms);
        match histograms.get_mut(key) {
            Some(histogram) => histogram.observe(duration),
            None => {
                let mut histogram = DurationHistogram::default();
                histogram.observe(duration);
                histograms.insert(key.to_string(), histogram);
            }
        }
    }

    pub(crate) fn export(&self) -> CounterSnapshot {
        CounterSnapshot { counters: lock(&self.counters).clone(), keyed: lock(&self.keyed).clone() }
    }

    pub(crate) fn absorb(&self, snapshot: &CounterSnapshot) {
        for (key, &n) in &snapshot.counters {
            self.add(key, n);
        }
        let mut keyed = lock(&self.keyed);
        for (key, ids) in &snapshot.keyed {
            let mine = keyed.entry(key.clone()).or_default();
            for (&id, &n) in ids {
                mine.entry(id).or_insert(n);
            }
        }
    }

    pub(crate) fn record_span(&self, name: &'static str, start: Instant) {
        let end = Instant::now();
        self.observe(name, end - start);
        if self.trace {
            let event = TraceEvent {
                name,
                lane: self.lane,
                start_micros: (start - self.epoch).as_micros() as u64,
                dur_micros: (end - start).as_micros() as u64,
            };
            lock(&self.events).push(event);
        }
    }
}

/// Owns every lane of one run and merges them in lane-index order, which
/// is what makes the merged [`MetricsReport`] deterministic: plain
/// counters commute, keyed counters union by id (first writer wins, and
/// every writer wrote the same value — the computation is deterministic
/// per id), and the fold order itself never depends on thread timing.
#[derive(Debug)]
pub struct TelemetryHub {
    spec: TelemetrySpec,
    epoch: Instant,
    lanes: Mutex<Vec<Option<Arc<Collector>>>>,
}

impl TelemetryHub {
    /// A hub for one run. With `TelemetrySpec::OFF` every lane handle it
    /// issues is the no-op [`Telemetry::disabled`].
    pub fn new(spec: TelemetrySpec) -> TelemetryHub {
        TelemetryHub { spec, epoch: Instant::now(), lanes: Mutex::new(Vec::new()) }
    }

    /// Whether this hub collects anything.
    pub fn enabled(&self) -> bool {
        self.spec.enabled()
    }

    /// The spec this hub was built with.
    pub fn spec(&self) -> TelemetrySpec {
        self.spec
    }

    /// The recording handle for lane `index` (shard index; use an index
    /// past the shard count for the orchestrator's own lane). Repeated
    /// calls share one collector, so lanes survive across epochs.
    pub fn lane(&self, index: usize) -> Telemetry {
        if !self.spec.enabled() {
            return Telemetry::disabled();
        }
        let mut lanes = lock(&self.lanes);
        if lanes.len() <= index {
            lanes.resize(index + 1, None);
        }
        let collector = lanes[index].get_or_insert_with(|| {
            Arc::new(Collector::new(index as u32, self.spec.trace_enabled(), self.epoch))
        });
        Telemetry::from_collector(Arc::clone(collector))
    }

    fn collectors(&self) -> Vec<Arc<Collector>> {
        lock(&self.lanes).iter().flatten().map(Arc::clone).collect()
    }

    /// Merge every lane's counters, in lane order, into the
    /// deterministic metrics report.
    pub fn metrics(&self) -> MetricsReport {
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut keyed: BTreeMap<String, BTreeMap<u64, u64>> = BTreeMap::new();
        for collector in self.collectors() {
            for (key, n) in lock(&collector.counters).iter() {
                *counters.entry(key.clone()).or_insert(0) += n;
            }
            for (key, ids) in lock(&collector.keyed).iter() {
                let merged = keyed.entry(key.clone()).or_default();
                for (&id, &n) in ids {
                    merged.entry(id).or_insert(n);
                }
            }
        }
        for (key, ids) in keyed {
            *counters.entry(key).or_insert(0) += ids.values().sum::<u64>();
        }
        MetricsReport { counters }
    }

    /// Every lane's merged histogram for `key`, if any lane observed it.
    pub fn histogram(&self, key: &str) -> Option<DurationHistogram> {
        let mut merged: Option<DurationHistogram> = None;
        for collector in self.collectors() {
            if let Some(histogram) = lock(&collector.histograms).get(key) {
                merged.get_or_insert_with(DurationHistogram::default).merge(histogram);
            }
        }
        merged
    }

    /// All merged histograms, keyed by name.
    pub fn histograms(&self) -> BTreeMap<String, DurationHistogram> {
        let mut merged: BTreeMap<String, DurationHistogram> = BTreeMap::new();
        for collector in self.collectors() {
            for (key, histogram) in lock(&collector.histograms).iter() {
                merged.entry(key.clone()).or_default().merge(histogram);
            }
        }
        merged
    }

    /// Every recorded trace event, in (lane, start) order. Wall-clock
    /// data: stable only for a fixed execution, unlike [`Self::metrics`].
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> = Vec::new();
        for collector in self.collectors() {
            events.extend(lock(&collector.events).iter().cloned());
        }
        events.sort_by_key(|e| (e.lane, e.start_micros));
        events
    }

    /// The compact roll-up embedded in `RunStats` / `summary.json`.
    pub fn summary(&self) -> TelemetrySummary {
        let metrics = self.metrics();
        let seal = self.histogram(keys::SPAN_SEAL).unwrap_or_default();
        let execute = self.histogram(keys::SPAN_EXECUTE).unwrap_or_default();
        TelemetrySummary {
            counter_keys: metrics.counters.len() as u64,
            trace_events: self.collectors().iter().map(|c| lock(&c.events).len() as u64).sum(),
            seal_refusals: metrics.get(keys::SEAL_REFUSALS),
            interpreter_fallbacks: metrics.get(keys::INTERPRETER_FALLBACKS),
            discrepancies: metrics.get(keys::DISCREPANCIES),
            seal_time: seal.sum(),
            exec_time: execute.sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_magnitude() {
        let mut histogram = DurationHistogram::default();
        histogram.observe(Duration::ZERO);
        histogram.observe(Duration::from_nanos(1));
        histogram.observe(Duration::from_nanos(1)); // 1 bit
        histogram.observe(Duration::from_nanos(900)); // 10 bits
        assert_eq!(histogram.count, 4);
        assert_eq!(histogram.buckets[0], 1);
        assert_eq!(histogram.buckets[1], 2);
        assert_eq!(histogram.buckets[10], 1);
        assert_eq!(histogram.sum_nanos, 902);
        assert_eq!(histogram.max_nanos, 900);
        assert_eq!(histogram.mean(), Duration::from_nanos(225));
    }

    #[test]
    fn histogram_merge_is_componentwise() {
        let mut a = DurationHistogram::default();
        a.observe(Duration::from_nanos(3));
        let mut b = DurationHistogram::default();
        b.observe(Duration::from_micros(1));
        a.merge(&b);
        assert_eq!(a.count, 2);
        assert_eq!(a.sum_nanos, 1003);
        assert_eq!(a.max_nanos, 1000);
    }

    #[test]
    fn huge_durations_land_in_the_top_bucket() {
        let mut histogram = DurationHistogram::default();
        histogram.observe(Duration::from_secs(40 * 60));
        assert_eq!(histogram.buckets[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn trace_events_render_chrome_trace_json() {
        let event = TraceEvent { name: "shard.run", lane: 3, start_micros: 17, dur_micros: 250 };
        assert_eq!(
            event.to_json_line(),
            "{\"name\":\"shard.run\",\"cat\":\"llm4fp\",\"ph\":\"X\",\
             \"ts\":17,\"dur\":250,\"pid\":1,\"tid\":3}"
        );
    }

    #[test]
    fn summary_rolls_up_counters_and_span_time() {
        let hub = TelemetryHub::new(TelemetrySpec::TRACE);
        let tel = hub.lane(0);
        tel.add(keys::DISCREPANCIES, 4);
        tel.add_keyed(keys::SEAL_REFUSALS, 9, 1);
        tel.add_keyed(keys::INTERPRETER_FALLBACKS, 9, 3);
        tel.span(keys::SPAN_SEAL).finish();
        let summary = hub.summary();
        assert_eq!(summary.discrepancies, 4);
        assert_eq!(summary.seal_refusals, 1);
        assert_eq!(summary.interpreter_fallbacks, 3);
        assert_eq!(summary.trace_events, 1);
        assert!(summary.counter_keys >= 3);
        assert_eq!(summary.exec_time, Duration::ZERO);
    }
}
