//! The sink-facing shapes: the deterministic `metrics.json` report and
//! the compact summary embedded in `RunStats`.

use std::collections::BTreeMap;
use std::time::Duration;

use serde::{Deserialize, Serialize, Value};

/// The merged counter set written to `metrics.json`. For a fixed
/// `(config, K, E)` this is byte-identical across worker counts and
/// process-slot bounds — the flight recorder can be diffed between runs
/// like any other campaign artifact.
///
/// Serialized as a real JSON object (sorted keys), not the map-as-pairs
/// encoding derived containers use, so the recorder stays greppable.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsReport {
    /// Merged counters: plain counters summed across lanes, keyed
    /// counters deduplicated by id then summed.
    pub counters: BTreeMap<String, u64>,
}

impl MetricsReport {
    /// The counter's merged value, zero when never recorded.
    pub fn get(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Sum of every counter sharing `prefix` — e.g. all
    /// `extcc.err.` taxonomy buckets.
    pub fn prefix_sum(&self, prefix: &str) -> u64 {
        self.counters.iter().filter(|(k, _)| k.starts_with(prefix)).map(|(_, v)| v).sum()
    }
}

impl Serialize for MetricsReport {
    fn to_value(&self) -> Value {
        let counters =
            self.counters.iter().map(|(k, v)| (k.clone(), v.to_value())).collect::<serde::Map>();
        let mut object = serde::Map::new();
        object.insert("counters".to_string(), Value::Obj(counters));
        Value::Obj(object)
    }
}

impl Deserialize for MetricsReport {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let object = v.as_obj().ok_or_else(|| serde::Error::msg("expected metrics object"))?;
        let counters = object
            .get("counters")
            .and_then(Value::as_obj)
            .ok_or_else(|| serde::Error::msg("expected counters object"))?;
        let counters = counters
            .iter()
            .map(|(k, v)| Ok((k.clone(), u64::from_value(v)?)))
            .collect::<Result<BTreeMap<_, _>, serde::Error>>()?;
        Ok(MetricsReport { counters })
    }
}

/// Compact telemetry roll-up carried in `RunStats` and `summary.json`.
/// Counter-derived fields are deterministic; the `*_time` fields are
/// wall clock and describe work *computed in this invocation* (a resumed
/// run reports only what it recomputed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TelemetrySummary {
    /// Distinct counter keys in the merged report.
    pub counter_keys: u64,
    /// Trace events recorded (zero unless trace mode).
    pub trace_events: u64,
    /// Programs the seal pipeline refused for at least one config.
    pub seal_refusals: u64,
    /// Config slots that fell back to the reference interpreter.
    pub interpreter_fallbacks: u64,
    /// Comparisons that observed differing bit patterns.
    pub discrepancies: u64,
    /// Total time inside the seal phase, summed across lanes.
    pub seal_time: Duration,
    /// Total time inside matrix execution, summed across lanes.
    pub exec_time: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_report_serializes_as_a_sorted_json_object() {
        let mut report = MetricsReport::default();
        report.counters.insert("b.two".to_string(), 2);
        report.counters.insert("a.one".to_string(), 1);
        let text = serde_json::to_string(&report).unwrap();
        assert_eq!(text, "{\"counters\":{\"a.one\":1,\"b.two\":2}}");
        let back: MetricsReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn prefix_sum_aggregates_taxonomy_buckets() {
        let mut report = MetricsReport::default();
        report.counters.insert("extcc.err.timeout-compile".to_string(), 2);
        report.counters.insert("extcc.err.timeout-run".to_string(), 3);
        report.counters.insert("extcc.compiles".to_string(), 99);
        assert_eq!(report.prefix_sum("extcc.err.timeout-"), 5);
        assert_eq!(report.get("missing"), 0);
    }

    #[test]
    fn summary_round_trips_through_json() {
        let summary = TelemetrySummary {
            counter_keys: 12,
            trace_events: 340,
            seal_refusals: 2,
            interpreter_fallbacks: 6,
            discrepancies: 17,
            seal_time: Duration::from_micros(1234),
            exec_time: Duration::from_micros(5678),
        };
        let text = serde_json::to_string(&summary).unwrap();
        let back: TelemetrySummary = serde_json::from_str(&text).unwrap();
        assert_eq!(back, summary);
    }
}
