//! Concrete input values for a program's `compute` parameters.
//!
//! Each generated program is paired with a unique input set (Section 3.1.3
//! of the paper). An [`InputSet`] binds every parameter name to a value of
//! the matching kind; the printers bake these values into the emitted
//! `main`, and the virtual compiler's interpreter reads them directly.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::ast::{Param, ParamType, Precision, Program};

/// A value bound to one `compute` parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InputValue {
    /// Value for an `int` parameter.
    Int(i64),
    /// Value for a floating-point scalar parameter.
    Fp(f64),
    /// Values for a floating-point array parameter.
    FpArray(Vec<f64>),
}

impl InputValue {
    /// The parameter kind this value is compatible with (array lengths are
    /// checked separately by [`InputSet::matches`]).
    pub fn kind(&self) -> &'static str {
        match self {
            InputValue::Int(_) => "int",
            InputValue::Fp(_) => "fp",
            InputValue::FpArray(_) => "fp[]",
        }
    }
}

/// A complete assignment of values to the parameters of one program.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct InputSet {
    values: BTreeMap<String, InputValue>,
}

impl InputSet {
    /// Empty input set (valid only for parameter-less programs).
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind a value to a parameter name, replacing any previous binding.
    pub fn insert(&mut self, name: impl Into<String>, value: InputValue) {
        self.values.insert(name.into(), value);
    }

    /// Builder-style [`insert`](Self::insert).
    pub fn with(mut self, name: impl Into<String>, value: InputValue) -> Self {
        self.insert(name, value);
        self
    }

    /// Look up the value bound to `name`.
    pub fn get(&self, name: &str) -> Option<&InputValue> {
        self.values.get(name)
    }

    /// Integer value bound to `name`, if that binding exists and is an int.
    pub fn get_int(&self, name: &str) -> Option<i64> {
        match self.values.get(name) {
            Some(InputValue::Int(v)) => Some(*v),
            _ => None,
        }
    }

    /// Scalar fp value bound to `name`.
    pub fn get_fp(&self, name: &str) -> Option<f64> {
        match self.values.get(name) {
            Some(InputValue::Fp(v)) => Some(*v),
            _ => None,
        }
    }

    /// Array value bound to `name`.
    pub fn get_array(&self, name: &str) -> Option<&[f64]> {
        match self.values.get(name) {
            Some(InputValue::FpArray(v)) => Some(v),
            _ => None,
        }
    }

    /// Number of bound parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameter is bound.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate over `(name, value)` pairs in deterministic (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &InputValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Check that this input set provides a type- and length-compatible value
    /// for every parameter of `program` (extra bindings are allowed and
    /// ignored). Returns the first mismatch as an error message.
    pub fn matches(&self, program: &Program) -> Result<(), String> {
        for param in &program.params {
            match (self.values.get(&param.name), param.ty) {
                (Some(InputValue::Int(_)), ParamType::Int) => {}
                (Some(InputValue::Fp(_)), ParamType::Fp) => {}
                (Some(InputValue::FpArray(v)), ParamType::FpArray(len)) => {
                    if v.len() < len {
                        return Err(format!(
                            "array input `{}` has {} elements but the parameter needs {}",
                            param.name,
                            v.len(),
                            len
                        ));
                    }
                }
                (Some(other), ty) => {
                    return Err(format!(
                        "input `{}` has kind {} but the parameter is {:?}",
                        param.name,
                        other.kind(),
                        ty
                    ));
                }
                (None, _) => {
                    return Err(format!("missing input for parameter `{}`", param.name));
                }
            }
        }
        Ok(())
    }

    /// Encode this input set as the argument list expected by a program
    /// rendered with [`crate::to_c_source_argv`]: one argument per scalar
    /// parameter and one per array element, flattened in parameter order.
    /// Floating-point values are passed as the zero-padded hexadecimal of
    /// their bit pattern at the program's precision (so the binary decodes
    /// exactly the bits the virtual backend computes with), integers as
    /// decimals. Missing or mismatched bindings fall back to zero, exactly
    /// like the baked-`main` printer.
    pub fn to_argv(&self, program: &Program) -> Vec<String> {
        let fp_arg = |v: f64| match program.precision {
            Precision::F64 => program.precision.hex_of_bits(v.to_bits()),
            Precision::F32 => program.precision.hex_of_bits((v as f32).to_bits() as u64),
        };
        let mut args = Vec::new();
        for p in &program.params {
            match (p.ty, self.values.get(&p.name)) {
                (ParamType::Int, Some(InputValue::Int(v))) => args.push(v.to_string()),
                (ParamType::Int, _) => args.push("0".to_string()),
                (ParamType::Fp, Some(InputValue::Fp(v))) => args.push(fp_arg(*v)),
                (ParamType::Fp, _) => args.push(fp_arg(0.0)),
                (ParamType::FpArray(len), Some(InputValue::FpArray(vals))) => {
                    for i in 0..len {
                        args.push(fp_arg(vals.get(i).copied().unwrap_or(0.0)));
                    }
                }
                (ParamType::FpArray(len), _) => {
                    args.extend(std::iter::repeat(fp_arg(0.0)).take(len));
                }
            }
        }
        args
    }

    /// Truncate every fp value in the set to the given precision (used when
    /// running the same inputs through an FP32 program so that the virtual
    /// and real backends see identical starting values).
    pub fn truncated(&self, precision: Precision) -> InputSet {
        if precision == Precision::F64 {
            return self.clone();
        }
        let mut out = InputSet::new();
        for (name, value) in self.iter() {
            let v = match value {
                InputValue::Int(i) => InputValue::Int(*i),
                InputValue::Fp(f) => InputValue::Fp(*f as f32 as f64),
                InputValue::FpArray(a) => {
                    InputValue::FpArray(a.iter().map(|&x| x as f32 as f64).collect())
                }
            };
            out.insert(name, v);
        }
        out
    }
}

/// Build a default (all ones / length-respecting) input set for a parameter
/// list — handy for tests and quickstart examples.
pub fn default_inputs(params: &[Param]) -> InputSet {
    let mut set = InputSet::new();
    for p in params {
        let v = match p.ty {
            ParamType::Int => InputValue::Int(4),
            ParamType::Fp => InputValue::Fp(1.0),
            ParamType::FpArray(len) => InputValue::FpArray(vec![1.0; len]),
        };
        set.insert(&p.name, v);
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Block, Precision};

    fn program_with(params: Vec<Param>) -> Program {
        Program { precision: Precision::F64, params, body: Block::default() }
    }

    #[test]
    fn matches_accepts_compatible_inputs() {
        let p = program_with(vec![
            Param::new("n", ParamType::Int),
            Param::new("x", ParamType::Fp),
            Param::new("a", ParamType::FpArray(3)),
        ]);
        let inputs = InputSet::new()
            .with("n", InputValue::Int(5))
            .with("x", InputValue::Fp(2.5))
            .with("a", InputValue::FpArray(vec![1.0, 2.0, 3.0]));
        assert!(inputs.matches(&p).is_ok());
    }

    #[test]
    fn matches_rejects_missing_and_mismatched() {
        let p = program_with(vec![Param::new("x", ParamType::Fp)]);
        let empty = InputSet::new();
        assert!(empty.matches(&p).unwrap_err().contains("missing"));
        let wrong = InputSet::new().with("x", InputValue::Int(1));
        assert!(wrong.matches(&p).unwrap_err().contains("kind"));
    }

    #[test]
    fn matches_rejects_short_arrays() {
        let p = program_with(vec![Param::new("a", ParamType::FpArray(4))]);
        let short = InputSet::new().with("a", InputValue::FpArray(vec![1.0]));
        assert!(short.matches(&p).unwrap_err().contains("elements"));
    }

    #[test]
    fn default_inputs_match_their_params() {
        let params = vec![
            Param::new("n", ParamType::Int),
            Param::new("x", ParamType::Fp),
            Param::new("buf", ParamType::FpArray(8)),
        ];
        let p = program_with(params.clone());
        assert!(default_inputs(&params).matches(&p).is_ok());
    }

    #[test]
    fn truncation_to_f32_is_idempotent() {
        let set = InputSet::new().with("x", InputValue::Fp(0.1)).with("y", InputValue::Fp(1.0));
        let once = set.truncated(Precision::F32);
        let twice = once.truncated(Precision::F32);
        assert_eq!(once, twice);
        assert_eq!(once.get_fp("x"), Some(0.1f32 as f64));
        // F64 truncation is the identity.
        assert_eq!(set.truncated(Precision::F64), set);
    }

    #[test]
    fn argv_encoding_flattens_in_parameter_order() {
        let p = program_with(vec![
            Param::new("n", ParamType::Int),
            Param::new("x", ParamType::Fp),
            Param::new("a", ParamType::FpArray(3)),
        ]);
        let inputs = InputSet::new()
            .with("n", InputValue::Int(-5))
            .with("x", InputValue::Fp(1.0))
            .with("a", InputValue::FpArray(vec![2.0])); // short: padded with zeros
        let argv = inputs.to_argv(&p);
        assert_eq!(
            argv,
            vec![
                "-5".to_string(),
                format!("{:016x}", 1.0f64.to_bits()),
                format!("{:016x}", 2.0f64.to_bits()),
                format!("{:016x}", 0u64),
                format!("{:016x}", 0u64),
            ]
        );
        // F32 programs encode 8-digit single-precision bit patterns.
        let mut p32 = program_with(vec![Param::new("x", ParamType::Fp)]);
        p32.precision = Precision::F32;
        let argv = InputSet::new().with("x", InputValue::Fp(1.5)).to_argv(&p32);
        assert_eq!(argv, vec![format!("{:08x}", 1.5f32.to_bits())]);
    }

    #[test]
    fn accessors_return_expected_kinds() {
        let set = InputSet::new()
            .with("n", InputValue::Int(7))
            .with("x", InputValue::Fp(3.25))
            .with("a", InputValue::FpArray(vec![1.0, 2.0]));
        assert_eq!(set.get_int("n"), Some(7));
        assert_eq!(set.get_fp("x"), Some(3.25));
        assert_eq!(set.get_array("a"), Some(&[1.0, 2.0][..]));
        assert_eq!(set.get_int("x"), None);
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
    }
}
