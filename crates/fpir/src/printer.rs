//! Pretty printers: render a [`Program`] to C source (host), CUDA source
//! (device) or just the `compute` function body.
//!
//! The emitted files follow the paper's high-level structure: exactly two
//! functions, `compute` and `main`. The result (the final value of `comp`)
//! is printed to standard output as the zero-padded hexadecimal encoding of
//! its bit pattern, which is exactly what the differential tester compares
//! (Section 2.4 of the paper).

use std::fmt::Write as _;

use crate::ast::{c_fp_literal, Block, Expr, ParamType, Precision, Program, Stmt};
use crate::inputs::{InputSet, InputValue};
use crate::COMP;

/// Indentation unit used by the printers.
const INDENT: &str = "    ";

/// Render only the `compute` function definition (C syntax).
pub fn to_compute_source(program: &Program) -> String {
    let mut out = String::new();
    write_compute(&mut out, program, Target::Host);
    out
}

/// Render a complete, self-contained C translation unit: includes, the
/// `compute` function and a `main` that materializes `inputs`, calls
/// `compute` and prints the result bits in hexadecimal.
pub fn to_c_source(program: &Program, inputs: &InputSet) -> String {
    let mut out = String::new();
    out.push_str("#include <stdio.h>\n#include <stdlib.h>\n#include <math.h>\n\n");
    write_compute(&mut out, program, Target::Host);
    out.push('\n');
    write_main(&mut out, program, inputs, Target::Host);
    out
}

/// Render a complete C translation unit whose `main` reads the input
/// values from `argv` instead of baking them into the source: scalar and
/// array floating-point parameters are passed as zero-padded hexadecimal
/// bit patterns (16 digits for FP64, 8 for FP32, matching the output
/// encoding), integer parameters as plain decimals, flattened in
/// parameter order (array elements consecutively). This is what lets the
/// external-compiler backend compile a program **once** per configuration
/// and run the binary against many input sets — see
/// [`crate::InputSet::to_argv`] for the matching argument encoding.
pub fn to_c_source_argv(program: &Program) -> String {
    let mut out = String::new();
    out.push_str("#include <stdio.h>\n#include <stdlib.h>\n#include <math.h>\n\n");
    write_compute(&mut out, program, Target::Host);
    out.push('\n');
    write_main_argv(&mut out, program);
    out
}

/// Render the CUDA translation of the same program: `compute` becomes a
/// `__global__` kernel launched with a single block and a single thread
/// (following Varity's host-to-device translation described in Section 2.4),
/// writing its result into a device buffer that `main` copies back and
/// prints.
pub fn to_cuda_source(program: &Program, inputs: &InputSet) -> String {
    let mut out = String::new();
    out.push_str("#include <stdio.h>\n#include <stdlib.h>\n#include <math.h>\n\n");
    write_compute(&mut out, program, Target::Device);
    out.push('\n');
    write_main(&mut out, program, inputs, Target::Device);
    out
}

#[derive(Clone, Copy, PartialEq)]
enum Target {
    Host,
    Device,
}

/// Stream the host-target `compute` rendering into any [`fmt::Write`]
/// sink. `crate::hash` uses this to hash the canonical token stream
/// without materializing the whole source text.
pub(crate) fn write_compute_host<W: std::fmt::Write>(out: &mut W, program: &Program) {
    write_compute(out, program, Target::Host);
}

fn write_compute<W: std::fmt::Write>(out: &mut W, program: &Program, target: Target) {
    let fp = program.precision.c_type();
    let mut params: Vec<String> = program
        .params
        .iter()
        .map(|p| match p.ty {
            ParamType::Int => format!("int {}", p.name),
            ParamType::Fp => format!("{fp} {}", p.name),
            ParamType::FpArray(_) => format!("{fp} *{}", p.name),
        })
        .collect();
    match target {
        Target::Host => {
            let _ = writeln!(out, "void compute({}) {{", params.join(", "));
        }
        Target::Device => {
            params.push(format!("{fp} *llm4fp_out"));
            let _ = writeln!(out, "__global__ void compute({}) {{", params.join(", "));
        }
    }
    let _ = writeln!(out, "{INDENT}{fp} {COMP} = 0.0{};", f32_suffix(program.precision));
    write_block(out, &program.body, program.precision, 1);
    match target {
        Target::Host => {
            // Print the bit pattern of the result from inside compute, as the
            // paper's program structure prescribes.
            match program.precision {
                Precision::F64 => {
                    let _ = writeln!(
                        out,
                        "{INDENT}union {{ double d; unsigned long long u; }} llm4fp_bits;"
                    );
                    let _ = writeln!(out, "{INDENT}llm4fp_bits.d = {COMP};");
                    let _ = writeln!(out, "{INDENT}printf(\"%016llx\\n\", llm4fp_bits.u);");
                }
                Precision::F32 => {
                    let _ =
                        writeln!(out, "{INDENT}union {{ float f; unsigned int u; }} llm4fp_bits;");
                    let _ = writeln!(out, "{INDENT}llm4fp_bits.f = {COMP};");
                    let _ = writeln!(out, "{INDENT}printf(\"%08x\\n\", llm4fp_bits.u);");
                }
            }
        }
        Target::Device => {
            let _ = writeln!(out, "{INDENT}*llm4fp_out = {COMP};");
        }
    }
    let _ = out.write_str("}\n");
}

fn write_main(out: &mut String, program: &Program, inputs: &InputSet, target: Target) {
    let fp = program.precision.c_type();
    out.push_str("int main(void) {\n");
    let mut args: Vec<String> = Vec::with_capacity(program.params.len());
    for p in &program.params {
        match (p.ty, inputs.get(&p.name)) {
            (ParamType::Int, Some(InputValue::Int(v))) => {
                let _ = writeln!(out, "{INDENT}int {} = {};", p.name, v);
            }
            (ParamType::Fp, Some(InputValue::Fp(v))) => {
                let _ = writeln!(
                    out,
                    "{INDENT}{fp} {} = {};",
                    p.name,
                    c_fp_literal(*v, program.precision)
                );
            }
            (ParamType::FpArray(len), Some(InputValue::FpArray(vals))) => {
                let elems: Vec<String> =
                    vals.iter().take(len).map(|&v| c_fp_literal(v, program.precision)).collect();
                let _ =
                    writeln!(out, "{INDENT}{fp} {}[{}] = {{{}}};", p.name, len, elems.join(", "));
            }
            // Missing/mismatched inputs fall back to zero so that the emitted
            // file still compiles; validation reports the problem separately.
            (ParamType::Int, _) => {
                let _ = writeln!(out, "{INDENT}int {} = 0;", p.name);
            }
            (ParamType::Fp, _) => {
                let _ = writeln!(
                    out,
                    "{INDENT}{fp} {} = 0.0{};",
                    p.name,
                    f32_suffix(program.precision)
                );
            }
            (ParamType::FpArray(len), _) => {
                let _ = writeln!(out, "{INDENT}{fp} {}[{}] = {{0}};", p.name, len);
            }
        }
        args.push(p.name.clone());
    }
    match target {
        Target::Host => {
            let _ = writeln!(out, "{INDENT}compute({});", args.join(", "));
        }
        Target::Device => {
            write_cuda_main_body(out, program, &args, fp);
        }
    }
    let _ = writeln!(out, "{INDENT}return 0;");
    out.push_str("}\n");
}

/// The `main` variant of [`to_c_source_argv`]: a bit-pattern decoding
/// helper plus a `main(argc, argv)` that materializes every parameter
/// from the argument list, in parameter order.
fn write_main_argv(out: &mut String, program: &Program) {
    let fp = program.precision.c_type();
    match program.precision {
        Precision::F64 => out.push_str(
            "static double llm4fp_arg(const char *s) {\n\
             \x20   union { double d; unsigned long long u; } v;\n\
             \x20   v.u = strtoull(s, 0, 16);\n\
             \x20   return v.d;\n}\n\n",
        ),
        Precision::F32 => out.push_str(
            "static float llm4fp_arg(const char *s) {\n\
             \x20   union { float f; unsigned int u; } v;\n\
             \x20   v.u = (unsigned int)strtoul(s, 0, 16);\n\
             \x20   return v.f;\n}\n\n",
        ),
    }
    out.push_str("int main(int argc, char **argv) {\n");
    let _ = writeln!(out, "{INDENT}int llm4fp_k = 1;");
    let _ = writeln!(out, "{INDENT}(void)argc;");
    let mut args: Vec<String> = Vec::with_capacity(program.params.len());
    for p in &program.params {
        match p.ty {
            ParamType::Int => {
                let _ = writeln!(out, "{INDENT}int {} = atoi(argv[llm4fp_k++]);", p.name);
            }
            ParamType::Fp => {
                let _ = writeln!(out, "{INDENT}{fp} {} = llm4fp_arg(argv[llm4fp_k++]);", p.name);
            }
            ParamType::FpArray(len) => {
                let _ = writeln!(out, "{INDENT}{fp} {}[{}];", p.name, len);
                let _ = writeln!(
                    out,
                    "{INDENT}for (int llm4fp_i = 0; llm4fp_i < {len}; ++llm4fp_i) {{ \
                     {}[llm4fp_i] = llm4fp_arg(argv[llm4fp_k++]); }}",
                    p.name
                );
            }
        }
        args.push(p.name.clone());
    }
    let _ = writeln!(out, "{INDENT}compute({});", args.join(", "));
    let _ = writeln!(out, "{INDENT}return 0;");
    out.push_str("}\n");
}

fn write_cuda_main_body(out: &mut String, program: &Program, scalar_args: &[String], fp: &str) {
    // Device buffers for array parameters plus the output cell.
    let mut launch_args: Vec<String> = Vec::new();
    for p in &program.params {
        match p.ty {
            ParamType::FpArray(len) => {
                let dev = format!("d_{}", p.name);
                let _ = writeln!(out, "{INDENT}{fp} *{dev};");
                let _ = writeln!(out, "{INDENT}cudaMalloc(&{dev}, sizeof({fp}) * {len});");
                let _ = writeln!(
                    out,
                    "{INDENT}cudaMemcpy({dev}, {}, sizeof({fp}) * {len}, cudaMemcpyHostToDevice);",
                    p.name
                );
                launch_args.push(dev);
            }
            _ => launch_args.push(p.name.clone()),
        }
    }
    let _ = writeln!(out, "{INDENT}{fp} *d_out;");
    let _ = writeln!(out, "{INDENT}cudaMalloc(&d_out, sizeof({fp}));");
    launch_args.push("d_out".to_string());
    let _ = writeln!(out, "{INDENT}compute<<<1, 1>>>({});", launch_args.join(", "));
    let _ = writeln!(out, "{INDENT}cudaDeviceSynchronize();");
    let _ = writeln!(out, "{INDENT}{fp} llm4fp_result;");
    let _ = writeln!(
        out,
        "{INDENT}cudaMemcpy(&llm4fp_result, d_out, sizeof({fp}), cudaMemcpyDeviceToHost);"
    );
    match program.precision {
        Precision::F64 => {
            let _ =
                writeln!(out, "{INDENT}union {{ double d; unsigned long long u; }} llm4fp_bits;");
            let _ = writeln!(out, "{INDENT}llm4fp_bits.d = llm4fp_result;");
            let _ = writeln!(out, "{INDENT}printf(\"%016llx\\n\", llm4fp_bits.u);");
        }
        Precision::F32 => {
            let _ = writeln!(out, "{INDENT}union {{ float f; unsigned int u; }} llm4fp_bits;");
            let _ = writeln!(out, "{INDENT}llm4fp_bits.f = llm4fp_result;");
            let _ = writeln!(out, "{INDENT}printf(\"%08x\\n\", llm4fp_bits.u);");
        }
    }
    let _ = scalar_args; // scalars are passed by value directly in the launch
}

fn f32_suffix(p: Precision) -> &'static str {
    match p {
        Precision::F32 => "f",
        Precision::F64 => "",
    }
}

fn write_block<W: std::fmt::Write>(out: &mut W, block: &Block, precision: Precision, depth: usize) {
    let pad = INDENT.repeat(depth);
    let fp = precision.c_type();
    for stmt in &block.stmts {
        match stmt {
            Stmt::Assign { target, op, expr } => {
                let _ =
                    writeln!(out, "{pad}{target} {} {};", op.c_str(), expr_to_c(expr, precision));
            }
            Stmt::DeclScalar { name, expr } => {
                let _ = writeln!(out, "{pad}{fp} {name} = {};", expr_to_c(expr, precision));
            }
            Stmt::DeclArray { name, size, init } => {
                let elems: Vec<String> =
                    init.iter().take(*size).map(|&v| c_fp_literal(v, precision)).collect();
                if elems.is_empty() {
                    let _ = writeln!(out, "{pad}{fp} {name}[{size}] = {{0}};");
                } else {
                    let _ = writeln!(out, "{pad}{fp} {name}[{size}] = {{{}}};", elems.join(", "));
                }
            }
            Stmt::AssignIndex { array, index, op, expr } => {
                let _ = writeln!(
                    out,
                    "{pad}{array}[{}] {} {};",
                    index.c_str(),
                    op.c_str(),
                    expr_to_c(expr, precision)
                );
            }
            Stmt::If { cond, then_block } => {
                let _ = writeln!(
                    out,
                    "{pad}if ({} {} {}) {{",
                    expr_to_c(&cond.lhs, precision),
                    cond.op.c_str(),
                    expr_to_c(&cond.rhs, precision)
                );
                write_block(out, then_block, precision, depth + 1);
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::For { var, bound, body } => {
                let _ = writeln!(out, "{pad}for (int {var} = 0; {var} < {bound}; ++{var}) {{");
                write_block(out, body, precision, depth + 1);
                let _ = writeln!(out, "{pad}}}");
            }
        }
    }
}

/// Render an expression to C syntax. Binary sub-expressions are wrapped in
/// parentheses only when the printed tree would otherwise re-associate under
/// standard C precedence, so the program the compilers see has exactly the
/// evaluation order of the AST.
pub fn expr_to_c(expr: &Expr, precision: Precision) -> String {
    match expr {
        Expr::Num(v) => c_fp_literal(*v, precision),
        Expr::Int(v) => v.to_string(),
        Expr::Var(name) => name.clone(),
        Expr::Index { array, index } => format!("{array}[{}]", index.c_str()),
        Expr::Paren(inner) => format!("({})", expr_to_c(inner, precision)),
        Expr::Neg(inner) => format!("-{}", child_to_c(inner, precision)),
        Expr::Bin { op, lhs, rhs } => {
            format!("{} {} {}", child_to_c(lhs, precision), op.c_str(), child_to_c(rhs, precision))
        }
        Expr::Call { func, args } => {
            let name = match precision {
                Precision::F64 => func.c_name().to_string(),
                Precision::F32 => func.c_name_f32(),
            };
            let rendered: Vec<String> = args.iter().map(|a| expr_to_c(a, precision)).collect();
            format!("{name}({})", rendered.join(", "))
        }
    }
}

/// Children of binary/unary nodes are parenthesized unless they are atomic,
/// which preserves the AST's association exactly without relying on C
/// operator precedence.
fn child_to_c(expr: &Expr, precision: Precision) -> String {
    match expr {
        Expr::Num(_)
        | Expr::Int(_)
        | Expr::Var(_)
        | Expr::Index { .. }
        | Expr::Call { .. }
        | Expr::Paren(_) => expr_to_c(expr, precision),
        _ => format!("({})", expr_to_c(expr, precision)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AssignOp, BinOp, BoolExpr, CmpOp, IndexExpr, Param};
    use crate::inputs::default_inputs;
    use crate::MathFunc;

    fn sample_program() -> Program {
        let params = vec![
            Param::new("x", ParamType::Fp),
            Param::new("n", ParamType::Int),
            Param::new("a", ParamType::FpArray(4)),
        ];
        let mut body = Block::default();
        body.push(Stmt::DeclScalar {
            name: "t0".into(),
            expr: Expr::bin(BinOp::Mul, Expr::var("x"), Expr::Num(0.5)),
        });
        body.push(Stmt::For {
            var: "i".into(),
            bound: 4,
            body: Block::new(vec![Stmt::Assign {
                target: COMP.into(),
                op: AssignOp::Add,
                expr: Expr::bin(
                    BinOp::Mul,
                    Expr::Index { array: "a".into(), index: IndexExpr::Var("i".into()) },
                    Expr::var("t0"),
                ),
            }]),
        });
        body.push(Stmt::If {
            cond: BoolExpr { lhs: Expr::var(COMP), op: CmpOp::Gt, rhs: Expr::Num(1.0) },
            then_block: Block::new(vec![Stmt::Assign {
                target: COMP.into(),
                op: AssignOp::Assign,
                expr: Expr::call(MathFunc::Sqrt, vec![Expr::var(COMP)]),
            }]),
        });
        Program { precision: Precision::F64, params, body }
    }

    #[test]
    fn c_source_contains_required_structure() {
        let p = sample_program();
        let src = to_c_source(&p, &default_inputs(&p.params));
        assert!(src.contains("#include <math.h>"));
        assert!(src.contains("void compute(double x, int n, double *a)"));
        assert!(src.contains("double comp = 0.0;"));
        assert!(src.contains("for (int i = 0; i < 4; ++i) {"));
        assert!(src.contains("if (comp > 1.0) {"));
        assert!(src.contains("printf(\"%016llx\\n\""));
        assert!(src.contains("int main(void)"));
        assert!(src.contains("compute(x, n, a);"));
        // Exactly two functions.
        assert!(src.matches("compute(").count() >= 2);
        assert_eq!(src.matches("int main").count(), 1);
    }

    #[test]
    fn argv_source_parses_every_parameter_from_the_command_line() {
        let p = sample_program();
        let src = to_c_source_argv(&p);
        assert!(src.contains("static double llm4fp_arg(const char *s)"));
        assert!(src.contains("strtoull(s, 0, 16)"));
        assert!(src.contains("int main(int argc, char **argv)"));
        assert!(src.contains("double x = llm4fp_arg(argv[llm4fp_k++]);"));
        assert!(src.contains("int n = atoi(argv[llm4fp_k++]);"));
        assert!(src.contains("double a[4];"));
        assert!(src.contains("a[llm4fp_i] = llm4fp_arg(argv[llm4fp_k++]);"));
        assert!(src.contains("compute(x, n, a);"));
        // The compute function is identical to the baked-input rendering —
        // only main differs, so compiled behaviour matches bit for bit.
        let compute = to_compute_source(&p);
        assert!(src.contains(&compute));
        assert!(to_c_source(&p, &default_inputs(&p.params)).contains(&compute));
        // F32 programs decode single-precision bit patterns.
        let mut p32 = sample_program();
        p32.precision = Precision::F32;
        let src32 = to_c_source_argv(&p32);
        assert!(src32.contains("static float llm4fp_arg(const char *s)"));
        assert!(src32.contains("strtoul(s, 0, 16)"));
    }

    #[test]
    fn cuda_source_uses_global_kernel_and_single_thread_launch() {
        let p = sample_program();
        let src = to_cuda_source(&p, &default_inputs(&p.params));
        assert!(src.contains("__global__ void compute("));
        assert!(src.contains("compute<<<1, 1>>>("));
        assert!(src.contains("cudaMemcpy"));
        assert!(src.contains("cudaDeviceSynchronize()"));
    }

    #[test]
    fn f32_program_uses_float_spelling_and_suffixed_calls() {
        let mut p = sample_program();
        p.precision = Precision::F32;
        let src = to_c_source(&p, &default_inputs(&p.params));
        assert!(src.contains("void compute(float x, int n, float *a)"));
        assert!(src.contains("float comp = 0.0f;"));
        assert!(src.contains("sqrtf(comp)"));
        assert!(src.contains("printf(\"%08x\\n\""));
    }

    #[test]
    fn expression_printing_preserves_association() {
        // (a - b) - c  vs  a - (b - c) must print differently.
        let left = Expr::bin(
            BinOp::Sub,
            Expr::bin(BinOp::Sub, Expr::var("a"), Expr::var("b")),
            Expr::var("c"),
        );
        let right = Expr::bin(
            BinOp::Sub,
            Expr::var("a"),
            Expr::bin(BinOp::Sub, Expr::var("b"), Expr::var("c")),
        );
        let l = expr_to_c(&left, Precision::F64);
        let r = expr_to_c(&right, Precision::F64);
        assert_ne!(l, r);
        assert_eq!(l, "(a - b) - c");
        assert_eq!(r, "a - (b - c)");
    }

    #[test]
    fn negation_and_calls_print_correctly() {
        let e =
            Expr::Neg(Box::new(Expr::call(MathFunc::Pow, vec![Expr::var("x"), Expr::Num(2.0)])));
        assert_eq!(expr_to_c(&e, Precision::F64), "-pow(x, 2.0)");
    }

    #[test]
    fn missing_inputs_fall_back_to_zero_initializers() {
        let p = sample_program();
        let src = to_c_source(&p, &InputSet::new());
        assert!(src.contains("double x = 0.0;"));
        assert!(src.contains("int n = 0;"));
        assert!(src.contains("double a[4] = {0};"));
    }

    #[test]
    fn array_declarations_print_initializers() {
        let mut body = Block::default();
        body.push(Stmt::DeclArray { name: "buf".into(), size: 3, init: vec![1.0, 2.5] });
        let p = Program { precision: Precision::F64, params: vec![], body };
        let src = to_compute_source(&p);
        // 1.0 prints as a decimal, 2.5 as an exact hex-float literal.
        assert!(src.contains("double buf[3] = {1.0, 0x1.4p+1};"), "{src}");
    }
}
