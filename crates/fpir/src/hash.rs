//! Structural hashing of programs.
//!
//! The feedback loop keeps a set of "successful" programs; a structural hash
//! over the canonical token stream lets the campaign deduplicate programs
//! that are textually identical up to whitespace, and gives experiment
//! records a stable identifier.

use crate::ast::Program;
use crate::printer::to_compute_source;
use crate::tokens::token_texts;

/// 64-bit FNV-1a over a byte stream.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Hash of the program's canonical token stream (whitespace- and
/// comment-insensitive).
pub fn program_hash(program: &Program) -> u64 {
    let src = to_compute_source(program);
    source_hash(&src)
}

/// Hash of arbitrary C source, applied to its token stream so formatting
/// differences do not change the hash.
pub fn source_hash(src: &str) -> u64 {
    let tokens = token_texts(src);
    let mut bytes = Vec::with_capacity(src.len());
    for t in tokens {
        bytes.extend_from_slice(t.as_bytes());
        bytes.push(0xff); // separator so "ab","c" != "a","bc"
    }
    fnv1a(bytes)
}

/// Short printable identifier derived from the hash (16 hex characters).
pub fn program_id(program: &Program) -> String {
    format!("{:016x}", program_hash(program))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AssignOp, Block, Expr, Precision, Program, Stmt};

    fn program_with_constant(c: f64) -> Program {
        Program {
            precision: Precision::F64,
            params: vec![],
            body: Block::new(vec![Stmt::Assign {
                target: crate::COMP.into(),
                op: AssignOp::Assign,
                expr: Expr::Num(c),
            }]),
        }
    }

    #[test]
    fn hash_is_deterministic_and_sensitive_to_content() {
        let a = program_with_constant(1.5);
        let b = program_with_constant(1.5);
        let c = program_with_constant(2.5);
        assert_eq!(program_hash(&a), program_hash(&b));
        assert_ne!(program_hash(&a), program_hash(&c));
    }

    #[test]
    fn source_hash_ignores_whitespace_and_comments() {
        let a = source_hash("comp = a + b;");
        let b = source_hash("comp   =\n a /* note */ + b ;");
        assert_eq!(a, b);
        let c = source_hash("comp = a - b;");
        assert_ne!(a, c);
    }

    #[test]
    fn token_separator_prevents_concatenation_collisions() {
        assert_ne!(source_hash("ab c"), source_hash("a bc"));
    }

    #[test]
    fn program_id_is_16_hex_chars() {
        let id = program_id(&program_with_constant(0.25));
        assert_eq!(id.len(), 16);
        assert!(id.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
