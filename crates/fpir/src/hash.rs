//! Structural hashing of programs.
//!
//! The feedback loop keeps a set of "successful" programs; a structural hash
//! over the canonical token stream lets the campaign deduplicate programs
//! that are textually identical up to whitespace, and gives experiment
//! records a stable identifier.

use crate::ast::Program;
use crate::printer::write_compute_host;
use crate::tokens::scan_tokens;

/// Incremental 64-bit FNV-1a over a token byte stream (each token's bytes
/// followed by a `0xff` separator so `"ab","c" != "a","bc"`).
struct TokenFnv {
    hash: u64,
}

impl TokenFnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        TokenFnv { hash: Self::OFFSET }
    }

    #[inline]
    fn token(&mut self, text: &str) {
        for &b in text.as_bytes() {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(Self::PRIME);
        }
        self.hash ^= 0xff;
        self.hash = self.hash.wrapping_mul(Self::PRIME);
    }
}

/// Hash of the program's canonical token stream (whitespace- and
/// comment-insensitive).
///
/// The canonical rendering is streamed line by line through a small
/// reusable buffer and each line's tokens are fed straight into FNV-1a —
/// no whole-program `String`, token list or byte buffer is materialized.
/// Chunking at newlines is sound because the printer never emits a token
/// spanning two lines, so per-line tokenization equals whole-source
/// tokenization.
pub fn program_hash(program: &Program) -> u64 {
    let mut sink = LineTokenHasher { buf: String::new(), fnv: TokenFnv::new() };
    write_compute_host(&mut sink, program);
    sink.finish()
}

/// Hash of arbitrary C source, applied to its token stream so formatting
/// differences do not change the hash.
pub fn source_hash(src: &str) -> u64 {
    let mut fnv = TokenFnv::new();
    scan_tokens(src, |_, text| fnv.token(text));
    fnv.hash
}

/// A [`std::fmt::Write`] sink that buffers rendered text until a complete
/// line is available, then tokenizes the line and feeds the token bytes to
/// the hasher. The buffer holds at most one line at a time.
struct LineTokenHasher {
    buf: String,
    fnv: TokenFnv,
}

impl LineTokenHasher {
    fn finish(mut self) -> u64 {
        if !self.buf.is_empty() {
            let fnv = &mut self.fnv;
            scan_tokens(&self.buf, |_, text| fnv.token(text));
        }
        self.fnv.hash
    }
}

impl std::fmt::Write for LineTokenHasher {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.buf.push_str(s);
        while let Some(newline) = self.buf.find('\n') {
            {
                let fnv = &mut self.fnv;
                scan_tokens(&self.buf[..newline], |_, text| fnv.token(text));
            }
            self.buf.drain(..=newline);
        }
        Ok(())
    }
}

/// Short printable identifier derived from the hash (16 hex characters).
pub fn program_id(program: &Program) -> String {
    format!("{:016x}", program_hash(program))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AssignOp, Block, Expr, Precision, Program, Stmt};

    fn program_with_constant(c: f64) -> Program {
        Program {
            precision: Precision::F64,
            params: vec![],
            body: Block::new(vec![Stmt::Assign {
                target: crate::COMP.into(),
                op: AssignOp::Assign,
                expr: Expr::Num(c),
            }]),
        }
    }

    #[test]
    fn hash_is_deterministic_and_sensitive_to_content() {
        let a = program_with_constant(1.5);
        let b = program_with_constant(1.5);
        let c = program_with_constant(2.5);
        assert_eq!(program_hash(&a), program_hash(&b));
        assert_ne!(program_hash(&a), program_hash(&c));
    }

    #[test]
    fn source_hash_ignores_whitespace_and_comments() {
        let a = source_hash("comp = a + b;");
        let b = source_hash("comp   =\n a /* note */ + b ;");
        assert_eq!(a, b);
        let c = source_hash("comp = a - b;");
        assert_ne!(a, c);
    }

    #[test]
    fn token_separator_prevents_concatenation_collisions() {
        assert_ne!(source_hash("ab c"), source_hash("a bc"));
    }

    #[test]
    fn streaming_hash_matches_legacy_token_hash_on_corpus() {
        // The legacy implementation rendered the whole program to a
        // `String`, collected the token texts, copied them into a byte
        // buffer with 0xff separators and hashed that. The streaming
        // implementation must produce the identical value for every
        // program.
        fn legacy(src: &str) -> u64 {
            const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
            const PRIME: u64 = 0x0000_0100_0000_01b3;
            let mut bytes = Vec::with_capacity(src.len());
            for t in crate::tokens::token_texts(src) {
                bytes.extend_from_slice(t.as_bytes());
                bytes.push(0xff);
            }
            let mut hash = OFFSET;
            for b in bytes {
                hash ^= b as u64;
                hash = hash.wrapping_mul(PRIME);
            }
            hash
        }
        let corpus = [
            "void compute(double x) { comp = x; }",
            "void compute(double x, double y) { comp = x * y + 2.5; comp /= y - 0.5; }",
            "void compute(float x, float *a) {\n\
             for (int i = 0; i < 3; ++i) { comp += a[i] / x; }\n\
             }",
            "void compute(double *a, double s, int n) {\n\
             double acc = 0.0;\n\
             double buf[3] = {1.5, -2.25};\n\
             for (int i = 0; i < 4; ++i) {\n\
               acc += a[i % 4] * s + sin(a[i % 4]);\n\
               buf[i % 3] = acc / (s + 2.0);\n\
             }\n\
             if (acc > 1.0) { comp = acc - buf[0]; }\n\
             if (acc <= 1.0) { comp = acc + buf[n % 3] * exp(s); }\n\
             }",
            "void compute(double x) { comp = pow(x, 2.0) + fmin(x, 0.125) - atan2(x, 3.0); }",
        ];
        for src in corpus {
            let program = crate::parser::parse_compute(src).unwrap();
            let rendered = crate::printer::to_compute_source(&program);
            assert_eq!(program_hash(&program), legacy(&rendered), "program hash changed: {src}");
            assert_eq!(source_hash(src), legacy(src), "source hash changed: {src}");
            assert_eq!(source_hash(&rendered), program_hash(&program));
        }
        // Odd fractional constants render as hex-float literals; the hash
        // must stream those identically too.
        let program = program_with_constant(0.1);
        let rendered = crate::printer::to_compute_source(&program);
        assert!(rendered.contains("0x"), "{rendered}");
        assert_eq!(program_hash(&program), legacy(&rendered));
    }

    #[test]
    fn program_id_is_16_hex_chars() {
        let id = program_id(&program_with_constant(0.25));
        assert_eq!(id.len(), 16);
        assert!(id.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
