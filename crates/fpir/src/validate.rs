//! Static validation of generated programs.
//!
//! The prompts of LLM4FP instruct the model to initialize every variable and
//! avoid undefined behaviour (Section 2.3.1); on the tool side these rules
//! are enforced before a program enters the compilation driver. Programs
//! that fail validation are rejected (counted as generation failures) instead
//! of being compiled, mirroring how invalid LLM output leads to compilation
//! failures in the paper's pipeline.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::ast::{Block, Expr, IndexExpr, ParamType, Program, Stmt};
use crate::{COMP, MAX_ARRAY_LEN, MAX_LOOP_BOUND};

/// One validation problem found in a program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidationError {
    pub message: String,
}

impl ValidationError {
    fn new(message: impl Into<String>) -> Self {
        ValidationError { message: message.into() }
    }
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ValidationError {}

/// Validate a program. Returns all problems found (an empty `Vec` means the
/// program is accepted).
pub fn validate(program: &Program) -> Vec<ValidationError> {
    let mut errors = Vec::new();
    let mut ctx = Ctx::new(program, &mut errors);
    ctx.check_params();
    ctx.check_block(&program.body);
    if program.body.is_empty() {
        errors.push(ValidationError::new("program body is empty"));
    }
    errors
}

/// Convenience wrapper returning `Err` with the first problem.
pub fn validate_ok(program: &Program) -> Result<(), ValidationError> {
    match validate(program).into_iter().next() {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

struct Ctx<'a> {
    program: &'a Program,
    errors: &'a mut Vec<ValidationError>,
    /// Initialized scalar fp variables (parameters, `comp`, declared temps).
    scalars: HashSet<String>,
    /// Integer variables in scope (int parameters, loop variables).
    ints: HashSet<String>,
    /// Arrays in scope and their lengths.
    arrays: Vec<(String, usize)>,
    /// Loop variables currently in scope and their (exclusive) bounds.
    loop_bounds: Vec<(String, i64)>,
}

impl<'a> Ctx<'a> {
    fn new(program: &'a Program, errors: &'a mut Vec<ValidationError>) -> Self {
        let mut scalars = HashSet::new();
        scalars.insert(COMP.to_string());
        let mut ints = HashSet::new();
        let mut arrays = Vec::new();
        for p in &program.params {
            match p.ty {
                ParamType::Int => {
                    ints.insert(p.name.clone());
                }
                ParamType::Fp => {
                    scalars.insert(p.name.clone());
                }
                ParamType::FpArray(len) => arrays.push((p.name.clone(), len)),
            }
        }
        Ctx { program, errors, scalars, ints, arrays, loop_bounds: Vec::new() }
    }

    fn error(&mut self, message: impl Into<String>) {
        self.errors.push(ValidationError::new(message));
    }

    fn check_params(&mut self) {
        let mut seen = HashSet::new();
        for p in &self.program.params {
            if !seen.insert(p.name.clone()) {
                self.error(format!("duplicate parameter name `{}`", p.name));
            }
            if p.name == COMP {
                self.error("`comp` cannot be used as a parameter name");
            }
            if !is_valid_ident(&p.name) {
                self.error(format!("invalid parameter name `{}`", p.name));
            }
            if let ParamType::FpArray(len) = p.ty {
                if len == 0 || len > MAX_ARRAY_LEN {
                    self.error(format!(
                        "array parameter `{}` has invalid length {len} (must be 1..={MAX_ARRAY_LEN})",
                        p.name
                    ));
                }
            }
        }
    }

    fn array_len(&self, name: &str) -> Option<usize> {
        self.arrays.iter().rev().find(|(n, _)| n == name).map(|(_, l)| *l)
    }

    fn check_block(&mut self, block: &Block) {
        // Track names declared in this block so they can be popped on exit;
        // the grammar has no shadowing semantics beyond C's, and we simply
        // forbid redeclaration.
        let scalars_before = self.scalars.clone();
        let arrays_before = self.arrays.len();
        for stmt in &block.stmts {
            match stmt {
                Stmt::Assign { target, op: _, expr } => {
                    if !self.scalars.contains(target) {
                        self.error(format!("assignment to undeclared variable `{target}`"));
                    }
                    self.check_expr(expr);
                }
                Stmt::DeclScalar { name, expr } => {
                    self.check_expr(expr);
                    if !is_valid_ident(name) {
                        self.error(format!("invalid variable name `{name}`"));
                    }
                    if self.scalars.contains(name) || self.ints.contains(name) {
                        self.error(format!("redeclaration of `{name}`"));
                    }
                    self.scalars.insert(name.clone());
                }
                Stmt::DeclArray { name, size, init } => {
                    if *size == 0 || *size > MAX_ARRAY_LEN {
                        self.error(format!(
                            "array `{name}` has invalid length {size} (must be 1..={MAX_ARRAY_LEN})"
                        ));
                    }
                    if init.len() > *size {
                        self.error(format!(
                            "array `{name}` has {} initializers for {} elements",
                            init.len(),
                            size
                        ));
                    }
                    if self.array_len(name).is_some() || self.scalars.contains(name) {
                        self.error(format!("redeclaration of `{name}`"));
                    }
                    self.arrays.push((name.clone(), *size));
                }
                Stmt::AssignIndex { array, index, op: _, expr } => {
                    match self.array_len(array) {
                        None => self.error(format!("assignment to undeclared array `{array}`")),
                        Some(len) => self.check_index(array, index, len),
                    }
                    self.check_expr(expr);
                }
                Stmt::If { cond, then_block } => {
                    self.check_expr(&cond.lhs);
                    self.check_expr(&cond.rhs);
                    if then_block.is_empty() {
                        self.error("empty `if` body");
                    }
                    self.check_block(then_block);
                }
                Stmt::For { var, bound, body } => {
                    if !is_valid_ident(var) {
                        self.error(format!("invalid loop variable name `{var}`"));
                    }
                    if *bound <= 0 || *bound > MAX_LOOP_BOUND {
                        self.error(format!(
                            "loop bound {bound} out of range (must be 1..={MAX_LOOP_BOUND})"
                        ));
                    }
                    if body.is_empty() {
                        self.error("empty `for` body");
                    }
                    let shadowed = self.ints.contains(var);
                    self.ints.insert(var.clone());
                    self.loop_bounds.push((var.clone(), *bound));
                    self.check_block(body);
                    self.loop_bounds.pop();
                    if !shadowed {
                        self.ints.remove(var);
                    }
                }
            }
        }
        // Restore the scope: declarations local to this block disappear.
        self.scalars = scalars_before;
        self.arrays.truncate(arrays_before);
    }

    fn check_expr(&mut self, expr: &Expr) {
        match expr {
            Expr::Num(v) => {
                if v.is_nan() || v.is_infinite() {
                    self.error("literal NaN/Inf constants are not allowed");
                }
            }
            Expr::Int(_) => {}
            Expr::Var(name) => {
                if !self.scalars.contains(name) && !self.ints.contains(name) {
                    self.error(format!("use of undeclared variable `{name}`"));
                }
            }
            Expr::Index { array, index } => match self.array_len(array) {
                None => self.error(format!("use of undeclared array `{array}`")),
                Some(len) => self.check_index(array, index, len),
            },
            Expr::Paren(inner) | Expr::Neg(inner) => self.check_expr(inner),
            Expr::Bin { lhs, rhs, .. } => {
                self.check_expr(lhs);
                self.check_expr(rhs);
            }
            Expr::Call { func, args } => {
                if args.len() != func.arity() {
                    self.error(format!(
                        "`{func}` expects {} arguments, found {}",
                        func.arity(),
                        args.len()
                    ));
                }
                for a in args {
                    self.check_expr(a);
                }
            }
        }
    }

    fn check_index(&mut self, array: &str, index: &IndexExpr, len: usize) {
        match index {
            IndexExpr::Const(k) => {
                if *k < 0 || *k as usize >= len {
                    self.error(format!("index {k} out of bounds for `{array}` (length {len})"));
                }
            }
            IndexExpr::Var(var) | IndexExpr::Offset { var, .. } | IndexExpr::Mod { var, .. } => {
                let bound = self.loop_bounds.iter().rev().find(|(v, _)| v == var).map(|(_, b)| *b);
                match (index, bound) {
                    (_, None) => {
                        if !self.ints.contains(var) {
                            self.error(format!("index variable `{var}` is not in scope"));
                        } else {
                            // An int parameter used directly as an index: its
                            // runtime value is unknown, so only `% modulus`
                            // accesses can be proven in bounds.
                            match index {
                                IndexExpr::Mod { modulus, .. }
                                    if *modulus > 0 && *modulus as usize <= len => {}
                                _ => self.error(format!(
                                    "cannot prove index `{}` is within bounds of `{array}`",
                                    index.c_str()
                                )),
                            }
                        }
                    }
                    (IndexExpr::Var(_), Some(b)) => {
                        if b as usize > len {
                            self.error(format!(
                                "loop bound {b} can exceed length {len} of `{array}`"
                            ));
                        }
                    }
                    (IndexExpr::Offset { offset, .. }, Some(b)) => {
                        let min = (*offset).min(0);
                        let max = (b - 1) + (*offset).max(0);
                        if min < 0 || max as usize >= len {
                            self.error(format!(
                                "index `{}` can leave the bounds of `{array}` (length {len})",
                                index.c_str()
                            ));
                        }
                    }
                    (IndexExpr::Mod { modulus, .. }, Some(_)) => {
                        if *modulus <= 0 || *modulus as usize > len {
                            self.error(format!(
                                "modulus {modulus} exceeds length {len} of `{array}`"
                            ));
                        }
                    }
                    (IndexExpr::Const(_), _) => unreachable!("handled above"),
                }
            }
        }
    }
}

fn is_valid_ident(name: &str) -> bool {
    !name.is_empty()
        && name.chars().next().map(|c| c.is_ascii_alphabetic() || c == '_').unwrap_or(false)
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !crate::tokens::KEYWORDS.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AssignOp, BinOp, BoolExpr, CmpOp, Param, Precision};
    use crate::MathFunc;

    fn valid_program() -> Program {
        let params = vec![
            Param::new("x", ParamType::Fp),
            Param::new("a", ParamType::FpArray(4)),
            Param::new("n", ParamType::Int),
        ];
        let mut body = Block::default();
        body.push(Stmt::DeclScalar { name: "t0".into(), expr: Expr::var("x") });
        body.push(Stmt::For {
            var: "i".into(),
            bound: 4,
            body: Block::new(vec![Stmt::Assign {
                target: COMP.into(),
                op: AssignOp::Add,
                expr: Expr::bin(
                    BinOp::Mul,
                    Expr::Index { array: "a".into(), index: IndexExpr::Var("i".into()) },
                    Expr::var("t0"),
                ),
            }]),
        });
        Program { precision: Precision::F64, params, body }
    }

    #[test]
    fn accepts_valid_program() {
        assert!(validate(&valid_program()).is_empty());
        assert!(validate_ok(&valid_program()).is_ok());
    }

    #[test]
    fn rejects_empty_body_and_duplicate_params() {
        let mut p = valid_program();
        p.body = Block::default();
        assert!(validate(&p).iter().any(|e| e.message.contains("empty")));

        let mut p = valid_program();
        p.params.push(Param::new("x", ParamType::Fp));
        assert!(validate(&p).iter().any(|e| e.message.contains("duplicate")));
    }

    #[test]
    fn rejects_uninitialized_variable_use() {
        let mut p = valid_program();
        p.body.push(Stmt::Assign {
            target: COMP.into(),
            op: AssignOp::Add,
            expr: Expr::var("undeclared"),
        });
        assert!(validate(&p).iter().any(|e| e.message.contains("undeclared")));
    }

    #[test]
    fn rejects_out_of_bounds_indices() {
        let mut p = valid_program();
        p.body.push(Stmt::Assign {
            target: COMP.into(),
            op: AssignOp::Add,
            expr: Expr::Index { array: "a".into(), index: IndexExpr::Const(7) },
        });
        assert!(validate(&p).iter().any(|e| e.message.contains("out of bounds")));
    }

    #[test]
    fn rejects_loop_bound_exceeding_array() {
        let mut p = valid_program();
        p.body.push(Stmt::For {
            var: "j".into(),
            bound: 9,
            body: Block::new(vec![Stmt::Assign {
                target: COMP.into(),
                op: AssignOp::Add,
                expr: Expr::Index { array: "a".into(), index: IndexExpr::Var("j".into()) },
            }]),
        });
        assert!(validate(&p).iter().any(|e| e.message.contains("can exceed")));
    }

    #[test]
    fn offset_indices_are_bounds_checked() {
        let mut p = valid_program();
        p.body.push(Stmt::For {
            var: "j".into(),
            bound: 4,
            body: Block::new(vec![Stmt::Assign {
                target: COMP.into(),
                op: AssignOp::Add,
                expr: Expr::Index {
                    array: "a".into(),
                    index: IndexExpr::Offset { var: "j".into(), offset: 1 },
                },
            }]),
        });
        assert!(validate(&p).iter().any(|e| e.message.contains("leave the bounds")));
    }

    #[test]
    fn mod_indices_with_int_params_are_accepted() {
        let mut p = valid_program();
        p.body.push(Stmt::Assign {
            target: COMP.into(),
            op: AssignOp::Add,
            expr: Expr::Index {
                array: "a".into(),
                index: IndexExpr::Mod { var: "n".into(), modulus: 4 },
            },
        });
        assert!(validate(&p).is_empty());
        // But a bare int parameter index cannot be proven in bounds.
        let mut p2 = valid_program();
        p2.body.push(Stmt::Assign {
            target: COMP.into(),
            op: AssignOp::Add,
            expr: Expr::Index { array: "a".into(), index: IndexExpr::Var("n".into()) },
        });
        assert!(validate(&p2).iter().any(|e| e.message.contains("cannot prove")));
    }

    #[test]
    fn rejects_excessive_loops_arrays_and_bad_literals() {
        let mut p = valid_program();
        p.body.push(Stmt::For {
            var: "k".into(),
            bound: MAX_LOOP_BOUND + 1,
            body: Block::new(vec![Stmt::Assign {
                target: COMP.into(),
                op: AssignOp::Add,
                expr: Expr::Num(1.0),
            }]),
        });
        assert!(validate(&p).iter().any(|e| e.message.contains("loop bound")));

        let mut p = valid_program();
        p.body.push(Stmt::DeclArray { name: "big".into(), size: MAX_ARRAY_LEN + 1, init: vec![] });
        assert!(validate(&p).iter().any(|e| e.message.contains("invalid length")));

        let mut p = valid_program();
        p.body.push(Stmt::Assign {
            target: COMP.into(),
            op: AssignOp::Assign,
            expr: Expr::Num(f64::NAN),
        });
        assert!(validate(&p).iter().any(|e| e.message.contains("NaN")));
    }

    #[test]
    fn rejects_wrong_call_arity_and_keyword_names() {
        let mut p = valid_program();
        p.body.push(Stmt::Assign {
            target: COMP.into(),
            op: AssignOp::Assign,
            expr: Expr::Call { func: MathFunc::Pow, args: vec![Expr::var("x")] },
        });
        assert!(validate(&p).iter().any(|e| e.message.contains("expects 2")));

        let mut p = valid_program();
        p.body.push(Stmt::DeclScalar { name: "double".into(), expr: Expr::Num(1.0) });
        assert!(validate(&p).iter().any(|e| e.message.contains("invalid variable name")));
    }

    #[test]
    fn block_scoping_pops_declarations() {
        // A temp declared inside an `if` is not visible afterwards.
        let mut p = valid_program();
        p.body.push(Stmt::If {
            cond: BoolExpr { lhs: Expr::var(COMP), op: CmpOp::Gt, rhs: Expr::Num(0.0) },
            then_block: Block::new(vec![Stmt::DeclScalar {
                name: "tmp".into(),
                expr: Expr::Num(1.0),
            }]),
        });
        p.body.push(Stmt::Assign {
            target: COMP.into(),
            op: AssignOp::Add,
            expr: Expr::var("tmp"),
        });
        assert!(validate(&p).iter().any(|e| e.message.contains("undeclared variable `tmp`")));
    }
}
