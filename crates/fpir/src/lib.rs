//! # llm4fp-fpir
//!
//! Floating-point program intermediate representation for the LLM4FP
//! reproduction.
//!
//! The crate models the program family described in Section 2.2 of the paper
//! (the grammar first introduced by Varity): a `compute` function that takes
//! scalar / array floating-point arguments and integer arguments, performs a
//! sequence of arithmetic statements (assignments, bounded `for` loops,
//! conditionals, calls into the C math library) on an accumulator variable
//! `comp`, and prints the final value of `comp` to standard output.
//!
//! Provided here:
//!
//! * [`ast`] — the abstract syntax tree ([`Program`], [`Stmt`], [`Expr`], ...)
//! * [`mathfn`] — the supported C math-library functions ([`MathFunc`])
//! * [`printer`] — pretty printers to C and CUDA source
//! * [`parser`] — a recursive-descent parser for the same C subset
//! * [`tokens`] — a C-like tokenizer used by the diversity metrics
//! * [`validate()`] — static validation (initialization, bounds, loop limits)
//! * [`inputs`] — input sets binding concrete values to `compute` parameters
//! * [`hash`] — structural program hashing
//!
//! The IR is deliberately small: it is the *contract* between the program
//! generators (crate `llm4fp-generator`), the virtual compiler
//! (`llm4fp-compiler`), the external compiler harness (`llm4fp-extcc`) and
//! the diversity metrics (`llm4fp-metrics`).

pub mod ast;
pub mod hash;
pub mod inputs;
pub mod mathfn;
pub mod parser;
pub mod printer;
pub mod tokens;
pub mod validate;

pub use ast::{
    AssignOp, BinOp, Block, BoolExpr, CmpOp, Expr, IndexExpr, Param, ParamType, Precision, Program,
    Stmt,
};
pub use hash::{program_hash, program_id, source_hash};
pub use inputs::{InputSet, InputValue};
pub use mathfn::MathFunc;
pub use parser::{parse_compute, ParseError};
pub use printer::{to_c_source, to_c_source_argv, to_compute_source, to_cuda_source};
pub use tokens::{tokenize, Token, TokenKind};
pub use validate::{validate, ValidationError};

/// Name of the accumulator variable holding the program result.
pub const COMP: &str = "comp";

/// Maximum loop trip count accepted by [`validate()`] (and therefore by the
/// virtual compiler's interpreter). Mirrors the small bounded loops produced
/// by the Varity grammar.
pub const MAX_LOOP_BOUND: i64 = 256;

/// Maximum declared array length accepted by [`validate()`].
pub const MAX_ARRAY_LEN: usize = 256;
