//! The C math-library functions usable inside generated programs.
//!
//! The grammar (Figure 2) allows calls into the standard C math library;
//! this module enumerates the functions supported across the whole pipeline
//! (generation, printing, virtual compilation via `llm4fp-mathlib`, and the
//! real-compiler harness). The set mirrors the functions commonly emitted by
//! Varity plus the functions the simulated LLM's HPC idioms rely on.

use serde::{Deserialize, Serialize};

/// A function of `<math.h>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum MathFunc {
    Sin,
    Cos,
    Tan,
    Asin,
    Acos,
    Atan,
    Atan2,
    Sinh,
    Cosh,
    Tanh,
    Exp,
    Exp2,
    Expm1,
    Log,
    Log2,
    Log10,
    Log1p,
    Sqrt,
    Cbrt,
    Pow,
    Hypot,
    Fabs,
    Floor,
    Ceil,
    Trunc,
    Round,
    Fmin,
    Fmax,
    Fmod,
    Fma,
}

impl MathFunc {
    /// Every supported function, in a stable order.
    pub const ALL: [MathFunc; 30] = [
        MathFunc::Sin,
        MathFunc::Cos,
        MathFunc::Tan,
        MathFunc::Asin,
        MathFunc::Acos,
        MathFunc::Atan,
        MathFunc::Atan2,
        MathFunc::Sinh,
        MathFunc::Cosh,
        MathFunc::Tanh,
        MathFunc::Exp,
        MathFunc::Exp2,
        MathFunc::Expm1,
        MathFunc::Log,
        MathFunc::Log2,
        MathFunc::Log10,
        MathFunc::Log1p,
        MathFunc::Sqrt,
        MathFunc::Cbrt,
        MathFunc::Pow,
        MathFunc::Hypot,
        MathFunc::Fabs,
        MathFunc::Floor,
        MathFunc::Ceil,
        MathFunc::Trunc,
        MathFunc::Round,
        MathFunc::Fmin,
        MathFunc::Fmax,
        MathFunc::Fmod,
        MathFunc::Fma,
    ];

    /// The C name of the double-precision variant (`sin`, `pow`, ...).
    pub fn c_name(self) -> &'static str {
        match self {
            MathFunc::Sin => "sin",
            MathFunc::Cos => "cos",
            MathFunc::Tan => "tan",
            MathFunc::Asin => "asin",
            MathFunc::Acos => "acos",
            MathFunc::Atan => "atan",
            MathFunc::Atan2 => "atan2",
            MathFunc::Sinh => "sinh",
            MathFunc::Cosh => "cosh",
            MathFunc::Tanh => "tanh",
            MathFunc::Exp => "exp",
            MathFunc::Exp2 => "exp2",
            MathFunc::Expm1 => "expm1",
            MathFunc::Log => "log",
            MathFunc::Log2 => "log2",
            MathFunc::Log10 => "log10",
            MathFunc::Log1p => "log1p",
            MathFunc::Sqrt => "sqrt",
            MathFunc::Cbrt => "cbrt",
            MathFunc::Pow => "pow",
            MathFunc::Hypot => "hypot",
            MathFunc::Fabs => "fabs",
            MathFunc::Floor => "floor",
            MathFunc::Ceil => "ceil",
            MathFunc::Trunc => "trunc",
            MathFunc::Round => "round",
            MathFunc::Fmin => "fmin",
            MathFunc::Fmax => "fmax",
            MathFunc::Fmod => "fmod",
            MathFunc::Fma => "fma",
        }
    }

    /// The C name of the single-precision variant (`sinf`, `powf`, ...).
    pub fn c_name_f32(self) -> String {
        format!("{}f", self.c_name())
    }

    /// Number of arguments.
    pub fn arity(self) -> usize {
        match self {
            MathFunc::Atan2
            | MathFunc::Pow
            | MathFunc::Hypot
            | MathFunc::Fmin
            | MathFunc::Fmax
            | MathFunc::Fmod => 2,
            MathFunc::Fma => 3,
            _ => 1,
        }
    }

    /// Look up a function by its double-precision C name.
    pub fn from_c_name(name: &str) -> Option<MathFunc> {
        let base = name.strip_suffix('f').filter(|b| Self::ALL.iter().any(|m| m.c_name() == *b));
        let name = base.unwrap_or(name);
        Self::ALL.iter().copied().find(|m| m.c_name() == name)
    }

    /// Functions whose result stays finite for every finite input
    /// (useful when the generator wants to avoid extreme values).
    pub fn is_total_finite(self) -> bool {
        matches!(
            self,
            MathFunc::Sin
                | MathFunc::Cos
                | MathFunc::Atan
                | MathFunc::Tanh
                | MathFunc::Fabs
                | MathFunc::Floor
                | MathFunc::Ceil
                | MathFunc::Trunc
                | MathFunc::Round
                | MathFunc::Fmin
                | MathFunc::Fmax
        )
    }

    /// Functions with a restricted domain (can produce NaN for out-of-domain
    /// finite inputs): `sqrt`, `log*`, `asin`, `acos`, `pow`, `fmod`.
    pub fn has_restricted_domain(self) -> bool {
        matches!(
            self,
            MathFunc::Sqrt
                | MathFunc::Log
                | MathFunc::Log2
                | MathFunc::Log10
                | MathFunc::Log1p
                | MathFunc::Asin
                | MathFunc::Acos
                | MathFunc::Pow
                | MathFunc::Fmod
        )
    }

    /// Functions that can overflow to infinity for moderate finite inputs.
    pub fn can_overflow(self) -> bool {
        matches!(
            self,
            MathFunc::Exp
                | MathFunc::Exp2
                | MathFunc::Expm1
                | MathFunc::Sinh
                | MathFunc::Cosh
                | MathFunc::Pow
                | MathFunc::Tan
        )
    }
}

impl std::fmt::Display for MathFunc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.c_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_functions_round_trip_by_name() {
        for &m in MathFunc::ALL.iter() {
            assert_eq!(MathFunc::from_c_name(m.c_name()), Some(m));
            assert_eq!(MathFunc::from_c_name(&m.c_name_f32()), Some(m), "f32 name of {m}");
        }
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert_eq!(MathFunc::from_c_name("sincos"), None);
        assert_eq!(MathFunc::from_c_name(""), None);
        assert_eq!(MathFunc::from_c_name("printf"), None);
    }

    #[test]
    fn arities_are_consistent() {
        assert_eq!(MathFunc::Sin.arity(), 1);
        assert_eq!(MathFunc::Pow.arity(), 2);
        assert_eq!(MathFunc::Fma.arity(), 3);
        for &m in MathFunc::ALL.iter() {
            assert!((1..=3).contains(&m.arity()));
        }
    }

    #[test]
    fn classification_sets_are_disjoint_enough() {
        // A function with a restricted domain should not be listed as total
        // finite.
        for &m in MathFunc::ALL.iter() {
            if m.has_restricted_domain() {
                assert!(!m.is_total_finite(), "{m} cannot be both");
            }
        }
    }

    #[test]
    fn f32_names_have_f_suffix() {
        assert_eq!(MathFunc::Sqrt.c_name_f32(), "sqrtf");
        assert_eq!(MathFunc::Atan2.c_name_f32(), "atan2f");
    }
}
