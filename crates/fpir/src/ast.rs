//! Abstract syntax tree for the Varity/LLM4FP program grammar (Figure 2 of
//! the paper).
//!
//! A [`Program`] is the body of a `compute` function: a parameter list plus a
//! [`Block`] of statements operating on the accumulator `comp` and on local
//! temporaries. Expressions are scalar floating-point expressions over the
//! four basic operators, parentheses, math-library calls, variables, array
//! accesses and numeric literals.

use serde::{Deserialize, Serialize};

use crate::mathfn::MathFunc;

/// Floating-point precision of a generated program.
///
/// The paper's evaluation uses FP64 by default; FP32 is supported end to end
/// (generation, printing, virtual compilation and execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Precision {
    /// IEEE-754 binary32 (`float`).
    F32,
    /// IEEE-754 binary64 (`double`).
    #[default]
    F64,
}

impl Precision {
    /// The C spelling of the type.
    pub fn c_type(self) -> &'static str {
        match self {
            Precision::F32 => "float",
            Precision::F64 => "double",
        }
    }

    /// Number of hexadecimal digits in the bit representation (8 for FP32,
    /// 16 for FP64); the unit in which "digit differences" are reported in
    /// Table 4 of the paper.
    pub fn hex_digits(self) -> usize {
        match self {
            Precision::F32 => 8,
            Precision::F64 => 16,
        }
    }

    /// The zero-padded hexadecimal encoding of a bit pattern at this
    /// precision — exactly what generated programs print and what the
    /// differential tester compares ([`Self::hex_digits`] wide). The one
    /// source of truth for the encoding: the virtual `ExecResult`, the
    /// external backend's outcomes and argv input encoding all render
    /// through it.
    pub fn hex_of_bits(self, bits: u64) -> String {
        match self {
            Precision::F32 => format!("{:08x}", bits as u32),
            Precision::F64 => format!("{bits:016x}"),
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.c_type())
    }
}

/// Type of a `compute` parameter (`<param-declaration>` in the grammar).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParamType {
    /// `int <id>` — an integer scalar (loop bound, selector, ...).
    Int,
    /// `<fp-type> <id>` — a floating-point scalar.
    Fp,
    /// `<fp-type> *<id>` — a pointer to a floating-point buffer of the given
    /// length (the length is part of the program so that inputs can be
    /// materialized and bounds validated).
    FpArray(usize),
}

impl ParamType {
    /// True for the two floating-point parameter kinds.
    pub fn is_fp(self) -> bool {
        !matches!(self, ParamType::Int)
    }
}

/// A single `compute` parameter.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Param {
    pub name: String,
    pub ty: ParamType,
}

impl Param {
    pub fn new(name: impl Into<String>, ty: ParamType) -> Self {
        Param { name: name.into(), ty }
    }
}

/// A full generated program: the `compute` function of the paper's
/// high-level structure. The accompanying `main` is derived from the
/// program together with an [`crate::InputSet`] by the printers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Floating-point precision used for every fp variable in the program.
    pub precision: Precision,
    /// `compute` parameters, in declaration order.
    pub params: Vec<Param>,
    /// Body of `compute`. The accumulator `comp` is implicitly declared as
    /// `<fp-type> comp = 0.0;` before the first statement.
    pub body: Block,
}

impl Program {
    /// Create an empty program with the given precision and parameters.
    pub fn new(precision: Precision, params: Vec<Param>) -> Self {
        Program { precision, params, body: Block::default() }
    }

    /// Look up a parameter by name.
    pub fn param(&self, name: &str) -> Option<&Param> {
        self.params.iter().find(|p| p.name == name)
    }

    /// Total number of statements, counting nested blocks.
    pub fn stmt_count(&self) -> usize {
        self.body.stmt_count()
    }

    /// Maximum loop/conditional nesting depth of the body.
    pub fn max_depth(&self) -> usize {
        self.body.max_depth()
    }

    /// Iterate over every expression in the program (including loop bounds
    /// and conditions), in source order.
    pub fn for_each_expr(&self, f: &mut impl FnMut(&Expr)) {
        self.body.for_each_expr(f);
    }

    /// Count of math-library calls in the program.
    pub fn math_call_count(&self) -> usize {
        let mut n = 0;
        self.for_each_expr(&mut |e| {
            if matches!(e, Expr::Call { .. }) {
                n += 1;
            }
        });
        n
    }
}

/// `<block>` — a non-empty (after generation) sequence of statements.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

impl Block {
    pub fn new(stmts: Vec<Stmt>) -> Self {
        Block { stmts }
    }

    pub fn push(&mut self, stmt: Stmt) {
        self.stmts.push(stmt);
    }

    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// Number of statements including statements of nested blocks.
    pub fn stmt_count(&self) -> usize {
        self.stmts
            .iter()
            .map(|s| match s {
                Stmt::If { then_block, .. } => 1 + then_block.stmt_count(),
                Stmt::For { body, .. } => 1 + body.stmt_count(),
                _ => 1,
            })
            .sum()
    }

    /// Maximum nesting depth (0 for a flat block).
    pub fn max_depth(&self) -> usize {
        self.stmts
            .iter()
            .map(|s| match s {
                Stmt::If { then_block, .. } => 1 + then_block.max_depth(),
                Stmt::For { body, .. } => 1 + body.max_depth(),
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// Visit every expression in the block in source order.
    pub fn for_each_expr(&self, f: &mut impl FnMut(&Expr)) {
        for stmt in &self.stmts {
            match stmt {
                Stmt::Assign { expr, .. } | Stmt::DeclScalar { expr, .. } => expr.visit(f),
                Stmt::AssignIndex { expr, .. } => expr.visit(f),
                Stmt::DeclArray { .. } => {}
                Stmt::If { cond, then_block } => {
                    cond.lhs.visit(f);
                    cond.rhs.visit(f);
                    then_block.for_each_expr(f);
                }
                Stmt::For { body, .. } => body.for_each_expr(f),
            }
        }
    }
}

/// `<assign-op>` — plain or compound assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    Add,
    /// `-=`
    Sub,
    /// `*=`
    Mul,
    /// `/=`
    Div,
}

impl AssignOp {
    pub fn c_str(self) -> &'static str {
        match self {
            AssignOp::Assign => "=",
            AssignOp::Add => "+=",
            AssignOp::Sub => "-=",
            AssignOp::Mul => "*=",
            AssignOp::Div => "/=",
        }
    }

    /// The binary operator a compound assignment desugars to, if any.
    pub fn bin_op(self) -> Option<BinOp> {
        match self {
            AssignOp::Assign => None,
            AssignOp::Add => Some(BinOp::Add),
            AssignOp::Sub => Some(BinOp::Sub),
            AssignOp::Mul => Some(BinOp::Mul),
            AssignOp::Div => Some(BinOp::Div),
        }
    }
}

/// A statement of the `compute` body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `comp <assign-op> <expression>;` or `<id> <assign-op> <expression>;`
    /// — assignment to the accumulator or to an existing scalar variable.
    Assign { target: String, op: AssignOp, expr: Expr },
    /// `<fp-type> <id> = <expression>;` — declaration of a scalar temporary.
    DeclScalar { name: String, expr: Expr },
    /// `<fp-type> <id>[N] = { ... };` — declaration of a local array. A
    /// shorter initializer list zero-fills the remaining elements, as in C.
    DeclArray { name: String, size: usize, init: Vec<f64> },
    /// `<id>[<index>] <assign-op> <expression>;`
    AssignIndex { array: String, index: IndexExpr, op: AssignOp, expr: Expr },
    /// `if (<bool-expression>) { <block> }`
    If { cond: BoolExpr, then_block: Block },
    /// `for (int <id> = 0; <id> < <bound>; ++<id>) { <block> }`
    For { var: String, bound: i64, body: Block },
}

/// `<bool-expression>` — a single comparison between two fp expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoolExpr {
    pub lhs: Expr,
    pub op: CmpOp,
    pub rhs: Expr,
}

/// Comparison operators usable in `if` conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    pub fn c_str(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        }
    }

    /// Evaluate the comparison on two doubles with IEEE semantics (any
    /// comparison with NaN except `!=` is false).
    pub fn eval(self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }
}

/// The four floating-point binary operators of the grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl BinOp {
    pub fn c_str(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }

    /// True for the commutative/associative-under-fast-math operators.
    pub fn is_associative(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Mul)
    }
}

/// Array index expressions. Kept deliberately simple (a constant, a loop
/// variable, a loop variable plus a constant offset, or a loop variable
/// reduced modulo a constant) so that bounds can be validated statically.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IndexExpr {
    /// `a[3]`
    Const(i64),
    /// `a[i]`
    Var(String),
    /// `a[i + 2]` / `a[i - 1]`
    Offset { var: String, offset: i64 },
    /// `a[i % 4]`
    Mod { var: String, modulus: i64 },
}

impl IndexExpr {
    /// Render to C.
    pub fn c_str(&self) -> String {
        match self {
            IndexExpr::Const(k) => k.to_string(),
            IndexExpr::Var(v) => v.clone(),
            IndexExpr::Offset { var, offset } => {
                if *offset >= 0 {
                    format!("{var} + {offset}")
                } else {
                    format!("{var} - {}", -offset)
                }
            }
            IndexExpr::Mod { var, modulus } => format!("{var} % {modulus}"),
        }
    }

    /// The loop/integer variable referenced by the index, if any.
    pub fn var(&self) -> Option<&str> {
        match self {
            IndexExpr::Const(_) => None,
            IndexExpr::Var(v)
            | IndexExpr::Offset { var: v, .. }
            | IndexExpr::Mod { var: v, .. } => Some(v),
        }
    }

    /// Evaluate the index given the value of the referenced variable.
    pub fn eval(&self, var_value: i64) -> i64 {
        match self {
            IndexExpr::Const(k) => *k,
            IndexExpr::Var(_) => var_value,
            IndexExpr::Offset { offset, .. } => var_value + offset,
            IndexExpr::Mod { modulus, .. } => {
                if *modulus <= 0 {
                    0
                } else {
                    var_value.rem_euclid(*modulus)
                }
            }
        }
    }
}

/// `<expression>` — scalar floating-point expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Floating-point numeral. The value is stored as `f64` and truncated to
    /// the program precision when printed / evaluated in FP32 programs.
    Num(f64),
    /// Integer numeral appearing inside an fp expression (implicitly
    /// converted, as in C).
    Int(i64),
    /// A scalar variable: `comp`, a temporary, an fp parameter, an int
    /// parameter or a loop variable (the latter two are converted to fp).
    Var(String),
    /// An array element: local array or fp-array parameter.
    Index { array: String, index: IndexExpr },
    /// Explicit parentheses. Semantically transparent but preserved so that
    /// printing, token streams and CodeBLEU see the same surface syntax the
    /// generator produced.
    Paren(Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Binary arithmetic.
    Bin { op: BinOp, lhs: Box<Expr>, rhs: Box<Expr> },
    /// Call into the C math library.
    Call { func: MathFunc, args: Vec<Expr> },
}

impl Expr {
    /// Convenience constructor for a binary expression.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    /// Convenience constructor for a variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Convenience constructor for a call.
    pub fn call(func: MathFunc, args: Vec<Expr>) -> Expr {
        Expr::Call { func, args }
    }

    /// Wrap in parentheses.
    pub fn paren(self) -> Expr {
        Expr::Paren(Box::new(self))
    }

    /// Remove any number of leading `Paren` wrappers.
    pub fn strip_parens(&self) -> &Expr {
        let mut e = self;
        while let Expr::Paren(inner) = e {
            e = inner;
        }
        e
    }

    /// Visit this expression and all sub-expressions, pre-order.
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Paren(inner) | Expr::Neg(inner) => inner.visit(f),
            Expr::Bin { lhs, rhs, .. } => {
                lhs.visit(f);
                rhs.visit(f);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::Num(_) | Expr::Int(_) | Expr::Var(_) | Expr::Index { .. } => {}
        }
    }

    /// Number of nodes in the expression tree.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Depth of the expression tree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Expr::Paren(inner) | Expr::Neg(inner) => 1 + inner.depth(),
            Expr::Bin { lhs, rhs, .. } => 1 + lhs.depth().max(rhs.depth()),
            Expr::Call { args, .. } => 1 + args.iter().map(Expr::depth).max().unwrap_or(0),
            _ => 1,
        }
    }

    /// Names of all scalar variables referenced by the expression.
    pub fn referenced_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Var(v) = e {
                out.push(v.clone());
            }
        });
        out
    }
}

/// Format an `f64` as a C literal that round-trips exactly: hexadecimal
/// floating-point literals (`0x1.8p+1`) for finite values and the usual
/// spellings for the special values.
pub fn c_fp_literal(value: f64, precision: Precision) -> String {
    let suffix = match precision {
        Precision::F32 => "f",
        Precision::F64 => "",
    };
    if value.is_nan() {
        return format!("(0.0{suffix} / 0.0{suffix})");
    }
    if value.is_infinite() {
        return if value > 0.0 {
            format!("(1.0{suffix} / 0.0{suffix})")
        } else {
            format!("(-1.0{suffix} / 0.0{suffix})")
        };
    }
    // Small integral values print as plain decimals for readability; other
    // values print as hex floats so the literal is exact.
    if value.fract() == 0.0 && value.abs() < 1e6 {
        return format!("{:.1}{suffix}", value);
    }
    format!("{}{}", hex_float(value, precision), suffix)
}

/// Hexadecimal floating-point literal (C99 `%a`-style) for a finite value.
fn hex_float(value: f64, precision: Precision) -> String {
    let v = match precision {
        Precision::F32 => value as f32 as f64,
        Precision::F64 => value,
    };
    if v == 0.0 {
        return if v.is_sign_negative() { "-0x0p+0".to_string() } else { "0x0p+0".to_string() };
    }
    let bits = v.to_bits();
    let sign = if bits >> 63 == 1 { "-" } else { "" };
    let exp_bits = ((bits >> 52) & 0x7ff) as i64;
    let mantissa = bits & 0xf_ffff_ffff_ffff;
    let (lead, exp, mant) = if exp_bits == 0 {
        // Subnormal: 0.mantissa * 2^-1022
        (0u64, -1022i64, mantissa)
    } else {
        (1u64, exp_bits - 1023, mantissa)
    };
    let mut mant_hex = format!("{mant:013x}");
    while mant_hex.ends_with('0') && mant_hex.len() > 1 {
        mant_hex.pop();
    }
    if mant == 0 {
        format!("{sign}0x{lead}p{exp:+}")
    } else {
        format!("{sign}0x{lead}.{mant_hex}p{exp:+}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_properties() {
        assert_eq!(Precision::F64.c_type(), "double");
        assert_eq!(Precision::F32.c_type(), "float");
        assert_eq!(Precision::F64.hex_digits(), 16);
        assert_eq!(Precision::F32.hex_digits(), 8);
        assert_eq!(Precision::default(), Precision::F64);
    }

    #[test]
    fn expr_size_and_depth() {
        // (a + b) * sin(c)
        let e = Expr::bin(
            BinOp::Mul,
            Expr::bin(BinOp::Add, Expr::var("a"), Expr::var("b")).paren(),
            Expr::call(MathFunc::Sin, vec![Expr::var("c")]),
        );
        assert_eq!(e.size(), 7);
        assert_eq!(e.depth(), 4);
        assert_eq!(e.referenced_vars(), vec!["a", "b", "c"]);
    }

    #[test]
    fn strip_parens_removes_all_layers() {
        let e = Expr::Num(1.0).paren().paren().paren();
        assert_eq!(e.strip_parens(), &Expr::Num(1.0));
    }

    #[test]
    fn block_counts() {
        let mut inner = Block::default();
        inner.push(Stmt::Assign { target: "comp".into(), op: AssignOp::Add, expr: Expr::Num(1.0) });
        let mut body = Block::default();
        body.push(Stmt::DeclScalar { name: "t0".into(), expr: Expr::Num(2.0) });
        body.push(Stmt::For { var: "i".into(), bound: 4, body: inner });
        let p = Program { precision: Precision::F64, params: vec![], body };
        assert_eq!(p.stmt_count(), 3);
        assert_eq!(p.max_depth(), 1);
    }

    #[test]
    fn index_expr_eval() {
        assert_eq!(IndexExpr::Const(3).eval(99), 3);
        assert_eq!(IndexExpr::Var("i".into()).eval(5), 5);
        assert_eq!(IndexExpr::Offset { var: "i".into(), offset: -2 }.eval(5), 3);
        assert_eq!(IndexExpr::Mod { var: "i".into(), modulus: 4 }.eval(10), 2);
        assert_eq!(IndexExpr::Mod { var: "i".into(), modulus: 0 }.eval(10), 0);
    }

    #[test]
    fn cmp_op_nan_semantics() {
        let nan = f64::NAN;
        assert!(!CmpOp::Lt.eval(nan, 1.0));
        assert!(!CmpOp::Eq.eval(nan, nan));
        assert!(CmpOp::Ne.eval(nan, nan));
    }

    #[test]
    fn fp_literal_round_trips_exactly() {
        for &v in &[0.1, 1.5, -3.75, 1e-300, 2.2250738585072014e-308, 6.5e12, -0.0] {
            let lit = c_fp_literal(v, Precision::F64);
            if lit.contains("0x") {
                // Re-parse the hex literal manually: sign 0x h . frac p exp
                let parsed = parse_hex_literal(&lit);
                assert_eq!(parsed.to_bits(), v.to_bits(), "literal {lit} for {v}");
            }
        }
    }

    fn parse_hex_literal(s: &str) -> f64 {
        let neg = s.starts_with('-');
        let s = s.trim_start_matches('-');
        let s = s.trim_start_matches("0x");
        let (mant, exp) = s.split_once(['p', 'P']).unwrap();
        let exp: i32 = exp.parse().unwrap();
        let (int_part, frac_part) = match mant.split_once('.') {
            Some((i, f)) => (i, f),
            None => (mant, ""),
        };
        let mut value = u64::from_str_radix(int_part, 16).unwrap() as f64;
        let mut scale = 1.0 / 16.0;
        for c in frac_part.chars() {
            value += (c.to_digit(16).unwrap() as f64) * scale;
            scale /= 16.0;
        }
        let v = value * 2f64.powi(exp);
        if neg {
            -v
        } else {
            v
        }
    }

    #[test]
    fn fp_literal_special_values() {
        assert!(c_fp_literal(f64::NAN, Precision::F64).contains("0.0 / 0.0"));
        assert!(c_fp_literal(f64::INFINITY, Precision::F64).starts_with("(1.0"));
        assert!(c_fp_literal(f64::NEG_INFINITY, Precision::F64).starts_with("(-1.0"));
        assert_eq!(c_fp_literal(2.0, Precision::F32), "2.0f");
    }
}
