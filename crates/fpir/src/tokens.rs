//! A small C-like tokenizer.
//!
//! It is shared by the [`crate::parser`] (to re-parse generated programs) and
//! by the diversity metrics in `llm4fp-metrics` (CodeBLEU n-grams, clone
//! detection), which need a token stream that is stable under whitespace and
//! comment changes.

use serde::{Deserialize, Serialize};

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenKind {
    /// C keyword (from the small set used by the grammar).
    Keyword,
    /// Identifier (variable, function name).
    Ident,
    /// Integer literal.
    IntLit,
    /// Floating-point literal (decimal or hexadecimal).
    FpLit,
    /// String literal (only appears in the printing epilogue).
    StrLit,
    /// Punctuation / operator.
    Punct,
}

/// A single token: its kind and its exact text.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
}

impl Token {
    pub fn new(kind: TokenKind, text: impl Into<String>) -> Self {
        Token { kind, text: text.into() }
    }
}

/// The C keywords recognized by the tokenizer.
pub const KEYWORDS: &[&str] = &[
    "void",
    "int",
    "float",
    "double",
    "for",
    "if",
    "else",
    "return",
    "union",
    "unsigned",
    "long",
    "char",
    "const",
    "static",
    "while",
    "do",
    "break",
    "continue",
    "struct",
    "sizeof",
    "__global__",
    "include",
];

/// Multi-character punctuation, longest first so maximal munch works.
const MULTI_PUNCT: &[&str] = &[
    "<<<", ">>>", "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "++", "--", "+=", "-=", "*=",
    "/=", "%=", "->", "<<", ">>",
];

/// Streaming tokenizer: call `f` with each token's kind and text slice, in
/// source order, without allocating. Comments (`//` and `/* */`),
/// preprocessor lines (`#include ...`) and whitespace are skipped. Unknown
/// characters are emitted as single-character punctuation so that
/// tokenization never fails. [`tokenize`] and the structural hashes in
/// `crate::hash` are built on this scanner — the hash path feeds the token
/// bytes straight into its hasher without materializing any token list.
pub fn scan_tokens(src: &str, mut f: impl FnMut(TokenKind, &str)) {
    let bytes = src.as_bytes();
    let n = bytes.len();
    let mut i = 0usize;
    while i < n {
        let b = bytes[i];
        // Non-ASCII: decode the char, then treat it like the char-based
        // tokenizer did (skip unicode whitespace, emit anything else as a
        // single-character punctuation token).
        if b >= 0x80 {
            let c = src[i..].chars().next().expect("valid UTF-8");
            let len = c.len_utf8();
            if !c.is_whitespace() {
                f(TokenKind::Punct, &src[i..i + len]);
            }
            i += len;
            continue;
        }
        let c = b as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Preprocessor directives: skip to end of line.
        if c == '#' {
            while i < n && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && bytes[i + 1] == b'/' {
            while i < n && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Block comment.
        if c == '/' && i + 1 < n && bytes[i + 1] == b'*' {
            i += 2;
            while i + 1 < n && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                i += 1;
            }
            i = (i + 2).min(n);
            continue;
        }
        // String literal. Scanning bytes is UTF-8 safe: the quote and
        // backslash bytes never occur inside a multi-byte sequence.
        if c == '"' {
            let start = i;
            i += 1;
            while i < n && bytes[i] != b'"' {
                if bytes[i] == b'\\' {
                    i += 1;
                }
                i += 1;
            }
            i = (i + 1).min(n);
            f(TokenKind::StrLit, &src[start..i.min(n)]);
            continue;
        }
        // Identifier / keyword.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let text = &src[start..i];
            let kind = if KEYWORDS.contains(&text) { TokenKind::Keyword } else { TokenKind::Ident };
            f(kind, text);
            continue;
        }
        // Numeric literal (decimal or hexadecimal, integer or floating).
        if c.is_ascii_digit() || (c == '.' && i + 1 < n && bytes[i + 1].is_ascii_digit()) {
            let start = i;
            let mut is_fp = c == '.';
            let hex = c == '0' && i + 1 < n && (bytes[i + 1] == b'x' || bytes[i + 1] == b'X');
            if hex {
                i += 2;
                while i < n
                    && (bytes[i].is_ascii_hexdigit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'p'
                        || bytes[i] == b'P'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && (bytes[i - 1] == b'p' || bytes[i - 1] == b'P')))
                {
                    if bytes[i] == b'.' || bytes[i] == b'p' || bytes[i] == b'P' {
                        is_fp = true;
                    }
                    i += 1;
                }
            } else {
                while i < n
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    if bytes[i] == b'.' || bytes[i] == b'e' || bytes[i] == b'E' {
                        is_fp = true;
                    }
                    i += 1;
                }
            }
            // Type suffixes: f, F, l, L, u, U, ll, ull ...
            while i < n && matches!(bytes[i], b'f' | b'F' | b'l' | b'L' | b'u' | b'U') {
                if bytes[i] == b'f' || bytes[i] == b'F' {
                    is_fp = true;
                }
                i += 1;
            }
            let kind = if is_fp { TokenKind::FpLit } else { TokenKind::IntLit };
            f(kind, &src[start..i]);
            continue;
        }
        // Multi-character punctuation (maximal munch; all entries ASCII).
        let mut matched = false;
        for p in MULTI_PUNCT {
            if src[i..].starts_with(p) {
                f(TokenKind::Punct, &src[i..i + p.len()]);
                i += p.len();
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        f(TokenKind::Punct, &src[i..i + 1]);
        i += 1;
    }
}

/// Tokenize C-like source text into an owned token list (see
/// [`scan_tokens`] for the allocation-free streaming form).
pub fn tokenize(src: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    scan_tokens(src, |kind, text| tokens.push(Token::new(kind, text)));
    tokens
}

/// Convenience: only the token texts, useful for n-gram metrics.
pub fn token_texts(src: &str) -> Vec<String> {
    let mut texts = Vec::new();
    scan_tokens(src, |_, text| texts.push(text.to_string()));
    texts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_simple_statement() {
        let toks = tokenize("double t0 = x * 2.0;");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["double", "t0", "=", "x", "*", "2.0", ";"]);
        assert_eq!(toks[0].kind, TokenKind::Keyword);
        assert_eq!(toks[1].kind, TokenKind::Ident);
        assert_eq!(toks[5].kind, TokenKind::FpLit);
    }

    #[test]
    fn skips_comments_whitespace_and_preprocessor() {
        let src = "#include <math.h>\n// comment\n/* block\ncomment */ int x = 1;";
        let texts = token_texts(src);
        assert_eq!(texts, vec!["int", "x", "=", "1", ";"]);
    }

    #[test]
    fn hex_float_literals_are_single_fp_tokens() {
        let toks = tokenize("comp += 0x1.8p+1;");
        let fp: Vec<&Token> = toks.iter().filter(|t| t.kind == TokenKind::FpLit).collect();
        assert_eq!(fp.len(), 1);
        assert_eq!(fp[0].text, "0x1.8p+1");
    }

    #[test]
    fn scientific_notation_and_suffixes() {
        let toks = tokenize("float y = 1.5e-3f; long long u = 10ull;");
        let fp: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokenKind::FpLit).map(|t| t.text.as_str()).collect();
        assert_eq!(fp, vec!["1.5e-3f"]);
        let ints: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokenKind::IntLit).map(|t| t.text.as_str()).collect();
        assert_eq!(ints, vec!["10ull"]);
    }

    #[test]
    fn multi_char_punctuation_uses_maximal_munch() {
        let texts = token_texts("i <= n; comp += 1.0; ++i; a == b; kernel<<<1, 1>>>(x);");
        assert!(texts.contains(&"<=".to_string()));
        assert!(texts.contains(&"+=".to_string()));
        assert!(texts.contains(&"++".to_string()));
        assert!(texts.contains(&"==".to_string()));
        assert!(texts.contains(&"<<<".to_string()));
        assert!(texts.contains(&">>>".to_string()));
    }

    #[test]
    fn string_literals_are_preserved() {
        let toks = tokenize(r#"printf("%016llx\n", bits);"#);
        assert!(toks.iter().any(|t| t.kind == TokenKind::StrLit && t.text.contains("llx")));
    }

    #[test]
    fn whitespace_variations_produce_identical_streams() {
        let a = token_texts("comp = a+b ;");
        let b = token_texts("comp   =\n a + b;");
        assert_eq!(a, b);
    }

    #[test]
    fn tokenizer_never_panics_on_garbage() {
        let texts = token_texts("@ $ ` 〇 \u{1F600} |||");
        assert!(!texts.is_empty());
    }
}
