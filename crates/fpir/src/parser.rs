//! Recursive-descent parser for the `compute`-function C subset.
//!
//! The parser accepts the code produced by [`crate::printer::to_compute_source`]
//! (and reasonable hand-written variants within the grammar) and rebuilds a
//! [`Program`]. It is used for printer/parser round-trip testing, for
//! re-importing externally stored successful programs, and by the simulated
//! LLM when it mutates a seed program that is only available as text.

use crate::ast::{
    AssignOp, BinOp, Block, BoolExpr, CmpOp, Expr, IndexExpr, Param, ParamType, Precision, Program,
    Stmt,
};
use crate::mathfn::MathFunc;
use crate::tokens::{tokenize, Token, TokenKind};
use crate::COMP;

/// Array length assumed for pointer parameters, whose length is not part of
/// the C signature. Programs built by the generators always carry their true
/// length; this default only applies to re-parsed source.
pub const PARSED_ARRAY_LEN: usize = 8;

/// Parse failure: a message plus the index of the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub position: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at token {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse the text of a `compute` function (optionally preceded by includes
/// or a `__global__` qualifier) into a [`Program`].
///
/// Pointer-parameter lengths are not part of a C signature, so after parsing
/// the body is analysed and each array parameter is assigned the smallest
/// length that makes every observed access in-bounds (falling back to
/// [`PARSED_ARRAY_LEN`] for arrays that are never indexed).
pub fn parse_compute(src: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(src);
    let mut p = Parser { tokens, pos: 0, precision: Precision::F64 };
    let mut program = p.parse_program()?;
    infer_array_param_lengths(&mut program);
    Ok(program)
}

/// Determine the minimum length each array parameter needs so that all
/// accesses in the body are within bounds, and update the parameter types
/// accordingly (never shrinking below [`PARSED_ARRAY_LEN`]'s lower sibling
/// of 2, and defaulting to [`PARSED_ARRAY_LEN`] when unused).
fn infer_array_param_lengths(program: &mut Program) {
    use std::collections::HashMap;

    fn index_requirement(index: &IndexExpr, loop_bounds: &[(String, i64)]) -> i64 {
        let bound_of =
            |var: &str| loop_bounds.iter().rev().find(|(v, _)| v == var).map(|(_, b)| *b);
        match index {
            IndexExpr::Const(k) => k + 1,
            IndexExpr::Var(v) => bound_of(v).unwrap_or(PARSED_ARRAY_LEN as i64),
            IndexExpr::Offset { var, offset } => {
                bound_of(var).map(|b| b + offset.max(&0)).unwrap_or(PARSED_ARRAY_LEN as i64)
            }
            IndexExpr::Mod { modulus, .. } => (*modulus).max(1),
        }
    }

    fn scan_expr(expr: &Expr, loop_bounds: &[(String, i64)], required: &mut HashMap<String, i64>) {
        expr.visit(&mut |e| {
            if let Expr::Index { array, index } = e {
                let need = index_requirement(index, loop_bounds);
                let entry = required.entry(array.clone()).or_insert(0);
                *entry = (*entry).max(need);
            }
        });
    }

    fn scan_block(
        block: &crate::ast::Block,
        loop_bounds: &mut Vec<(String, i64)>,
        required: &mut HashMap<String, i64>,
    ) {
        for stmt in &block.stmts {
            match stmt {
                Stmt::Assign { expr, .. } | Stmt::DeclScalar { expr, .. } => {
                    scan_expr(expr, loop_bounds, required)
                }
                Stmt::DeclArray { .. } => {}
                Stmt::AssignIndex { array, index, expr, .. } => {
                    let need = index_requirement(index, loop_bounds);
                    let entry = required.entry(array.clone()).or_insert(0);
                    *entry = (*entry).max(need);
                    scan_expr(expr, loop_bounds, required);
                }
                Stmt::If { cond, then_block } => {
                    scan_expr(&cond.lhs, loop_bounds, required);
                    scan_expr(&cond.rhs, loop_bounds, required);
                    scan_block(then_block, loop_bounds, required);
                }
                Stmt::For { var, bound, body } => {
                    loop_bounds.push((var.clone(), *bound));
                    scan_block(body, loop_bounds, required);
                    loop_bounds.pop();
                }
            }
        }
    }

    let mut required = HashMap::new();
    let mut loop_bounds = Vec::new();
    scan_block(&program.body, &mut loop_bounds, &mut required);
    for param in &mut program.params {
        if let ParamType::FpArray(len) = &mut param.ty {
            let need = required.get(&param.name).copied().unwrap_or(PARSED_ARRAY_LEN as i64);
            *len = need.clamp(2, crate::MAX_ARRAY_LEN as i64) as usize;
        }
    }
}

/// Parse a C floating-point literal (decimal, scientific or hexadecimal,
/// with an optional `f`/`F` suffix). Returns `None` for malformed input.
pub fn parse_c_fp_literal(text: &str) -> Option<f64> {
    let t = text.trim().trim_end_matches(['f', 'F', 'l', 'L']);
    if t.starts_with("0x") || t.starts_with("0X") || t.starts_with("-0x") || t.starts_with("-0X") {
        return parse_hex_float(t);
    }
    t.parse::<f64>().ok()
}

fn parse_hex_float(t: &str) -> Option<f64> {
    let neg = t.starts_with('-');
    let t = t.trim_start_matches('-');
    let t = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X"))?;
    let (mant, exp) = match t.split_once(['p', 'P']) {
        Some((m, e)) => (m, e.parse::<i32>().ok()?),
        None => (t, 0),
    };
    let (int_part, frac_part) = match mant.split_once('.') {
        Some((i, f)) => (i, f),
        None => (mant, ""),
    };
    let mut value =
        if int_part.is_empty() { 0.0 } else { u64::from_str_radix(int_part, 16).ok()? as f64 };
    let mut scale = 1.0 / 16.0;
    for c in frac_part.chars() {
        value += (c.to_digit(16)? as f64) * scale;
        scale /= 16.0;
    }
    let v = value * 2f64.powi(exp);
    Some(if neg { -v } else { v })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    precision: Precision,
}

impl Parser {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { message: message.into(), position: self.pos })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_text(&self) -> &str {
        self.tokens.get(self.pos).map(|t| t.text.as_str()).unwrap_or("")
    }

    fn peek_text_at(&self, offset: usize) -> &str {
        self.tokens.get(self.pos + offset).map(|t| t.text.as_str()).unwrap_or("")
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, text: &str) -> bool {
        if self.peek_text() == text {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, text: &str) -> Result<(), ParseError> {
        if self.eat(text) {
            Ok(())
        } else {
            self.err(format!("expected `{text}`, found `{}`", self.peek_text()))
        }
    }

    fn parse_program(&mut self) -> Result<Program, ParseError> {
        // Skip anything before the compute definition (qualifiers, blank
        // tokens from stripped includes, ...).
        while self.peek().is_some() && !self.at_compute_signature() {
            self.pos += 1;
        }
        if self.peek().is_none() {
            return self.err("no `compute` function found");
        }
        // `__global__`? `void compute (`
        self.eat("__global__");
        self.expect("void")?;
        self.expect("compute")?;
        self.expect("(")?;
        let params = self.parse_params()?;
        self.expect(")")?;
        self.expect("{")?;
        let body = self.parse_block()?;
        Ok(Program { precision: self.precision, params, body })
    }

    fn at_compute_signature(&self) -> bool {
        (self.peek_text() == "void" && self.peek_text_at(1) == "compute")
            || (self.peek_text() == "__global__"
                && self.peek_text_at(1) == "void"
                && self.peek_text_at(2) == "compute")
    }

    fn parse_params(&mut self) -> Result<Vec<Param>, ParseError> {
        let mut params = Vec::new();
        if self.peek_text() == ")" {
            return Ok(params);
        }
        loop {
            let ty_tok = self.bump().ok_or(ParseError {
                message: "unexpected end of input in parameter list".into(),
                position: self.pos,
            })?;
            match ty_tok.text.as_str() {
                "int" => {
                    let name = self.parse_ident()?;
                    params.push(Param::new(name, ParamType::Int));
                }
                "double" | "float" => {
                    if ty_tok.text == "float" {
                        self.precision = Precision::F32;
                    }
                    let is_ptr = self.eat("*");
                    let name = self.parse_ident()?;
                    // Synthetic output parameter added by the CUDA printer.
                    if name == "llm4fp_out" {
                        if !self.eat(",") {
                            break;
                        }
                        continue;
                    }
                    let ty =
                        if is_ptr { ParamType::FpArray(PARSED_ARRAY_LEN) } else { ParamType::Fp };
                    params.push(Param::new(name, ty));
                }
                other => return self.err(format!("unexpected parameter type `{other}`")),
            }
            if !self.eat(",") {
                break;
            }
        }
        Ok(params)
    }

    fn parse_ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(t) if t.kind == TokenKind::Ident => Ok(self.bump().unwrap().text),
            _ => self.err(format!("expected identifier, found `{}`", self.peek_text())),
        }
    }

    fn parse_block(&mut self) -> Result<Block, ParseError> {
        let mut block = Block::default();
        loop {
            match self.peek_text() {
                "" => return self.err("unexpected end of input inside block"),
                "}" => {
                    self.pos += 1;
                    return Ok(block);
                }
                _ => {
                    if let Some(stmt) = self.parse_stmt()? {
                        block.push(stmt);
                    }
                }
            }
        }
    }

    /// Parse one statement. Returns `Ok(None)` for statements that belong to
    /// the printer's prologue/epilogue and are not part of the logical
    /// program (the implicit `comp` declaration, the bit-printing lines).
    fn parse_stmt(&mut self) -> Result<Option<Stmt>, ParseError> {
        let text = self.peek_text().to_string();
        match text.as_str() {
            "for" => return self.parse_for().map(Some),
            "if" => return self.parse_if().map(Some),
            "union" => {
                self.skip_union_decl();
                return Ok(None);
            }
            "return" => {
                self.skip_to_semicolon();
                return Ok(None);
            }
            "double" | "float" => return self.parse_decl(),
            "*" => {
                // `*llm4fp_out = comp;` from the device epilogue.
                self.skip_to_semicolon();
                return Ok(None);
            }
            _ => {}
        }
        if self.peek().map(|t| t.kind) == Some(TokenKind::Ident) {
            if text == "printf" || text == "llm4fp_bits" {
                self.skip_to_semicolon();
                return Ok(None);
            }
            return self.parse_assignment().map(Some);
        }
        self.err(format!("unexpected token `{text}` at statement position"))
    }

    fn skip_to_semicolon(&mut self) {
        while let Some(t) = self.bump() {
            if t.text == ";" {
                break;
            }
        }
    }

    /// Skip an anonymous-union declaration (`union { ... } name;`) emitted by
    /// the printing epilogue: consume the balanced braces, then the trailing
    /// declarator up to its semicolon.
    fn skip_union_decl(&mut self) {
        self.expect("union").ok();
        if self.eat("{") {
            let mut depth = 1usize;
            while depth > 0 {
                match self.bump() {
                    Some(t) if t.text == "{" => depth += 1,
                    Some(t) if t.text == "}" => depth -= 1,
                    Some(_) => {}
                    None => return,
                }
            }
        }
        self.skip_to_semicolon();
    }

    fn parse_decl(&mut self) -> Result<Option<Stmt>, ParseError> {
        let ty = self.bump().unwrap().text;
        if ty == "float" {
            self.precision = Precision::F32;
        }
        let name = self.parse_ident()?;
        if self.eat("[") {
            let size = self.parse_int_literal()? as usize;
            self.expect("]")?;
            self.expect("=")?;
            self.expect("{")?;
            let mut init = Vec::new();
            while self.peek_text() != "}" {
                let neg = self.eat("-");
                let v = self.parse_fp_or_int_literal()?;
                init.push(if neg { -v } else { v });
                if !self.eat(",") {
                    break;
                }
            }
            self.expect("}")?;
            self.expect(";")?;
            // `= {0}` is the zero-initializer idiom, not a one-element array.
            if init == [0.0] {
                init.clear();
            }
            return Ok(Some(Stmt::DeclArray { name, size, init }));
        }
        self.expect("=")?;
        let expr = self.parse_expr()?;
        self.expect(";")?;
        // The implicit accumulator prologue emitted by the printer.
        if name == COMP {
            if matches!(expr.strip_parens(), Expr::Num(v) if *v == 0.0) {
                return Ok(None);
            }
            return Ok(Some(Stmt::Assign { target: name, op: AssignOp::Assign, expr }));
        }
        Ok(Some(Stmt::DeclScalar { name, expr }))
    }

    fn parse_assignment(&mut self) -> Result<Stmt, ParseError> {
        let name = self.parse_ident()?;
        if self.eat("[") {
            let index = self.parse_index_expr()?;
            self.expect("]")?;
            let op = self.parse_assign_op()?;
            let expr = self.parse_expr()?;
            self.expect(";")?;
            return Ok(Stmt::AssignIndex { array: name, index, op, expr });
        }
        let op = self.parse_assign_op()?;
        let expr = self.parse_expr()?;
        self.expect(";")?;
        Ok(Stmt::Assign { target: name, op, expr })
    }

    fn parse_assign_op(&mut self) -> Result<AssignOp, ParseError> {
        let op = match self.peek_text() {
            "=" => AssignOp::Assign,
            "+=" => AssignOp::Add,
            "-=" => AssignOp::Sub,
            "*=" => AssignOp::Mul,
            "/=" => AssignOp::Div,
            other => return self.err(format!("expected assignment operator, found `{other}`")),
        };
        self.pos += 1;
        Ok(op)
    }

    fn parse_for(&mut self) -> Result<Stmt, ParseError> {
        self.expect("for")?;
        self.expect("(")?;
        self.expect("int")?;
        let var = self.parse_ident()?;
        self.expect("=")?;
        let _start = self.parse_int_literal()?;
        self.expect(";")?;
        let cond_var = self.parse_ident()?;
        if cond_var != var {
            return self.err("loop condition must test the loop variable");
        }
        self.expect("<")?;
        let bound = self.parse_int_literal()?;
        self.expect(";")?;
        // `++i` or `i++`
        if self.eat("++") {
            let inc_var = self.parse_ident()?;
            if inc_var != var {
                return self.err("loop increment must update the loop variable");
            }
        } else {
            let inc_var = self.parse_ident()?;
            if inc_var != var {
                return self.err("loop increment must update the loop variable");
            }
            self.expect("++")?;
        }
        self.expect(")")?;
        self.expect("{")?;
        let body = self.parse_block()?;
        Ok(Stmt::For { var, bound, body })
    }

    fn parse_if(&mut self) -> Result<Stmt, ParseError> {
        self.expect("if")?;
        self.expect("(")?;
        let lhs = self.parse_expr()?;
        let op = match self.peek_text() {
            "<" => CmpOp::Lt,
            "<=" => CmpOp::Le,
            ">" => CmpOp::Gt,
            ">=" => CmpOp::Ge,
            "==" => CmpOp::Eq,
            "!=" => CmpOp::Ne,
            other => return self.err(format!("expected comparison operator, found `{other}`")),
        };
        self.pos += 1;
        let rhs = self.parse_expr()?;
        self.expect(")")?;
        self.expect("{")?;
        let then_block = self.parse_block()?;
        Ok(Stmt::If { cond: BoolExpr { lhs, op, rhs }, then_block })
    }

    fn parse_index_expr(&mut self) -> Result<IndexExpr, ParseError> {
        match self.peek().map(|t| t.kind) {
            Some(TokenKind::IntLit) => {
                let v = self.parse_int_literal()?;
                Ok(IndexExpr::Const(v))
            }
            Some(TokenKind::Ident) => {
                let var = self.parse_ident()?;
                match self.peek_text() {
                    "+" => {
                        self.pos += 1;
                        let off = self.parse_int_literal()?;
                        Ok(IndexExpr::Offset { var, offset: off })
                    }
                    "-" => {
                        self.pos += 1;
                        let off = self.parse_int_literal()?;
                        Ok(IndexExpr::Offset { var, offset: -off })
                    }
                    "%" => {
                        self.pos += 1;
                        let m = self.parse_int_literal()?;
                        Ok(IndexExpr::Mod { var, modulus: m })
                    }
                    _ => Ok(IndexExpr::Var(var)),
                }
            }
            _ => self.err(format!("invalid array index `{}`", self.peek_text())),
        }
    }

    fn parse_int_literal(&mut self) -> Result<i64, ParseError> {
        match self.peek() {
            Some(t) if t.kind == TokenKind::IntLit => {
                let text = self.bump().unwrap().text;
                let digits: String = text.chars().take_while(|c| c.is_ascii_digit()).collect();
                digits.parse::<i64>().map_err(|_| ParseError {
                    message: format!("invalid integer literal `{text}`"),
                    position: self.pos,
                })
            }
            _ => self.err(format!("expected integer literal, found `{}`", self.peek_text())),
        }
    }

    fn parse_fp_or_int_literal(&mut self) -> Result<f64, ParseError> {
        match self.peek() {
            Some(t) if t.kind == TokenKind::FpLit || t.kind == TokenKind::IntLit => {
                let text = self.bump().unwrap().text;
                parse_c_fp_literal(&text).ok_or(ParseError {
                    message: format!("invalid floating-point literal `{text}`"),
                    position: self.pos,
                })
            }
            _ => self.err(format!("expected numeric literal, found `{}`", self.peek_text())),
        }
    }

    // Expression grammar: additive -> multiplicative -> unary -> primary.
    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek_text() {
                "+" => BinOp::Add,
                "-" => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_mul()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek_text() {
                "*" => BinOp::Mul,
                "/" => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_unary()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat("-") {
            let inner = self.parse_unary()?;
            // Fold negation of literals so that `-0x1.8p+1` parses to the
            // same node the printer emitted it from (keeps print→parse→print
            // a fixpoint).
            return Ok(match inner {
                Expr::Num(v) => Expr::Num(-v),
                Expr::Int(v) => Expr::Int(-v),
                other => Expr::Neg(Box::new(other)),
            });
        }
        if self.eat("+") {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        let tok = match self.peek() {
            Some(t) => t.clone(),
            None => return self.err("unexpected end of input in expression"),
        };
        match tok.kind {
            TokenKind::FpLit => {
                self.pos += 1;
                let v = parse_c_fp_literal(&tok.text).ok_or(ParseError {
                    message: format!("invalid floating-point literal `{}`", tok.text),
                    position: self.pos,
                })?;
                Ok(Expr::Num(v))
            }
            TokenKind::IntLit => {
                self.pos += 1;
                let digits: String = tok.text.chars().take_while(|c| c.is_ascii_digit()).collect();
                let v = digits.parse::<i64>().map_err(|_| ParseError {
                    message: format!("invalid integer literal `{}`", tok.text),
                    position: self.pos,
                })?;
                Ok(Expr::Int(v))
            }
            TokenKind::Ident => {
                self.pos += 1;
                // Function call?
                if self.peek_text() == "(" {
                    let func = MathFunc::from_c_name(&tok.text).ok_or(ParseError {
                        message: format!("unknown function `{}`", tok.text),
                        position: self.pos,
                    })?;
                    self.expect("(")?;
                    let mut args = Vec::new();
                    if self.peek_text() != ")" {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat(",") {
                                break;
                            }
                        }
                    }
                    self.expect(")")?;
                    if args.len() != func.arity() {
                        return self.err(format!(
                            "`{}` expects {} arguments, found {}",
                            func,
                            func.arity(),
                            args.len()
                        ));
                    }
                    return Ok(Expr::Call { func, args });
                }
                // Array access?
                if self.eat("[") {
                    let index = self.parse_index_expr()?;
                    self.expect("]")?;
                    return Ok(Expr::Index { array: tok.text, index });
                }
                Ok(Expr::Var(tok.text))
            }
            TokenKind::Punct if tok.text == "(" => {
                self.pos += 1;
                let inner = self.parse_expr()?;
                self.expect(")")?;
                Ok(inner.paren())
            }
            _ => self.err(format!("unexpected token `{}` in expression", tok.text)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::default_inputs;
    use crate::printer::{to_c_source, to_compute_source};

    #[test]
    fn parses_minimal_compute() {
        let src = "void compute(double x) {\n double comp = 0.0;\n comp = x * 2.0;\n}";
        let p = parse_compute(src).unwrap();
        assert_eq!(p.precision, Precision::F64);
        assert_eq!(p.params.len(), 1);
        assert_eq!(p.body.stmts.len(), 1);
    }

    #[test]
    fn parses_loops_conditionals_and_calls() {
        let src = r#"
void compute(double x, int n, double *a) {
    double comp = 0.0;
    double t0 = x * 0.5;
    for (int i = 0; i < 4; ++i) {
        comp += a[i] * t0;
    }
    if (comp > 1.0) {
        comp = sqrt(comp);
    }
    union { double d; unsigned long long u; } llm4fp_bits;
    llm4fp_bits.d = comp;
    printf("%016llx\n", llm4fp_bits.u);
}
"#;
        let p = parse_compute(src).unwrap();
        assert_eq!(p.params.len(), 3);
        assert_eq!(p.body.stmts.len(), 3);
        assert!(matches!(p.body.stmts[1], Stmt::For { bound: 4, .. }));
        assert!(matches!(p.body.stmts[2], Stmt::If { .. }));
    }

    #[test]
    fn print_parse_print_is_a_fixpoint() {
        let src = r#"
void compute(double x, double y, double *a) {
    double comp = 0.0;
    double t0 = (x + y) * 0.5;
    double buf[3] = {1.0, 2.5, -3.0};
    for (int i = 0; i < 3; ++i) {
        buf[i] = buf[i] + a[i % 4];
        comp += sin(buf[i]) / (t0 + 1.5);
    }
    if (comp < 10.0) {
        comp = fma(comp, t0, y);
    }
}
"#;
        let p1 = parse_compute(src).unwrap();
        let printed1 = to_compute_source(&p1);
        let p2 = parse_compute(&printed1).unwrap();
        let printed2 = to_compute_source(&p2);
        assert_eq!(printed1, printed2);
    }

    #[test]
    fn round_trips_full_printed_file() {
        let src = r#"
void compute(float x, float *v) {
    float comp = 0.0f;
    comp = x;
    for (int k = 0; k < 2; ++k) {
        comp *= v[k];
    }
}
"#;
        let p = parse_compute(src).unwrap();
        assert_eq!(p.precision, Precision::F32);
        let full = to_c_source(&p, &default_inputs(&p.params));
        let reparsed = parse_compute(&full).unwrap();
        assert_eq!(to_compute_source(&p), to_compute_source(&reparsed));
    }

    #[test]
    fn rejects_unknown_functions_and_malformed_loops() {
        assert!(parse_compute("void compute(double x) { comp = frobnicate(x); }").is_err());
        assert!(parse_compute("void compute(double x) { for (int i = 0; j < 4; ++i) {} }").is_err());
        assert!(parse_compute("int main(void) { return 0; }").is_err());
    }

    #[test]
    fn rejects_wrong_arity_calls() {
        assert!(parse_compute("void compute(double x) { comp = pow(x); }").is_err());
        assert!(parse_compute("void compute(double x) { comp = sin(x, x); }").is_err());
    }

    #[test]
    fn parses_cuda_kernel_signature() {
        let src = r#"
__global__ void compute(double x, double *llm4fp_out) {
    double comp = 0.0;
    comp = cos(x);
    *llm4fp_out = comp;
}
"#;
        let p = parse_compute(src).unwrap();
        assert_eq!(p.params.len(), 1);
        assert_eq!(p.body.stmts.len(), 1);
    }

    #[test]
    fn fp_literal_parser_handles_all_forms() {
        assert_eq!(parse_c_fp_literal("2.0"), Some(2.0));
        assert_eq!(parse_c_fp_literal("2.5f"), Some(2.5));
        assert_eq!(parse_c_fp_literal("1e3"), Some(1000.0));
        assert_eq!(parse_c_fp_literal("0x1.8p+1"), Some(3.0));
        assert_eq!(parse_c_fp_literal("-0x1p-1"), Some(-0.5));
        assert_eq!(parse_c_fp_literal("abc"), None);
    }

    #[test]
    fn hex_literals_round_trip_through_parser() {
        for &v in &[0.1, -7.25e-12, 3.0e100, 2.2250738585072014e-308] {
            let lit = crate::ast::c_fp_literal(v, Precision::F64);
            let parsed = parse_c_fp_literal(lit.trim_end_matches('f')).unwrap();
            assert_eq!(parsed.to_bits(), v.to_bits(), "{lit}");
        }
    }
}
