//! The HPC idiom knowledge base used by the simulated LLM.
//!
//! The insight behind LLM4FP is that a language model has "seen" a large
//! amount of numerical source code and therefore produces semantically
//! plausible floating-point computations (reductions, polynomial evaluation,
//! stencils, iterative refinement, compensated summation, ...) rather than
//! arbitrary operator soup. The simulated LLM draws from this module's
//! idiom builders to get the same effect: programs whose computations look
//! like (small) HPC kernels, exercise the math library, and contain the
//! multiply-add / long-chain / division shapes that compilers treat
//! differently.

use rand::prelude::*;

use llm4fp_fpir::{
    AssignOp, BinOp, Block, BoolExpr, CmpOp, Expr, IndexExpr, MathFunc, Param, ParamType,
    Precision, Program, Stmt, COMP,
};

use crate::sampling::SamplingParams;

/// All idiom kinds the knowledge base can instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IdiomKind {
    DotProduct,
    Axpy,
    HornerPolynomial,
    NewtonSqrt,
    KahanSum,
    Stencil1D,
    ExponentialDecay,
    TrigIdentity,
    LogSumExp,
    VectorNormalize,
    TaylorSeries,
    RunningVariance,
    TrapezoidIntegration,
    HarmonicSum,
    FmaChain,
    Cancellation,
    GeometricMean,
    ConditionalClamp,
}

impl IdiomKind {
    /// Every idiom, in a stable order.
    pub const ALL: [IdiomKind; 18] = [
        IdiomKind::DotProduct,
        IdiomKind::Axpy,
        IdiomKind::HornerPolynomial,
        IdiomKind::NewtonSqrt,
        IdiomKind::KahanSum,
        IdiomKind::Stencil1D,
        IdiomKind::ExponentialDecay,
        IdiomKind::TrigIdentity,
        IdiomKind::LogSumExp,
        IdiomKind::VectorNormalize,
        IdiomKind::TaylorSeries,
        IdiomKind::RunningVariance,
        IdiomKind::TrapezoidIntegration,
        IdiomKind::HarmonicSum,
        IdiomKind::FmaChain,
        IdiomKind::Cancellation,
        IdiomKind::GeometricMean,
        IdiomKind::ConditionalClamp,
    ];

    /// A short human-readable label (used in reports and benches).
    pub fn name(self) -> &'static str {
        match self {
            IdiomKind::DotProduct => "dot-product",
            IdiomKind::Axpy => "axpy",
            IdiomKind::HornerPolynomial => "horner-polynomial",
            IdiomKind::NewtonSqrt => "newton-sqrt",
            IdiomKind::KahanSum => "kahan-sum",
            IdiomKind::Stencil1D => "stencil-1d",
            IdiomKind::ExponentialDecay => "exponential-decay",
            IdiomKind::TrigIdentity => "trig-identity",
            IdiomKind::LogSumExp => "log-sum-exp",
            IdiomKind::VectorNormalize => "vector-normalize",
            IdiomKind::TaylorSeries => "taylor-series",
            IdiomKind::RunningVariance => "running-variance",
            IdiomKind::TrapezoidIntegration => "trapezoid-integration",
            IdiomKind::HarmonicSum => "harmonic-sum",
            IdiomKind::FmaChain => "fma-chain",
            IdiomKind::Cancellation => "cancellation",
            IdiomKind::GeometricMean => "geometric-mean",
            IdiomKind::ConditionalClamp => "conditional-clamp",
        }
    }
}

/// Incrementally builds a program: tracks parameters, declared temporaries
/// and arrays so that idioms can reference (and share) state, and so the
/// result always passes validation.
pub struct ProgramBuilder {
    precision: Precision,
    params: Vec<Param>,
    stmts: Vec<Stmt>,
    scalars: Vec<String>,
    arrays: Vec<(String, usize)>,
    temp_counter: usize,
    loop_counter: usize,
    pub used_idioms: Vec<IdiomKind>,
    pub used_funcs: Vec<MathFunc>,
    naming_seed: usize,
}

/// Scalar parameter name pools; which pool is used depends on the builder's
/// naming seed, so different programs use different identifier families
/// (this matters for diversity metrics: real LLM output varies its naming).
const SCALAR_NAMES: [&[&str]; 4] = [
    &["x", "y", "z", "w", "u", "v"],
    &["alpha", "beta", "gamma", "delta", "omega", "theta"],
    &["a0", "b0", "c0", "d0", "e0", "f0"],
    &["val", "scale", "shift", "rate", "bias", "gain"],
];

const ARRAY_NAMES: [&[&str]; 4] = [
    &["arr", "buf", "data", "vec"],
    &["xs", "ys", "zs", "ws"],
    &["input", "coeff", "weight", "sample"],
    &["p", "q", "r", "s"],
];

impl ProgramBuilder {
    pub fn new(precision: Precision, naming_seed: usize) -> Self {
        ProgramBuilder {
            precision,
            params: Vec::new(),
            stmts: Vec::new(),
            scalars: Vec::new(),
            arrays: Vec::new(),
            temp_counter: 0,
            loop_counter: 0,
            used_idioms: Vec::new(),
            used_funcs: Vec::new(),
            naming_seed,
        }
    }

    /// Finish and return the program.
    pub fn finish(self) -> Program {
        Program { precision: self.precision, params: self.params, body: Block::new(self.stmts) }
    }

    /// Number of statements added so far.
    pub fn stmt_count(&self) -> usize {
        self.stmts.len()
    }

    fn fresh_temp(&mut self) -> String {
        let name = format!("t{}", self.temp_counter);
        self.temp_counter += 1;
        name
    }

    fn fresh_loop_var(&mut self) -> String {
        let pool = ["i", "j", "k", "m", "n2", "idx"];
        let name = pool[self.loop_counter % pool.len()].to_string();
        self.loop_counter += 1;
        name
    }

    /// Get (or create) a scalar fp parameter.
    pub fn scalar_param(&mut self, rng: &mut impl Rng) -> String {
        let existing: Vec<String> =
            self.params.iter().filter(|p| p.ty == ParamType::Fp).map(|p| p.name.clone()).collect();
        if !existing.is_empty() && rng.gen_bool(0.6) {
            return existing.choose(rng).unwrap().clone();
        }
        let pool = SCALAR_NAMES[self.naming_seed % SCALAR_NAMES.len()];
        for candidate in pool {
            if !self.params.iter().any(|p| p.name == *candidate) {
                self.params.push(Param::new(*candidate, ParamType::Fp));
                return (*candidate).to_string();
            }
        }
        let name = format!("s{}", self.params.len());
        self.params.push(Param::new(&name, ParamType::Fp));
        name
    }

    /// Get (or create) an fp-array parameter, returning its name and length.
    pub fn array_param(&mut self, rng: &mut impl Rng) -> (String, usize) {
        let existing: Vec<(String, usize)> = self
            .params
            .iter()
            .filter_map(|p| match p.ty {
                ParamType::FpArray(len) => Some((p.name.clone(), len)),
                _ => None,
            })
            .collect();
        if !existing.is_empty() && rng.gen_bool(0.5) {
            return existing.choose(rng).unwrap().clone();
        }
        let len = *[4usize, 6, 8, 12, 16].choose(rng).unwrap();
        let pool = ARRAY_NAMES[self.naming_seed % ARRAY_NAMES.len()];
        for candidate in pool {
            if !self.params.iter().any(|p| p.name == *candidate) {
                self.params.push(Param::new(*candidate, ParamType::FpArray(len)));
                self.arrays.push(((*candidate).to_string(), len));
                return ((*candidate).to_string(), len);
            }
        }
        let name = format!("arr{}", self.params.len());
        self.params.push(Param::new(&name, ParamType::FpArray(len)));
        self.arrays.push((name.clone(), len));
        (name, len)
    }

    /// Declare a scalar temporary initialized with `expr`.
    pub fn decl_temp(&mut self, expr: Expr) -> String {
        let name = self.fresh_temp();
        self.stmts.push(Stmt::DeclScalar { name: name.clone(), expr });
        self.scalars.push(name.clone());
        name
    }

    /// Push a raw statement.
    pub fn push(&mut self, stmt: Stmt) {
        self.stmts.push(stmt);
    }

    /// Accumulate an expression into `comp`.
    pub fn accumulate(&mut self, op: AssignOp, expr: Expr) {
        self.stmts.push(Stmt::Assign { target: COMP.into(), op, expr });
    }

    /// A scalar value usable in an expression: a parameter, a previously
    /// declared temporary, or `comp` itself.
    pub fn some_scalar(&mut self, rng: &mut impl Rng) -> Expr {
        if !self.scalars.is_empty() && rng.gen_bool(0.4) {
            return Expr::var(self.scalars.choose(rng).unwrap().clone());
        }
        Expr::var(self.scalar_param(rng))
    }

    fn record(&mut self, kind: IdiomKind) {
        self.used_idioms.push(kind);
    }

    fn note_func(&mut self, f: MathFunc) -> MathFunc {
        self.used_funcs.push(f);
        f
    }

    /// Pick a math function, honouring the frequency/presence penalties.
    pub fn pick_func(
        &mut self,
        rng: &mut impl Rng,
        sampling: &SamplingParams,
        candidates: &[MathFunc],
    ) -> MathFunc {
        let weights: Vec<f64> = candidates
            .iter()
            .map(|f| {
                let count = self.used_funcs.iter().filter(|u| *u == f).count();
                sampling.repeat_weight(count)
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let mut pick = rng.gen::<f64>() * total;
        for (f, w) in candidates.iter().zip(weights) {
            if pick <= w {
                return self.note_func(*f);
            }
            pick -= w;
        }
        self.note_func(*candidates.last().expect("candidate list is not empty"))
    }
}

/// A plausible "physical" constant: mostly O(1), occasionally larger or
/// smaller, the way constants appear in numerical kernels.
pub fn plausible_constant(rng: &mut impl Rng) -> f64 {
    let r: f64 = rng.gen();
    let magnitude = if r < 0.70 {
        rng.gen_range(0.05..10.0)
    } else if r < 0.85 {
        rng.gen_range(10.0..1e4)
    } else if r < 0.95 {
        rng.gen_range(1e-6..0.05)
    } else {
        rng.gen_range(1e4..1e9)
    };
    if rng.gen_bool(0.35) {
        -magnitude
    } else {
        magnitude
    }
}

/// Instantiate one idiom, appending its statements to the builder.
pub fn instantiate(
    kind: IdiomKind,
    builder: &mut ProgramBuilder,
    rng: &mut impl Rng,
    sampling: &SamplingParams,
) {
    builder.record(kind);
    match kind {
        IdiomKind::DotProduct => dot_product(builder, rng),
        IdiomKind::Axpy => axpy(builder, rng),
        IdiomKind::HornerPolynomial => horner(builder, rng),
        IdiomKind::NewtonSqrt => newton_sqrt(builder, rng),
        IdiomKind::KahanSum => kahan_sum(builder, rng),
        IdiomKind::Stencil1D => stencil(builder, rng),
        IdiomKind::ExponentialDecay => exp_decay(builder, rng, sampling),
        IdiomKind::TrigIdentity => trig_identity(builder, rng, sampling),
        IdiomKind::LogSumExp => log_sum_exp(builder, rng),
        IdiomKind::VectorNormalize => normalize(builder, rng),
        IdiomKind::TaylorSeries => taylor_series(builder, rng),
        IdiomKind::RunningVariance => running_variance(builder, rng),
        IdiomKind::TrapezoidIntegration => trapezoid(builder, rng, sampling),
        IdiomKind::HarmonicSum => harmonic(builder, rng),
        IdiomKind::FmaChain => fma_chain(builder, rng),
        IdiomKind::Cancellation => cancellation(builder, rng),
        IdiomKind::GeometricMean => geometric_mean(builder, rng),
        IdiomKind::ConditionalClamp => conditional_clamp(builder, rng, sampling),
    }
}

fn num(v: f64) -> Expr {
    Expr::Num(v)
}

fn dot_product(b: &mut ProgramBuilder, rng: &mut impl Rng) {
    let (a, len) = b.array_param(rng);
    let s = b.scalar_param(rng);
    let i = b.fresh_loop_var();
    let bound = rng.gen_range(2..=len as i64);
    let body = Block::new(vec![Stmt::Assign {
        target: COMP.into(),
        op: AssignOp::Add,
        expr: Expr::bin(
            BinOp::Mul,
            Expr::Index { array: a, index: IndexExpr::Var(i.clone()) },
            Expr::var(s),
        ),
    }]);
    b.push(Stmt::For { var: i, bound, body });
}

fn axpy(b: &mut ProgramBuilder, rng: &mut impl Rng) {
    let (x, len) = b.array_param(rng);
    let alpha = b.scalar_param(rng);
    let i = b.fresh_loop_var();
    let bound = len as i64;
    let body = Block::new(vec![
        Stmt::AssignIndex {
            array: x.clone(),
            index: IndexExpr::Var(i.clone()),
            op: AssignOp::Assign,
            expr: Expr::bin(
                BinOp::Add,
                Expr::bin(
                    BinOp::Mul,
                    Expr::var(alpha),
                    Expr::Index { array: x.clone(), index: IndexExpr::Var(i.clone()) },
                ),
                num(plausible_constant(rng)),
            ),
        },
        Stmt::Assign {
            target: COMP.into(),
            op: AssignOp::Add,
            expr: Expr::Index { array: x, index: IndexExpr::Var(i.clone()) },
        },
    ]);
    b.push(Stmt::For { var: i, bound, body });
}

fn horner(b: &mut ProgramBuilder, rng: &mut impl Rng) {
    let x = b.scalar_param(rng);
    let acc = b.decl_temp(num(plausible_constant(rng)));
    let degree = rng.gen_range(3..=6);
    for _ in 0..degree {
        b.push(Stmt::Assign {
            target: acc.clone(),
            op: AssignOp::Assign,
            expr: Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Mul, Expr::var(acc.clone()), Expr::var(x.clone())),
                num(plausible_constant(rng)),
            ),
        });
    }
    b.accumulate(AssignOp::Add, Expr::var(acc));
}

fn newton_sqrt(b: &mut ProgramBuilder, rng: &mut impl Rng) {
    let x = b.scalar_param(rng);
    let y = b.decl_temp(Expr::bin(
        BinOp::Add,
        Expr::bin(BinOp::Mul, Expr::var(x.clone()), num(0.5)),
        num(1.0),
    ));
    let i = b.fresh_loop_var();
    let body = Block::new(vec![Stmt::Assign {
        target: y.clone(),
        op: AssignOp::Assign,
        expr: Expr::bin(
            BinOp::Mul,
            num(0.5),
            Expr::bin(
                BinOp::Add,
                Expr::var(y.clone()),
                Expr::bin(
                    BinOp::Div,
                    Expr::call(MathFunc::Fabs, vec![Expr::var(x.clone())]),
                    Expr::var(y.clone()),
                ),
            )
            .paren(),
        ),
    }]);
    b.used_funcs.push(MathFunc::Fabs);
    b.push(Stmt::For { var: i, bound: rng.gen_range(3..=6), body });
    b.accumulate(AssignOp::Add, Expr::var(y));
}

fn kahan_sum(b: &mut ProgramBuilder, rng: &mut impl Rng) {
    let (a, len) = b.array_param(rng);
    let sum = b.decl_temp(num(0.0));
    let c = b.decl_temp(num(0.0));
    let y = b.decl_temp(num(0.0));
    let t = b.decl_temp(num(0.0));
    let i = b.fresh_loop_var();
    let body = Block::new(vec![
        Stmt::Assign {
            target: y.clone(),
            op: AssignOp::Assign,
            expr: Expr::bin(
                BinOp::Sub,
                Expr::Index { array: a.clone(), index: IndexExpr::Var(i.clone()) },
                Expr::var(c.clone()),
            ),
        },
        Stmt::Assign {
            target: t.clone(),
            op: AssignOp::Assign,
            expr: Expr::bin(BinOp::Add, Expr::var(sum.clone()), Expr::var(y.clone())),
        },
        Stmt::Assign {
            target: c.clone(),
            op: AssignOp::Assign,
            expr: Expr::bin(
                BinOp::Sub,
                Expr::bin(BinOp::Sub, Expr::var(t.clone()), Expr::var(sum.clone())).paren(),
                Expr::var(y.clone()),
            ),
        },
        Stmt::Assign { target: sum.clone(), op: AssignOp::Assign, expr: Expr::var(t.clone()) },
    ]);
    b.push(Stmt::For { var: i, bound: len as i64, body });
    let _ = rng;
    b.accumulate(AssignOp::Add, Expr::var(sum));
}

fn stencil(b: &mut ProgramBuilder, rng: &mut impl Rng) {
    let (a, len) = b.array_param(rng);
    let i = b.fresh_loop_var();
    let bound = (len as i64 - 2).max(1);
    let body = Block::new(vec![Stmt::Assign {
        target: COMP.into(),
        op: AssignOp::Add,
        expr: Expr::bin(
            BinOp::Div,
            Expr::bin(
                BinOp::Add,
                Expr::bin(
                    BinOp::Add,
                    Expr::Index { array: a.clone(), index: IndexExpr::Var(i.clone()) },
                    Expr::Index {
                        array: a.clone(),
                        index: IndexExpr::Offset { var: i.clone(), offset: 1 },
                    },
                ),
                Expr::Index {
                    array: a.clone(),
                    index: IndexExpr::Offset { var: i.clone(), offset: 2 },
                },
            )
            .paren(),
            num(3.0),
        ),
    }]);
    b.push(Stmt::For { var: i, bound, body });
}

fn exp_decay(b: &mut ProgramBuilder, rng: &mut impl Rng, sampling: &SamplingParams) {
    let rate = b.scalar_param(rng);
    let f = b.pick_func(rng, sampling, &[MathFunc::Exp, MathFunc::Exp2, MathFunc::Expm1]);
    let s = b.decl_temp(num(rng.gen_range(0.5..2.0)));
    let i = b.fresh_loop_var();
    let body = Block::new(vec![
        Stmt::Assign {
            target: s.clone(),
            op: AssignOp::Mul,
            expr: Expr::call(
                f,
                vec![Expr::bin(
                    BinOp::Div,
                    Expr::Neg(Box::new(Expr::call(MathFunc::Fabs, vec![Expr::var(rate.clone())]))),
                    num(rng.gen_range(8.0..64.0)),
                )],
            ),
        },
        Stmt::Assign { target: COMP.into(), op: AssignOp::Add, expr: Expr::var(s.clone()) },
    ]);
    b.used_funcs.push(MathFunc::Fabs);
    b.push(Stmt::For { var: i, bound: rng.gen_range(3..=8), body });
}

fn trig_identity(b: &mut ProgramBuilder, rng: &mut impl Rng, sampling: &SamplingParams) {
    let x = b.scalar_param(rng);
    let f = b.pick_func(rng, sampling, &[MathFunc::Sin, MathFunc::Cos, MathFunc::Tan]);
    let g = b.pick_func(rng, sampling, &[MathFunc::Cos, MathFunc::Sin, MathFunc::Atan]);
    let s = b.decl_temp(Expr::call(f, vec![Expr::var(x.clone())]));
    let c = b.decl_temp(Expr::call(g, vec![Expr::var(x.clone())]));
    b.accumulate(
        AssignOp::Add,
        Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Mul, Expr::var(s.clone()), Expr::var(s)),
            Expr::bin(BinOp::Mul, Expr::var(c.clone()), Expr::var(c)),
        ),
    );
}

fn log_sum_exp(b: &mut ProgramBuilder, rng: &mut impl Rng) {
    let x = b.scalar_param(rng);
    let y = b.scalar_param(rng);
    let m =
        b.decl_temp(Expr::call(MathFunc::Fmax, vec![Expr::var(x.clone()), Expr::var(y.clone())]));
    b.used_funcs.extend([MathFunc::Fmax, MathFunc::Exp, MathFunc::Log]);
    b.accumulate(
        AssignOp::Add,
        Expr::bin(
            BinOp::Add,
            Expr::var(m.clone()),
            Expr::call(
                MathFunc::Log,
                vec![Expr::bin(
                    BinOp::Add,
                    Expr::call(
                        MathFunc::Exp,
                        vec![Expr::bin(BinOp::Sub, Expr::var(x), Expr::var(m.clone()))],
                    ),
                    Expr::call(
                        MathFunc::Exp,
                        vec![Expr::bin(BinOp::Sub, Expr::var(y), Expr::var(m))],
                    ),
                )],
            ),
        ),
    );
}

fn normalize(b: &mut ProgramBuilder, rng: &mut impl Rng) {
    let x = b.scalar_param(rng);
    let y = b.scalar_param(rng);
    let z = b.scalar_param(rng);
    b.used_funcs.push(MathFunc::Sqrt);
    let norm = b.decl_temp(Expr::call(
        MathFunc::Sqrt,
        vec![Expr::bin(
            BinOp::Add,
            Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Mul, Expr::var(x.clone()), Expr::var(x.clone())),
                Expr::bin(BinOp::Mul, Expr::var(y.clone()), Expr::var(y.clone())),
            ),
            Expr::bin(BinOp::Mul, Expr::var(z.clone()), Expr::var(z.clone())),
        )],
    ));
    b.accumulate(
        AssignOp::Add,
        Expr::bin(
            BinOp::Div,
            Expr::var(x),
            Expr::bin(BinOp::Add, Expr::var(norm), num(1e-9)).paren(),
        ),
    );
}

fn taylor_series(b: &mut ProgramBuilder, rng: &mut impl Rng) {
    let x = b.scalar_param(rng);
    let term = b.decl_temp(num(1.0));
    let i = b.fresh_loop_var();
    let scale = rng.gen_range(4.0..32.0);
    let body = Block::new(vec![
        Stmt::Assign {
            target: term.clone(),
            op: AssignOp::Mul,
            expr: Expr::bin(
                BinOp::Div,
                Expr::var(x.clone()),
                Expr::bin(BinOp::Add, Expr::var(i.clone()), num(scale)).paren(),
            ),
        },
        Stmt::Assign { target: COMP.into(), op: AssignOp::Add, expr: Expr::var(term.clone()) },
    ]);
    b.push(Stmt::For { var: i, bound: rng.gen_range(4..=10), body });
}

fn running_variance(b: &mut ProgramBuilder, rng: &mut impl Rng) {
    let (a, len) = b.array_param(rng);
    let mean = b.decl_temp(num(0.0));
    let i = b.fresh_loop_var();
    b.push(Stmt::For {
        var: i.clone(),
        bound: len as i64,
        body: Block::new(vec![Stmt::Assign {
            target: mean.clone(),
            op: AssignOp::Add,
            expr: Expr::bin(
                BinOp::Div,
                Expr::Index { array: a.clone(), index: IndexExpr::Var(i.clone()) },
                num(len as f64),
            ),
        }]),
    });
    let var = b.decl_temp(num(0.0));
    let j = b.fresh_loop_var();
    b.push(Stmt::For {
        var: j.clone(),
        bound: len as i64,
        body: Block::new(vec![Stmt::Assign {
            target: var.clone(),
            op: AssignOp::Add,
            expr: Expr::bin(
                BinOp::Mul,
                Expr::bin(
                    BinOp::Sub,
                    Expr::Index { array: a.clone(), index: IndexExpr::Var(j.clone()) },
                    Expr::var(mean.clone()),
                )
                .paren(),
                Expr::bin(
                    BinOp::Sub,
                    Expr::Index { array: a, index: IndexExpr::Var(j.clone()) },
                    Expr::var(mean.clone()),
                )
                .paren(),
            ),
        }]),
    });
    b.accumulate(AssignOp::Add, Expr::var(var));
}

fn trapezoid(b: &mut ProgramBuilder, rng: &mut impl Rng, sampling: &SamplingParams) {
    let h = b.scalar_param(rng);
    let f =
        b.pick_func(rng, sampling, &[MathFunc::Sin, MathFunc::Cos, MathFunc::Tanh, MathFunc::Atan]);
    let i = b.fresh_loop_var();
    let step = Expr::bin(BinOp::Div, Expr::var(h.clone()), num(rng.gen_range(16.0..64.0)));
    let xi = Expr::bin(BinOp::Mul, Expr::var(i.clone()), step.clone());
    let xi1 = Expr::bin(
        BinOp::Mul,
        Expr::bin(BinOp::Add, Expr::var(i.clone()), num(1.0)).paren(),
        step.clone(),
    );
    let body = Block::new(vec![Stmt::Assign {
        target: COMP.into(),
        op: AssignOp::Add,
        expr: Expr::bin(
            BinOp::Mul,
            Expr::bin(BinOp::Add, Expr::call(f, vec![xi]), Expr::call(f, vec![xi1])).paren(),
            Expr::bin(BinOp::Mul, step, num(0.5)),
        ),
    }]);
    b.push(Stmt::For { var: i, bound: rng.gen_range(4..=12), body });
}

fn harmonic(b: &mut ProgramBuilder, rng: &mut impl Rng) {
    let i = b.fresh_loop_var();
    let body = Block::new(vec![Stmt::Assign {
        target: COMP.into(),
        op: AssignOp::Add,
        expr: Expr::bin(
            BinOp::Div,
            num(1.0),
            Expr::bin(BinOp::Add, Expr::var(i.clone()), num(1.0)).paren(),
        ),
    }]);
    b.push(Stmt::For { var: i, bound: rng.gen_range(5..=20), body });
}

fn fma_chain(b: &mut ProgramBuilder, rng: &mut impl Rng) {
    let terms = rng.gen_range(2..=4);
    let mut expr = num(plausible_constant(rng));
    for _ in 0..terms {
        let a = b.some_scalar(rng);
        let c = b.some_scalar(rng);
        expr = Expr::bin(BinOp::Add, Expr::bin(BinOp::Mul, a, c), expr);
    }
    b.accumulate(AssignOp::Add, expr);
}

fn cancellation(b: &mut ProgramBuilder, rng: &mut impl Rng) {
    let x = b.scalar_param(rng);
    let big = num(rng.gen_range(1e6..1e12));
    let t = b.decl_temp(Expr::bin(
        BinOp::Sub,
        Expr::bin(BinOp::Add, Expr::var(x.clone()), big.clone()).paren(),
        big,
    ));
    b.accumulate(AssignOp::Add, Expr::bin(BinOp::Sub, Expr::var(t), Expr::var(x)));
}

fn geometric_mean(b: &mut ProgramBuilder, rng: &mut impl Rng) {
    let x = b.scalar_param(rng);
    let y = b.scalar_param(rng);
    b.used_funcs.extend([MathFunc::Log, MathFunc::Exp, MathFunc::Fabs]);
    b.accumulate(
        AssignOp::Add,
        Expr::call(
            MathFunc::Exp,
            vec![Expr::bin(
                BinOp::Div,
                Expr::bin(
                    BinOp::Add,
                    Expr::call(
                        MathFunc::Log,
                        vec![Expr::bin(
                            BinOp::Add,
                            Expr::call(MathFunc::Fabs, vec![Expr::var(x)]),
                            num(1e-6),
                        )],
                    ),
                    Expr::call(
                        MathFunc::Log,
                        vec![Expr::bin(
                            BinOp::Add,
                            Expr::call(MathFunc::Fabs, vec![Expr::var(y)]),
                            num(1e-6),
                        )],
                    ),
                ),
                num(2.0),
            )],
        ),
    );
}

fn conditional_clamp(b: &mut ProgramBuilder, rng: &mut impl Rng, sampling: &SamplingParams) {
    let x = b.scalar_param(rng);
    let limit = plausible_constant(rng).abs() + 1.0;
    let f = b.pick_func(rng, sampling, &[MathFunc::Tanh, MathFunc::Atan, MathFunc::Sin]);
    let t = b.decl_temp(Expr::bin(
        BinOp::Mul,
        Expr::call(f, vec![Expr::var(x.clone())]),
        num(plausible_constant(rng)),
    ));
    b.push(Stmt::If {
        cond: BoolExpr { lhs: Expr::var(t.clone()), op: CmpOp::Gt, rhs: num(limit) },
        then_block: Block::new(vec![Stmt::Assign {
            target: t.clone(),
            op: AssignOp::Assign,
            expr: num(limit),
        }]),
    });
    b.push(Stmt::If {
        cond: BoolExpr { lhs: Expr::var(t.clone()), op: CmpOp::Lt, rhs: num(-limit) },
        then_block: Block::new(vec![Stmt::Assign {
            target: t.clone(),
            op: AssignOp::Assign,
            expr: num(-limit),
        }]),
    });
    b.accumulate(AssignOp::Add, Expr::var(t));
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm4fp_fpir::validate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_idiom_produces_a_valid_program() {
        let sampling = SamplingParams::paper_defaults();
        for (seed, &kind) in IdiomKind::ALL.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(seed as u64 + 1);
            let mut builder = ProgramBuilder::new(Precision::F64, seed);
            instantiate(kind, &mut builder, &mut rng, &sampling);
            let program = builder.finish();
            let problems = validate(&program);
            assert!(
                problems.is_empty(),
                "idiom {} produced an invalid program: {:?}\n{}",
                kind.name(),
                problems,
                llm4fp_fpir::to_compute_source(&program)
            );
            assert!(program.stmt_count() > 0, "idiom {} produced no statements", kind.name());
        }
    }

    #[test]
    fn idioms_compose_into_valid_programs() {
        let sampling = SamplingParams::paper_defaults();
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut builder = ProgramBuilder::new(Precision::F64, seed as usize);
            for _ in 0..rng.gen_range(2..=5) {
                let kind = *IdiomKind::ALL.choose(&mut rng).unwrap();
                instantiate(kind, &mut builder, &mut rng, &sampling);
            }
            let program = builder.finish();
            assert!(
                validate(&program).is_empty(),
                "seed {seed} produced invalid program:\n{}",
                llm4fp_fpir::to_compute_source(&program)
            );
        }
    }

    #[test]
    fn idiom_programs_execute_without_runtime_errors() {
        use llm4fp_compiler::{compile, CompilerConfig, CompilerId, OptLevel};
        let sampling = SamplingParams::paper_defaults();
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed + 100);
            let mut builder = ProgramBuilder::new(Precision::F64, seed as usize);
            for _ in 0..3 {
                let kind = *IdiomKind::ALL.choose(&mut rng).unwrap();
                instantiate(kind, &mut builder, &mut rng, &sampling);
            }
            let program = builder.finish();
            let inputs = llm4fp_fpir::inputs::default_inputs(&program.params);
            let compiled =
                compile(&program, CompilerConfig::new(CompilerId::Gcc, OptLevel::O2)).unwrap();
            compiled.execute(&inputs).expect("idiom program must execute");
        }
    }

    #[test]
    fn naming_pools_differ_across_seeds() {
        let sampling = SamplingParams::paper_defaults();
        let mut names = std::collections::HashSet::new();
        for seed in 0..4usize {
            let mut rng = StdRng::seed_from_u64(7);
            let mut builder = ProgramBuilder::new(Precision::F64, seed);
            instantiate(IdiomKind::DotProduct, &mut builder, &mut rng, &sampling);
            let program = builder.finish();
            for p in &program.params {
                names.insert(p.name.clone());
            }
        }
        // Across the four naming pools we should see more than two distinct
        // parameter names for the same idiom.
        assert!(names.len() > 2, "{names:?}");
    }

    #[test]
    fn plausible_constants_are_finite_and_varied() {
        let mut rng = StdRng::seed_from_u64(42);
        let values: Vec<f64> = (0..1000).map(|_| plausible_constant(&mut rng)).collect();
        assert!(values.iter().all(|v| v.is_finite() && *v != 0.0));
        let negatives = values.iter().filter(|v| **v < 0.0).count();
        assert!(negatives > 200 && negatives < 600);
        let large = values.iter().filter(|v| v.abs() > 1e4).count();
        assert!(large > 10, "some constants should be large");
    }

    #[test]
    fn pick_func_respects_frequency_penalty() {
        let mut rng = StdRng::seed_from_u64(3);
        let sampling =
            SamplingParams { frequency_penalty: 2.0, ..SamplingParams::paper_defaults() };
        let mut builder = ProgramBuilder::new(Precision::F64, 0);
        let candidates = [MathFunc::Sin, MathFunc::Cos, MathFunc::Exp, MathFunc::Log];
        let mut counts = std::collections::HashMap::new();
        for _ in 0..200 {
            let f = builder.pick_func(&mut rng, &sampling, &candidates);
            *counts.entry(f).or_insert(0usize) += 1;
        }
        // With a strong frequency penalty every candidate gets picked.
        assert_eq!(counts.len(), candidates.len(), "{counts:?}");
    }
}
