//! Random input generation.
//!
//! Each generated program is paired with a unique set of input values
//! (Section 3.1.3). Following Varity's input model, values are drawn from a
//! mixture of regimes so that both ordinary and boundary behaviour is
//! exercised: moderate magnitudes, large and tiny magnitudes, values near
//! one, exact zeros and subnormals.

use rand::prelude::*;

use llm4fp_fpir::{InputSet, InputValue, ParamType, Program};

/// Relative frequencies of the input regimes.
#[derive(Debug, Clone, Copy)]
pub struct InputProfile {
    /// Values in `[-10, 10]` (typical kernel data).
    pub moderate: f64,
    /// Large magnitudes (`1e3 ..= 1e8`).
    pub large: f64,
    /// Tiny magnitudes (`1e-8 ..= 1e-3`).
    pub tiny: f64,
    /// Values within 1e-3 of 1.0 (cancellation-prone).
    pub near_one: f64,
    /// Exact zero.
    pub zero: f64,
    /// Subnormal values.
    pub subnormal: f64,
}

impl InputProfile {
    /// The default mixture used by the campaigns.
    pub fn balanced() -> Self {
        InputProfile {
            moderate: 0.55,
            large: 0.15,
            tiny: 0.12,
            near_one: 0.10,
            zero: 0.04,
            subnormal: 0.04,
        }
    }

    /// A profile restricted to moderate values (useful for examples that
    /// want to avoid extreme-value behaviour entirely).
    pub fn moderate_only() -> Self {
        InputProfile {
            moderate: 1.0,
            large: 0.0,
            tiny: 0.0,
            near_one: 0.0,
            zero: 0.0,
            subnormal: 0.0,
        }
    }

    fn total(&self) -> f64 {
        self.moderate + self.large + self.tiny + self.near_one + self.zero + self.subnormal
    }
}

/// Generates one [`InputSet`] per program.
pub struct InputGenerator {
    rng: StdRng,
    profile: InputProfile,
}

impl InputGenerator {
    pub fn new(seed: u64) -> Self {
        Self::with_profile(seed, InputProfile::balanced())
    }

    pub fn with_profile(seed: u64, profile: InputProfile) -> Self {
        InputGenerator { rng: StdRng::seed_from_u64(seed), profile }
    }

    /// Generate a complete input set for `program` (one value per parameter).
    pub fn generate(&mut self, program: &Program) -> InputSet {
        let mut set = InputSet::new();
        for param in &program.params {
            let value = match param.ty {
                ParamType::Int => InputValue::Int(self.rng.gen_range(1..=8)),
                ParamType::Fp => InputValue::Fp(self.sample_fp()),
                ParamType::FpArray(len) => {
                    InputValue::FpArray((0..len).map(|_| self.sample_fp()).collect())
                }
            };
            set.insert(&param.name, value);
        }
        set
    }

    /// Draw one floating-point value from the regime mixture.
    pub fn sample_fp(&mut self) -> f64 {
        let p = &self.profile;
        let mut roll = self.rng.gen::<f64>() * p.total();
        let sign = if self.rng.gen_bool(0.45) { -1.0 } else { 1.0 };
        for (weight, regime) in [
            (p.moderate, Regime::Moderate),
            (p.large, Regime::Large),
            (p.tiny, Regime::Tiny),
            (p.near_one, Regime::NearOne),
            (p.zero, Regime::Zero),
            (p.subnormal, Regime::Subnormal),
        ] {
            if roll <= weight {
                return self.sample_regime(regime, sign);
            }
            roll -= weight;
        }
        self.sample_regime(Regime::Moderate, sign)
    }

    fn sample_regime(&mut self, regime: Regime, sign: f64) -> f64 {
        match regime {
            Regime::Moderate => sign * self.rng.gen_range(0.01..10.0),
            Regime::Large => sign * 10f64.powf(self.rng.gen_range(3.0..8.0)),
            Regime::Tiny => sign * 10f64.powf(self.rng.gen_range(-8.0..-3.0)),
            Regime::NearOne => 1.0 + sign * self.rng.gen_range(1e-12..1e-3),
            Regime::Zero => 0.0 * sign,
            Regime::Subnormal => {
                let bits = self.rng.gen_range(1u64..0x000f_ffff_ffff_ffff);
                sign * f64::from_bits(bits)
            }
        }
    }
}

#[derive(Clone, Copy)]
enum Regime {
    Moderate,
    Large,
    Tiny,
    NearOne,
    Zero,
    Subnormal,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::varity::VarityGenerator;

    #[test]
    fn generated_inputs_match_their_programs() {
        let mut varity = VarityGenerator::new(1);
        let mut inputs = InputGenerator::new(2);
        for _ in 0..50 {
            let program = varity.generate();
            let set = inputs.generate(&program);
            assert!(set.matches(&program).is_ok());
            assert_eq!(set.len(), program.params.len());
        }
    }

    #[test]
    fn sampling_covers_all_regimes() {
        let mut gen = InputGenerator::new(3);
        let values: Vec<f64> = (0..20_000).map(|_| gen.sample_fp()).collect();
        assert!(values.iter().all(|v| v.is_finite()));
        assert!(values.iter().any(|v| v.abs() > 1e3), "large regime missing");
        assert!(values.iter().any(|v| *v != 0.0 && v.abs() < 1e-3), "tiny regime missing");
        assert!(values.contains(&0.0), "zero regime missing");
        assert!(
            values.iter().any(|v| *v != 0.0 && v.abs() < f64::MIN_POSITIVE),
            "subnormal regime missing"
        );
        assert!(
            values.iter().any(|v| (*v - 1.0).abs() < 1e-3 && *v != 1.0),
            "near-one regime missing"
        );
        let negatives = values.iter().filter(|v| **v < 0.0).count();
        assert!(negatives > 5_000 && negatives < 15_000);
    }

    #[test]
    fn moderate_only_profile_stays_moderate() {
        let mut gen = InputGenerator::with_profile(4, InputProfile::moderate_only());
        for _ in 0..1000 {
            let v = gen.sample_fp();
            assert!(v.abs() <= 10.0 && v != 0.0, "unexpected value {v}");
        }
    }

    #[test]
    fn input_generation_is_deterministic_per_seed() {
        let mut varity = VarityGenerator::new(9);
        let program = varity.generate();
        let a = InputGenerator::new(42).generate(&program);
        let b = InputGenerator::new(42).generate(&program);
        let c = InputGenerator::new(43).generate(&program);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ints_are_small_and_positive() {
        let mut gen = InputGenerator::new(5);
        let program = llm4fp_fpir::parse_compute(
            "void compute(int n, int m, double x) { comp = x + n + m; }",
        )
        .unwrap();
        for _ in 0..100 {
            let set = gen.generate(&program);
            let n = set.get_int("n").unwrap();
            assert!((1..=8).contains(&n));
        }
    }
}
