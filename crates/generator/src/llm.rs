//! The LLM client abstraction and the simulated LLM.
//!
//! The paper drives program generation through the OpenAI API
//! (`gpt-4.1-2025-04-14`, Section 3.1.4). This reproduction cannot call an
//! external API, so the [`LlmClient`] trait separates the framework from the
//! model: the campaign code only ever sees prompts going in and C source
//! text (plus a latency) coming out. [`SimulatedLlm`] is the default
//! implementation — a knowledge-base synthesizer that honours the prompt's
//! strategy, precision and sampling parameters, and exhibits the behavioural
//! properties the evaluation depends on (see DESIGN.md):
//!
//! * grammar-guided prompts yield valid, idiom-rich programs;
//! * direct prompts occasionally yield invalid programs (missing grammar
//!   guidance), modelled by a configurable invalid-output rate;
//! * feedback prompts mutate the embedded seed program;
//! * every call reports a simulated API latency so the time-cost dimension
//!   of Table 2 can be reproduced without actually sleeping.

use std::time::Duration;

use rand::prelude::*;

use llm4fp_fpir::{parse_compute, to_compute_source, Precision, Program};

use crate::idioms::{self, IdiomKind, ProgramBuilder};
use crate::mutate::mutate_program;
use crate::prompt::{Prompt, Strategy};
use crate::sampling::SamplingParams;

/// A response from the (simulated or real) model.
#[derive(Debug, Clone, PartialEq)]
pub struct LlmResponse {
    /// The raw program text returned by the model (the `compute` function,
    /// possibly with a `main`, exactly as an LLM would print it).
    pub source: String,
    /// The latency this call would have had against the real API. The
    /// campaign accounts for it in the reported time cost instead of
    /// sleeping.
    pub simulated_latency: Duration,
    /// Model identifier (for reports).
    pub model: String,
}

/// Anything that can answer generation prompts.
pub trait LlmClient: Send {
    /// Generate program source for the given prompt.
    fn generate(&mut self, prompt: &Prompt) -> LlmResponse;
    /// Model/client name used in reports.
    fn name(&self) -> String;
}

/// Configuration of the simulated LLM.
#[derive(Debug, Clone)]
pub struct SimulatedLlmConfig {
    /// Sampling parameters (temperature & penalties).
    pub sampling: SamplingParams,
    /// Probability that a Direct-Prompt request produces an invalid program
    /// (no grammar guidance). Grammar-guided and feedback requests are
    /// always valid, as the paper's prompt design achieves in practice.
    pub direct_prompt_invalid_rate: f64,
    /// Mean simulated API latency per call.
    pub mean_latency: Duration,
    /// Latency jitter (uniform ±).
    pub latency_jitter: Duration,
}

impl Default for SimulatedLlmConfig {
    fn default() -> Self {
        SimulatedLlmConfig {
            sampling: SamplingParams::paper_defaults(),
            direct_prompt_invalid_rate: 0.08,
            // ~15 s / call: 1,000 calls ≈ 4.2 h of API latency, matching the
            // 4–6 h total time cost of the LLM-based approaches in Table 2.
            mean_latency: Duration::from_millis(15_000),
            latency_jitter: Duration::from_millis(6_000),
        }
    }
}

/// The simulated LLM.
pub struct SimulatedLlm {
    rng: StdRng,
    config: SimulatedLlmConfig,
    calls: u64,
}

impl SimulatedLlm {
    pub fn new(seed: u64) -> Self {
        Self::with_config(seed, SimulatedLlmConfig::default())
    }

    pub fn with_config(seed: u64, config: SimulatedLlmConfig) -> Self {
        SimulatedLlm { rng: StdRng::seed_from_u64(seed), config, calls: 0 }
    }

    /// Number of generate calls served so far.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Snapshot the mutable state (RNG stream + call counter) so a paused
    /// campaign can be checkpointed; see [`Self::restore_state`].
    pub fn state(&self) -> ([u64; 4], u64) {
        (self.rng.state(), self.calls)
    }

    /// Restore state snapshotted by [`Self::state`]. The restored client
    /// replays the exact response sequence the snapshotted one would have
    /// produced.
    pub fn restore_state(&mut self, rng: [u64; 4], calls: u64) {
        self.rng = StdRng::from_state(rng);
        self.calls = calls;
    }

    fn latency(&mut self) -> Duration {
        let jitter_ms = self.config.latency_jitter.as_millis() as i64;
        let offset = if jitter_ms > 0 { self.rng.gen_range(-jitter_ms..=jitter_ms) } else { 0 };
        let base = self.config.mean_latency.as_millis() as i64;
        Duration::from_millis((base + offset).max(500) as u64)
    }

    /// Compose a fresh program from the idiom knowledge base.
    fn synthesize(&mut self, precision: Precision, idiom_budget: usize) -> Program {
        let naming_seed = self.rng.gen_range(0..4);
        let mut builder = ProgramBuilder::new(precision, naming_seed);
        let sampling = self.config.sampling;
        let budget = sampling.scale_count(idiom_budget).clamp(1, 6);
        for _ in 0..budget {
            let kind = self.pick_idiom(&builder);
            idioms::instantiate(kind, &mut builder, &mut self.rng, &sampling);
        }
        builder.finish()
    }

    /// Pick the next idiom, honouring the presence penalty (prefer kinds not
    /// used yet) and the frequency penalty (avoid heavy repetition).
    fn pick_idiom(&mut self, builder: &ProgramBuilder) -> IdiomKind {
        let sampling = self.config.sampling;
        let explore = self.rng.gen_bool(sampling.explore_probability());
        let unused: Vec<IdiomKind> =
            IdiomKind::ALL.iter().copied().filter(|k| !builder.used_idioms.contains(k)).collect();
        if explore && !unused.is_empty() {
            return *unused.choose(&mut self.rng).unwrap();
        }
        let weights: Vec<f64> = IdiomKind::ALL
            .iter()
            .map(|k| {
                let count = builder.used_idioms.iter().filter(|u| *u == k).count();
                sampling.repeat_weight(count)
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let mut pick = self.rng.gen::<f64>() * total;
        for (k, w) in IdiomKind::ALL.iter().zip(weights) {
            if pick <= w {
                return *k;
            }
            pick -= w;
        }
        IdiomKind::DotProduct
    }

    /// An intentionally broken program, standing in for the occasional
    /// Direct-Prompt output that does not compile (unsupported headers,
    /// helper functions outside the allowed structure, uninitialized
    /// variables).
    fn invalid_program(&mut self, precision: Precision) -> String {
        let ty = precision.c_type();
        match self.rng.gen_range(0..3) {
            0 => format!(
                "#include <quadmath.h>\nvoid compute({ty} x) {{\n    {ty} comp = 0.0;\n    comp = helper_kernel(x) * 2.0;\n}}\n"
            ),
            1 => format!(
                "void compute({ty} x) {{\n    {ty} comp = 0.0;\n    comp = x * uninitialized_value + 1.0;\n}}\n"
            ),
            _ => format!(
                "void compute({ty} *data) {{\n    {ty} comp = 0.0;\n    for (int i = 0; i < 100000; ++i) {{\n        comp += data[i];\n    }}\n}}\n"
            ),
        }
    }

    fn direct_prompt_program(&mut self, precision: Precision) -> String {
        if self.rng.gen_bool(self.config.direct_prompt_invalid_rate) {
            return self.invalid_program(precision);
        }
        // Without the grammar the model produces simpler, less structured
        // programs: fewer idioms per program.
        let program = self.synthesize(precision, 1);
        to_compute_source(&program)
    }

    fn grammar_program(&mut self, precision: Precision) -> String {
        let program = self.synthesize(precision, 3);
        to_compute_source(&program)
    }

    fn feedback_program(&mut self, prompt: &Prompt) -> String {
        let seed_src = prompt.seed_program.as_deref().unwrap_or_default();
        match parse_compute(seed_src) {
            Ok(seed) => {
                let (mutant, _ops) = mutate_program(&seed, &mut self.rng, &self.config.sampling);
                to_compute_source(&mutant)
            }
            // If the seed cannot be parsed the model falls back to fresh
            // grammar-guided generation (it still "knows" the grammar from
            // the guidelines in the prompt).
            Err(_) => self.grammar_program(prompt.precision),
        }
    }
}

impl LlmClient for SimulatedLlm {
    fn generate(&mut self, prompt: &Prompt) -> LlmResponse {
        self.calls += 1;
        let source = match prompt.strategy {
            Strategy::DirectPrompt => self.direct_prompt_program(prompt.precision),
            Strategy::GrammarBased => self.grammar_program(prompt.precision),
            Strategy::FeedbackMutation => self.feedback_program(prompt),
        };
        LlmResponse { source, simulated_latency: self.latency(), model: self.name() }
    }

    fn name(&self) -> String {
        "simulated-gpt4".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::PromptBuilder;
    use llm4fp_fpir::validate;

    fn builder() -> PromptBuilder {
        PromptBuilder::new(Precision::F64)
    }

    #[test]
    fn grammar_prompts_always_yield_valid_programs() {
        let mut llm = SimulatedLlm::new(1);
        for _ in 0..40 {
            let resp = llm.generate(&builder().grammar_based());
            let program = parse_compute(&resp.source).expect("grammar output parses");
            assert!(validate(&program).is_empty(), "{}", resp.source);
            assert!(program.math_call_count() + program.stmt_count() > 1);
        }
        assert_eq!(llm.calls(), 40);
    }

    #[test]
    fn direct_prompts_sometimes_yield_invalid_programs() {
        let mut llm = SimulatedLlm::with_config(
            2,
            SimulatedLlmConfig { direct_prompt_invalid_rate: 0.3, ..Default::default() },
        );
        let mut invalid = 0;
        let mut valid = 0;
        for _ in 0..100 {
            let resp = llm.generate(&builder().direct_prompt());
            match parse_compute(&resp.source) {
                Ok(p) if validate(&p).is_empty() => valid += 1,
                _ => invalid += 1,
            }
        }
        assert!(invalid > 10, "expected some invalid outputs, got {invalid}");
        assert!(valid > 50, "most outputs should still be valid, got {valid}");
    }

    #[test]
    fn feedback_prompts_mutate_the_seed() {
        let mut llm = SimulatedLlm::new(3);
        let seed = "void compute(double x, double y) {\n\
                    double comp = 0.0;\n\
                    comp = sin(x) * y + 0.5;\n\
                    }";
        for _ in 0..20 {
            let resp = llm.generate(&builder().feedback_mutation(seed));
            let program = parse_compute(&resp.source).expect("mutant parses");
            assert!(validate(&program).is_empty(), "{}", resp.source);
            assert_ne!(
                llm4fp_fpir::hash::source_hash(&resp.source),
                llm4fp_fpir::hash::source_hash(seed),
                "mutant must differ from the seed"
            );
        }
    }

    #[test]
    fn feedback_with_unparseable_seed_falls_back_to_grammar_generation() {
        let mut llm = SimulatedLlm::new(4);
        let resp = llm.generate(&builder().feedback_mutation("not a c program at all"));
        let program = parse_compute(&resp.source).expect("fallback output parses");
        assert!(validate(&program).is_empty());
    }

    #[test]
    fn latency_is_simulated_not_slept() {
        let mut llm = SimulatedLlm::new(5);
        let start = std::time::Instant::now();
        let resp = llm.generate(&builder().grammar_based());
        assert!(start.elapsed() < Duration::from_secs(2), "generate must not sleep");
        assert!(resp.simulated_latency >= Duration::from_millis(500));
        assert!(resp.simulated_latency <= Duration::from_secs(60));
        assert_eq!(resp.model, "simulated-gpt4");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = SimulatedLlm::new(77);
        let mut b = SimulatedLlm::new(77);
        for _ in 0..5 {
            let pa = a.generate(&builder().grammar_based());
            let pb = b.generate(&builder().grammar_based());
            assert_eq!(pa.source, pb.source);
        }
    }

    #[test]
    fn grammar_programs_are_richer_than_direct_prompt_programs() {
        let mut llm = SimulatedLlm::new(6);
        let mut grammar_stmts = 0usize;
        let mut direct_stmts = 0usize;
        for _ in 0..30 {
            if let Ok(p) = parse_compute(&llm.generate(&builder().grammar_based()).source) {
                grammar_stmts += p.stmt_count();
            }
            if let Ok(p) = parse_compute(&llm.generate(&builder().direct_prompt()).source) {
                direct_stmts += p.stmt_count();
            }
        }
        assert!(
            grammar_stmts > direct_stmts,
            "grammar-guided programs should be larger ({grammar_stmts} vs {direct_stmts})"
        );
    }
}
