//! The Varity baseline: unguided random program generation from the grammar.
//!
//! Varity (Laguna, IPDPS 2020) synthesizes well-formed C/CUDA floating-point
//! programs by sampling the grammar of Figure 2 directly, without any domain
//! knowledge or feedback. The characteristic consequences, which the paper's
//! evaluation relies on, are reproduced here:
//!
//! * constants are drawn from a very wide magnitude range, so overflow,
//!   division by (near-)zero and domain errors are common — Varity's
//!   inconsistencies therefore often involve extreme values (Figure 3);
//! * programs are built from a small, fixed repertoire of statement shapes,
//!   so corpus-level diversity is limited;
//! * generation itself is essentially free compared to an LLM call, which is
//!   why Varity has by far the lowest time cost in Table 2.

use rand::prelude::*;

use llm4fp_fpir::{
    validate, AssignOp, BinOp, Block, BoolExpr, CmpOp, Expr, IndexExpr, MathFunc, Param, ParamType,
    Precision, Program, Stmt, COMP,
};

/// Configuration of the random generator (defaults follow the scale of the
/// programs Varity produces).
#[derive(Debug, Clone)]
pub struct VarityConfig {
    /// Floating-point precision of generated programs.
    pub precision: Precision,
    /// Maximum number of top-level statements.
    pub max_statements: usize,
    /// Maximum expression depth.
    pub max_expr_depth: usize,
    /// Probability that a generated expression node is a math call.
    pub call_probability: f64,
    /// Probability that a statement is a `for` loop.
    pub loop_probability: f64,
    /// Probability that a statement is an `if` block.
    pub if_probability: f64,
}

impl Default for VarityConfig {
    fn default() -> Self {
        VarityConfig {
            precision: Precision::F64,
            max_statements: 6,
            max_expr_depth: 4,
            call_probability: 0.18,
            loop_probability: 0.25,
            if_probability: 0.15,
        }
    }
}

/// Unguided random program generator (the Varity baseline).
pub struct VarityGenerator {
    rng: StdRng,
    config: VarityConfig,
}

impl VarityGenerator {
    /// Create a generator with the default configuration.
    pub fn new(seed: u64) -> Self {
        Self::with_config(seed, VarityConfig::default())
    }

    pub fn with_config(seed: u64, config: VarityConfig) -> Self {
        VarityGenerator { rng: StdRng::seed_from_u64(seed), config }
    }

    /// Snapshot the generator's RNG stream so a paused campaign can be
    /// checkpointed and later resumed with [`Self::restore_rng_state`]
    /// to produce the exact same program sequence.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Restore an RNG stream snapshotted by [`Self::rng_state`].
    pub fn restore_rng_state(&mut self, state: [u64; 4]) {
        self.rng = StdRng::from_state(state);
    }

    /// Generate one valid program. Generation is retried internally until
    /// validation passes (the grammar-directed construction almost always
    /// succeeds on the first attempt).
    pub fn generate(&mut self) -> Program {
        for _ in 0..16 {
            let program = self.generate_once();
            if validate(&program).is_empty() {
                return program;
            }
        }
        // Fall back to a trivially valid program (never reached in practice).
        let mut body = Block::default();
        body.push(Stmt::Assign { target: COMP.into(), op: AssignOp::Add, expr: Expr::Num(1.0) });
        Program {
            precision: self.config.precision,
            params: vec![Param::new("x0", ParamType::Fp)],
            body,
        }
    }

    fn generate_once(&mut self) -> Program {
        let precision = self.config.precision;
        // Parameters: 1-3 fp scalars, 0-2 arrays, 0-1 ints.
        let mut params = Vec::new();
        let n_scalars = self.rng.gen_range(1..=3);
        for i in 0..n_scalars {
            params.push(Param::new(format!("var_{i}"), ParamType::Fp));
        }
        let n_arrays = self.rng.gen_range(0..=2);
        let mut arrays = Vec::new();
        for i in 0..n_arrays {
            let len = *[4usize, 8, 16].choose(&mut self.rng).unwrap();
            params.push(Param::new(format!("arr_{i}"), ParamType::FpArray(len)));
            arrays.push((format!("arr_{i}"), len));
        }
        if self.rng.gen_bool(0.4) {
            params.push(Param::new("n", ParamType::Int));
        }
        let scalars: Vec<String> =
            params.iter().filter(|p| p.ty == ParamType::Fp).map(|p| p.name.clone()).collect();

        let mut ctx = Ctx { scalars, arrays, temp_count: 0, loop_depth: 0 };
        let n_stmts = self.rng.gen_range(2..=self.config.max_statements);
        let mut block = Block::default();
        for _ in 0..n_stmts {
            let stmt = self.gen_stmt(&mut ctx);
            block.push(stmt);
        }
        // Ensure comp is written at least once.
        if !block_writes_comp(&block) {
            let expr = self.gen_expr(&mut ctx, 2, None);
            block.push(Stmt::Assign { target: COMP.into(), op: AssignOp::Add, expr });
        }
        Program { precision, params, body: block }
    }

    fn gen_stmt(&mut self, ctx: &mut Ctx) -> Stmt {
        let roll: f64 = self.rng.gen();
        if roll < self.config.loop_probability && ctx.loop_depth < 2 {
            return self.gen_loop(ctx);
        }
        if roll < self.config.loop_probability + self.config.if_probability {
            return self.gen_if(ctx);
        }
        // Assignment: to comp, to a fresh temporary, or to an array element.
        match self.rng.gen_range(0..4) {
            0 => {
                let name = format!("tmp_{}", ctx.temp_count);
                ctx.temp_count += 1;
                let expr = self.gen_expr(ctx, self.config.max_expr_depth, None);
                ctx.scalars.push(name.clone());
                Stmt::DeclScalar { name, expr }
            }
            1 if !ctx.arrays.is_empty() && ctx.loop_depth == 0 => {
                let (array, len) = ctx.arrays.choose(&mut self.rng).unwrap().clone();
                let index = IndexExpr::Const(self.rng.gen_range(0..len as i64));
                let expr = self.gen_expr(ctx, self.config.max_expr_depth, None);
                Stmt::AssignIndex { array, index, op: self.gen_assign_op(), expr }
            }
            _ => {
                let op = self.gen_assign_op();
                let expr = self.gen_expr(ctx, self.config.max_expr_depth, None);
                Stmt::Assign { target: COMP.into(), op, expr }
            }
        }
    }

    fn gen_assign_op(&mut self) -> AssignOp {
        *[AssignOp::Assign, AssignOp::Add, AssignOp::Sub, AssignOp::Mul, AssignOp::Div]
            .choose(&mut self.rng)
            .unwrap()
    }

    fn gen_loop(&mut self, ctx: &mut Ctx) -> Stmt {
        let var = format!("it{}", ctx.loop_depth);
        // Loop bounds are kept within the shortest referenced array so that
        // indexed accesses stay in bounds.
        let min_len = ctx.arrays.iter().map(|(_, l)| *l).min().unwrap_or(8);
        let bound = self.rng.gen_range(2..=min_len as i64);
        ctx.loop_depth += 1;
        let n = self.rng.gen_range(1..=2);
        let mut body = Block::default();
        for _ in 0..n {
            let op = self.gen_assign_op();
            let expr = self.gen_expr(ctx, 3, Some(&var));
            body.push(Stmt::Assign { target: COMP.into(), op, expr });
        }
        ctx.loop_depth -= 1;
        Stmt::For { var, bound, body }
    }

    fn gen_if(&mut self, ctx: &mut Ctx) -> Stmt {
        let lhs = self.gen_expr(ctx, 2, None);
        let rhs = self.gen_expr(ctx, 2, None);
        let op =
            *[CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Ne].choose(&mut self.rng).unwrap();
        let expr = self.gen_expr(ctx, 3, None);
        Stmt::If {
            cond: BoolExpr { lhs, op, rhs },
            then_block: Block::new(vec![Stmt::Assign {
                target: COMP.into(),
                op: self.gen_assign_op(),
                expr,
            }]),
        }
    }

    fn gen_expr(&mut self, ctx: &mut Ctx, depth: usize, loop_var: Option<&str>) -> Expr {
        if depth == 0 || self.rng.gen_bool(0.3) {
            return self.gen_leaf(ctx, loop_var);
        }
        if self.rng.gen_bool(self.config.call_probability) {
            let func = *MathFunc::ALL.choose(&mut self.rng).unwrap();
            let args = (0..func.arity()).map(|_| self.gen_expr(ctx, depth - 1, loop_var)).collect();
            return Expr::Call { func, args };
        }
        let op = *[BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div].choose(&mut self.rng).unwrap();
        let lhs = self.gen_expr(ctx, depth - 1, loop_var);
        let rhs = self.gen_expr(ctx, depth - 1, loop_var);
        let e = Expr::bin(op, lhs, rhs);
        if self.rng.gen_bool(0.3) {
            e.paren()
        } else {
            e
        }
    }

    fn gen_leaf(&mut self, ctx: &mut Ctx, loop_var: Option<&str>) -> Expr {
        let roll: f64 = self.rng.gen();
        if roll < 0.40 {
            return Expr::Num(self.wide_range_constant());
        }
        if roll < 0.75 || ctx.arrays.is_empty() || loop_var.is_none() {
            if let Some(name) = ctx.scalars.choose(&mut self.rng) {
                return Expr::Var(name.clone());
            }
            return Expr::Num(self.wide_range_constant());
        }
        let (array, _) = ctx.arrays.choose(&mut self.rng).unwrap().clone();
        Expr::Index { array, index: IndexExpr::Var(loop_var.expect("checked above").to_string()) }
    }

    /// Varity-style constants: log-uniform over nearly the whole double
    /// range, signed — the source of its many extreme-value results.
    fn wide_range_constant(&mut self) -> f64 {
        let exponent = self.rng.gen_range(-12.0..12.0);
        let mantissa = self.rng.gen_range(1.0..10.0);
        let v = mantissa * 10f64.powf(exponent);
        if self.rng.gen_bool(0.5) {
            -v
        } else {
            v
        }
    }
}

struct Ctx {
    scalars: Vec<String>,
    arrays: Vec<(String, usize)>,
    temp_count: usize,
    loop_depth: usize,
}

fn block_writes_comp(block: &Block) -> bool {
    block.stmts.iter().any(|s| match s {
        Stmt::Assign { target, .. } => target == COMP,
        Stmt::If { then_block, .. } => block_writes_comp(then_block),
        Stmt::For { body, .. } => block_writes_comp(body),
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm4fp_fpir::{program_hash, to_compute_source};

    #[test]
    fn generated_programs_are_valid_and_write_comp() {
        let mut gen = VarityGenerator::new(1);
        for _ in 0..100 {
            let p = gen.generate();
            assert!(validate(&p).is_empty(), "{}", to_compute_source(&p));
            assert!(block_writes_comp(&p.body));
            assert!(!p.params.is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed_and_varies_across_seeds() {
        let a: Vec<u64> = {
            let mut g = VarityGenerator::new(7);
            (0..10).map(|_| program_hash(&g.generate())).collect()
        };
        let b: Vec<u64> = {
            let mut g = VarityGenerator::new(7);
            (0..10).map(|_| program_hash(&g.generate())).collect()
        };
        let c: Vec<u64> = {
            let mut g = VarityGenerator::new(8);
            (0..10).map(|_| program_hash(&g.generate())).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn programs_are_not_all_identical() {
        let mut gen = VarityGenerator::new(3);
        let hashes: std::collections::HashSet<u64> =
            (0..50).map(|_| program_hash(&gen.generate())).collect();
        assert!(hashes.len() > 40, "only {} unique programs out of 50", hashes.len());
    }

    #[test]
    fn wide_range_constants_produce_extreme_magnitudes() {
        let mut gen = VarityGenerator::new(11);
        let values: Vec<f64> = (0..2000).map(|_| gen.wide_range_constant()).collect();
        assert!(values.iter().any(|v| v.abs() > 1e9), "no large constants generated");
        assert!(values.iter().any(|v| v.abs() < 1e-9), "no tiny constants generated");
        assert!(values.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn f32_configuration_is_respected() {
        let config = VarityConfig { precision: Precision::F32, ..VarityConfig::default() };
        let mut gen = VarityGenerator::with_config(5, config);
        let p = gen.generate();
        assert_eq!(p.precision, Precision::F32);
        assert!(to_compute_source(&p).contains("float"));
    }

    #[test]
    fn varity_programs_execute_under_the_virtual_compiler() {
        use llm4fp_compiler::{compile, CompilerConfig, CompilerId, OptLevel};
        use llm4fp_fpir::inputs::default_inputs;
        let mut gen = VarityGenerator::new(21);
        let mut executed = 0;
        for _ in 0..30 {
            let p = gen.generate();
            let compiled =
                compile(&p, CompilerConfig::new(CompilerId::Clang, OptLevel::O3)).unwrap();
            if compiled.execute(&default_inputs(&p.params)).is_ok() {
                executed += 1;
            }
        }
        assert!(executed >= 28, "almost all Varity programs should execute ({executed}/30)");
    }
}
