//! # llm4fp-generator
//!
//! Program generation for the LLM4FP reproduction.
//!
//! Four generation approaches are provided, mirroring Section 3.2.1 of the
//! paper:
//!
//! * [`VarityGenerator`] — the Varity baseline: unguided random generation
//!   straight from the grammar.
//! * Direct-Prompt, Grammar-Guided and LLM4FP's Feedback-Based Mutation are
//!   all realized as prompts ([`prompt::PromptBuilder`]) answered by an
//!   implementation of the [`LlmClient`] trait. The default client is
//!   [`SimulatedLlm`], a knowledge-base program synthesizer that stands in
//!   for GPT-4 (see DESIGN.md for the substitution rationale); a real
//!   HTTP-backed client can be plugged in behind the same trait.
//!
//! Supporting modules: [`idioms`] (the HPC pattern knowledge base),
//! [`mutate`] (the mutation operators listed in the Feedback-Based Mutation
//! prompt), [`inputs`] (random input-set generation) and [`sampling`]
//! (temperature / frequency-penalty / presence-penalty handling).

#![deny(unsafe_code)]

pub mod idioms;
pub mod inputs;
pub mod llm;
pub mod mutate;
pub mod prompt;
pub mod sampling;
pub mod varity;

pub use inputs::InputGenerator;
pub use llm::{LlmClient, LlmResponse, SimulatedLlm};
pub use prompt::{Prompt, PromptBuilder, Strategy};
pub use sampling::SamplingParams;
pub use varity::VarityGenerator;
