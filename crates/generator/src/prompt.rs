//! Prompt construction (Sections 2.3.1 and 2.3.2 of the paper).
//!
//! The three LLM-driven approaches differ only in the prompt they send:
//!
//! * **Direct-Prompt** — "generate a random but valid floating-point C
//!   program", precision, high-level structure and guidelines, but no
//!   grammar specification and no example.
//! * **Grammar-Guided** — the same plus the grammar of Figure 2.
//! * **Feedback-Based Mutation** — asks for a mutation of a previously
//!   successful program, lists the allowed mutation strategies and embeds
//!   the seed program.
//!
//! The [`Prompt`] struct carries both the rendered text (what a real LLM
//! API would receive) and the structured fields the [`crate::SimulatedLlm`]
//! consumes directly.

use serde::{Deserialize, Serialize};

use llm4fp_fpir::Precision;

/// The generation strategy a prompt encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Direct prompting without grammar or examples.
    DirectPrompt,
    /// Grammar-based generation from scratch (Section 2.3.1).
    GrammarBased,
    /// Feedback-based mutation of a successful program (Section 2.3.2).
    FeedbackMutation,
}

impl Strategy {
    pub fn name(self) -> &'static str {
        match self {
            Strategy::DirectPrompt => "direct-prompt",
            Strategy::GrammarBased => "grammar-based",
            Strategy::FeedbackMutation => "feedback-mutation",
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The mutation strategies listed in the Feedback-Based Mutation prompt.
pub const MUTATION_STRATEGIES: &[&str] = &[
    "reorder or deeply nest arithmetic expressions",
    "change numeric constants",
    "introduce new control flow such as nested loops or conditionals",
    "use different math library functions",
    "insert intermediate computations",
];

/// A fully constructed prompt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prompt {
    /// Which strategy this prompt realizes.
    pub strategy: Strategy,
    /// Requested floating-point precision.
    pub precision: Precision,
    /// Whether the grammar specification is included.
    pub include_grammar: bool,
    /// Seed program source for feedback mutation (None otherwise).
    pub seed_program: Option<String>,
    /// The rendered prompt text, as it would be sent to an LLM API.
    pub text: String,
}

/// Builds prompts for the three strategies.
#[derive(Debug, Clone, Default)]
pub struct PromptBuilder {
    precision: Precision,
}

impl PromptBuilder {
    pub fn new(precision: Precision) -> Self {
        PromptBuilder { precision }
    }

    /// The grammar specification of Figure 2, included verbatim in
    /// grammar-guided prompts.
    pub fn grammar_specification() -> &'static str {
        r#"<function>       ::= "void" "compute" "(" <param-list> ")" "{" <block> "}"
<param-list>     ::= <param-declaration> | <param-list> "," <param-declaration>
<param-declaration> ::= "int" <id> | <fp-type> <id> | <fp-type> "*" <id>
<assignment>     ::= "comp" <assign-op> <expression> ";"
                   | <fp-type> <id> <assign-op> <expression> ";"
<expression>     ::= <term> | "(" <expression> ")" | <expression> <op> <expression>
<term>           ::= <identifier> | <fp-numeral>
<block>          ::= {<assignment>}+ | <if-block> <block> | <for-loop-block> <block>
<if-block>       ::= "if" "(" <bool-expression> ")" "{" <block> "}"
<for-loop-block> ::= "for" "(" <loop-header> ")" "{" <block> "}"
<bool-expression> ::= <id> <bool-op> <expression>
<loop-header>    ::= "int" <id> ";" <id> "<" <int-numeral> ";" "++" <id>"#
    }

    /// The robustness / code-quality guidelines shared by all prompts
    /// (Section 2.3.1): restricted headers, initialized variables, no
    /// undefined behaviour.
    pub fn guidelines() -> &'static str {
        "Guidelines:\n\
         - Use only the headers stdio.h, stdlib.h and math.h.\n\
         - Initialize every variable before it is used.\n\
         - Avoid undefined behavior (out-of-bounds accesses, uninitialized reads, signed overflow).\n\
         - Keep loops bounded by small constant trip counts.\n\
         - The program must contain exactly two functions: compute and main."
    }

    fn precision_sentence(&self) -> String {
        format!(
            "Use {} precision ({}) for all floating-point variables.",
            match self.precision {
                Precision::F64 => "double",
                Precision::F32 => "single",
            },
            self.precision.c_type()
        )
    }

    fn structure_sentence() -> &'static str {
        "The program must define a function `compute` that takes scalar and/or pointer \
         floating-point arguments (and optionally int arguments), performs a sequence of \
         floating-point operations, stores the result in a variable `comp`, and prints it to \
         standard output; `compute` is called from `main`."
    }

    /// Build a Direct-Prompt request (no grammar, no example).
    pub fn direct_prompt(&self) -> Prompt {
        let text = format!(
            "Create a random but valid floating-point C program.\n{}\n{}\n{}\n\
             Output plain code only, with no formatting or explanation.",
            self.precision_sentence(),
            Self::structure_sentence(),
            Self::guidelines()
        );
        Prompt {
            strategy: Strategy::DirectPrompt,
            precision: self.precision,
            include_grammar: false,
            seed_program: None,
            text,
        }
    }

    /// Build a Grammar-Based Generation request (Section 2.3.1).
    pub fn grammar_based(&self) -> Prompt {
        let text = format!(
            "Create a random but valid floating-point C program.\n{}\n{}\n\
             The body of `compute` must follow this grammar:\n{}\n{}\n\
             Output plain code only, with no formatting or explanation.",
            self.precision_sentence(),
            Self::structure_sentence(),
            Self::grammar_specification(),
            Self::guidelines()
        );
        Prompt {
            strategy: Strategy::GrammarBased,
            precision: self.precision,
            include_grammar: true,
            seed_program: None,
            text,
        }
    }

    /// Build a Feedback-Based Mutation request (Section 2.3.2) from a seed
    /// program that previously triggered an inconsistency.
    pub fn feedback_mutation(&self, seed_program: &str) -> Prompt {
        let strategies =
            MUTATION_STRATEGIES.iter().map(|s| format!("- {s}")).collect::<Vec<_>>().join("\n");
        let text = format!(
            "Change the following floating-point C program to create a new one that behaves \
             differently.\n{}\n{}\n{}\n\
             Consider these mutation strategies:\n{strategies}\n\
             Here is the program to mutate:\n```c\n{}\n```\n\
             Output plain code only, with no formatting or explanation.",
            self.precision_sentence(),
            Self::structure_sentence(),
            Self::guidelines(),
            seed_program
        );
        Prompt {
            strategy: Strategy::FeedbackMutation,
            precision: self.precision,
            include_grammar: false,
            seed_program: Some(seed_program.to_string()),
            text,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_prompt_has_no_grammar_or_example() {
        let p = PromptBuilder::new(Precision::F64).direct_prompt();
        assert_eq!(p.strategy, Strategy::DirectPrompt);
        assert!(!p.include_grammar);
        assert!(p.seed_program.is_none());
        assert!(p.text.contains("double precision"));
        assert!(p.text.contains("plain code only"));
        assert!(!p.text.contains("<for-loop-block>"));
    }

    #[test]
    fn grammar_prompt_embeds_figure_2() {
        let p = PromptBuilder::new(Precision::F32).grammar_based();
        assert!(p.include_grammar);
        assert!(p.text.contains("<for-loop-block>"));
        assert!(p.text.contains("single precision"));
        assert!(p.text.contains("stdio.h"));
    }

    #[test]
    fn feedback_prompt_embeds_seed_and_mutation_strategies() {
        let seed = "void compute(double x) { comp = x; }";
        let p = PromptBuilder::new(Precision::F64).feedback_mutation(seed);
        assert_eq!(p.strategy, Strategy::FeedbackMutation);
        assert_eq!(p.seed_program.as_deref(), Some(seed));
        assert!(p.text.contains(seed));
        assert!(p.text.contains("behaves"));
        for s in MUTATION_STRATEGIES {
            assert!(p.text.contains(s), "missing mutation strategy: {s}");
        }
    }

    #[test]
    fn guidelines_mention_the_restricted_headers_and_initialization() {
        let g = PromptBuilder::guidelines();
        for needle in ["stdio.h", "stdlib.h", "math.h", "Initialize", "undefined behavior"] {
            assert!(g.contains(needle), "guidelines must mention {needle}");
        }
    }

    #[test]
    fn strategy_names_are_stable() {
        assert_eq!(Strategy::DirectPrompt.name(), "direct-prompt");
        assert_eq!(Strategy::GrammarBased.to_string(), "grammar-based");
        assert_eq!(Strategy::FeedbackMutation.name(), "feedback-mutation");
    }
}
