//! Mutation operators for Feedback-Based Mutation (Section 2.3.2).
//!
//! The feedback prompt lists five mutation strategies; the simulated LLM
//! realizes them as concrete AST rewrites on the seed program:
//!
//! * reorder / deeply nest arithmetic expressions,
//! * change numeric constants,
//! * introduce new control flow (loops, conditionals),
//! * use different math library functions,
//! * insert intermediate computations.
//!
//! Each mutated program is validated before being returned; if a particular
//! mutation sequence produces an invalid program the mutator backs off to a
//! smaller sequence, so feedback-based generation never emits garbage (the
//! same property the paper attributes to prompt-guided mutation).

use rand::prelude::*;

use llm4fp_fpir::{
    validate, AssignOp, BinOp, Block, BoolExpr, CmpOp, Expr, MathFunc, ParamType, Program, Stmt,
    COMP,
};

use crate::idioms::{self, plausible_constant, IdiomKind, ProgramBuilder};
use crate::sampling::SamplingParams;

/// The individual mutation operators (named after the prompt's strategies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MutationOp {
    /// Swap operands of commutative operators and add explicit grouping —
    /// "reorder arithmetic expressions".
    ReorderArithmetic,
    /// Wrap existing right-hand sides in additional arithmetic — "deeply
    /// nest arithmetic expressions".
    NestExpression,
    /// Perturb or replace numeric constants.
    ChangeConstants,
    /// Wrap an assignment in a new bounded loop or conditional.
    IntroduceControlFlow,
    /// Replace math functions with different ones of the same arity.
    SwapMathFunctions,
    /// Insert an intermediate temporary computation and feed it into `comp`.
    InsertIntermediate,
    /// Append a fresh HPC idiom from the knowledge base.
    AppendIdiom,
}

impl MutationOp {
    pub const ALL: [MutationOp; 7] = [
        MutationOp::ReorderArithmetic,
        MutationOp::NestExpression,
        MutationOp::ChangeConstants,
        MutationOp::IntroduceControlFlow,
        MutationOp::SwapMathFunctions,
        MutationOp::InsertIntermediate,
        MutationOp::AppendIdiom,
    ];

    pub fn name(self) -> &'static str {
        match self {
            MutationOp::ReorderArithmetic => "reorder-arithmetic",
            MutationOp::NestExpression => "nest-expression",
            MutationOp::ChangeConstants => "change-constants",
            MutationOp::IntroduceControlFlow => "introduce-control-flow",
            MutationOp::SwapMathFunctions => "swap-math-functions",
            MutationOp::InsertIntermediate => "insert-intermediate",
            MutationOp::AppendIdiom => "append-idiom",
        }
    }
}

/// Mutate a seed program into a new, different, still-valid program.
///
/// Applies 2–4 randomly chosen operators (scaled by the sampling
/// temperature). Backs off to fewer operators if validation fails, and as a
/// last resort returns a constants-only mutation, which is always valid.
pub fn mutate_program(
    seed: &Program,
    rng: &mut impl Rng,
    sampling: &SamplingParams,
) -> (Program, Vec<MutationOp>) {
    let n_ops = sampling.scale_count(rng.gen_range(2..=3)).min(5);
    for attempt in 0..4 {
        let ops: Vec<MutationOp> = (0..n_ops.saturating_sub(attempt).max(1))
            .map(|_| *MutationOp::ALL.choose(rng).unwrap())
            .collect();
        let mut program = seed.clone();
        for &op in &ops {
            apply(op, &mut program, rng, sampling);
        }
        if validate(&program).is_empty() && program != *seed {
            return (program, ops);
        }
    }
    let mut program = seed.clone();
    apply(MutationOp::ChangeConstants, &mut program, rng, sampling);
    (program, vec![MutationOp::ChangeConstants])
}

/// Apply one operator in place.
pub fn apply(op: MutationOp, program: &mut Program, rng: &mut impl Rng, sampling: &SamplingParams) {
    match op {
        MutationOp::ReorderArithmetic => reorder_arithmetic(program, rng),
        MutationOp::NestExpression => nest_expression(program, rng),
        MutationOp::ChangeConstants => change_constants(program, rng),
        MutationOp::IntroduceControlFlow => introduce_control_flow(program, rng),
        MutationOp::SwapMathFunctions => swap_math_functions(program, rng),
        MutationOp::InsertIntermediate => insert_intermediate(program, rng),
        MutationOp::AppendIdiom => append_idiom(program, rng, sampling),
    }
}

// --------------------------------------------------------------------------
// individual operators
// --------------------------------------------------------------------------

fn for_each_expr_mut(block: &mut Block, f: &mut impl FnMut(&mut Expr)) {
    for stmt in &mut block.stmts {
        match stmt {
            Stmt::Assign { expr, .. }
            | Stmt::DeclScalar { expr, .. }
            | Stmt::AssignIndex { expr, .. } => f(expr),
            Stmt::DeclArray { .. } => {}
            Stmt::If { cond, then_block } => {
                f(&mut cond.lhs);
                f(&mut cond.rhs);
                for_each_expr_mut(then_block, f);
            }
            Stmt::For { body, .. } => for_each_expr_mut(body, f),
        }
    }
}

fn reorder_arithmetic(program: &mut Program, rng: &mut impl Rng) {
    let mut swaps = 0usize;
    let p: f64 = 0.5;
    let mut rng_bits: Vec<bool> = (0..64).map(|_| rng.gen_bool(p)).collect();
    for_each_expr_mut(&mut program.body, &mut |expr| {
        swap_commutative(expr, &mut rng_bits, &mut swaps);
    });
}

fn swap_commutative(expr: &mut Expr, coin: &mut Vec<bool>, swaps: &mut usize) {
    if let Expr::Bin { op, lhs, rhs } = expr {
        if matches!(op, BinOp::Add | BinOp::Mul) && coin.pop().unwrap_or(false) {
            std::mem::swap(lhs, rhs);
            *swaps += 1;
        }
        swap_commutative(lhs, coin, swaps);
        swap_commutative(rhs, coin, swaps);
    } else if let Expr::Paren(inner) | Expr::Neg(inner) = expr {
        swap_commutative(inner, coin, swaps);
    } else if let Expr::Call { args, .. } = expr {
        for a in args {
            swap_commutative(a, coin, swaps);
        }
    }
}

fn nest_expression(program: &mut Program, rng: &mut impl Rng) {
    // Pick one assignment and wrap its right-hand side in extra arithmetic
    // that reuses the program's own scalar variables. Candidate names are
    // borrowed — only the single chosen name is cloned.
    let vars: Vec<&str> =
        program.params.iter().filter(|p| p.ty == ParamType::Fp).map(|p| p.name.as_str()).collect();
    let extra = match vars.choose(rng) {
        Some(v) => Expr::var((*v).to_string()),
        None => Expr::Num(plausible_constant(rng)),
    };
    let op = *[BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div].choose(rng).unwrap();
    let constant = Expr::Num(plausible_constant(rng));
    let mut target_index = rng.gen_range(0..program.body.stmts.len().max(1));
    for (i, stmt) in program.body.stmts.iter_mut().enumerate() {
        if let Stmt::Assign { expr, .. } | Stmt::DeclScalar { expr, .. } = stmt {
            if i >= target_index {
                let old = expr.clone();
                *expr = Expr::bin(
                    op,
                    old.paren(),
                    Expr::bin(BinOp::Mul, extra.clone(), constant.clone()).paren(),
                );
                return;
            }
        }
        target_index = target_index.min(i + 1);
    }
}

fn change_constants(program: &mut Program, rng: &mut impl Rng) {
    let mut replacements: Vec<f64> = (0..64).map(|_| plausible_constant(rng)).collect();
    let mut scale: Vec<bool> = (0..64).map(|_| rng.gen_bool(0.5)).collect();
    for_each_expr_mut(&mut program.body, &mut |expr| {
        mutate_constants_in(expr, &mut replacements, &mut scale);
    });
}

fn mutate_constants_in(expr: &mut Expr, replacements: &mut Vec<f64>, scale: &mut Vec<bool>) {
    match expr {
        Expr::Num(v) => {
            if scale.pop().unwrap_or(false) {
                // Perturb: keep the magnitude regime, nudge the value.
                *v *= 1.0 + (replacements.pop().unwrap_or(1.0).fract() * 0.25);
            } else {
                *v = replacements.pop().unwrap_or(*v * 0.5 + 1.0);
            }
            if !v.is_finite() || *v == 0.0 {
                *v = 1.0;
            }
        }
        Expr::Paren(inner) | Expr::Neg(inner) => mutate_constants_in(inner, replacements, scale),
        Expr::Bin { lhs, rhs, .. } => {
            mutate_constants_in(lhs, replacements, scale);
            mutate_constants_in(rhs, replacements, scale);
        }
        Expr::Call { args, .. } => {
            for a in args {
                mutate_constants_in(a, replacements, scale);
            }
        }
        _ => {}
    }
}

fn introduce_control_flow(program: &mut Program, rng: &mut impl Rng) {
    // Wrap a top-level assignment to `comp` in a small loop or a conditional.
    let candidates: Vec<usize> = program
        .body
        .stmts
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s, Stmt::Assign { target, .. } if target == COMP))
        .map(|(i, _)| i)
        .collect();
    let Some(&idx) = candidates.choose(rng) else { return };
    let original = program.body.stmts[idx].clone();
    let wrapped = if rng.gen_bool(0.5) {
        Stmt::For {
            var: "rep".to_string(),
            bound: rng.gen_range(2..=4),
            body: Block::new(vec![original]),
        }
    } else {
        let threshold = Expr::Num(plausible_constant(rng));
        Stmt::If {
            cond: BoolExpr {
                lhs: Expr::var(COMP),
                op: *[CmpOp::Lt, CmpOp::Gt, CmpOp::Le, CmpOp::Ge].choose(rng).unwrap(),
                rhs: threshold,
            },
            then_block: Block::new(vec![original]),
        }
    };
    program.body.stmts[idx] = wrapped;
}

fn swap_math_functions(program: &mut Program, rng: &mut impl Rng) {
    let unary_pool = [
        MathFunc::Sin,
        MathFunc::Cos,
        MathFunc::Tanh,
        MathFunc::Exp,
        MathFunc::Log1p,
        MathFunc::Atan,
        MathFunc::Cbrt,
        MathFunc::Expm1,
    ];
    let binary_pool =
        [MathFunc::Fmin, MathFunc::Fmax, MathFunc::Atan2, MathFunc::Hypot, MathFunc::Pow];
    let mut picks: Vec<usize> = (0..64).map(|_| rng.gen_range(0..1000)).collect();
    let mut flip: Vec<bool> = (0..64).map(|_| rng.gen_bool(0.6)).collect();
    for_each_expr_mut(&mut program.body, &mut |expr| {
        swap_funcs_in(expr, &unary_pool, &binary_pool, &mut picks, &mut flip);
    });
}

fn swap_funcs_in(
    expr: &mut Expr,
    unary_pool: &[MathFunc],
    binary_pool: &[MathFunc],
    picks: &mut Vec<usize>,
    flip: &mut Vec<bool>,
) {
    match expr {
        Expr::Call { func, args } => {
            if flip.pop().unwrap_or(false) {
                let pick = picks.pop().unwrap_or(0);
                match func.arity() {
                    1 => *func = unary_pool[pick % unary_pool.len()],
                    2 => *func = binary_pool[pick % binary_pool.len()],
                    _ => {}
                }
            }
            for a in args {
                swap_funcs_in(a, unary_pool, binary_pool, picks, flip);
            }
        }
        Expr::Paren(inner) | Expr::Neg(inner) => {
            swap_funcs_in(inner, unary_pool, binary_pool, picks, flip)
        }
        Expr::Bin { lhs, rhs, .. } => {
            swap_funcs_in(lhs, unary_pool, binary_pool, picks, flip);
            swap_funcs_in(rhs, unary_pool, binary_pool, picks, flip);
        }
        _ => {}
    }
}

fn insert_intermediate(program: &mut Program, rng: &mut impl Rng) {
    use std::fmt::Write as _;

    // Declare a new temporary computed from existing scalar fp parameters
    // and add it into the accumulator at the end.
    let base = {
        let vars: Vec<&str> = program
            .params
            .iter()
            .filter(|p| p.ty == ParamType::Fp)
            .map(|p| p.name.as_str())
            .collect();
        match vars.choose(rng) {
            Some(v) => Expr::var((*v).to_string()),
            None => Expr::Num(plausible_constant(rng)),
        }
    };
    // Find a fresh name (the seed may already contain mid_N temporaries),
    // probing candidates through one reused buffer instead of a fresh
    // `format!` allocation per counter value.
    let mut name = String::with_capacity(8);
    let mut n = 0usize;
    loop {
        name.clear();
        let _ = write!(name, "mid_{n}");
        if !program_declares(program, &name) {
            break;
        }
        n += 1;
    }
    let func = *[MathFunc::Tanh, MathFunc::Sin, MathFunc::Atan, MathFunc::Log1p, MathFunc::Cbrt]
        .choose(rng)
        .unwrap();
    let expr =
        Expr::bin(BinOp::Mul, Expr::call(func, vec![base]), Expr::Num(plausible_constant(rng)));
    program.body.stmts.push(Stmt::DeclScalar { name: name.clone(), expr });
    program.body.stmts.push(Stmt::Assign {
        target: COMP.into(),
        op: AssignOp::Add,
        expr: Expr::var(name),
    });
}

fn program_declares(program: &Program, name: &str) -> bool {
    fn block_declares(block: &Block, name: &str) -> bool {
        block.stmts.iter().any(|s| match s {
            Stmt::DeclScalar { name: n, .. } | Stmt::DeclArray { name: n, .. } => n == name,
            Stmt::If { then_block, .. } => block_declares(then_block, name),
            Stmt::For { body, .. } => block_declares(body, name),
            _ => false,
        })
    }
    program.params.iter().any(|p| p.name == name) || block_declares(&program.body, name)
}

fn append_idiom(program: &mut Program, rng: &mut impl Rng, sampling: &SamplingParams) {
    // Build the idiom in a fresh builder with a naming seed unlikely to clash
    // with the seed program, then merge parameters and statements.
    let mut builder = ProgramBuilder::new(program.precision, rng.gen_range(0..4));
    let kind = *IdiomKind::ALL.choose(rng).unwrap();
    idioms::instantiate(kind, &mut builder, rng, sampling);
    let fragment = builder.finish();
    for param in fragment.params {
        if !program_declares(program, &param.name) {
            program.params.push(param);
        }
    }
    for stmt in fragment.body.stmts {
        // Skip fragment statements that would redeclare an existing name.
        let clashes = match &stmt {
            Stmt::DeclScalar { name, .. } | Stmt::DeclArray { name, .. } => {
                program_declares(program, name)
            }
            _ => false,
        };
        if !clashes {
            program.body.stmts.push(stmt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::varity::VarityGenerator;
    use llm4fp_fpir::{program_hash, to_compute_source, Precision};
    use rand::rngs::StdRng;

    fn seed_program() -> Program {
        llm4fp_fpir::parse_compute(
            "void compute(double x, double y, double *a) {\n\
             double t0 = x * 0.5 + 1.25;\n\
             for (int i = 0; i < 4; ++i) {\n\
               comp += a[i] * t0 + sin(x);\n\
             }\n\
             if (comp > 10.0) {\n\
               comp = log(comp) + y;\n\
             }\n\
             }",
        )
        .unwrap()
    }

    #[test]
    fn mutation_produces_valid_and_different_programs() {
        let mut rng = StdRng::seed_from_u64(1);
        let sampling = SamplingParams::paper_defaults();
        let seed = seed_program();
        for _ in 0..50 {
            let (mutant, ops) = mutate_program(&seed, &mut rng, &sampling);
            assert!(!ops.is_empty());
            assert!(
                validate(&mutant).is_empty(),
                "ops {ops:?} produced invalid program:\n{}",
                to_compute_source(&mutant)
            );
            assert_ne!(program_hash(&mutant), program_hash(&seed), "mutant identical to seed");
            assert_eq!(mutant.precision, Precision::F64);
        }
    }

    #[test]
    fn each_operator_preserves_validity_on_many_seeds() {
        let sampling = SamplingParams::paper_defaults();
        let mut varity = VarityGenerator::new(99);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let seed = varity.generate();
            for &op in &MutationOp::ALL {
                let mut p = seed.clone();
                apply(op, &mut p, &mut rng, &sampling);
                assert!(
                    validate(&p).is_empty(),
                    "operator {} broke validity:\n{}",
                    op.name(),
                    to_compute_source(&p)
                );
            }
        }
    }

    #[test]
    fn change_constants_changes_constants_only() {
        let mut rng = StdRng::seed_from_u64(2);
        let seed = seed_program();
        let mut p = seed.clone();
        change_constants(&mut p, &mut rng);
        assert_ne!(program_hash(&p), program_hash(&seed));
        // Structure (statement count, params) is untouched.
        assert_eq!(p.body.stmts.len(), seed.body.stmts.len());
        assert_eq!(p.params, seed.params);
        assert_eq!(p.stmt_count(), seed.stmt_count());
    }

    #[test]
    fn append_idiom_and_insert_intermediate_grow_the_program() {
        let mut rng = StdRng::seed_from_u64(3);
        let sampling = SamplingParams::paper_defaults();
        let seed = seed_program();
        let mut grown = seed.clone();
        append_idiom(&mut grown, &mut rng, &sampling);
        assert!(grown.stmt_count() > seed.stmt_count());
        let mut with_mid = seed.clone();
        insert_intermediate(&mut with_mid, &mut rng);
        assert!(to_compute_source(&with_mid).contains("mid_0"));
        assert!(validate(&with_mid).is_empty());
        // Inserting twice picks a fresh name.
        insert_intermediate(&mut with_mid, &mut rng);
        assert!(to_compute_source(&with_mid).contains("mid_1"));
        assert!(validate(&with_mid).is_empty());
    }

    #[test]
    fn swap_math_functions_keeps_arity() {
        let mut rng = StdRng::seed_from_u64(4);
        let seed = llm4fp_fpir::parse_compute(
            "void compute(double x, double y) { comp = pow(x, y) + sin(x) + fma(x, y, 1.0); }",
        )
        .unwrap();
        for _ in 0..20 {
            let mut p = seed.clone();
            swap_math_functions(&mut p, &mut rng);
            assert!(validate(&p).is_empty(), "{}", to_compute_source(&p));
        }
    }

    #[test]
    fn mutation_operator_names_are_unique() {
        let names: std::collections::HashSet<&str> =
            MutationOp::ALL.iter().map(|o| o.name()).collect();
        assert_eq!(names.len(), MutationOp::ALL.len());
    }
}
