//! Sampling hyper-parameters of the (simulated) LLM.
//!
//! The paper sets `temperature = 1.2`, `frequency_penalty = 0.5` and
//! `presence_penalty = 0.6` (Section 3.1.4). The simulated LLM maps these to
//! concrete generator behaviour: temperature widens the structural choices
//! taken per program, the frequency penalty discourages re-using the same
//! math functions within a program, and the presence penalty raises the
//! chance of introducing pattern kinds that have not appeared yet.

use serde::{Deserialize, Serialize};

/// LLM sampling parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingParams {
    /// Softmax temperature (higher = more random structure).
    pub temperature: f64,
    /// Penalty applied to tokens (here: math functions, idiom kinds) that
    /// already occur frequently in the current program.
    pub frequency_penalty: f64,
    /// Penalty applied to tokens that occur at all, encouraging new kinds.
    pub presence_penalty: f64,
}

impl SamplingParams {
    /// The configuration used in the paper's evaluation.
    pub fn paper_defaults() -> Self {
        SamplingParams { temperature: 1.2, frequency_penalty: 0.5, presence_penalty: 0.6 }
    }

    /// A deterministic low-variance configuration (useful in tests).
    pub fn conservative() -> Self {
        SamplingParams { temperature: 0.2, frequency_penalty: 0.0, presence_penalty: 0.0 }
    }

    /// Clamp all fields into the ranges accepted by real LLM APIs
    /// (temperature 0..=2, penalties -2..=2).
    pub fn clamped(self) -> Self {
        SamplingParams {
            temperature: self.temperature.clamp(0.0, 2.0),
            frequency_penalty: self.frequency_penalty.clamp(-2.0, 2.0),
            presence_penalty: self.presence_penalty.clamp(-2.0, 2.0),
        }
    }

    /// Scale a base count of structural elements by the temperature: at
    /// temperature 0 the generator sticks to the base amount, higher
    /// temperatures add headroom for more statements / deeper expressions.
    pub fn scale_count(&self, base: usize) -> usize {
        let factor = 1.0 + (self.temperature - 1.0) * 0.5;
        ((base as f64) * factor.max(0.25)).round().max(1.0) as usize
    }

    /// Probability of exploring a new pattern kind rather than repeating an
    /// already-used one, derived from the presence penalty.
    pub fn explore_probability(&self) -> f64 {
        (0.35 + 0.25 * self.presence_penalty).clamp(0.05, 0.95)
    }

    /// Weight multiplier for a choice that has already been used `count`
    /// times, derived from the frequency penalty.
    pub fn repeat_weight(&self, count: usize) -> f64 {
        let penalty = self.frequency_penalty.max(0.0);
        1.0 / (1.0 + penalty * count as f64)
    }
}

impl Default for SamplingParams {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_3_1_4() {
        let p = SamplingParams::paper_defaults();
        assert_eq!(p.temperature, 1.2);
        assert_eq!(p.frequency_penalty, 0.5);
        assert_eq!(p.presence_penalty, 0.6);
        assert_eq!(SamplingParams::default(), p);
    }

    #[test]
    fn clamping_restricts_to_api_ranges() {
        let p = SamplingParams { temperature: 9.0, frequency_penalty: -7.0, presence_penalty: 3.0 }
            .clamped();
        assert_eq!(p.temperature, 2.0);
        assert_eq!(p.frequency_penalty, -2.0);
        assert_eq!(p.presence_penalty, 2.0);
    }

    #[test]
    fn temperature_scales_counts_monotonically() {
        let cold = SamplingParams { temperature: 0.0, ..SamplingParams::paper_defaults() };
        let hot = SamplingParams { temperature: 2.0, ..SamplingParams::paper_defaults() };
        assert!(cold.scale_count(10) < hot.scale_count(10));
        assert!(cold.scale_count(1) >= 1);
    }

    #[test]
    fn penalties_shape_probabilities() {
        let p = SamplingParams::paper_defaults();
        assert!(p.explore_probability() > SamplingParams::conservative().explore_probability());
        assert!(p.repeat_weight(0) > p.repeat_weight(3));
        assert_eq!(SamplingParams::conservative().repeat_weight(5), 1.0);
    }
}
