//! NiCad-style clone detection (Type-1, Type-2 and Type-2c).
//!
//! * **Type-1** — identical code up to whitespace and comments.
//! * **Type-2** — identical code up to identifiers, literals and types
//!   (every identifier/literal/type abstracted to a placeholder).
//! * **Type-2c** — NiCad's stricter "consistent renaming" variant:
//!   identifiers are renamed by first-occurrence order (so a clone must
//!   rename variables consistently), literals and types are kept.
//!
//! The paper runs NiCad over each approach's 1,000 generated programs and
//! reports that none of these clone types occur; [`detect_clones`]
//! reproduces that check.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use llm4fp_fpir::{tokenize, TokenKind};

/// The clone types considered (Type-3/4 are intentionally out of scope, as
/// in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CloneType {
    Type1,
    Type2,
    Type2c,
}

impl CloneType {
    pub const ALL: [CloneType; 3] = [CloneType::Type1, CloneType::Type2, CloneType::Type2c];

    pub fn name(self) -> &'static str {
        match self {
            CloneType::Type1 => "Type-1",
            CloneType::Type2 => "Type-2",
            CloneType::Type2c => "Type-2c",
        }
    }
}

/// A group of programs (by corpus index) that are clones of one another.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CloneClass {
    pub clone_type: CloneType,
    pub members: Vec<usize>,
}

/// Result of clone detection over a corpus.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CloneReport {
    pub classes: Vec<CloneClass>,
}

impl CloneReport {
    /// Number of clone classes of a given type.
    pub fn class_count(&self, clone_type: CloneType) -> usize {
        self.classes.iter().filter(|c| c.clone_type == clone_type).count()
    }

    /// Number of clone *pairs* of a given type (each class of size k
    /// contributes k·(k−1)/2 pairs).
    pub fn pair_count(&self, clone_type: CloneType) -> usize {
        self.classes
            .iter()
            .filter(|c| c.clone_type == clone_type)
            .map(|c| c.members.len() * (c.members.len() - 1) / 2)
            .sum()
    }

    /// True when no clones of any considered type were found — the outcome
    /// the paper reports for all four approaches.
    pub fn is_clone_free(&self) -> bool {
        self.classes.is_empty()
    }
}

/// Normalize a program for Type-1 comparison: the token texts joined with
/// single spaces (whitespace- and comment-insensitive).
pub fn normalize_type1(source: &str) -> String {
    tokenize(source).into_iter().map(|t| t.text).collect::<Vec<_>>().join(" ")
}

/// Normalize for Type-2: identifiers, literals and type keywords abstracted.
pub fn normalize_type2(source: &str) -> String {
    tokenize(source)
        .into_iter()
        .map(|t| match t.kind {
            TokenKind::Ident => "ID".to_string(),
            TokenKind::IntLit | TokenKind::FpLit => "LIT".to_string(),
            TokenKind::Keyword if matches!(t.text.as_str(), "double" | "float" | "int") => {
                "TYPE".to_string()
            }
            _ => t.text,
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Normalize for Type-2c: identifiers renamed consistently by first
/// occurrence (`id0`, `id1`, ...), literals and types preserved.
pub fn normalize_type2c(source: &str) -> String {
    let mut renames: HashMap<String, String> = HashMap::new();
    tokenize(source)
        .into_iter()
        .map(|t| match t.kind {
            TokenKind::Ident => {
                let next = format!("id{}", renames.len());
                renames.entry(t.text).or_insert(next).clone()
            }
            _ => t.text,
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Detect clone classes of all three types over a corpus of program sources.
pub fn detect_clones(sources: &[String]) -> CloneReport {
    let mut report = CloneReport::default();
    for (clone_type, normalizer) in [
        (CloneType::Type1, normalize_type1 as fn(&str) -> String),
        (CloneType::Type2, normalize_type2 as fn(&str) -> String),
        (CloneType::Type2c, normalize_type2c as fn(&str) -> String),
    ] {
        let mut buckets: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, src) in sources.iter().enumerate() {
            buckets.entry(normalizer(src)).or_default().push(i);
        }
        let mut classes: Vec<CloneClass> = buckets
            .into_values()
            .filter(|members| members.len() > 1)
            .map(|members| CloneClass { clone_type, members })
            .collect();
        classes.sort_by(|a, b| a.members.cmp(&b.members));
        report.classes.extend(classes);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str =
        "void compute(double x) {\n    double comp = 0.0;\n    comp = x * 2.0 + 1.0;\n}";

    #[test]
    fn whitespace_variants_are_type1_clones() {
        let reformatted = "void compute(double x){double comp=0.0; /* c */ comp = x*2.0+1.0;}";
        let report = detect_clones(&[BASE.to_string(), reformatted.to_string()]);
        assert_eq!(report.class_count(CloneType::Type1), 1);
        assert_eq!(report.pair_count(CloneType::Type1), 1);
        // A Type-1 clone is necessarily also Type-2 and Type-2c.
        assert_eq!(report.class_count(CloneType::Type2), 1);
        assert_eq!(report.class_count(CloneType::Type2c), 1);
        assert!(!report.is_clone_free());
    }

    #[test]
    fn renamed_programs_are_type2_and_type2c_but_not_type1() {
        let renamed =
            "void compute(double y) {\n    double comp = 0.0;\n    comp = y * 2.0 + 1.0;\n}";
        let report = detect_clones(&[BASE.to_string(), renamed.to_string()]);
        assert_eq!(report.class_count(CloneType::Type1), 0);
        assert_eq!(report.class_count(CloneType::Type2), 1);
        assert_eq!(report.class_count(CloneType::Type2c), 1);
    }

    #[test]
    fn changed_literals_are_type2_but_not_type2c() {
        let changed =
            "void compute(double x) {\n    double comp = 0.0;\n    comp = x * 7.5 + 1.0;\n}";
        let report = detect_clones(&[BASE.to_string(), changed.to_string()]);
        assert_eq!(report.class_count(CloneType::Type1), 0);
        assert_eq!(report.class_count(CloneType::Type2), 1);
        assert_eq!(report.class_count(CloneType::Type2c), 0);
    }

    #[test]
    fn inconsistent_renaming_is_not_type2c() {
        // x is renamed to two different identifiers in different uses.
        let a = "void compute(double x) { double comp = 0.0; comp = x + x; }";
        let b = "void compute(double u) { double comp = 0.0; comp = u + comp; }";
        let report = detect_clones(&[a.to_string(), b.to_string()]);
        assert_eq!(report.class_count(CloneType::Type2c), 0);
        // But abstracting all identifiers makes them Type-2 clones.
        assert_eq!(report.class_count(CloneType::Type2), 1);
    }

    #[test]
    fn structurally_different_programs_are_clone_free() {
        let other = "void compute(double x) {\n    double comp = 0.0;\n    for (int i = 0; i < 3; ++i) { comp += sin(x); }\n}";
        let report = detect_clones(&[BASE.to_string(), other.to_string()]);
        assert!(report.is_clone_free());
        for t in CloneType::ALL {
            assert_eq!(report.class_count(t), 0, "{}", t.name());
            assert_eq!(report.pair_count(t), 0);
        }
    }

    #[test]
    fn clone_classes_group_all_members() {
        let copy1 = BASE.to_string();
        let copy2 = BASE.replace("    ", "\t");
        let copy3 = format!("{BASE}\n");
        let report = detect_clones(&[copy1, copy2, copy3]);
        assert_eq!(report.class_count(CloneType::Type1), 1);
        assert_eq!(report.pair_count(CloneType::Type1), 3);
        let class = report.classes.iter().find(|c| c.clone_type == CloneType::Type1).unwrap();
        assert_eq!(class.members, vec![0, 1, 2]);
    }
}
