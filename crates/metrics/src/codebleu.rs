//! CodeBLEU (Ren et al., 2020), reimplemented over the LLM4FP token stream
//! and AST.
//!
//! CodeBLEU is a weighted combination of four components:
//!
//! 1. **BLEU** — standard n-gram precision (n = 1..4) with brevity penalty;
//! 2. **weighted n-gram match** — the same computation with n-grams that
//!    contain language keywords given a higher weight;
//! 3. **syntactic AST match** — the fraction of the candidate's AST subtrees
//!    that also occur in the reference's AST (identifiers and literal values
//!    abstracted away);
//! 4. **semantic data-flow match** — the fraction of the candidate's
//!    def-use pairs (with variables normalized by first-occurrence order)
//!    that also occur in the reference.
//!
//! A *lower* pairwise score over a program corpus indicates more diverse
//! programs, which is how the paper uses the metric.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use llm4fp_fpir::{parse_compute, tokenize, Block, Expr, Program, Stmt, Token, TokenKind};

/// Component weights; the reference implementation defaults to 0.25 each.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CodeBleuWeights {
    pub ngram: f64,
    pub weighted_ngram: f64,
    pub syntax: f64,
    pub dataflow: f64,
}

impl Default for CodeBleuWeights {
    fn default() -> Self {
        CodeBleuWeights { ngram: 0.25, weighted_ngram: 0.25, syntax: 0.25, dataflow: 0.25 }
    }
}

/// The four component scores plus the combined value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CodeBleuBreakdown {
    pub bleu: f64,
    pub weighted_bleu: f64,
    pub syntax_match: f64,
    pub dataflow_match: f64,
    pub combined: f64,
}

/// Compute CodeBLEU of `candidate` against `reference` (both C source of a
/// `compute` function). Falls back gracefully when a program cannot be
/// parsed: the AST and data-flow components are then computed from whatever
/// structure is available (0 for unparseable candidates).
pub fn codebleu(candidate: &str, reference: &str, weights: CodeBleuWeights) -> CodeBleuBreakdown {
    let cand_tokens = tokenize(candidate);
    let ref_tokens = tokenize(reference);
    let bleu = bleu_score(&cand_tokens, &ref_tokens, false);
    let weighted_bleu = bleu_score(&cand_tokens, &ref_tokens, true);
    let (syntax_match, dataflow_match) = match (parse_compute(candidate), parse_compute(reference))
    {
        (Ok(c), Ok(r)) => (ast_match(&c, &r), dataflow_match(&c, &r)),
        _ => (0.0, 0.0),
    };
    let combined = weights.ngram * bleu
        + weights.weighted_ngram * weighted_bleu
        + weights.syntax * syntax_match
        + weights.dataflow * dataflow_match;
    CodeBleuBreakdown { bleu, weighted_bleu, syntax_match, dataflow_match, combined }
}

/// Convenience: CodeBLEU with the default 0.25/0.25/0.25/0.25 weights.
pub fn codebleu_default(candidate: &str, reference: &str) -> CodeBleuBreakdown {
    codebleu(candidate, reference, CodeBleuWeights::default())
}

// ---------------------------------------------------------------------------
// BLEU / weighted BLEU
// ---------------------------------------------------------------------------

fn token_weight(token: &Token, weighted: bool) -> f64 {
    if weighted && token.kind == TokenKind::Keyword {
        4.0
    } else {
        1.0
    }
}

fn ngram_counts(tokens: &[Token], n: usize, weighted: bool) -> HashMap<Vec<&str>, f64> {
    let mut counts: HashMap<Vec<&str>, f64> = HashMap::new();
    if tokens.len() < n {
        return counts;
    }
    for window in tokens.windows(n) {
        let key: Vec<&str> = window.iter().map(|t| t.text.as_str()).collect();
        let weight: f64 = window.iter().map(|t| token_weight(t, weighted)).sum::<f64>() / n as f64;
        *counts.entry(key).or_insert(0.0) += weight;
    }
    counts
}

fn modified_precision(cand: &[Token], reference: &[Token], n: usize, weighted: bool) -> f64 {
    let cand_counts = ngram_counts(cand, n, weighted);
    if cand_counts.is_empty() {
        return 0.0;
    }
    let ref_counts = ngram_counts(reference, n, weighted);
    let mut matched = 0.0;
    let mut total = 0.0;
    for (gram, count) in &cand_counts {
        total += count;
        let clip = ref_counts.get(gram).copied().unwrap_or(0.0);
        matched += count.min(clip);
    }
    if total == 0.0 {
        0.0
    } else {
        matched / total
    }
}

fn bleu_score(cand: &[Token], reference: &[Token], weighted: bool) -> f64 {
    if cand.is_empty() || reference.is_empty() {
        return 0.0;
    }
    const MAX_N: usize = 4;
    // Smoothed geometric mean of the modified precisions (smoothing keeps a
    // single empty precision from zeroing the whole score, as in the common
    // "add-epsilon" BLEU smoothing).
    let mut log_sum = 0.0;
    for n in 1..=MAX_N {
        let p = modified_precision(cand, reference, n, weighted).max(1e-6);
        log_sum += p.ln() / MAX_N as f64;
    }
    let precision = log_sum.exp();
    // Brevity penalty.
    let c = cand.len() as f64;
    let r = reference.len() as f64;
    let bp = if c >= r { 1.0 } else { (1.0 - r / c).exp() };
    (precision * bp).clamp(0.0, 1.0)
}

// ---------------------------------------------------------------------------
// AST subtree match
// ---------------------------------------------------------------------------

/// Collect abstracted shapes of every expression subtree and every statement
/// in the program. Identifiers and literal values are replaced by
/// placeholders so the comparison is purely structural.
fn collect_shapes(program: &Program) -> Vec<String> {
    let mut shapes = Vec::new();
    collect_block(&program.body, &mut shapes);
    shapes
}

fn collect_block(block: &Block, shapes: &mut Vec<String>) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Assign { op, expr, .. } => {
                let e = expr_shape(expr, shapes);
                shapes.push(format!("assign({op:?},{e})"));
            }
            Stmt::DeclScalar { expr, .. } => {
                let e = expr_shape(expr, shapes);
                shapes.push(format!("decl({e})"));
            }
            Stmt::DeclArray { size, .. } => shapes.push(format!("declarray({size})")),
            Stmt::AssignIndex { op, expr, .. } => {
                let e = expr_shape(expr, shapes);
                shapes.push(format!("store({op:?},{e})"));
            }
            Stmt::If { cond, then_block } => {
                let lhs = expr_shape(&cond.lhs, shapes);
                let rhs = expr_shape(&cond.rhs, shapes);
                shapes.push(format!("if({:?},{lhs},{rhs})", cond.op));
                collect_block(then_block, shapes);
            }
            Stmt::For { body, .. } => {
                shapes.push("for".to_string());
                collect_block(body, shapes);
            }
        }
    }
}

fn expr_shape(expr: &Expr, shapes: &mut Vec<String>) -> String {
    let shape = match expr {
        Expr::Num(_) => "num".to_string(),
        Expr::Int(_) => "int".to_string(),
        Expr::Var(_) => "var".to_string(),
        Expr::Index { .. } => "index".to_string(),
        Expr::Paren(inner) => format!("({})", expr_shape(inner, shapes)),
        Expr::Neg(inner) => format!("neg({})", expr_shape(inner, shapes)),
        Expr::Bin { op, lhs, rhs } => {
            let l = expr_shape(lhs, shapes);
            let r = expr_shape(rhs, shapes);
            format!("bin({op:?},{l},{r})")
        }
        Expr::Call { func, args } => {
            let inner: Vec<String> = args.iter().map(|a| expr_shape(a, shapes)).collect();
            format!("call({},{})", func.c_name(), inner.join(","))
        }
    };
    // Every non-leaf subtree contributes to the shape multiset.
    if !matches!(expr, Expr::Num(_) | Expr::Int(_) | Expr::Var(_)) {
        shapes.push(shape.clone());
    }
    shape
}

fn ast_match(candidate: &Program, reference: &Program) -> f64 {
    let cand = collect_shapes(candidate);
    if cand.is_empty() {
        return 0.0;
    }
    let mut ref_counts: HashMap<String, usize> = HashMap::new();
    for s in collect_shapes(reference) {
        *ref_counts.entry(s).or_default() += 1;
    }
    let mut matched = 0usize;
    for s in &cand {
        if let Some(c) = ref_counts.get_mut(s) {
            if *c > 0 {
                *c -= 1;
                matched += 1;
            }
        }
    }
    matched as f64 / cand.len() as f64
}

// ---------------------------------------------------------------------------
// Data-flow match
// ---------------------------------------------------------------------------

/// Def-use edges with variable names normalized by first occurrence order,
/// so that `a = b + c` and `x = y + z` produce identical edges.
fn dataflow_edges(program: &Program) -> Vec<(String, String)> {
    let mut renamer: HashMap<String, String> = HashMap::new();
    let mut edges = Vec::new();
    collect_dataflow(&program.body, &mut renamer, &mut edges);
    edges
}

fn canon(name: &str, renamer: &mut HashMap<String, String>) -> String {
    let next = format!("v{}", renamer.len());
    renamer.entry(name.to_string()).or_insert(next).clone()
}

fn collect_dataflow(
    block: &Block,
    renamer: &mut HashMap<String, String>,
    edges: &mut Vec<(String, String)>,
) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Assign { target, expr, .. } | Stmt::DeclScalar { name: target, expr } => {
                let uses = expr.referenced_vars();
                let def = canon(target, renamer);
                for u in uses {
                    let use_c = canon(&u, renamer);
                    edges.push((def.clone(), use_c));
                }
            }
            Stmt::AssignIndex { array, expr, .. } => {
                let def = canon(array, renamer);
                for u in expr.referenced_vars() {
                    let use_c = canon(&u, renamer);
                    edges.push((def.clone(), use_c));
                }
            }
            Stmt::DeclArray { name, .. } => {
                let _ = canon(name, renamer);
            }
            Stmt::If { cond, then_block } => {
                for u in cond.lhs.referenced_vars().into_iter().chain(cond.rhs.referenced_vars()) {
                    let use_c = canon(&u, renamer);
                    edges.push(("cond".to_string(), use_c));
                }
                collect_dataflow(then_block, renamer, edges);
            }
            Stmt::For { var, body, .. } => {
                let _ = canon(var, renamer);
                collect_dataflow(body, renamer, edges);
            }
        }
    }
}

fn dataflow_match(candidate: &Program, reference: &Program) -> f64 {
    let cand = dataflow_edges(candidate);
    if cand.is_empty() {
        // No data flow at all: treat as fully matched only if the reference
        // also has none (both are trivial programs).
        return if dataflow_edges(reference).is_empty() { 1.0 } else { 0.0 };
    }
    let mut ref_counts: HashMap<(String, String), usize> = HashMap::new();
    for e in dataflow_edges(reference) {
        *ref_counts.entry(e).or_default() += 1;
    }
    let mut matched = 0usize;
    for e in &cand {
        if let Some(c) = ref_counts.get_mut(e) {
            if *c > 0 {
                *c -= 1;
                matched += 1;
            }
        }
    }
    matched as f64 / cand.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROG_A: &str = "void compute(double x, double y) {\n\
                          double comp = 0.0;\n\
                          double t0 = x * 0.5;\n\
                          for (int i = 0; i < 4; ++i) {\n\
                            comp += t0 * y + sin(x);\n\
                          }\n\
                          }";

    const PROG_B: &str = "void compute(double a, double b) {\n\
                          double comp = 0.0;\n\
                          double s = a * 2.25;\n\
                          for (int k = 0; k < 4; ++k) {\n\
                            comp += s * b + sin(a);\n\
                          }\n\
                          }";

    const PROG_C: &str = "void compute(double *buf, double gain) {\n\
                          double comp = 0.0;\n\
                          if (gain > 1.0) {\n\
                            comp = log(gain) / 3.0;\n\
                          }\n\
                          for (int i = 0; i < 8; ++i) {\n\
                            buf[i] *= gain;\n\
                            comp += exp(buf[i] / 100.0) - 1.0;\n\
                          }\n\
                          }";

    #[test]
    fn identical_programs_score_one() {
        let b = codebleu_default(PROG_A, PROG_A);
        assert!((b.bleu - 1.0).abs() < 1e-9, "{b:?}");
        assert!((b.weighted_bleu - 1.0).abs() < 1e-9);
        assert!((b.syntax_match - 1.0).abs() < 1e-9);
        assert!((b.dataflow_match - 1.0).abs() < 1e-9);
        assert!((b.combined - 1.0).abs() < 1e-6);
    }

    #[test]
    fn renamed_programs_score_high_but_not_one() {
        let b = codebleu_default(PROG_A, PROG_B);
        // Same structure, different identifiers/constants: syntax and
        // data-flow components are ~1, token components lower.
        assert!(b.syntax_match > 0.9, "{b:?}");
        assert!(b.dataflow_match > 0.9, "{b:?}");
        assert!(b.bleu < 0.9, "{b:?}");
        assert!(b.combined > 0.5 && b.combined < 1.0, "{b:?}");
    }

    #[test]
    fn structurally_different_programs_score_low() {
        let similar = codebleu_default(PROG_A, PROG_B).combined;
        let different = codebleu_default(PROG_A, PROG_C).combined;
        assert!(different < similar, "different={different} similar={similar}");
        assert!(different < 0.55, "different={different}");
    }

    #[test]
    fn scores_are_bounded_and_handle_unparseable_input() {
        for (a, b) in [(PROG_A, PROG_C), (PROG_C, PROG_A), ("not c code", PROG_A), (PROG_A, "x")] {
            let s = codebleu_default(a, b);
            for v in [s.bleu, s.weighted_bleu, s.syntax_match, s.dataflow_match, s.combined] {
                assert!((0.0..=1.0).contains(&v), "{s:?}");
            }
        }
    }

    #[test]
    fn weights_change_the_combination() {
        let only_syntax =
            CodeBleuWeights { ngram: 0.0, weighted_ngram: 0.0, syntax: 1.0, dataflow: 0.0 };
        let s = codebleu(PROG_A, PROG_B, only_syntax);
        assert!((s.combined - s.syntax_match).abs() < 1e-12);
    }

    #[test]
    fn keyword_weighting_raises_scores_for_keyword_heavy_overlap() {
        // Two programs sharing control-flow keywords but different payloads:
        // the weighted variant should not be lower than plain BLEU.
        let a = "void compute(double x) { double comp = 0.0; for (int i = 0; i < 3; ++i) { comp += x; } }";
        let c = "void compute(double q) { double comp = 0.0; for (int j = 0; j < 9; ++j) { comp *= q - 1.5; } }";
        let s = codebleu_default(a, c);
        assert!(s.weighted_bleu >= s.bleu - 1e-9, "{s:?}");
    }
}
