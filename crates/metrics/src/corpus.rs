//! Corpus-level diversity measurement.
//!
//! The paper reports, per approach, the average pairwise CodeBLEU over all
//! generated programs and the NiCad clone counts. Computing all N² pairs is
//! quadratic, so the pairwise average is parallelized with crossbeam and can
//! optionally be estimated from a deterministic subsample of pairs for very
//! large corpora.

use crossbeam::thread;
use serde::{Deserialize, Serialize};

use crate::clones::{detect_clones, CloneReport, CloneType};
use crate::codebleu::{codebleu, CodeBleuWeights};

/// Combined diversity report for one approach's corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiversityReport {
    /// Number of programs in the corpus.
    pub programs: usize,
    /// Number of (ordered) pairs actually scored.
    pub pairs_scored: usize,
    /// Average pairwise CodeBLEU (lower = more diverse).
    pub avg_codebleu: f64,
    /// Clone detection outcome.
    pub clones: CloneReport,
}

impl DiversityReport {
    /// Build the full report for a corpus of program sources.
    pub fn measure(sources: &[String], threads: usize, max_pairs: usize) -> DiversityReport {
        let (avg, pairs) = average_pairwise_codebleu(sources, threads, max_pairs);
        DiversityReport {
            programs: sources.len(),
            pairs_scored: pairs,
            avg_codebleu: avg,
            clones: detect_clones(sources),
        }
    }

    /// Convenience accessor for the clone counts line of the report.
    pub fn clone_pairs(&self, clone_type: CloneType) -> usize {
        self.clones.pair_count(clone_type)
    }
}

/// Average pairwise CodeBLEU over a corpus.
///
/// All ordered pairs `(i, j), i ≠ j` are scored when their number does not
/// exceed `max_pairs`; otherwise a deterministic stride-based subsample of
/// at most `max_pairs` pairs is used (no RNG, so results are reproducible).
/// Returns `(average, pairs_scored)`.
pub fn average_pairwise_codebleu(
    sources: &[String],
    threads: usize,
    max_pairs: usize,
) -> (f64, usize) {
    let n = sources.len();
    if n < 2 {
        return (0.0, 0);
    }
    let all_pairs: Vec<(usize, usize)> =
        (0..n).flat_map(|i| (0..n).filter(move |&j| j != i).map(move |j| (i, j))).collect();
    let pairs: Vec<(usize, usize)> = if all_pairs.len() <= max_pairs.max(1) {
        all_pairs
    } else {
        let stride = all_pairs.len().div_ceil(max_pairs);
        all_pairs.into_iter().step_by(stride.max(1)).collect()
    };
    let weights = CodeBleuWeights::default();
    let threads = threads.max(1).min(pairs.len().max(1));
    let chunk_size = pairs.len().div_ceil(threads);
    let mut total = 0.0;
    let mut count = 0usize;
    thread::scope(|scope| {
        let handles: Vec<_> = pairs
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move |_| {
                    let mut sum = 0.0;
                    for &(i, j) in chunk {
                        sum += codebleu(&sources[i], &sources[j], weights).combined;
                    }
                    (sum, chunk.len())
                })
            })
            .collect();
        for h in handles {
            let (sum, c) = h.join().expect("codebleu worker panicked");
            total += sum;
            count += c;
        }
    })
    .expect("crossbeam scope failed");
    if count == 0 {
        (0.0, 0)
    } else {
        (total / count as f64, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus_similar() -> Vec<String> {
        vec![
            "void compute(double x) { double comp = 0.0; comp = x * 2.0 + 1.0; }".to_string(),
            "void compute(double y) { double comp = 0.0; comp = y * 2.5 + 1.5; }".to_string(),
            "void compute(double z) { double comp = 0.0; comp = z * 3.0 + 0.5; }".to_string(),
        ]
    }

    fn corpus_diverse() -> Vec<String> {
        vec![
            "void compute(double x) { double comp = 0.0; comp = x * 2.0 + 1.0; }".to_string(),
            "void compute(double *a, double s) { double comp = 0.0; for (int i = 0; i < 4; ++i) { comp += a[i] / (s + 1.0); } }".to_string(),
            "void compute(double u, double v) { double comp = 0.0; if (u > v) { comp = log(u - v) * tanh(v); } comp += hypot(u, v); }".to_string(),
        ]
    }

    #[test]
    fn similar_corpora_score_higher_than_diverse_ones() {
        let (similar, _) = average_pairwise_codebleu(&corpus_similar(), 2, usize::MAX);
        let (diverse, _) = average_pairwise_codebleu(&corpus_diverse(), 2, usize::MAX);
        assert!(similar > diverse, "similar={similar} diverse={diverse}");
        assert!(similar > 0.5);
        assert!(diverse < 0.6);
    }

    #[test]
    fn pairwise_average_counts_ordered_pairs() {
        let (_, pairs) = average_pairwise_codebleu(&corpus_similar(), 1, usize::MAX);
        assert_eq!(pairs, 6); // 3 programs -> 6 ordered pairs
        let (_, capped) = average_pairwise_codebleu(&corpus_similar(), 1, 3);
        assert!(capped <= 3);
        let (avg, count) = average_pairwise_codebleu(&[], 4, 100);
        assert_eq!((avg, count), (0.0, 0));
        let single = vec!["void compute(double x) { comp = x; }".to_string()];
        assert_eq!(average_pairwise_codebleu(&single, 4, 100), (0.0, 0));
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let sources = corpus_diverse();
        let (a, _) = average_pairwise_codebleu(&sources, 1, usize::MAX);
        let (b, _) = average_pairwise_codebleu(&sources, 4, usize::MAX);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn diversity_report_combines_codebleu_and_clones() {
        let mut sources = corpus_similar();
        sources.push(sources[0].clone()); // introduce an exact clone
        let report = DiversityReport::measure(&sources, 2, usize::MAX);
        assert_eq!(report.programs, 4);
        assert!(report.avg_codebleu > 0.4);
        assert!(!report.clones.is_clone_free());
        assert_eq!(report.clone_pairs(CloneType::Type1), 1);
        let clean = DiversityReport::measure(&corpus_diverse(), 2, usize::MAX);
        assert!(clean.clones.is_clone_free());
    }
}
