//! # llm4fp-metrics
//!
//! Program-diversity metrics used in the paper's evaluation (Section 3.2.2):
//!
//! * [`codebleu()`] — the CodeBLEU similarity score (n-gram BLEU, weighted
//!   n-gram match, AST subtree match and data-flow match), computed pairwise
//!   over a corpus of generated programs. Lower average pairwise CodeBLEU
//!   means a more diverse corpus (Table 2's last column).
//! * [`clones`] — NiCad-style detection of Type-1, Type-2 and Type-2c code
//!   clones over the corpus (the paper reports that no clones of these types
//!   are found for any approach).
//! * [`corpus`] — corpus-level helpers: parallel pairwise averaging and the
//!   combined [`corpus::DiversityReport`].

#![deny(unsafe_code)]

pub mod clones;
pub mod codebleu;
pub mod corpus;

pub use clones::{detect_clones, CloneReport, CloneType};
pub use codebleu::{codebleu, CodeBleuBreakdown, CodeBleuWeights};
pub use corpus::{average_pairwise_codebleu, DiversityReport};
