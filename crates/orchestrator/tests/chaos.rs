//! Crash-safety chaos tests: runs that die, lie, or rot on disk must
//! either recover bit-identically or fail with a typed error — never
//! silently produce different results.
//!
//! The damage shapes here are the ones a real crash leaves behind:
//! torn JSONL tails (the process died mid-`writeln!`), binary garbage
//! from a torn overwrite, truncated barrier checkpoints, stale `.tmp`
//! stragglers, and manifests from a different schema generation. The
//! injected-at-runtime counterpart ([`PersistFault::TornWrite`]) drives
//! the same recovery paths from the writing side.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use llm4fp::{ApproachKind, CampaignConfig, CampaignResult};
use llm4fp_orchestrator::{
    FailurePolicy, FaultPlan, OrchestratedResult, Orchestrator, OrchestratorError, PersistError,
    PersistFault, ProcessPoolExecutor, RunDir, RunManifest, WorkerFault, MANIFEST_SCHEMA,
};
use serde::{Number, Value};

fn config(approach: ApproachKind, budget: usize, seed: u64) -> CampaignConfig {
    CampaignConfig::new(approach).with_budget(budget).with_seed(seed).with_threads(1)
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("llm4fp-orchestrator-tests")
        .join(format!("chaos-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_results_identical(a: &CampaignResult, b: &CampaignResult, what: &str) {
    assert_eq!(a.records, b.records, "{what}: records differ");
    assert_eq!(a.sources, b.sources, "{what}: sources differ");
    assert_eq!(a.successful_sources, b.successful_sources, "{what}: successful sets differ");
    assert_eq!(a.aggregates, b.aggregates, "{what}: aggregates differ");
}

/// A complete, persisted multi-epoch reference run.
fn persisted_run(config: &CampaignConfig, root: &Path, epochs: usize) -> OrchestratedResult {
    Orchestrator::new(config.clone())
        .shards(3)
        .workers(2)
        .epochs(epochs)
        .run_dir(root.to_path_buf())
        .run()
        .unwrap()
}

/// Force a resume to actually recompute by deleting the completion
/// artifacts (a finished run would otherwise just reload `result.json`).
fn force_recompute(root: &Path) {
    let _ = std::fs::remove_file(root.join("result.json"));
    let _ = std::fs::remove_file(root.join("summary.json"));
}

#[test]
fn resume_survives_torn_tails_and_binary_garbage_in_shard_files() {
    let config = config(ApproachKind::Llm4Fp, 24, 31);
    let root = temp_dir("torn-tail");
    let full = persisted_run(&config, &root, 1);
    force_recompute(&root);

    // Shard 0: the tail is a half-written JSON line, as a crash mid-
    // writeln! leaves it. Shard 1: a torn binary overwrite — non-UTF-8
    // garbage splattered over the tail. Both are partial progress, not
    // corruption: the shards recompute and the merged result is
    // bit-identical.
    let shard0 = root.join("shards").join("shard-0000.jsonl");
    let mut text = std::fs::read_to_string(&shard0).unwrap();
    let keep = text.len() - text.len() / 3;
    text.truncate(keep);
    std::fs::write(&shard0, text).unwrap();

    let shard1 = root.join("shards").join("shard-0001.jsonl");
    let mut bytes = std::fs::read(&shard1).unwrap();
    let tail = bytes.len() / 2;
    for b in &mut bytes[tail..] {
        *b = 0xFF;
    }
    std::fs::write(&shard1, bytes).unwrap();

    let resumed = Orchestrator::resume(&root).unwrap();
    assert_eq!(resumed.stats.shards_reused, 1, "only the undamaged shard is reused");
    assert_eq!(resumed.stats.shards_computed, 2, "both damaged shards recompute");
    assert_results_identical(&resumed.result, &full.result, "torn-tail resume");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn truncated_checkpoints_fall_back_to_an_earlier_barrier() {
    let config = config(ApproachKind::Llm4Fp, 24, 37);
    let (shards, epochs) = (3usize, 3usize);
    let root = temp_dir("truncated-checkpoint");
    let full = persisted_run(&config, &root, epochs);
    force_recompute(&root);
    // Make every shard recompute so the barrier restore actually runs.
    for shard in 0..shards {
        let _ = std::fs::remove_file(root.join("shards").join(format!("shard-{shard:04}.jsonl")));
    }

    // The latest barrier (epoch 1) has one checkpoint cut in half — a
    // crash during a torn (non-atomic) write. That disqualifies barrier
    // 1 only: resume restores from barrier 0 and recomputes epochs 1-2,
    // with bit-identical results.
    let dir = RunDir::open(&root, &RunManifest::new(config.clone(), shards, epochs)).unwrap();
    assert_eq!(dir.latest_restorable_epoch(shards, epochs), Some(1));
    let damaged = root.join("checkpoints").join("shard-0002-epoch-0001.json");
    let bytes = std::fs::read(&damaged).unwrap();
    std::fs::write(&damaged, &bytes[..bytes.len() / 2]).unwrap();
    assert_eq!(
        dir.latest_restorable_epoch(shards, epochs),
        Some(0),
        "a truncated checkpoint disqualifies its barrier, not the whole run dir"
    );

    let resumed = Orchestrator::resume(&root).unwrap();
    assert_eq!(resumed.stats.epochs_restored, 1, "restored through barrier 0");
    assert_results_identical(&resumed.result, &full.result, "earlier-barrier resume");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn newer_schema_manifests_are_refused_with_a_typed_error() {
    let config = config(ApproachKind::Varity, 8, 41);
    let root = temp_dir("newer-schema");
    persisted_run(&config, &root, 1);

    // A future build bumped the schema: this build must refuse the dir
    // outright rather than guess at the layout.
    let manifest_path = root.join("manifest.json");
    let text = std::fs::read_to_string(&manifest_path).unwrap();
    let Value::Obj(mut map) = serde_json::parse(&text).unwrap() else {
        panic!("manifest.json is an object")
    };
    map.insert("schema".to_string(), Value::Num(Number::U(u64::from(MANIFEST_SCHEMA) + 7)));
    std::fs::write(&manifest_path, serde_json::to_string(&Value::Obj(map)).unwrap()).unwrap();

    let err = Orchestrator::resume(&root).expect_err("newer schema must refuse to open");
    match err {
        OrchestratorError::Persist(PersistError::SchemaMismatch { found, supported }) => {
            assert_eq!(found, MANIFEST_SCHEMA + 7);
            assert_eq!(supported, MANIFEST_SCHEMA);
        }
        other => panic!("expected SchemaMismatch, got {other}"),
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn pre_versioning_manifests_still_resume_bit_identically() {
    let config = config(ApproachKind::Llm4Fp, 16, 43);
    let root = temp_dir("schema-v1");
    let full = persisted_run(&config, &root, 2);
    force_recompute(&root);

    // Strip the schema field entirely — the manifest a pre-versioning
    // build wrote. It reads as schema 1 and resumes normally.
    let manifest_path = root.join("manifest.json");
    let text = std::fs::read_to_string(&manifest_path).unwrap();
    let Value::Obj(mut map) = serde_json::parse(&text).unwrap() else {
        panic!("manifest.json is an object")
    };
    map.remove("schema");
    std::fs::write(&manifest_path, serde_json::to_string(&Value::Obj(map)).unwrap()).unwrap();
    assert_eq!(RunDir::read_manifest(&root).unwrap().schema_version(), 1);

    let resumed = Orchestrator::resume(&root).unwrap();
    assert_results_identical(&resumed.result, &full.result, "schema-1 resume");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn torn_write_faults_are_counted_and_leave_results_bit_identical() {
    let config = config(ApproachKind::Llm4Fp, 24, 47);
    let reference = Orchestrator::new(config.clone()).shards(3).epochs(3).run().unwrap();

    // Inject a torn checkpoint write at runtime: the artifact lands half-
    // written (bypassing temp+rename), the failure is counted — never
    // silent — and the run completes with bit-identical results, because
    // barrier artifacts are best-effort redundancy, not the results path.
    let root = temp_dir("torn-write-fault");
    let torn = Orchestrator::new(config.clone())
        .shards(3)
        .epochs(3)
        .run_dir(root.clone())
        .persist_faults(vec![PersistFault::TornWrite("checkpoint".into())])
        .run()
        .unwrap();
    assert_results_identical(&torn.result, &reference.result, "run under a torn-write fault");
    assert!(torn.stats.persist_errors >= 1, "the torn write is counted, not silent");
    let summary = RunDir::open(&root, &RunManifest::new(config.clone(), 3, 3))
        .unwrap()
        .load_summary()
        .expect("summary.json written");
    assert_eq!(summary.persist_errors, torn.stats.persist_errors, "summary.json reports it");

    // The damaged checkpoint is exactly the resume shape the earlier
    // tests pin: a subsequent resume still reproduces the run.
    force_recompute(&root);
    let resumed = Orchestrator::resume(&root).unwrap();
    assert_results_identical(&resumed.result, &reference.result, "resume after torn write");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn quarantined_run_dirs_resume_bit_identically_once_faults_clear() {
    // Quarantine-and-degrade meets crash-safe persistence: a shard
    // poisoned by the fault plan is quarantined, the run dir records the
    // partial campaign, and — once the faults clear — resuming the same
    // dir recomputes exactly the casualty, reuses the survivors, and
    // merges to the bit-identical never-faulted result. Degraded runs
    // are a checkpoint, not a dead end.
    let config = config(ApproachKind::Llm4Fp, 24, 59);
    let reference = Orchestrator::new(config.clone()).shards(3).workers(2).run().unwrap();

    let root = temp_dir("quarantine-resume");
    let poisoned = ProcessPoolExecutor::new(2)
        .with_worker_bin(PathBuf::from(env!("CARGO_BIN_EXE_llm4fp-worker")))
        .respawn_backoff_base(Duration::from_millis(1))
        .on_shard_failure(FailurePolicy::Quarantine)
        .with_fault_plan(FaultPlan {
            every_worker: vec![WorkerFault::CrashOnShard(1)],
            ..FaultPlan::default()
        });
    let partial = Orchestrator::new(config.clone())
        .shards(3)
        .run_dir(root.clone())
        .executor(Arc::new(poisoned))
        .run()
        .unwrap();
    assert_eq!(partial.stats.failures.len(), 1, "the poisoned shard was quarantined");
    assert_eq!(partial.stats.failures[0].shard, 1);
    assert!(
        partial.result.records.len() < reference.result.records.len(),
        "the quarantined run is visibly partial"
    );

    // The faults clear (a resume runs in process, with no plan armed):
    // the casualty recomputes from its spec, the survivors are reused.
    force_recompute(&root);
    let resumed = Orchestrator::resume(&root).unwrap();
    assert!(resumed.stats.failures.is_empty(), "nothing left to quarantine");
    assert_eq!(resumed.stats.shards_reused, 2, "the surviving shards are reused");
    assert_eq!(resumed.stats.shards_computed, 1, "only the casualty recomputes");
    assert_results_identical(&resumed.result, &reference.result, "post-quarantine resume");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn stale_tmp_stragglers_never_block_or_pollute_a_resume() {
    let config = config(ApproachKind::Varity, 12, 53);
    let root = temp_dir("tmp-stragglers");
    let full = persisted_run(&config, &root, 2);
    force_recompute(&root);

    // Simulate a crash mid-atomic-write in every artifact directory.
    for (dir, name) in [
        ("", ".result.json.999-0.tmp"),
        ("shards", ".shard-0000.jsonl.999-1.tmp"),
        ("epochs", ".epoch-0000.json.999-2.tmp"),
        ("checkpoints", ".shard-0000-epoch-0000.json.999-3.tmp"),
    ] {
        let at = if dir.is_empty() { root.clone() } else { root.join(dir) };
        std::fs::write(at.join(name), "{\"half\":").unwrap();
    }

    let resumed = Orchestrator::resume(&root).unwrap();
    assert_results_identical(&resumed.result, &full.result, "resume with tmp stragglers");
    for dir in ["", "shards", "epochs", "checkpoints"] {
        let at = if dir.is_empty() { root.clone() } else { root.join(dir) };
        let stragglers: Vec<_> = std::fs::read_dir(&at)
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|ext| ext == "tmp"))
            .collect();
        assert!(stragglers.is_empty(), "{dir:?} still holds tmp stragglers");
    }
    let _ = std::fs::remove_dir_all(&root);
}
