//! The orchestrator's load-bearing guarantees, exercised end to end:
//!
//! * `K = 1` orchestrated runs match the sequential driver field for
//!   field (for any epoch count — single-shard exchange is a no-op);
//! * for any `(seed, K, E)`, results are bit-identical across worker
//!   counts;
//! * `E = 1` exactly reproduces the no-exchange sharded output (the
//!   independent-shard primitive `run_shard` + `merge_shards`);
//! * the result cache is semantically transparent (on/off agree);
//! * interrupted runs resume to bit-identical results — recomputing only
//!   the missing shards (`E = 1`) or restarting every shard from the
//!   latest persisted exchange barrier (`E > 1`);
//! * the multi-campaign scheduler agrees with individual orchestration,
//!   with and without exchange;
//! * at `K >= 4`, exchange feeds every shard from the global pool (the
//!   paper's feedback loop at campaign scale);
//! * every guarantee above extends to the **external** (real-compiler)
//!   backend, exercised hermetically through the `fakecc` mock
//!   toolchain: `K = 1 ≡` sequential, bit-identical recorded results
//!   across worker counts and process-slot bounds, and cache hits that
//!   demonstrably skip compiler/binary process spawns.

use std::path::PathBuf;
use std::time::Duration;

use llm4fp::{ApproachKind, Campaign, CampaignConfig, CampaignResult};
use llm4fp_orchestrator::{
    merge_shards, plan_shards, run_shard, OrchestratedResult, Orchestrator, OrchestratorError,
    OrchestratorOptions, RunDir, RunManifest, Scheduler, ShardCtx,
};

fn config(approach: ApproachKind, budget: usize, seed: u64) -> CampaignConfig {
    // threads = 1 keeps each shard cheap; the pool provides parallelism.
    CampaignConfig::new(approach).with_budget(budget).with_seed(seed).with_threads(1)
}

fn options(workers: usize, cache: bool, epochs: usize) -> OrchestratorOptions {
    OrchestratorOptions { workers, cache, epochs, run_dir: None, ..Default::default() }
}

/// The builder invocation most tests drive: explicit options bag, shard
/// count, in-memory run.
fn orchestrate(
    config: &CampaignConfig,
    shards: usize,
    opts: OrchestratorOptions,
) -> Result<OrchestratedResult, OrchestratorError> {
    Orchestrator::new(config.clone()).options(opts).shards(shards).run()
}

fn run_sharded(config: &CampaignConfig, shards: usize) -> CampaignResult {
    Orchestrator::new(config.clone()).shards(shards).run().unwrap().result
}

fn run_sharded_epochs(config: &CampaignConfig, shards: usize, epochs: usize) -> CampaignResult {
    Orchestrator::new(config.clone()).shards(shards).epochs(epochs).run().unwrap().result
}

fn assert_results_identical(a: &CampaignResult, b: &CampaignResult, what: &str) {
    assert_eq!(a.records, b.records, "{what}: records differ");
    assert_eq!(a.sources, b.sources, "{what}: sources differ");
    assert_eq!(a.successful_sources, b.successful_sources, "{what}: successful sets differ");
    assert_eq!(a.aggregates, b.aggregates, "{what}: aggregates differ");
    assert_eq!(a.generation_failures, b.generation_failures, "{what}: failures differ");
    assert_eq!(a.llm_calls, b.llm_calls, "{what}: llm calls differ");
    assert_eq!(a.simulated_llm_time, b.simulated_llm_time, "{what}: llm time differs");
}

#[test]
fn k1_matches_the_sequential_campaign_exactly() {
    for approach in [ApproachKind::Varity, ApproachKind::Llm4Fp] {
        let config = config(approach, 24, 11);
        let sequential = Campaign::new(config.clone()).run();
        let orchestrated = run_sharded(&config, 1);
        assert_results_identical(&orchestrated, &sequential, &format!("K=1 {:?}", config.approach));
        // A single shard exchanges only with itself: structurally a
        // no-op, so any epoch count still reproduces the sequential run.
        let epoched = run_sharded_epochs(&config, 1, 4);
        assert_results_identical(&epoched, &sequential, &format!("K=1 E=4 {:?}", config.approach));
    }
    assert!(llm4fp_orchestrator::matches_sequential(&config(ApproachKind::GrammarGuided, 10, 3)));
}

#[test]
fn e1_reproduces_the_no_exchange_sharded_output() {
    // The independent-shard primitive (PR 1's code path) is the
    // reference; one-epoch orchestration must reproduce it bit for bit
    // for every shard count.
    let config = config(ApproachKind::Llm4Fp, 30, 7);
    for shards in [2usize, 4, 5] {
        let outputs: Vec<_> = plan_shards(&config, shards)
            .iter()
            .map(|spec| run_shard(spec, &ShardCtx::new(&config)))
            .collect();
        let reference = merge_shards(&config, outputs, Duration::ZERO);
        let orchestrated = orchestrate(&config, shards, options(4, false, 1)).unwrap();
        assert_results_identical(&orchestrated.result, &reference, &format!("E=1 K={shards}"));
    }
}

#[test]
fn sharded_runs_are_bit_identical_across_worker_counts() {
    let config = config(ApproachKind::Llm4Fp, 30, 7);
    for epochs in [1usize, 4] {
        for shards in [1usize, 2, 4] {
            let reference = orchestrate(&config, shards, options(1, true, epochs)).unwrap();
            assert_eq!(reference.stats.shards, shards.min(config.programs));
            assert_eq!(reference.stats.epochs, epochs);
            for workers in [2usize, 8] {
                let other = orchestrate(&config, shards, options(workers, true, epochs)).unwrap();
                assert_results_identical(
                    &other.result,
                    &reference.result,
                    &format!("K={shards} E={epochs} workers={workers}"),
                );
            }
        }
    }
}

#[test]
fn different_shard_counts_account_the_same_totals() {
    // K and E change the decomposition (so exact bits legitimately differ
    // between decompositions), but the budget accounting must hold for
    // every (K, E).
    let config = config(ApproachKind::Varity, 25, 13);
    for shards in [1usize, 2, 4, 7] {
        for epochs in [1usize, 3, 4] {
            let result = run_sharded_epochs(&config, shards, epochs);
            assert_eq!(result.aggregates.programs, 25, "K={shards} E={epochs}");
            assert_eq!(result.aggregates.total_comparisons, 25 * 18, "K={shards} E={epochs}");
            assert_eq!(result.records.len(), 25, "K={shards} E={epochs}");
            assert_eq!(
                result.sources.len() + result.generation_failures,
                25,
                "K={shards} E={epochs}"
            );
            for (i, record) in result.records.iter().enumerate() {
                assert_eq!(record.index, i, "K={shards} E={epochs}: record order broken");
            }
        }
    }
}

#[test]
fn exchange_broadcasts_the_global_pool_at_k4() {
    // The point of exchange: from epoch 1 on, every shard's feedback
    // mutation draws from the union of all shards' findings. The merged
    // successful set must still be duplicate-free, and the exchanged run
    // must actually diverge from the isolated-feedback run (the injected
    // pool changes seed selection).
    let config = config(ApproachKind::Llm4Fp, 48, 9);
    let isolated = run_sharded_epochs(&config, 4, 1);
    let exchanged = run_sharded_epochs(&config, 4, 4);
    assert_eq!(exchanged.aggregates.programs, isolated.aggregates.programs);
    assert_ne!(
        exchanged.records, isolated.records,
        "exchange must alter feedback-seed selection at K=4"
    );
    let mut hashes: Vec<u64> =
        exchanged.successful_sources.iter().map(|s| llm4fp_fpir::source_hash(s)).collect();
    let before = hashes.len();
    hashes.sort_unstable();
    hashes.dedup();
    assert_eq!(hashes.len(), before, "merged successful set contains duplicates");
    // Feedback mutation fired in the exchanged run.
    assert!(exchanged.records.iter().any(|r| r.strategy == "feedback-mutation"));
}

#[test]
fn cache_is_semantically_transparent_and_reports_stats() {
    let config = config(ApproachKind::Llm4Fp, 40, 5);
    for epochs in [1usize, 4] {
        let cached = orchestrate(&config, 4, options(4, true, epochs)).unwrap();
        let uncached = orchestrate(&config, 4, options(4, false, epochs)).unwrap();
        assert_results_identical(
            &cached.result,
            &uncached.result,
            &format!("cache on/off E={epochs}"),
        );
        let stats = cached.stats.cache.expect("cache stats present when caching is on");
        assert_eq!(
            stats.misses + stats.hits,
            cached.result.sources.len() as u64,
            "every valid program performs exactly one cache lookup"
        );
        assert!(uncached.stats.cache.is_none());
    }
}

#[test]
fn interrupted_runs_resume_to_identical_results() {
    let config = config(ApproachKind::Llm4Fp, 28, 17);
    let shards = 4;
    let root = std::env::temp_dir()
        .join("llm4fp-orchestrator-tests")
        .join(format!("resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // Reference: one uninterrupted, persisted run.
    let full = Orchestrator::new(config.clone())
        .shards(shards)
        .workers(2)
        .run_dir(root.clone())
        .run()
        .unwrap();
    assert_eq!(full.stats.shards_computed, shards);
    assert_eq!(full.stats.shards_reused, 0);

    // Simulate an interruption: delete one completed shard and truncate
    // another mid-file (as a crash during streaming would leave it).
    std::fs::remove_file(root.join("shards").join("shard-0001.jsonl")).unwrap();
    let truncated_path = root.join("shards").join("shard-0002.jsonl");
    let text = std::fs::read_to_string(&truncated_path).unwrap();
    let keep: Vec<&str> = text.lines().take(3).collect();
    std::fs::write(&truncated_path, keep.join("\n")).unwrap();

    let resumed = Orchestrator::resume(&root).unwrap();
    assert_eq!(resumed.stats.shards_reused, shards - 2, "two shards had to recompute");
    assert_eq!(resumed.stats.shards_computed, 2);
    assert_results_identical(&resumed.result, &full.result, "resume");

    // The merged result and run summary on disk match too.
    let dir = RunDir::open(&root, &RunManifest::new(config.clone(), shards, 1)).unwrap();
    let persisted = dir.load_result().expect("result.json written");
    assert_results_identical(&persisted, &full.result, "persisted result");
    let summary = dir.load_summary().expect("summary.json written");
    assert_eq!(summary.cache, resumed.stats.cache, "summary records cache hit stats");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn interrupted_multi_epoch_runs_resume_from_the_latest_barrier() {
    let config = config(ApproachKind::Llm4Fp, 32, 27);
    let (shards, epochs) = (4usize, 4usize);
    let root = std::env::temp_dir()
        .join("llm4fp-orchestrator-tests")
        .join(format!("resume-epoch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // Reference: one uninterrupted, persisted exchange run.
    let full = Orchestrator::new(config.clone())
        .shards(shards)
        .workers(2)
        .epochs(epochs)
        .run_dir(root.clone())
        .run()
        .unwrap();
    assert_eq!(full.stats.epochs_restored, 0);

    // Simulate a kill after epoch 1 of 4: nothing past barrier 1 exists
    // yet — no shard summaries, no merged result, no barrier-2 state.
    std::fs::remove_file(root.join("result.json")).unwrap();
    std::fs::remove_file(root.join("summary.json")).unwrap();
    for shard in 0..shards {
        std::fs::remove_file(root.join("shards").join(format!("shard-{shard:04}.jsonl"))).unwrap();
        std::fs::remove_file(
            root.join("checkpoints").join(format!("shard-{shard:04}-epoch-0002.json")),
        )
        .unwrap();
    }
    std::fs::remove_file(root.join("epochs").join("epoch-0002.json")).unwrap();

    let resumed = Orchestrator::resume(&root).unwrap();
    assert_eq!(
        resumed.stats.epochs_restored, 2,
        "epochs 0 and 1 restore from barrier 1; only epochs 2..4 recompute"
    );
    assert_eq!(resumed.stats.shards_computed, shards);
    assert_results_identical(&resumed.result, &full.result, "multi-epoch resume");

    // Resuming the now-complete run reuses every shard outright.
    let again = Orchestrator::resume(&root).unwrap();
    assert_eq!(again.stats.shards_reused, shards);
    assert_eq!(again.stats.shards_computed, 0);
    assert_results_identical(&again.result, &full.result, "complete-run reuse");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn mismatched_manifests_refuse_to_mix_runs() {
    let root: PathBuf = std::env::temp_dir()
        .join("llm4fp-orchestrator-tests")
        .join(format!("mismatch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let config_a = config(ApproachKind::Varity, 8, 1);
    let persisted = |epochs: usize, root: PathBuf| OrchestratorOptions {
        workers: 1,
        cache: false,
        epochs,
        run_dir: Some(root),
        ..Default::default()
    };
    orchestrate(&config_a, 2, persisted(1, root.clone())).unwrap();
    // Same dir, different seed: must be refused, not silently merged.
    let config_b = config(ApproachKind::Varity, 8, 2);
    let err = orchestrate(&config_b, 2, persisted(1, root.clone()));
    assert!(err.is_err(), "mismatched manifest must error");
    // Same config, different epoch count: exchanged and non-exchanged
    // outputs differ, so this must be refused too.
    let err = orchestrate(&config_a, 2, persisted(4, root.clone()));
    assert!(err.is_err(), "mismatched epoch count must error");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn scheduler_suite_matches_individual_orchestration() {
    let configs: Vec<CampaignConfig> =
        ApproachKind::ALL.iter().map(|&a| config(a, 16, 21)).collect();
    for epochs in [1usize, 2] {
        let suite = Scheduler::new(options(4, true, epochs)).shards(2).run(&configs).unwrap();
        assert_eq!(suite.len(), configs.len());
        for (cfg, orchestrated) in configs.iter().zip(&suite) {
            let individual = orchestrate(cfg, 2, options(1, false, epochs)).unwrap();
            assert_results_identical(
                &orchestrated.result,
                &individual.result,
                &format!("suite {:?} E={epochs}", cfg.approach),
            );
            assert_eq!(orchestrated.result.config.approach, cfg.approach);
        }
    }
}

/// External-backend invariants, hermetic via the `fakecc` mock compiler.
#[cfg(unix)]
mod external_backend {
    use super::*;
    use std::path::Path;

    use llm4fp::{BackendSpec, ExternalBackendSpec};
    use llm4fp_extcc::fakecc;

    fn fake_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join("llm4fp-orchestrator-tests")
            .join(format!("fakecc-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A campaign over a two-personality fake toolchain installed in
    /// `dir`. `threads = 1` keeps `fakecc.log` counting exact.
    fn fake_config(dir: &Path, approach: ApproachKind, budget: usize, seed: u64) -> CampaignConfig {
        let spec = ExternalBackendSpec::new(fakecc::install_pair(dir).expect("install fakecc"));
        config(approach, budget, seed).with_backend(BackendSpec::External(spec))
    }

    fn ext_options(
        workers: usize,
        cache: bool,
        epochs: usize,
        slots: usize,
    ) -> OrchestratorOptions {
        OrchestratorOptions {
            workers,
            cache,
            epochs,
            process_slots: slots,
            ..OrchestratorOptions::default()
        }
    }

    #[test]
    fn external_k1_matches_the_sequential_campaign() {
        let dir = fake_dir("k1");
        let config = fake_config(&dir, ApproachKind::Llm4Fp, 10, 11);
        let sequential = Campaign::new(config.clone()).run();
        assert!(
            sequential.aggregates.inconsistencies > 0,
            "fake toolchain must produce findings for the feedback loop"
        );
        let orchestrated = run_sharded(&config, 1);
        assert_results_identical(&orchestrated, &sequential, "external K=1");
        // Single-shard exchange stays a structural no-op externally too.
        let epoched = run_sharded_epochs(&config, 1, 3);
        assert_results_identical(&epoched, &sequential, "external K=1 E=3");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn external_runs_are_bit_identical_across_worker_counts_and_process_slots() {
        let dir = fake_dir("workers");
        let config = fake_config(&dir, ApproachKind::Llm4Fp, 8, 7);
        for epochs in [1usize, 2] {
            let reference = orchestrate(&config, 2, ext_options(1, true, epochs, 1)).unwrap();
            for (workers, slots) in [(4usize, 1usize), (4, 8)] {
                let other =
                    orchestrate(&config, 2, ext_options(workers, true, epochs, slots)).unwrap();
                assert_results_identical(
                    &other.result,
                    &reference.result,
                    &format!("external E={epochs} workers={workers} slots={slots}"),
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn external_cache_hits_skip_fakecc_process_spawns() {
        // The acceptance criterion: a duplicate-heavy campaign on the
        // external backend demonstrably skips process spawns on cache
        // hits, counted via fakecc's invocation log. Direct-Prompt's
        // unguided sampling repeats knowledge-base programs outright.
        let dir = fake_dir("cache");
        let config = fake_config(&dir, ApproachKind::DirectPrompt, 30, 5);
        let configs_per_program = (config.compilers.len() * config.levels.len()) as u64;

        // workers = 1 keeps cache counting exact (no double-computed
        // misses) — the bit-identity across worker counts is pinned by
        // the test above.
        let cached = orchestrate(&config, 2, ext_options(1, true, 1, 1)).unwrap();
        let stats = cached.stats.cache.expect("cache stats recorded");
        assert!(stats.hits > 0, "Direct-Prompt budget 30 must contain duplicates");
        assert_eq!(
            fakecc::compile_count(&dir),
            stats.misses * configs_per_program,
            "only cache misses may spawn the compiler; every hit skips the \
             full {configs_per_program}-config matrix"
        );
        assert_eq!(
            fakecc::run_count(&dir),
            stats.misses * configs_per_program,
            "one binary spawn per compiled configuration (single input set)"
        );

        // And the cache stays semantically transparent externally.
        let uncached = orchestrate(&config, 2, ext_options(1, false, 1, 1)).unwrap();
        assert_results_identical(&cached.result, &uncached.result, "external cache on/off");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mixed_virtual_and_external_suites_schedule_together() {
        // The mixed regime the process pool exists for: one virtual and
        // one external campaign share the scheduler's worker pool; the
        // virtual side stays on the sealed VM (its results match a
        // virtual-only run bit for bit) while the external side is
        // throttled to one process slot.
        let dir = fake_dir("mixed");
        let virtual_config = config(ApproachKind::Llm4Fp, 16, 21);
        let external_config = fake_config(&dir, ApproachKind::GrammarGuided, 6, 21);
        let suite = Scheduler::new(ext_options(4, true, 2, 1))
            .shards(2)
            .run(&[virtual_config.clone(), external_config.clone()])
            .unwrap();
        assert_eq!(suite.len(), 2);
        for (cfg, orchestrated) in [&virtual_config, &external_config].into_iter().zip(&suite) {
            let individual = orchestrate(cfg, 2, ext_options(1, false, 2, 1)).unwrap();
            assert_results_identical(
                &orchestrated.result,
                &individual.result,
                &format!("mixed suite {:?}", cfg.approach),
            );
        }
        // The two campaigns must not have shared a cache (different
        // backends => different test contexts), so each reports its own
        // lookup totals.
        let virtual_stats = suite[0].stats.cache.expect("virtual cache stats");
        assert_eq!(virtual_stats.hits + virtual_stats.misses, suite[0].result.sources.len() as u64);
        let external_stats = suite[1].stats.cache.expect("external cache stats");
        assert_eq!(
            external_stats.hits + external_stats.misses,
            suite[1].result.sources.len() as u64
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn zero_workers_is_a_typed_error_everywhere() {
    // The 0.3 API contract: `workers == 0` is a configuration mistake
    // and must surface as `InvalidWorkers`, not a silent clamp — from
    // both the single-campaign builder and the suite scheduler.
    let cfg = config(ApproachKind::Varity, 4, 1);
    let err = Orchestrator::new(cfg.clone()).workers(0).run().unwrap_err();
    assert!(matches!(err, OrchestratorError::InvalidWorkers), "got {err}");
    let err = orchestrate(&cfg, 2, options(0, false, 1)).unwrap_err();
    assert!(matches!(err, OrchestratorError::InvalidWorkers), "got {err}");
    let err = Scheduler::new(options(0, false, 1)).run(&[cfg]).unwrap_err();
    assert!(matches!(err, OrchestratorError::InvalidWorkers), "got {err}");
}

#[test]
#[allow(deprecated)]
fn deprecated_shims_reproduce_the_builder_output() {
    // The 0.2 entry points survive as shims over the builder; they must
    // keep producing bit-identical results until they are removed.
    let cfg = config(ApproachKind::Llm4Fp, 20, 3);
    let builder = run_sharded(&cfg, 3);
    let shim = Orchestrator::run_sharded(&cfg, 3);
    assert_results_identical(&shim, &builder, "run_sharded shim");
    let builder = run_sharded_epochs(&cfg, 3, 2);
    let shim = Orchestrator::run_sharded_epochs(&cfg, 3, 2);
    assert_results_identical(&shim, &builder, "run_sharded_epochs shim");

    let configs = vec![cfg.clone(), config(ApproachKind::Varity, 12, 5)];
    let builder = Scheduler::new(options(2, true, 2)).shards(2).run(&configs).unwrap();
    let shim = Scheduler::new(options(2, true, 2)).run_suite(&configs, 2);
    assert_eq!(shim.len(), builder.len());
    for (s, b) in shim.iter().zip(&builder) {
        assert_results_identical(&s.result, &b.result, "run_suite shim");
    }
    // And the old zero-worker tolerance is preserved by the shim alone.
    let clamped = Scheduler::new(options(0, false, 1)).run_suite(&configs, 2);
    assert_eq!(clamped.len(), configs.len());
}

#[test]
fn shard_plans_cover_the_budget_without_overlap() {
    let config = config(ApproachKind::Varity, 103, 99);
    for shards in [1usize, 2, 3, 8, 50, 103, 200] {
        let specs = plan_shards(&config, shards);
        assert!(specs.len() <= 103);
        assert_eq!(specs.iter().map(|s| s.budget).sum::<usize>(), 103, "K={shards}");
        let mut next = 0;
        for spec in &specs {
            assert_eq!(spec.offset, next, "K={shards}: offsets must tile the budget");
            next += spec.budget;
        }
    }
}
