//! The orchestrator's load-bearing guarantees, exercised end to end:
//!
//! * `K = 1` orchestrated runs match the sequential driver field for
//!   field;
//! * for any `(seed, K)`, results are bit-identical across worker counts;
//! * the result cache is semantically transparent (on/off agree);
//! * interrupted runs resume to bit-identical results, recomputing only
//!   the missing shards;
//! * the multi-campaign scheduler agrees with individual orchestration.

use std::path::PathBuf;

use llm4fp::{ApproachKind, Campaign, CampaignConfig, CampaignResult};
use llm4fp_orchestrator::{
    plan_shards, Orchestrator, OrchestratorOptions, RunDir, RunManifest, Scheduler,
};

fn config(approach: ApproachKind, budget: usize, seed: u64) -> CampaignConfig {
    // threads = 1 keeps each shard cheap; the pool provides parallelism.
    CampaignConfig::new(approach).with_budget(budget).with_seed(seed).with_threads(1)
}

fn assert_results_identical(a: &CampaignResult, b: &CampaignResult, what: &str) {
    assert_eq!(a.records, b.records, "{what}: records differ");
    assert_eq!(a.sources, b.sources, "{what}: sources differ");
    assert_eq!(a.successful_sources, b.successful_sources, "{what}: successful sets differ");
    assert_eq!(a.aggregates, b.aggregates, "{what}: aggregates differ");
    assert_eq!(a.generation_failures, b.generation_failures, "{what}: failures differ");
    assert_eq!(a.llm_calls, b.llm_calls, "{what}: llm calls differ");
    assert_eq!(a.simulated_llm_time, b.simulated_llm_time, "{what}: llm time differs");
}

#[test]
fn k1_matches_the_sequential_campaign_exactly() {
    for approach in [ApproachKind::Varity, ApproachKind::Llm4Fp] {
        let config = config(approach, 24, 11);
        let sequential = Campaign::new(config.clone()).run();
        let orchestrated = Orchestrator::run_sharded(&config, 1);
        assert_results_identical(&orchestrated, &sequential, &format!("K=1 {:?}", config.approach));
    }
    assert!(llm4fp_orchestrator::matches_sequential(&config(ApproachKind::GrammarGuided, 10, 3)));
}

#[test]
fn sharded_runs_are_bit_identical_across_worker_counts() {
    let config = config(ApproachKind::Llm4Fp, 30, 7);
    for shards in [1usize, 2, 4] {
        let reference =
            Orchestrator::new(OrchestratorOptions { workers: 1, cache: true, run_dir: None })
                .run(&config, shards)
                .unwrap();
        assert_eq!(reference.stats.shards, shards.min(config.programs));
        for workers in [2usize, 8] {
            let other =
                Orchestrator::new(OrchestratorOptions { workers, cache: true, run_dir: None })
                    .run(&config, shards)
                    .unwrap();
            assert_results_identical(
                &other.result,
                &reference.result,
                &format!("K={shards} workers={workers}"),
            );
        }
    }
}

#[test]
fn different_shard_counts_account_the_same_totals() {
    // K changes the decomposition (so exact bits legitimately differ for
    // K1 != K2), but the budget accounting must hold for every K.
    let config = config(ApproachKind::Varity, 25, 13);
    for shards in [1usize, 2, 4, 7] {
        let result = Orchestrator::run_sharded(&config, shards);
        assert_eq!(result.aggregates.programs, 25, "K={shards}");
        assert_eq!(result.aggregates.total_comparisons, 25 * 18, "K={shards}");
        assert_eq!(result.records.len(), 25, "K={shards}");
        assert_eq!(result.sources.len() + result.generation_failures, 25, "K={shards}");
        for (i, record) in result.records.iter().enumerate() {
            assert_eq!(record.index, i, "K={shards}: record order broken");
        }
    }
}

#[test]
fn cache_is_semantically_transparent_and_reports_stats() {
    let config = config(ApproachKind::Llm4Fp, 40, 5);
    let cached = Orchestrator::new(OrchestratorOptions { workers: 4, cache: true, run_dir: None })
        .run(&config, 4)
        .unwrap();
    let uncached =
        Orchestrator::new(OrchestratorOptions { workers: 4, cache: false, run_dir: None })
            .run(&config, 4)
            .unwrap();
    assert_results_identical(&cached.result, &uncached.result, "cache on/off");
    let stats = cached.stats.cache.expect("cache stats present when caching is on");
    assert_eq!(
        stats.misses + stats.hits,
        cached.result.sources.len() as u64,
        "every valid program performs exactly one cache lookup"
    );
    assert!(uncached.stats.cache.is_none());
}

#[test]
fn interrupted_runs_resume_to_identical_results() {
    let config = config(ApproachKind::Llm4Fp, 28, 17);
    let shards = 4;
    let root = std::env::temp_dir()
        .join("llm4fp-orchestrator-tests")
        .join(format!("resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // Reference: one uninterrupted, persisted run.
    let full = Orchestrator::new(OrchestratorOptions {
        workers: 2,
        cache: true,
        run_dir: Some(root.clone()),
    })
    .run(&config, shards)
    .unwrap();
    assert_eq!(full.stats.shards_computed, shards);
    assert_eq!(full.stats.shards_reused, 0);

    // Simulate an interruption: delete one completed shard and truncate
    // another mid-file (as a crash during streaming would leave it).
    std::fs::remove_file(root.join("shards").join("shard-0001.jsonl")).unwrap();
    let truncated_path = root.join("shards").join("shard-0002.jsonl");
    let text = std::fs::read_to_string(&truncated_path).unwrap();
    let keep: Vec<&str> = text.lines().take(3).collect();
    std::fs::write(&truncated_path, keep.join("\n")).unwrap();

    let resumed = Orchestrator::resume(&root).unwrap();
    assert_eq!(resumed.stats.shards_reused, shards - 2, "two shards had to recompute");
    assert_eq!(resumed.stats.shards_computed, 2);
    assert_results_identical(&resumed.result, &full.result, "resume");

    // The merged result on disk matches too.
    let dir = RunDir::open(&root, &RunManifest { config: config.clone(), shards }).unwrap();
    let persisted = dir.load_result().expect("result.json written");
    assert_results_identical(&persisted, &full.result, "persisted result");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn mismatched_manifests_refuse_to_mix_runs() {
    let root: PathBuf = std::env::temp_dir()
        .join("llm4fp-orchestrator-tests")
        .join(format!("mismatch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let config_a = config(ApproachKind::Varity, 8, 1);
    Orchestrator::new(OrchestratorOptions {
        workers: 1,
        cache: false,
        run_dir: Some(root.clone()),
    })
    .run(&config_a, 2)
    .unwrap();
    // Same dir, different seed: must be refused, not silently merged.
    let config_b = config(ApproachKind::Varity, 8, 2);
    let err = Orchestrator::new(OrchestratorOptions {
        workers: 1,
        cache: false,
        run_dir: Some(root.clone()),
    })
    .run(&config_b, 2);
    assert!(err.is_err(), "mismatched manifest must error");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn scheduler_suite_matches_individual_orchestration() {
    let configs: Vec<CampaignConfig> =
        ApproachKind::ALL.iter().map(|&a| config(a, 16, 21)).collect();
    let suite = Scheduler::new(OrchestratorOptions { workers: 4, cache: true, run_dir: None })
        .run_suite(&configs, 2);
    assert_eq!(suite.len(), configs.len());
    for (cfg, orchestrated) in configs.iter().zip(&suite) {
        let individual =
            Orchestrator::new(OrchestratorOptions { workers: 1, cache: false, run_dir: None })
                .run(cfg, 2)
                .unwrap();
        assert_results_identical(
            &orchestrated.result,
            &individual.result,
            &format!("suite {:?}", cfg.approach),
        );
        assert_eq!(orchestrated.result.config.approach, cfg.approach);
    }
}

#[test]
fn shard_plans_cover_the_budget_without_overlap() {
    let config = config(ApproachKind::Varity, 103, 99);
    for shards in [1usize, 2, 3, 8, 50, 103, 200] {
        let specs = plan_shards(&config, shards);
        assert!(specs.len() <= 103);
        assert_eq!(specs.iter().map(|s| s.budget).sum::<usize>(), 103, "K={shards}");
        let mut next = 0;
        for spec in &specs {
            assert_eq!(spec.offset, next, "K={shards}: offsets must tile the budget");
            next += spec.budget;
        }
    }
}
