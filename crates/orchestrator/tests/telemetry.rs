//! Telemetry invariants: collection is pure observation (results are
//! bit-identical with tracing on or off), the merged `metrics.json`
//! flight recorder is byte-identical across worker counts and process
//! slots, and resume-from-partial-run behaves with telemetry files
//! already present in the run directory.

use std::path::PathBuf;

use llm4fp::{ApproachKind, CampaignConfig, CampaignResult};
use llm4fp_orchestrator::{Orchestrator, OrchestratorOptions, RunDir, RunManifest, Scheduler};
use llm4fp_telemetry::{keys, TelemetrySpec};

fn config(approach: ApproachKind, budget: usize, seed: u64) -> CampaignConfig {
    CampaignConfig::new(approach).with_budget(budget).with_seed(seed).with_threads(1)
}

fn options(workers: usize, epochs: usize, telemetry: TelemetrySpec) -> OrchestratorOptions {
    OrchestratorOptions { workers, epochs, telemetry, ..OrchestratorOptions::default() }
}

fn orchestrate(
    config: &CampaignConfig,
    shards: usize,
    opts: OrchestratorOptions,
) -> llm4fp_orchestrator::OrchestratedResult {
    Orchestrator::new(config.clone()).options(opts).shards(shards).run().unwrap()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("llm4fp-orchestrator-tests")
        .join(format!("telemetry-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_results_identical(a: &CampaignResult, b: &CampaignResult, what: &str) {
    assert_eq!(a.records, b.records, "{what}: records");
    assert_eq!(a.sources, b.sources, "{what}: sources");
    assert_eq!(a.successful_sources, b.successful_sources, "{what}: successful sources");
    assert_eq!(a.aggregates, b.aggregates, "{what}: aggregates");
    assert_eq!(a.generation_failures, b.generation_failures, "{what}: generation failures");
}

#[test]
fn results_are_bit_identical_with_telemetry_on_or_off() {
    for approach in [ApproachKind::Varity, ApproachKind::Llm4Fp] {
        let config = config(approach, 16, 33);
        for epochs in [1usize, 2] {
            let off = orchestrate(&config, 2, options(2, epochs, TelemetrySpec::OFF));
            assert!(off.stats.telemetry.is_none(), "telemetry off leaves no summary");
            for spec in [TelemetrySpec::METRICS, TelemetrySpec::TRACE] {
                let on = orchestrate(&config, 2, options(2, epochs, spec));
                assert_results_identical(
                    &on.result,
                    &off.result,
                    &format!("{approach:?} E={epochs} {spec:?}"),
                );
                let summary = on.stats.telemetry.expect("telemetry summary recorded");
                assert!(summary.counter_keys > 0, "counters were collected");
                assert_eq!(
                    summary.trace_events > 0,
                    spec.trace_enabled(),
                    "trace events exactly in trace mode"
                );
            }
        }
    }
}

#[test]
fn metrics_json_is_byte_identical_across_worker_counts() {
    let config = config(ApproachKind::Llm4Fp, 18, 9);
    let mut reference: Option<String> = None;
    for (tag, workers) in [("w1", 1usize), ("w4", 4)] {
        let root = temp_dir(&format!("workers-{tag}"));
        let orchestrated = orchestrate(
            &config,
            3,
            OrchestratorOptions {
                run_dir: Some(root.clone()),
                ..options(workers, 2, TelemetrySpec::METRICS)
            },
        );
        assert_eq!(orchestrated.stats.shards_computed, 3);
        let bytes = std::fs::read_to_string(root.join("metrics.json"))
            .expect("metrics.json written for a fully computed run");
        match &reference {
            None => reference = Some(bytes),
            Some(expected) => {
                assert_eq!(&bytes, expected, "metrics.json must not depend on worker count")
            }
        }
        let dir = RunDir::open(&root, &RunManifest::new(config.clone(), 3, 2)).unwrap();
        let report = dir.load_metrics().expect("metrics.json parses");
        assert_eq!(report.get(keys::PROGRAMS), 18, "every program counted once");
        assert!(report.get(keys::COMPARISONS) > 0, "comparisons recorded");
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn trace_runs_write_chrome_trace_lines_and_a_loadable_report() {
    let config = config(ApproachKind::Varity, 10, 5);
    let root = temp_dir("trace");
    let orchestrated = orchestrate(
        &config,
        2,
        OrchestratorOptions { run_dir: Some(root.clone()), ..options(2, 1, TelemetrySpec::TRACE) },
    );
    let summary = orchestrated.stats.telemetry.expect("summary present");
    assert!(summary.trace_events > 0);

    let dir = RunDir::open(&root, &RunManifest::new(config.clone(), 2, 1)).unwrap();
    let lines = dir.load_trace_lines().expect("trace.jsonl written");
    assert!(!lines.is_empty());
    let mut names = std::collections::BTreeSet::new();
    for line in &lines {
        let value = serde_json::parse(line).expect("every trace line is valid JSON");
        let obj = value.as_obj().expect("trace lines are objects");
        for field in ["name", "cat", "ph", "ts", "dur", "pid", "tid"] {
            assert!(obj.get(field).is_some(), "trace line missing {field}: {line}");
        }
        if let Some(serde_json::Value::Str(name)) = obj.get("name") {
            names.insert(name.clone());
        }
    }
    assert!(names.contains(keys::SPAN_RUN), "whole-run span recorded");
    assert!(names.contains(keys::SPAN_SHARD_RUN), "per-shard spans recorded");
    assert!(names.contains(keys::SPAN_PROGRAM), "per-program spans recorded");

    // The persisted summary carries the roll-up too.
    let stats = dir.load_summary().expect("summary.json written");
    assert_eq!(stats.telemetry, orchestrated.stats.telemetry);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn resume_with_telemetry_files_present_stays_bit_identical() {
    let config = config(ApproachKind::Llm4Fp, 24, 14);
    let root = temp_dir("resume");
    let persisted = || OrchestratorOptions {
        run_dir: Some(root.clone()),
        ..options(2, 1, TelemetrySpec::TRACE)
    };
    let full = orchestrate(&config, 4, persisted());
    let metrics_before = std::fs::read_to_string(root.join("metrics.json")).unwrap();
    assert!(root.join("trace.jsonl").exists());

    // Interrupt: one shard recomputes while metrics.json and trace.jsonl
    // from the complete run sit in the directory.
    std::fs::remove_file(root.join("shards").join("shard-0002.jsonl")).unwrap();
    let resumed = orchestrate(&config, 4, persisted());
    assert_eq!(resumed.stats.shards_reused, 3);
    assert_eq!(resumed.stats.shards_computed, 1);
    assert_results_identical(&resumed.result, &full.result, "resume with telemetry files");

    // A partial recompute must not overwrite the complete run's metrics
    // (reused shards record nothing, so rewriting would under-count);
    // the wall-clock trace of the latest invocation is rewritten.
    let metrics_after = std::fs::read_to_string(root.join("metrics.json")).unwrap();
    assert_eq!(metrics_after, metrics_before, "metrics.json untouched by partial recompute");
    let dir = RunDir::open(&root, &RunManifest::new(config.clone(), 4, 1)).unwrap();
    let lines = dir.load_trace_lines().expect("trace.jsonl rewritten");
    assert!(
        lines.iter().any(|l| l.contains(keys::SPAN_SHARD_RUN)),
        "the recomputed shard traced its run"
    );

    // `Orchestrator::resume` (telemetry off by default) still reads the
    // directory fine and reproduces the result.
    let again = Orchestrator::resume(&root).unwrap();
    assert_eq!(again.stats.shards_reused, 4);
    assert_results_identical(&again.result, &full.result, "plain resume");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn scheduler_suites_report_per_campaign_telemetry_and_wall_times() {
    let configs: Vec<CampaignConfig> =
        [ApproachKind::Varity, ApproachKind::Llm4Fp].iter().map(|&a| config(a, 12, 8)).collect();

    let started = std::time::Instant::now();
    let suite =
        Scheduler::new(options(2, 2, TelemetrySpec::METRICS)).shards(2).run(&configs).unwrap();
    let suite_elapsed = started.elapsed();

    let off = Scheduler::new(options(2, 2, TelemetrySpec::OFF)).shards(2).run(&configs).unwrap();
    for (on, off) in suite.iter().zip(&off) {
        assert_results_identical(&on.result, &off.result, "scheduler telemetry on/off");
        assert!(off.stats.telemetry.is_none());
        let summary = on.stats.telemetry.expect("per-campaign telemetry summary");
        assert!(summary.counter_keys > 0);
        // Satellite fix: wall_time is the campaign's own first-start to
        // last-end window, not one suite-wide clock — it can never
        // exceed the whole suite's elapsed time.
        assert!(on.stats.wall_time <= suite_elapsed, "per-campaign wall within suite elapsed");
        assert!(on.stats.wall_time > std::time::Duration::ZERO);
    }
}

/// External-backend telemetry, hermetic via the `fakecc` mock toolchain.
#[cfg(unix)]
mod external_backend {
    use super::*;
    use std::path::Path;

    use llm4fp::{BackendSpec, ExternalBackendSpec};
    use llm4fp_extcc::fakecc;

    fn fake_config(dir: &Path, budget: usize, seed: u64) -> CampaignConfig {
        let spec = ExternalBackendSpec::new(fakecc::install_pair(dir).expect("install fakecc"));
        config(ApproachKind::Llm4Fp, budget, seed).with_backend(BackendSpec::External(spec))
    }

    #[test]
    fn external_metrics_json_is_byte_identical_across_workers_and_process_slots() {
        let fake = temp_dir("fakecc");
        let config = fake_config(&fake, 8, 7);
        let mut reference: Option<String> = None;
        for (tag, workers, slots) in [("w1s1", 1usize, 1usize), ("w4s8", 4, 8)] {
            let root = temp_dir(&format!("ext-{tag}"));
            let orchestrated = orchestrate(
                &config,
                2,
                OrchestratorOptions {
                    run_dir: Some(root.clone()),
                    process_slots: slots,
                    ..options(workers, 1, TelemetrySpec::METRICS)
                },
            );
            assert_eq!(orchestrated.stats.shards_computed, 2);
            let bytes = std::fs::read_to_string(root.join("metrics.json")).unwrap();
            match &reference {
                None => {
                    // The recorder saw the external pipeline at all.
                    assert!(bytes.contains("extcc.compiles"), "extcc counters recorded");
                    reference = Some(bytes);
                }
                Some(expected) => assert_eq!(
                    &bytes, expected,
                    "metrics.json must not depend on workers or process slots"
                ),
            }
            let _ = std::fs::remove_dir_all(&root);
        }
        let _ = std::fs::remove_dir_all(&fake);
    }
}
