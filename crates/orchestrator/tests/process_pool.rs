//! The out-of-process transport's load-bearing guarantee, exercised
//! against real `llm4fp-worker` daemons: a process-pool run is
//! bit-identical to the in-process run for any `(K, E, worker_procs)` —
//! including under an injected worker crash (the job redispatches to a
//! respawned daemon) and under a stalled worker (the per-shard timeout
//! kills the process group and redispatches). The merged `metrics.json`
//! flight recorder is byte-identical across transports, which is what
//! the CI smoke campaign asserts end to end.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use llm4fp::{ApproachKind, CampaignConfig, CampaignResult};
use llm4fp_orchestrator::{
    OrchestratedResult, Orchestrator, OrchestratorOptions, ProcessPoolExecutor, Scheduler,
};
use llm4fp_telemetry::TelemetrySpec;

/// Cargo builds the worker daemon alongside the test binary and hands us
/// its path; `with_worker_bin` skips the sibling-binary search.
fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_llm4fp-worker"))
}

fn pool(worker_procs: usize) -> ProcessPoolExecutor {
    ProcessPoolExecutor::new(worker_procs).with_worker_bin(worker_bin())
}

fn config(approach: ApproachKind, budget: usize, seed: u64) -> CampaignConfig {
    CampaignConfig::new(approach).with_budget(budget).with_seed(seed).with_threads(1)
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("llm4fp-orchestrator-tests")
        .join(format!("pp-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn in_process(config: &CampaignConfig, shards: usize, epochs: usize) -> OrchestratedResult {
    Orchestrator::new(config.clone()).shards(shards).epochs(epochs).run().unwrap()
}

fn on_pool(
    config: &CampaignConfig,
    shards: usize,
    epochs: usize,
    executor: ProcessPoolExecutor,
) -> OrchestratedResult {
    Orchestrator::new(config.clone())
        .shards(shards)
        .epochs(epochs)
        .executor(Arc::new(executor))
        .run()
        .unwrap()
}

/// Transport equivalence compares everything deterministic. (`RunStats`
/// wall-clock fields and `peak_regs` are runtime artifacts, not part of
/// the contract.)
fn assert_results_identical(a: &CampaignResult, b: &CampaignResult, what: &str) {
    assert_eq!(a.records, b.records, "{what}: records differ");
    assert_eq!(a.sources, b.sources, "{what}: sources differ");
    assert_eq!(a.successful_sources, b.successful_sources, "{what}: successful sets differ");
    assert_eq!(a.aggregates, b.aggregates, "{what}: aggregates differ");
    assert_eq!(a.generation_failures, b.generation_failures, "{what}: failures differ");
    assert_eq!(a.llm_calls, b.llm_calls, "{what}: llm calls differ");
    assert_eq!(a.simulated_llm_time, b.simulated_llm_time, "{what}: llm time differs");
}

#[test]
fn process_pool_matches_in_process_bit_for_bit() {
    let config = config(ApproachKind::Llm4Fp, 24, 7);
    for epochs in [1usize, 3] {
        let reference = in_process(&config, 4, epochs);
        for worker_procs in [1usize, 2, 4] {
            let pooled = on_pool(&config, 4, epochs, pool(worker_procs));
            assert_results_identical(
                &pooled.result,
                &reference.result,
                &format!("E={epochs} procs={worker_procs}"),
            );
            assert_eq!(pooled.stats.shards, reference.stats.shards);
            assert_eq!(pooled.stats.epochs, epochs);
        }
    }
}

#[test]
fn process_pool_k1_matches_the_sequential_campaign() {
    let config = config(ApproachKind::Varity, 12, 19);
    let sequential = llm4fp::Campaign::new(config.clone()).run();
    let pooled = on_pool(&config, 1, 1, pool(2));
    assert_results_identical(&pooled.result, &sequential, "process pool K=1");
}

#[test]
fn metrics_json_is_byte_identical_across_transports() {
    // The telemetry counters a worker daemon ships home must merge into
    // the exact bytes the in-process transport writes: metrics.json is
    // the cross-transport determinism witness the CI smoke relies on.
    let config = config(ApproachKind::Llm4Fp, 18, 9);
    let mut reference: Option<String> = None;
    let executors: [Option<ProcessPoolExecutor>; 2] = [None, Some(pool(3))];
    for (tag, executor) in ["in-process", "process-pool"].into_iter().zip(executors) {
        let root = temp_dir(&format!("metrics-{tag}"));
        let mut builder = Orchestrator::new(config.clone())
            .shards(3)
            .epochs(2)
            .run_dir(root.clone())
            .telemetry(TelemetrySpec::METRICS);
        if let Some(executor) = executor {
            builder = builder.executor(Arc::new(executor));
        }
        let orchestrated = builder.run().unwrap();
        assert_eq!(orchestrated.stats.shards_computed, 3, "{tag}");
        let bytes = std::fs::read_to_string(root.join("metrics.json"))
            .expect("metrics.json written for a fully computed run");
        match &reference {
            None => reference = Some(bytes),
            Some(expected) => {
                assert_eq!(&bytes, expected, "metrics.json must not depend on the transport")
            }
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn worker_crash_redispatches_and_stays_bit_identical() {
    // Worker slot 0's first daemon dies with exit(101) upon receiving
    // its first job, before answering. The coordinator must detect the
    // broken pipe, kill the remains, respawn a clean daemon, and replay
    // the job — with no trace in the results.
    let config = config(ApproachKind::Llm4Fp, 20, 5);
    for epochs in [1usize, 2] {
        let reference = in_process(&config, 4, epochs);
        let crashing = pool(2)
            .with_first_worker_env([("LLM4FP_WORKER_CRASH_AT_JOB".to_string(), "1".to_string())]);
        let survived = on_pool(&config, 4, epochs, crashing);
        assert_results_identical(
            &survived.result,
            &reference.result,
            &format!("crash redispatch E={epochs}"),
        );
    }
}

#[test]
fn stalled_worker_is_killed_and_its_job_redispatched() {
    // Worker slot 0's first daemon stalls far past the shard timeout on
    // every job it receives. The coordinator must give up on it, kill
    // its process group, and redispatch to a clean respawn — again with
    // bit-identical results.
    let config = config(ApproachKind::Varity, 12, 3);
    let reference = in_process(&config, 3, 1);
    let stalling = pool(2)
        .with_first_worker_env([("LLM4FP_WORKER_STALL_MS".to_string(), "60000".to_string())])
        .with_shard_timeout(Duration::from_millis(500));
    let survived = on_pool(&config, 3, 1, stalling);
    assert_results_identical(&survived.result, &reference.result, "stall timeout redispatch");
}

#[test]
fn scheduler_suites_run_on_the_process_pool() {
    // The suite scheduler is transport-agnostic through the same seam:
    // a multi-campaign suite farmed to worker daemons must match the
    // in-process suite campaign for campaign.
    let configs: Vec<CampaignConfig> =
        [ApproachKind::Varity, ApproachKind::Llm4Fp].iter().map(|&a| config(a, 12, 8)).collect();
    let options = OrchestratorOptions { workers: 2, epochs: 2, ..Default::default() };
    let reference = Scheduler::new(options.clone()).shards(2).run(&configs).unwrap();
    let pooled =
        Scheduler::new(options).shards(2).executor(Arc::new(pool(3))).run(&configs).unwrap();
    assert_eq!(pooled.len(), reference.len());
    for (p, r) in pooled.iter().zip(&reference) {
        assert_results_identical(&p.result, &r.result, "suite on process pool");
        // The pool cannot share an in-memory cache across processes, so
        // the scheduler must not report (or rely on) cache stats.
        assert!(p.stats.cache.is_none(), "no shared-cache stats over the process pool");
    }
}

#[test]
fn missing_worker_binary_is_a_typed_executor_error() {
    let config = config(ApproachKind::Varity, 4, 1);
    let executor = ProcessPoolExecutor::new(2).with_worker_bin("/nonexistent/llm4fp-worker");
    let err = Orchestrator::new(config).shards(2).executor(Arc::new(executor)).run().unwrap_err();
    assert!(matches!(err, llm4fp_orchestrator::OrchestratorError::Executor(_)), "got {err}");
}
