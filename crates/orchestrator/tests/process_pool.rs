//! The out-of-process transport's load-bearing guarantee, exercised
//! against real `llm4fp-worker` daemons: a process-pool run is
//! bit-identical to the in-process run for any `(K, E, worker_procs)` —
//! including under an injected worker crash (the job redispatches to a
//! respawned daemon) and under a stalled worker (the per-shard timeout
//! kills the process group and redispatches). The merged `metrics.json`
//! flight recorder is byte-identical across transports, which is what
//! the CI smoke campaign asserts end to end.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use llm4fp::{ApproachKind, CampaignConfig, CampaignResult};
use llm4fp_orchestrator::{
    FailurePolicy, FaultPlan, OrchestratedResult, Orchestrator, OrchestratorError,
    OrchestratorOptions, ProcessPoolExecutor, Scheduler, WorkerFault,
};
use llm4fp_telemetry::TelemetrySpec;

/// Cargo builds the worker daemon alongside the test binary and hands us
/// its path; `with_worker_bin` skips the sibling-binary search.
fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_llm4fp-worker"))
}

fn pool(worker_procs: usize) -> ProcessPoolExecutor {
    ProcessPoolExecutor::new(worker_procs).with_worker_bin(worker_bin())
}

fn config(approach: ApproachKind, budget: usize, seed: u64) -> CampaignConfig {
    CampaignConfig::new(approach).with_budget(budget).with_seed(seed).with_threads(1)
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("llm4fp-orchestrator-tests")
        .join(format!("pp-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn in_process(config: &CampaignConfig, shards: usize, epochs: usize) -> OrchestratedResult {
    Orchestrator::new(config.clone()).shards(shards).epochs(epochs).run().unwrap()
}

fn on_pool(
    config: &CampaignConfig,
    shards: usize,
    epochs: usize,
    executor: ProcessPoolExecutor,
) -> OrchestratedResult {
    Orchestrator::new(config.clone())
        .shards(shards)
        .epochs(epochs)
        .executor(Arc::new(executor))
        .run()
        .unwrap()
}

/// Transport equivalence compares everything deterministic. (`RunStats`
/// wall-clock fields and `peak_regs` are runtime artifacts, not part of
/// the contract.)
fn assert_results_identical(a: &CampaignResult, b: &CampaignResult, what: &str) {
    assert_eq!(a.records, b.records, "{what}: records differ");
    assert_eq!(a.sources, b.sources, "{what}: sources differ");
    assert_eq!(a.successful_sources, b.successful_sources, "{what}: successful sets differ");
    assert_eq!(a.aggregates, b.aggregates, "{what}: aggregates differ");
    assert_eq!(a.generation_failures, b.generation_failures, "{what}: failures differ");
    assert_eq!(a.llm_calls, b.llm_calls, "{what}: llm calls differ");
    assert_eq!(a.simulated_llm_time, b.simulated_llm_time, "{what}: llm time differs");
}

#[test]
fn process_pool_matches_in_process_bit_for_bit() {
    let config = config(ApproachKind::Llm4Fp, 24, 7);
    for epochs in [1usize, 3] {
        let reference = in_process(&config, 4, epochs);
        for worker_procs in [1usize, 2, 4] {
            let pooled = on_pool(&config, 4, epochs, pool(worker_procs));
            assert_results_identical(
                &pooled.result,
                &reference.result,
                &format!("E={epochs} procs={worker_procs}"),
            );
            assert_eq!(pooled.stats.shards, reference.stats.shards);
            assert_eq!(pooled.stats.epochs, epochs);
        }
    }
}

#[test]
fn process_pool_k1_matches_the_sequential_campaign() {
    let config = config(ApproachKind::Varity, 12, 19);
    let sequential = llm4fp::Campaign::new(config.clone()).run();
    let pooled = on_pool(&config, 1, 1, pool(2));
    assert_results_identical(&pooled.result, &sequential, "process pool K=1");
}

#[test]
fn metrics_json_is_byte_identical_across_transports() {
    // The telemetry counters a worker daemon ships home must merge into
    // the exact bytes the in-process transport writes: metrics.json is
    // the cross-transport determinism witness the CI smoke relies on.
    let config = config(ApproachKind::Llm4Fp, 18, 9);
    let mut reference: Option<String> = None;
    let executors: [Option<ProcessPoolExecutor>; 2] = [None, Some(pool(3))];
    for (tag, executor) in ["in-process", "process-pool"].into_iter().zip(executors) {
        let root = temp_dir(&format!("metrics-{tag}"));
        let mut builder = Orchestrator::new(config.clone())
            .shards(3)
            .epochs(2)
            .run_dir(root.clone())
            .telemetry(TelemetrySpec::METRICS);
        if let Some(executor) = executor {
            builder = builder.executor(Arc::new(executor));
        }
        let orchestrated = builder.run().unwrap();
        assert_eq!(orchestrated.stats.shards_computed, 3, "{tag}");
        let bytes = std::fs::read_to_string(root.join("metrics.json"))
            .expect("metrics.json written for a fully computed run");
        match &reference {
            None => reference = Some(bytes),
            Some(expected) => {
                assert_eq!(&bytes, expected, "metrics.json must not depend on the transport")
            }
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}

/// A plan faulting only worker slot 0's first spawn — the redispatch-
/// equivalence shape: the fault fires once and recovery heals it.
fn first_worker_plan(fault: WorkerFault) -> FaultPlan {
    FaultPlan { first_worker: vec![fault], ..FaultPlan::default() }
}

#[test]
fn worker_crash_redispatches_and_stays_bit_identical() {
    // Worker slot 0's first daemon dies with exit(101) upon receiving
    // its first job, before answering. The coordinator must detect the
    // broken pipe, kill the remains, respawn a clean daemon, and replay
    // the job — with no trace in the results.
    let config = config(ApproachKind::Llm4Fp, 20, 5);
    for epochs in [1usize, 2] {
        let reference = in_process(&config, 4, epochs);
        let crashing = pool(2).with_fault_plan(first_worker_plan(WorkerFault::CrashAtJob(1)));
        let survived = on_pool(&config, 4, epochs, crashing);
        assert_results_identical(
            &survived.result,
            &reference.result,
            &format!("crash redispatch E={epochs}"),
        );
        assert!(survived.stats.failures.is_empty(), "a healed crash is not a shard failure");
    }
}

#[test]
fn stalled_worker_is_killed_and_its_job_redispatched() {
    // Worker slot 0's first daemon stalls far past the shard timeout on
    // every job it receives. The coordinator must give up on it, kill
    // its process group, and redispatch to a clean respawn — again with
    // bit-identical results.
    let config = config(ApproachKind::Varity, 12, 3);
    let reference = in_process(&config, 3, 1);
    let stalling = pool(2)
        .with_fault_plan(first_worker_plan(WorkerFault::StallMs(60_000)))
        .with_shard_timeout(Duration::from_millis(500));
    let survived = on_pool(&config, 3, 1, stalling);
    assert_results_identical(&survived.result, &reference.result, "stall timeout redispatch");
}

#[test]
fn sabotaged_answer_frames_redispatch_and_stay_bit_identical() {
    // A worker that answers with garbage (or a truncated frame) is as
    // dead as one that crashed: the coordinator must treat the malformed
    // answer as a dispatch failure and replay the job elsewhere.
    let config = config(ApproachKind::Llm4Fp, 16, 21);
    let reference = in_process(&config, 3, 1);
    for fault in [WorkerFault::CorruptFrameAtJob(1), WorkerFault::TruncateFrameAtJob(1)] {
        let what = format!("{fault:?}");
        let sabotaged = pool(2).with_fault_plan(first_worker_plan(fault));
        let survived = on_pool(&config, 3, 1, sabotaged);
        assert_results_identical(&survived.result, &reference.result, &what);
        assert!(survived.stats.failures.is_empty(), "{what}: healed, not quarantined");
    }
}

#[test]
fn injected_respawn_failures_back_off_and_recover() {
    // Chaos shape: slot 0's first daemon crashes AND the coordinator's
    // next spawn attempt is itself made to fail (as if fork/exec died).
    // The spawn failure burns a dispatch attempt, waits out the
    // deterministic backoff, and the next respawn succeeds — results
    // stay bit-identical with a default budget of 3.
    let config = config(ApproachKind::Varity, 12, 17);
    let reference = in_process(&config, 3, 1);
    let flaky = pool(2).respawn_backoff_base(Duration::from_millis(1)).with_fault_plan(FaultPlan {
        first_worker: vec![WorkerFault::CrashAtJob(1)],
        respawn_failures: 1,
        ..FaultPlan::default()
    });
    let survived = on_pool(&config, 3, 1, flaky);
    assert_results_identical(&survived.result, &reference.result, "respawn failure recovery");
}

#[test]
fn poisonous_shard_aborts_the_run_under_the_default_policy() {
    // `every_worker` poison survives respawns: shard 1's job crashes
    // every daemon that touches it, exhausting the dispatch budget. The
    // default Abort policy must fail the whole run with a typed error
    // naming the job.
    let config = config(ApproachKind::Varity, 12, 23);
    let poisoned =
        pool(2).respawn_backoff_base(Duration::from_millis(1)).with_fault_plan(FaultPlan {
            every_worker: vec![WorkerFault::CrashOnShard(1)],
            ..FaultPlan::default()
        });
    let err = Orchestrator::new(config)
        .shards(3)
        .executor(Arc::new(poisoned))
        .run()
        .expect_err("a shard that can never complete must abort the run");
    assert!(matches!(err, OrchestratorError::Executor(_)), "got {err}");
    assert!(err.to_string().contains("failed"), "{err}");
}

#[test]
fn quarantine_policy_completes_the_surviving_shards() {
    // Same poison, opposite policy: the campaign completes on shards 0
    // and 2, and the casualty is reported — shard index, attempt count,
    // and the last error — instead of sinking the run.
    let config = config(ApproachKind::Varity, 12, 23);
    let poisoned = pool(2)
        .respawn_backoff_base(Duration::from_millis(1))
        .on_shard_failure(FailurePolicy::Quarantine)
        .with_fault_plan(FaultPlan {
            every_worker: vec![WorkerFault::CrashOnShard(1)],
            ..FaultPlan::default()
        });
    let survived = Orchestrator::new(config.clone())
        .shards(3)
        .executor(Arc::new(poisoned))
        .run()
        .expect("quarantine completes the run");
    assert_eq!(survived.stats.failures.len(), 1, "exactly one shard was lost");
    let report = &survived.stats.failures[0];
    assert_eq!(report.shard, 1);
    assert_eq!(report.attempts, 3, "the full dispatch budget was spent");
    assert!(!report.last_error.is_empty(), "the last error is preserved");
    assert!(!survived.result.records.is_empty(), "surviving shards produced records");
    assert!(
        survived.result.records.len() < in_process(&config, 3, 1).result.records.len(),
        "a quarantined run is visibly partial, never silently complete"
    );
    assert!(
        survived.stats.summary_line().contains("quarantined"),
        "stats advertise the quarantine: {}",
        survived.stats.summary_line()
    );
}

#[test]
fn unavailable_transport_falls_back_to_in_process_when_allowed() {
    // The bottom rung of the degradation ladder: a transport whose
    // workers can never spawn degrades to the in-process executor and
    // the results are bit-identical (the determinism contract is
    // transport-independent).
    let config = config(ApproachKind::Llm4Fp, 16, 29);
    let reference = in_process(&config, 3, 2);
    let doomed = ProcessPoolExecutor::new(2)
        .with_worker_bin("/nonexistent/llm4fp-worker")
        .respawn_backoff_base(Duration::from_millis(1));
    let degraded = Orchestrator::new(config)
        .shards(3)
        .epochs(2)
        .executor(Arc::new(doomed))
        .fallback_to_in_process(true)
        .run()
        .expect("fallback completes the run in process");
    assert!(degraded.stats.fell_back_to_in_process, "stats record the degradation");
    assert_results_identical(&degraded.result, &reference.result, "in-process fallback");
}

#[test]
fn scheduler_suites_run_on_the_process_pool() {
    // The suite scheduler is transport-agnostic through the same seam:
    // a multi-campaign suite farmed to worker daemons must match the
    // in-process suite campaign for campaign.
    let configs: Vec<CampaignConfig> =
        [ApproachKind::Varity, ApproachKind::Llm4Fp].iter().map(|&a| config(a, 12, 8)).collect();
    let options = OrchestratorOptions { workers: 2, epochs: 2, ..Default::default() };
    let reference = Scheduler::new(options.clone()).shards(2).run(&configs).unwrap();
    let pooled =
        Scheduler::new(options).shards(2).executor(Arc::new(pool(3))).run(&configs).unwrap();
    assert_eq!(pooled.len(), reference.len());
    for (p, r) in pooled.iter().zip(&reference) {
        assert_results_identical(&p.result, &r.result, "suite on process pool");
        // The pool cannot share an in-memory cache across processes, so
        // the scheduler must not report (or rely on) cache stats.
        assert!(p.stats.cache.is_none(), "no shared-cache stats over the process pool");
    }
}

#[test]
fn missing_worker_binary_is_a_typed_worker_unavailable_error() {
    // Without the fallback opt-in, an unspawnable transport surfaces as
    // `WorkerUnavailable` — the typed trigger the degradation ladder (and
    // any caller-side retry logic) keys on.
    let config = config(ApproachKind::Varity, 4, 1);
    let executor = ProcessPoolExecutor::new(2)
        .with_worker_bin("/nonexistent/llm4fp-worker")
        .respawn_backoff_base(Duration::from_millis(1));
    let err = Orchestrator::new(config).shards(2).executor(Arc::new(executor)).run().unwrap_err();
    assert!(matches!(err, OrchestratorError::WorkerUnavailable(_)), "got {err}");
}

/// Satellite coverage for the versioned handshake on the *pipe*
/// transport: the worker's first frame is its `Hello`, a current
/// coordinator `Hello` plus `Shutdown` exits 0, and a coordinator from
/// the future is refused in words (exit 2, the skew named on stderr) —
/// never a hang or a parse error.
#[test]
fn pipe_transport_handshake_is_versioned_and_skew_is_refused_in_words() {
    use llm4fp_orchestrator::wire::{self, Hello, WireReply, WireRequest, PROTOCOL_VERSION};
    use std::process::{Command, Stdio};

    let spawn = || {
        let mut child = Command::new(worker_bin())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn pipe worker");
        let mut stdout = child.stdout.take().expect("stdout piped");
        let first: WireReply = wire::read_frame(&mut stdout).expect("worker's opening frame");
        match first {
            WireReply::Hello(hello) => {
                assert!(hello.check().is_ok(), "worker advertises this build's versions")
            }
            other => panic!("worker's first frame was not Hello: {other:?}"),
        }
        child
    };

    // Matching versions: handshake accepted, Shutdown exits clean.
    let mut child = spawn();
    let mut stdin = child.stdin.take().expect("stdin piped");
    wire::write_frame(&mut stdin, &WireRequest::Hello(Hello::current())).expect("hello");
    wire::write_frame(&mut stdin, &WireRequest::Shutdown).expect("shutdown");
    let out = child.wait_with_output().expect("worker exit");
    assert_eq!(out.status.code(), Some(0), "matched handshake exits clean");

    // A coordinator from the future: typed refusal, named on stderr.
    let mut child = spawn();
    let mut stdin = child.stdin.take().expect("stdin piped");
    let skewed = Hello { protocol: PROTOCOL_VERSION + 1, ..Hello::current() };
    wire::write_frame(&mut stdin, &WireRequest::Hello(skewed)).expect("skewed hello");
    let out = child.wait_with_output().expect("worker exit");
    assert_eq!(out.status.code(), Some(2), "version skew is a refusal, not a crash");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("version mismatch") && stderr.contains("protocol"),
        "stderr names the disagreeing field: {stderr}"
    );
}
