//! The socket transport's load-bearing guarantee, exercised against real
//! `llm4fp-worker --connect` daemons dialing a loopback coordinator: a
//! remote run is bit-identical to the in-process run for any
//! `(K, E, worker_procs)` — including under every [`NetworkFault`]
//! variant in Abort mode (a fault may cost time, never bits), after a
//! mid-epoch disconnect-reconnect-resume, and when deadline leases
//! expire and the late answers arrive anyway (discarded by lease
//! generation, never merged). The handshake half pins the version
//! contract: a skewed `Hello` is refused in words — a typed
//! [`WireRequest::Refuse`] — never undefined framing.

use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use llm4fp::{ApproachKind, CampaignConfig, CampaignResult};
use llm4fp_orchestrator::wire::{read_frame, write_frame, WireReply, WireRequest};
use llm4fp_orchestrator::{
    FaultPlan, Hello, NetworkFault, NullSink, OrchestratedResult, Orchestrator, OrchestratorError,
    RemoteWorkerExecutor, ShardExecutor, PROTOCOL_VERSION,
};
use llm4fp_telemetry::TelemetrySpec;

/// Cargo builds the worker daemon alongside the test binary and hands us
/// its path; `with_worker_bin` skips the sibling-binary search.
fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_llm4fp-worker"))
}

fn remote(worker_procs: usize) -> RemoteWorkerExecutor {
    RemoteWorkerExecutor::new(worker_procs).with_worker_bin(worker_bin())
}

fn config(approach: ApproachKind, budget: usize, seed: u64) -> CampaignConfig {
    CampaignConfig::new(approach).with_budget(budget).with_seed(seed).with_threads(1)
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("llm4fp-orchestrator-tests")
        .join(format!("remote-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn in_process(config: &CampaignConfig, shards: usize, epochs: usize) -> OrchestratedResult {
    Orchestrator::new(config.clone()).shards(shards).epochs(epochs).run().unwrap()
}

fn on_remote(
    config: &CampaignConfig,
    shards: usize,
    epochs: usize,
    executor: RemoteWorkerExecutor,
) -> OrchestratedResult {
    Orchestrator::new(config.clone())
        .shards(shards)
        .epochs(epochs)
        .executor(Arc::new(executor))
        .run()
        .unwrap()
}

/// Transport equivalence compares everything deterministic. (`RunStats`
/// wall-clock fields are runtime artifacts, not part of the contract.)
fn assert_results_identical(a: &CampaignResult, b: &CampaignResult, what: &str) {
    assert_eq!(a.records, b.records, "{what}: records differ");
    assert_eq!(a.sources, b.sources, "{what}: sources differ");
    assert_eq!(a.successful_sources, b.successful_sources, "{what}: successful sets differ");
    assert_eq!(a.aggregates, b.aggregates, "{what}: aggregates differ");
    assert_eq!(a.generation_failures, b.generation_failures, "{what}: failures differ");
    assert_eq!(a.llm_calls, b.llm_calls, "{what}: llm calls differ");
    assert_eq!(a.simulated_llm_time, b.simulated_llm_time, "{what}: llm time differs");
}

#[test]
fn remote_loopback_matches_in_process_bit_for_bit() {
    let config = config(ApproachKind::Llm4Fp, 24, 7);
    for epochs in [1usize, 3] {
        let reference = in_process(&config, 4, epochs);
        for worker_procs in [1usize, 2, 4] {
            let remoted = on_remote(&config, 4, epochs, remote(worker_procs));
            assert_results_identical(
                &remoted.result,
                &reference.result,
                &format!("E={epochs} procs={worker_procs}"),
            );
            assert_eq!(remoted.stats.shards, reference.stats.shards);
            assert_eq!(remoted.stats.epochs, epochs);
            assert!(remoted.stats.failures.is_empty());
        }
    }
}

#[test]
fn remote_k1_matches_the_sequential_campaign() {
    let config = config(ApproachKind::Varity, 12, 19);
    let sequential = llm4fp::Campaign::new(config.clone()).run();
    let remoted = on_remote(&config, 1, 1, remote(2));
    assert_results_identical(&remoted.result, &sequential, "remote K=1");
}

/// A plan arming exactly one network fault — the network-chaos
/// equivalence shape: the fault fires deterministically and the
/// supervisor's recovery heals it without changing a bit.
fn network_plan(fault: NetworkFault) -> FaultPlan {
    FaultPlan { network: vec![fault], ..FaultPlan::default() }
}

#[test]
fn every_network_fault_heals_bit_identically_in_abort_mode() {
    // The whole FaultPlan::network vocabulary, one variant at a time,
    // under the default Abort policy: a dropped connection redials and
    // resumes, a delayed frame just arrives later, a duplicated result
    // is discarded as stale by lease generation, a torn stream is a
    // dispatch failure that replays elsewhere, and a refused handshake
    // heals on the worker's next dial. None of it may cost a bit.
    let config = config(ApproachKind::Llm4Fp, 20, 5);
    let reference = in_process(&config, 4, 1);
    for fault in [
        NetworkFault::DropConnAtJob(1),
        NetworkFault::DelayFrameMs(50),
        NetworkFault::DuplicateResultAtJob(1),
        NetworkFault::TruncateStreamAtJob(1),
        NetworkFault::RefuseHandshake,
    ] {
        let what = format!("{fault:?}");
        let chaotic = remote(2).with_fault_plan(network_plan(fault));
        let survived = on_remote(&config, 4, 1, chaotic);
        assert_results_identical(&survived.result, &reference.result, &what);
        assert!(survived.stats.failures.is_empty(), "{what}: healed, not quarantined");
    }
}

#[test]
fn mid_epoch_disconnect_reconnects_and_resumes_bit_identically() {
    // The single worker drops its connection upon receiving its second
    // job, mid-epoch. Being the only worker, the run can finish *only*
    // if reconnect-and-resume works: the worker redials, passes the
    // handshake again, and the abandoned job is re-dispatched to the
    // fresh connection — across epoch barriers too.
    let config = config(ApproachKind::Llm4Fp, 18, 11);
    for epochs in [1usize, 2] {
        let reference = in_process(&config, 3, epochs);
        let partitioned = remote(1).with_fault_plan(network_plan(NetworkFault::DropConnAtJob(2)));
        let survived = on_remote(&config, 3, epochs, partitioned);
        assert_results_identical(
            &survived.result,
            &reference.result,
            &format!("disconnect-reconnect-resume E={epochs}"),
        );
        assert!(survived.stats.failures.is_empty(), "a healed partition is not a shard failure");
    }
}

#[test]
fn expired_leases_redispatch_and_late_answers_never_merge() {
    // Worker process 0 delays every answer past the lease deadline, so
    // each of its dispatches expires, re-queues, and eventually lands on
    // the healthy worker — while process 0's late answers keep arriving
    // and must every one be discarded by lease generation. If a single
    // stale result were merged, the bit-identity assertion would catch
    // the duplicate delta. (The generous dispatch budget is for process
    // 0 repeatedly winning the re-dispatch race before the healthy
    // worker does.)
    let config = config(ApproachKind::Varity, 12, 3);
    let reference = in_process(&config, 3, 1);
    let laggy = remote(2)
        .with_lease_timeout(Duration::from_millis(300))
        .max_dispatch_attempts(50)
        .with_fault_plan(network_plan(NetworkFault::DelayFrameMs(450)));
    let survived = on_remote(&config, 3, 1, laggy);
    assert_results_identical(&survived.result, &reference.result, "lease expiry + stale discard");
    assert!(survived.stats.failures.is_empty());
}

#[test]
fn metrics_json_is_byte_identical_on_the_remote_transport() {
    // The deterministic flight recorder must not betray the transport:
    // telemetry counters shipped home over TCP merge into the exact
    // bytes the in-process run writes — the witness the CI remote-worker
    // job pins with cmp across all three executors.
    let config = config(ApproachKind::Llm4Fp, 18, 9);
    let mut reference: Option<String> = None;
    let executors: [Option<RemoteWorkerExecutor>; 2] = [None, Some(remote(3))];
    for (tag, executor) in ["in-process", "remote"].into_iter().zip(executors) {
        let root = temp_dir(&format!("metrics-{tag}"));
        let mut builder = Orchestrator::new(config.clone())
            .shards(3)
            .epochs(2)
            .run_dir(root.clone())
            .telemetry(TelemetrySpec::METRICS);
        if let Some(executor) = executor {
            builder = builder.executor(Arc::new(executor));
        }
        let orchestrated = builder.run().unwrap();
        assert_eq!(orchestrated.stats.shards_computed, 3, "{tag}");
        let bytes = std::fs::read_to_string(root.join("metrics.json"))
            .expect("metrics.json written for a fully computed run");
        match &reference {
            None => reference = Some(bytes),
            Some(expected) => {
                assert_eq!(&bytes, expected, "metrics.json must not depend on the transport")
            }
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn external_workers_dial_a_worker_less_coordinator() {
    // `worker_procs = 0`: the coordinator spawns nothing and serves
    // whatever dials `bound_addr()` — here a worker we launch by hand,
    // the shape remote machines use. The executor clone shares the
    // bound-address cell, so a sidecar thread can watch it resolve.
    let config = config(ApproachKind::Varity, 8, 13);
    let reference = in_process(&config, 2, 1);
    let executor = RemoteWorkerExecutor::new(0);
    let probe = executor.clone();
    let spawner = std::thread::spawn(move || {
        let addr = loop {
            if let Some(addr) = probe.bound_addr() {
                break addr;
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        Command::new(worker_bin())
            .arg("--connect")
            .arg(addr.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .spawn()
            .expect("external worker spawns")
    });
    let remoted = Orchestrator::new(config)
        .shards(2)
        .executor(Arc::new(executor))
        .run()
        .expect("external workers complete the run");
    assert_results_identical(&remoted.result, &reference.result, "external worker dial-in");
    // The coordinator's shutdown frame sends the external worker home
    // (exit 0); reap it with a bounded wait so a regression hangs the
    // assertion, not the test harness.
    let mut child = spawner.join().unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let status = loop {
        if let Some(status) = child.try_wait().expect("wait on external worker") {
            break Some(status);
        }
        if Instant::now() >= deadline {
            break None;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    match status {
        Some(status) => assert!(status.success(), "worker exits cleanly on Shutdown: {status}"),
        None => {
            let _ = child.kill();
            panic!("external worker never received the shutdown frame");
        }
    }
}

#[test]
fn version_skewed_handshake_is_refused_in_words() {
    // A connection presenting the wrong protocol version gets a typed
    // WireRequest::Refuse naming the skew — never undefined framing, and
    // never a job. A well-versioned handshake on the same live session
    // is answered with the coordinator's Hello.
    let executor = RemoteWorkerExecutor::new(0);
    let session = executor.begin(Vec::new(), &NullSink).expect("session binds");
    let addr = executor.bound_addr().expect("bound address recorded");

    let mut skewed = TcpStream::connect(addr).expect("dial coordinator");
    let bad_hello = Hello { protocol: PROTOCOL_VERSION + 1, ..Hello::current() };
    write_frame(&mut skewed, &WireReply::Hello(bad_hello)).expect("send skewed hello");
    match read_frame::<WireRequest, _>(&mut skewed).expect("a refusal frame, not a hangup") {
        WireRequest::Refuse(why) => {
            assert!(why.contains("version mismatch"), "refusal names the skew: {why}");
            assert!(why.contains("protocol"), "refusal names the layer: {why}");
        }
        other => panic!("expected Refuse, got {other:?}"),
    }

    let mut good = TcpStream::connect(addr).expect("dial coordinator again");
    write_frame(&mut good, &WireReply::Hello(Hello::current())).expect("send current hello");
    match read_frame::<WireRequest, _>(&mut good).expect("an acceptance frame") {
        WireRequest::Hello(hello) => assert!(hello.check().is_ok()),
        other => panic!("expected the coordinator's Hello, got {other:?}"),
    }
    drop(session);
}

#[test]
fn worker_starvation_is_a_typed_worker_unavailable_error() {
    // No worker ever dials in: the epoch's starvation deadline trips and
    // surfaces as WorkerUnavailable — the degradation ladder's trigger.
    let config = config(ApproachKind::Varity, 4, 1);
    let starved = RemoteWorkerExecutor::new(0).with_worker_wait(Duration::from_millis(200));
    let err =
        Orchestrator::new(config.clone()).shards(2).executor(Arc::new(starved)).run().unwrap_err();
    assert!(matches!(err, OrchestratorError::WorkerUnavailable(_)), "got {err}");
    // And the ladder itself: the same starving transport with the
    // fallback opt-in completes in process, bit-identically.
    let reference = in_process(&config, 2, 1);
    let starved = RemoteWorkerExecutor::new(0).with_worker_wait(Duration::from_millis(200));
    let degraded = Orchestrator::new(config)
        .shards(2)
        .executor(Arc::new(starved))
        .fallback_to_in_process(true)
        .run()
        .expect("fallback completes the run in process");
    assert!(degraded.stats.fell_back_to_in_process);
    assert_results_identical(&degraded.result, &reference.result, "starvation fallback");
}

#[test]
fn unspawnable_loopback_workers_are_worker_unavailable() {
    // Self-spawned mode with a dead binary path: the transport cannot
    // raise its own workers, which is the WorkerUnavailable class (and
    // the session must tear the listener down on the way out).
    let config = config(ApproachKind::Varity, 4, 1);
    let executor = RemoteWorkerExecutor::new(1).with_worker_bin("/nonexistent/llm4fp-worker");
    let err = Orchestrator::new(config).shards(2).executor(Arc::new(executor)).run().unwrap_err();
    assert!(matches!(err, OrchestratorError::WorkerUnavailable(_)), "got {err}");
}
