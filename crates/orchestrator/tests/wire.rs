//! Property tests for the coordinator ↔ worker wire contract: every
//! payload the process-pool transport can ship — jobs fresh or
//! checkpointed, results with deltas, checkpoints, outputs and telemetry
//! counters — survives a frame round trip byte-for-byte equal. This is
//! the serialization half of the transport-equivalence guarantee: if
//! round-tripping ever lost information, `process_pool.rs`'s
//! bit-identity tests would fail only for the affected field, whereas
//! these pin the wire layer in isolation.
//!
//! The malformed-input half pins the robustness guarantee the fault
//! harness leans on: a worker can die mid-frame or write garbage
//! ([`WorkerFault::CorruptFrameAtJob`][cf]), and the reader must answer
//! every such stream with a typed `io::Error` — never a panic, and never
//! an attacker-sized allocation (a corrupt 10-digit header can demand up
//! to ~9.3 GiB; `MAX_FRAME_LEN` caps it before the buffer exists).
//!
//! [cf]: llm4fp_orchestrator::WorkerFault::CorruptFrameAtJob

use std::io;

use llm4fp::{ApproachKind, CampaignConfig};
use llm4fp_orchestrator::wire::{
    read_frame, write_frame, ShardJob, ShardJobResult, WireRequest, MAX_FRAME_LEN,
};
use llm4fp_orchestrator::{plan_shards, run_shard, ShardCtx, ShardRunner};
use llm4fp_telemetry::{TelemetryHub, TelemetrySpec};
use proptest::prelude::*;

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let mut buf = Vec::new();
    write_frame(&mut buf, value).expect("frame encodes");
    read_frame(&mut buf.as_slice()).expect("frame decodes")
}

fn config(approach: usize, budget: usize, seed: u64) -> CampaignConfig {
    let approach = ApproachKind::ALL[approach % ApproachKind::ALL.len()];
    CampaignConfig::new(approach).with_budget(budget).with_seed(seed).with_threads(1)
}

/// Deterministic garbage for the never-panic property (SplitMix64; the
/// vendored proptest shim has no byte-vector strategy).
fn pseudo_random_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut x = state;
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
            (x ^ (x >> 31)) as u8
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fresh_jobs_round_trip(
        seed in any::<u64>(),
        approach in 0usize..8,
        budget in 1usize..12,
        shards in 1usize..5,
        segment in 0usize..12,
        finish in any::<bool>(),
        slots in 1usize..9,
        telemetry in any::<bool>(),
    ) {
        let config = config(approach, budget, seed);
        for spec in plan_shards(&config, shards) {
            let job = ShardJob {
                config: config.clone(),
                spec,
                segment,
                finish,
                checkpoint: None,
                process_slots: slots,
                telemetry,
                lease: seed,
            };
            let request = WireRequest::Job(Box::new(job));
            prop_assert_eq!(round_trip(&request), request);
        }
    }

    #[test]
    fn checkpointed_jobs_round_trip(
        seed in any::<u64>(),
        approach in 0usize..8,
        budget in 2usize..8,
        segment in 1usize..4,
    ) {
        // A mid-campaign job carries real runner state: pause an actual
        // runner after a partial segment and ship its checkpoint.
        let config = config(approach, budget, seed);
        let spec = plan_shards(&config, 2)[1];
        let mut runner = ShardRunner::new(&config, spec, None);
        runner.run_segment(segment.min(spec.budget), |_| {});
        let job = ShardJob {
            config: config.clone(),
            spec,
            segment: spec.budget - segment.min(spec.budget),
            finish: true,
            checkpoint: Some(runner.checkpoint()),
            process_slots: 1,
            telemetry: false,
            lease: seed.wrapping_add(1),
        };
        let request = WireRequest::Job(Box::new(job));
        prop_assert_eq!(round_trip(&request), request);
    }

    #[test]
    fn results_round_trip(
        seed in any::<u64>(),
        approach in 0usize..8,
        budget in 1usize..10,
        with_telemetry in any::<bool>(),
    ) {
        // A finished shard's answer: real output, real counters.
        let config = config(approach, budget, seed);
        let spec = plan_shards(&config, 1)[0];
        let hub = TelemetryHub::new(if with_telemetry {
            TelemetrySpec::METRICS
        } else {
            TelemetrySpec::OFF
        });
        let ctx = ShardCtx::new(&config).with_telemetry(hub.lane(0));
        let output = run_shard(&spec, &ctx);
        let result = ShardJobResult {
            index: spec.index,
            delta: output.successful_sources.clone(),
            checkpoint: None,
            output: Some(output),
            telemetry: hub.lane(0).export(),
            lease: seed,
        };
        prop_assert_eq!(with_telemetry, result.telemetry.is_some());
        prop_assert_eq!(round_trip(&result), result);
    }

    #[test]
    fn paused_results_round_trip(
        seed in any::<u64>(),
        approach in 0usize..8,
        budget in 2usize..8,
        segment in 1usize..4,
    ) {
        // A paused shard's answer: the delta plus the checkpoint that
        // the next epoch's job will carry back out.
        let config = config(approach, budget, seed);
        let spec = plan_shards(&config, 2)[0];
        let mut runner = ShardRunner::new(&config, spec, None);
        let delta = runner.run_segment(segment.min(spec.budget), |_| {});
        let result = ShardJobResult {
            index: spec.index,
            delta,
            checkpoint: Some(runner.checkpoint()),
            output: None,
            telemetry: None,
            lease: seed.wrapping_add(2),
        };
        prop_assert_eq!(round_trip(&result), result);
    }

    #[test]
    fn arbitrary_byte_streams_never_panic_the_reader(
        seed in any::<u64>(),
        len in 0usize..256,
    ) {
        let bytes = pseudo_random_bytes(seed, len);
        // Whatever a sabotaged worker leaves on the pipe, the reader
        // answers with a typed io::Error — EOF for a stream that ended
        // early, InvalidData for everything structurally wrong. (Random
        // bytes parsing as a valid frame is beyond astronomically
        // unlikely, but tolerated: only panics and other error kinds are
        // contract violations.)
        if let Err(err) = read_frame::<WireRequest, _>(&mut bytes.as_slice()) {
            prop_assert!(
                matches!(err.kind(), io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof),
                "unexpected error kind {:?} for {:?}", err.kind(), bytes
            );
        }
    }

    #[test]
    fn single_byte_corruption_of_a_valid_frame_never_panics(
        seed in any::<u64>(),
        position in 0usize..64,
        replacement in any::<u8>(),
    ) {
        // Flip one byte anywhere in a real frame (header or payload):
        // the reader must either still parse a frame or fail cleanly.
        let config = config(0, 4, seed);
        let spec = plan_shards(&config, 1)[0];
        let job = ShardJob {
            config: config.clone(),
            spec,
            segment: 2,
            finish: false,
            checkpoint: None,
            process_slots: 1,
            telemetry: false,
            lease: 1,
        };
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &WireRequest::Job(Box::new(job))).expect("frame encodes");
        let position = position % bytes.len();
        bytes[position] = replacement;
        if let Err(err) = read_frame::<WireRequest, _>(&mut bytes.as_slice()) {
            prop_assert!(
                matches!(err.kind(), io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof),
                "unexpected error kind {:?} after corrupting byte {}", err.kind(), position
            );
        }
    }

    #[test]
    fn truncated_frames_are_errors_not_panics(
        seed in any::<u64>(),
        cut in any::<u64>(),
    ) {
        // A worker that dies mid-write leaves a prefix of a valid frame.
        // Every prefix must read as a clean error (almost always EOF;
        // a prefix that cuts inside the header is InvalidData).
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &WireRequest::Job(Box::new(ShardJob {
            config: config(1, 6, seed).clone(),
            spec: plan_shards(&config(1, 6, seed), 2)[1],
            segment: 3,
            finish: true,
            checkpoint: None,
            process_slots: 2,
            telemetry: true,
            lease: 1,
        }))).expect("frame encodes");
        let keep = (cut % bytes.len() as u64) as usize;
        let err = read_frame::<WireRequest, _>(&mut &bytes[..keep])
            .expect_err("a strict prefix is never a whole frame");
        prop_assert!(
            matches!(err.kind(), io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof),
            "unexpected error kind {:?} at {} of {} bytes", err.kind(), keep, bytes.len()
        );
    }

    #[test]
    fn oversized_headers_are_rejected_before_allocating(
        excess in 1u64..1_000_000_000,
    ) {
        // Any header demanding more than MAX_FRAME_LEN is refused as a
        // typed bad frame *before* the payload buffer is allocated — the
        // whole point of the cap (and this test would OOM without it).
        // MAX_FRAME_LEN + 1e9 still fits the 10-digit header.
        let demanded = MAX_FRAME_LEN as u64 + excess;
        let mut bytes = format!("{demanded:010}\n").into_bytes();
        bytes.extend_from_slice(b"{}");
        let err = read_frame::<WireRequest, _>(&mut bytes.as_slice()).unwrap_err();
        prop_assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        prop_assert!(err.to_string().contains("MAX_FRAME_LEN"), "{}", err);
    }
}
